"""C AST -> Affine dialect emission (the core of MET).

Each C function becomes a ``func.func`` whose array parameters are
memrefs.  ``for`` loops in the polyhedral subset become ``affine.for``;
array accesses become ``affine.load``/``affine.store`` with the access
function captured as an affine map; arithmetic becomes ``std`` ops.

Code outside the polyhedral subset (non-affine bounds or subscripts)
raises :class:`CNotAffineError` — mirroring MET, which only admits the
polyhedral fragment of C.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..dialects import affine as affine_d
from ..dialects import std
from ..ir import (
    AffineMap,
    Builder,
    Context,
    FuncOp,
    InsertionPoint,
    MemRefType,
    ModuleOp,
    ReturnOp,
    Value,
    f32,
    f64,
    index,
    verify,
)
from ..ir import affine_expr as ae
from .c_ast import (
    ArrayRef,
    Assign,
    BinOp,
    CSyntaxError,
    Decl,
    Expr,
    For,
    FunctionDef,
    Ident,
    Number,
    Param,
    Stmt,
    UnaryOp,
)
from .c_parser import parse_c


class CNotAffineError(CSyntaxError):
    """The program leaves the polyhedral subset MET can translate."""


_SCALAR_TYPES = {"float": f32, "double": f64, "int": index}


class _FunctionEmitter:
    def __init__(self, func_ast: FunctionDef):
        self.ast = func_ast
        #: name -> memref Value for arrays (params and locals)
        self.buffers: Dict[str, Value] = {}
        #: name -> scalar Value (float params, int params)
        self.scalars: Dict[str, Value] = {}
        #: innermost-first stack of (iv name, iv Value)
        self.loop_ivs: List[Tuple[str, Value]] = []
        self.func: Optional[FuncOp] = None

    # ------------------------------------------------------------------

    def emit(self) -> FuncOp:
        arg_types = []
        for param in self.ast.params:
            if param.is_array:
                elem = _SCALAR_TYPES[param.ctype]
                if param.ctype == "int":
                    raise CNotAffineError(
                        f"integer array parameter {param.name!r} unsupported"
                    )
                arg_types.append(MemRefType(param.dims, elem))
            else:
                arg_types.append(_SCALAR_TYPES[param.ctype])
        func = FuncOp.create(self.ast.name, arg_types)
        self.func = func
        for param, arg in zip(self.ast.params, func.arguments):
            if param.is_array:
                self.buffers[param.name] = arg
            else:
                self.scalars[param.name] = arg
        builder = Builder(InsertionPoint.at_end(func.entry_block))
        for stmt in self.ast.body:
            self.emit_stmt(stmt, builder)
        builder.insert(ReturnOp.create())
        return func

    # -- statements -------------------------------------------------------

    def emit_stmt(self, stmt: Stmt, builder: Builder) -> None:
        if isinstance(stmt, For):
            self.emit_for(stmt, builder)
        elif isinstance(stmt, Assign):
            self.emit_assign(stmt, builder)
        elif isinstance(stmt, Decl):
            self.emit_decl(stmt, builder)
        else:
            raise CSyntaxError(f"unsupported statement {type(stmt).__name__}")

    def emit_decl(self, decl: Decl, builder: Builder) -> None:
        if decl.name in self.buffers or decl.name in self.scalars:
            raise CSyntaxError(f"redeclaration of {decl.name!r}")
        elem = _SCALAR_TYPES[decl.ctype]
        alloc = builder.insert(std.AllocOp.create(MemRefType(decl.dims, elem)))
        self.buffers[decl.name] = alloc.result

    def emit_for(self, stmt: For, builder: Builder) -> None:
        lb_map, lb_ops = self.bound_to_map(stmt.lower)
        ub_map, ub_ops = self.bound_to_map(stmt.upper)
        loop = affine_d.AffineForOp.create(
            lb_map, ub_map, stmt.step, lb_ops, ub_ops
        )
        builder.insert(loop)
        self.loop_ivs.append((stmt.iv, loop.induction_var))
        body_builder = Builder(
            InsertionPoint(loop.body, len(loop.body.operations) - 1)
        )
        for inner in stmt.body:
            self.emit_stmt(inner, body_builder)
        self.loop_ivs.pop()

    def emit_assign(self, stmt: Assign, builder: Builder) -> None:
        target = stmt.target
        if target.name not in self.buffers:
            raise CSyntaxError(f"assignment to unknown array {target.name!r}")
        memref = self.buffers[target.name]
        operands, access_map = self.access_to_map(target, memref)
        rhs = self.emit_expr(stmt.value, builder)
        if stmt.op != "=":
            current = builder.insert(
                affine_d.AffineLoadOp.create(memref, operands, access_map)
            ).result
            op_cls = {"+=": std.AddFOp, "-=": std.SubFOp, "*=": std.MulFOp}[
                stmt.op
            ]
            # current first: ``a -= b`` is ``a = a - b``, and subf is
            # not commutative.
            rhs = builder.insert(op_cls.create(current, rhs)).result
        builder.insert(
            affine_d.AffineStoreOp.create(rhs, memref, operands, access_map)
        )

    # -- expressions ------------------------------------------------------

    def emit_expr(self, expr: Expr, builder: Builder) -> Value:
        if isinstance(expr, Number):
            value = float(expr.value)
            return builder.insert(std.ConstantOp.create(value, f32)).result
        if isinstance(expr, Ident):
            if expr.name in self.scalars:
                return self.scalars[expr.name]
            raise CSyntaxError(f"unknown identifier {expr.name!r}")
        if isinstance(expr, ArrayRef):
            if expr.name not in self.buffers:
                raise CSyntaxError(f"unknown array {expr.name!r}")
            memref = self.buffers[expr.name]
            operands, access_map = self.access_to_map(expr, memref)
            return builder.insert(
                affine_d.AffineLoadOp.create(memref, operands, access_map)
            ).result
        if isinstance(expr, UnaryOp) and expr.op == "-":
            operand = self.emit_expr(expr.operand, builder)
            zero = builder.insert(std.ConstantOp.create(0.0, operand.type)).result
            return builder.insert(std.SubFOp.create(zero, operand)).result
        if isinstance(expr, BinOp):
            lhs = self.emit_expr(expr.lhs, builder)
            rhs = self.emit_expr(expr.rhs, builder)
            op_cls = {
                "+": std.AddFOp,
                "-": std.SubFOp,
                "*": std.MulFOp,
                "/": std.DivFOp,
            }.get(expr.op)
            if op_cls is None:
                raise CSyntaxError(f"unsupported operator {expr.op!r}")
            return builder.insert(op_cls.create(lhs, rhs)).result
        raise CSyntaxError(f"unsupported expression {type(expr).__name__}")

    # -- affine analysis --------------------------------------------------

    def bound_to_map(self, expr: Expr) -> Tuple[AffineMap, List[Value]]:
        """Convert a loop bound into an affine map + operands."""
        operands: List[Value] = []

        def convert(node: Expr) -> ae.AffineExpr:
            if isinstance(node, Number):
                if isinstance(node.value, float):
                    raise CNotAffineError("float loop bound")
                return ae.constant(node.value)
            if isinstance(node, Ident):
                value = self._index_value(node.name)
                if value is None:
                    raise CNotAffineError(
                        f"loop bound uses non-index identifier {node.name!r}"
                    )
                if value not in operands:
                    operands.append(value)
                return ae.dim(operands.index(value))
            if isinstance(node, BinOp) and node.op in ("+", "-", "*", "/"):
                lhs, rhs = convert(node.lhs), convert(node.rhs)
                if node.op == "+":
                    return lhs + rhs
                if node.op == "-":
                    return lhs - rhs
                if node.op == "*":
                    return lhs * rhs
                return lhs.floordiv(rhs)
            if isinstance(node, UnaryOp) and node.op == "-":
                return -convert(node.operand)
            raise CNotAffineError(
                f"non-affine loop bound ({type(node).__name__})"
            )

        result = convert(expr)
        if result.as_linear() is None:
            raise CNotAffineError(f"non-affine loop bound {expr!r}")
        return AffineMap(len(operands), 0, [result]), operands

    def _index_value(self, name: str) -> Optional[Value]:
        for iv_name, value in reversed(self.loop_ivs):
            if iv_name == name:
                return value
        scalar = self.scalars.get(name)
        if scalar is not None and scalar.type == index:
            return scalar
        return None

    def access_to_map(
        self, ref: ArrayRef, memref: Value
    ) -> Tuple[List[Value], AffineMap]:
        """Convert subscripts into (operands, access map).

        Subscripts must be affine in the enclosing induction variables
        with *constant* coefficients — ``A[i * lda + k]`` with a
        parametric stride is outside the polyhedral subset (this is
        exactly why MET misses nothing on Polybench but linearized
        accesses require constant leading dimensions).
        """
        memref_type = memref.type
        if len(ref.indices) != memref_type.rank:
            raise CNotAffineError(
                f"{ref.name}: {len(ref.indices)} subscripts for rank-"
                f"{memref_type.rank} array"
            )
        operands: List[Value] = []

        def convert(node: Expr) -> ae.AffineExpr:
            if isinstance(node, Number):
                if isinstance(node.value, float):
                    raise CNotAffineError("float array subscript")
                return ae.constant(node.value)
            if isinstance(node, Ident):
                for iv_name, value in reversed(self.loop_ivs):
                    if iv_name == node.name:
                        if value not in operands:
                            operands.append(value)
                        return ae.dim(operands.index(value))
                raise CNotAffineError(
                    f"subscript of {ref.name!r} uses {node.name!r}, which is "
                    "not an enclosing induction variable"
                )
            if isinstance(node, BinOp) and node.op in ("+", "-", "*"):
                lhs, rhs = convert(node.lhs), convert(node.rhs)
                if node.op == "+":
                    return lhs + rhs
                if node.op == "-":
                    return lhs - rhs
                return lhs * rhs
            if isinstance(node, UnaryOp) and node.op == "-":
                return -convert(node.operand)
            raise CNotAffineError(
                f"non-affine subscript in {ref.name!r} "
                f"({type(node).__name__})"
            )

        exprs = []
        for idx in ref.indices:
            converted = convert(idx)
            if converted.as_linear() is None:
                raise CNotAffineError(
                    f"non-affine subscript in {ref.name!r}"
                )
            exprs.append(converted)
        return operands, AffineMap(len(operands), 0, exprs)


def emit_module(unit, module_name: str = "") -> ModuleOp:
    """Emit a module from a parsed translation unit."""
    module = ModuleOp.create(module_name)
    for func_ast in unit.functions:
        module.append_function(_FunctionEmitter(func_ast).emit())
    return module


def compile_c(
    source: str,
    distribute: bool = True,
    do_verify: bool = True,
) -> ModuleOp:
    """Front door of MET: C source -> Affine-dialect module.

    ``distribute`` applies loop distribution (the canonicalization the
    paper performs to isolate computational motifs before matching).
    """
    module = emit_module(parse_c(source))
    if distribute:
        from ..transforms.distribution import distribute_loops

        for func in module.functions:
            distribute_loops(func)
    if do_verify:
        verify(module, Context())
    return module
