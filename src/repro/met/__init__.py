"""MET — the MLIR Extraction Tool.

A frontend for the polyhedral subset of C that enters the multi-level
IR pipeline at the Affine dialect (Figure 3 of the paper).  During
translation, the code is canonicalized by distributing loops to
simplify subsequent pattern recognition.
"""

from .c_ast import (  # noqa: F401
    ArrayRef,
    Assign,
    BinOp,
    CSyntaxError,
    Decl,
    For,
    FunctionDef,
    Ident,
    Number,
    Param,
    TranslationUnit,
)
from .c_lexer import CLexError, tokenize  # noqa: F401
from .c_parser import parse_c  # noqa: F401
from .emitter import CNotAffineError, compile_c, emit_module  # noqa: F401
