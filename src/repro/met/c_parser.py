"""Recursive-descent parser for the polyhedral C subset.

Accepted grammar (informally)::

    unit      := function*
    function  := ('void'|'float'|'int') ID '(' params ')' block
    param     := type ID ('[' INT ']')*
    block     := '{' stmt* '}'
    stmt      := for | assign ';' | decl ';' | block
    for       := 'for' '(' ['int'] ID '=' expr ';' ID ('<'|'<=') expr ';'
                 step ')' (block | stmt)
    step      := ID '++' | '++' ID | ID '+=' INT | ID '=' ID '+' INT
    decl      := ('float'|'double'|'int') ID ('[' INT ']')+
    assign    := arrayref ('='|'+='|'-='|'*=') expr
    expr      := standard precedence over + - * / with unary minus,
                 operands: literals, identifiers, array references
"""

from __future__ import annotations

from typing import List, Optional

from .c_ast import (
    ArrayRef,
    Assign,
    BinOp,
    CSyntaxError,
    Decl,
    Expr,
    For,
    FunctionDef,
    Ident,
    Number,
    Param,
    Stmt,
    TranslationUnit,
    UnaryOp,
)
from .c_lexer import CToken, tokenize

_TYPE_KEYWORDS = ("void", "float", "double", "int")


class CParser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- helpers -----------------------------------------------------------

    def peek(self, offset: int = 0) -> CToken:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> CToken:
        tok = self.peek()
        self.pos += 1
        return tok

    def at(self, text: str) -> bool:
        return self.peek().text == text

    def accept(self, text: str) -> bool:
        if self.at(text):
            self.pos += 1
            return True
        return False

    def expect(self, text: str) -> CToken:
        tok = self.next()
        if tok.text != text:
            raise CSyntaxError(f"expected {text!r}, got {tok.text!r}", tok.line)
        return tok

    def expect_id(self) -> CToken:
        tok = self.next()
        if tok.kind != "ID":
            raise CSyntaxError(f"expected identifier, got {tok.text!r}", tok.line)
        return tok

    def expect_int(self) -> int:
        tok = self.next()
        if tok.kind != "INTLIT":
            raise CSyntaxError(f"expected integer, got {tok.text!r}", tok.line)
        return int(tok.text)

    # -- top level -----------------------------------------------------------

    def parse_unit(self) -> TranslationUnit:
        functions = []
        while self.peek().kind != "EOF":
            functions.append(self.parse_function())
        return TranslationUnit(functions)

    def parse_function(self) -> FunctionDef:
        self.accept("static")
        tok = self.next()
        if tok.text not in _TYPE_KEYWORDS:
            raise CSyntaxError(f"expected return type, got {tok.text!r}", tok.line)
        name = self.expect_id().text
        self.expect("(")
        params: List[Param] = []
        while not self.at(")"):
            params.append(self.parse_param())
            self.accept(",")
        self.expect(")")
        body = self.parse_block()
        return FunctionDef(name, params, body)

    def parse_param(self) -> Param:
        self.accept("const")
        tok = self.next()
        if tok.text not in ("float", "double", "int"):
            raise CSyntaxError(f"bad parameter type {tok.text!r}", tok.line)
        ctype = tok.text
        # Pointer-style array params (float *A) are accepted; the array
        # extent then comes from the linearized index expressions.
        is_pointer = self.accept("*")
        name = self.expect_id().text
        dims: List[int] = []
        while self.accept("["):
            dims.append(self.expect_int())
            self.expect("]")
        if is_pointer and not dims:
            dims = [-1]  # dynamic 1-d buffer
        return Param(ctype, name, dims)

    # -- statements ------------------------------------------------------------

    def parse_block(self) -> List[Stmt]:
        self.expect("{")
        stmts: List[Stmt] = []
        while not self.accept("}"):
            stmts.append(self.parse_stmt())
        return stmts

    def parse_stmt(self) -> Stmt:
        tok = self.peek()
        if tok.text == "for":
            return self.parse_for()
        if tok.text in ("float", "double", "int"):
            return self.parse_decl()
        if tok.text == "{":
            # Flatten nested bare blocks into a single statement list by
            # re-wrapping them in a zero-trip marker-free structure.
            raise CSyntaxError("bare nested blocks are not supported", tok.line)
        return self.parse_assign()

    def parse_decl(self) -> Decl:
        ctype = self.next().text
        name = self.expect_id().text
        dims: List[int] = []
        while self.accept("["):
            dims.append(self.expect_int())
            self.expect("]")
        if not dims:
            raise CSyntaxError(
                f"scalar locals are not supported (declare {name!r} as an array)",
                self.peek().line,
            )
        self.expect(";")
        return Decl(ctype, name, dims)

    def parse_for(self) -> For:
        self.expect("for")
        self.expect("(")
        self.accept("int")
        iv = self.expect_id().text
        self.expect("=")
        lower = self.parse_expr()
        self.expect(";")
        cond_var = self.expect_id().text
        if cond_var != iv:
            raise CSyntaxError(
                f"loop condition tests {cond_var!r}, expected {iv!r}",
                self.peek().line,
            )
        cmp = self.next().text
        if cmp not in ("<", "<="):
            raise CSyntaxError(f"unsupported loop comparison {cmp!r}")
        upper = self.parse_expr()
        if cmp == "<=":
            upper = BinOp("+", upper, Number(1))
        self.expect(";")
        step = self.parse_step(iv)
        self.expect(")")
        if self.at("{"):
            body = self.parse_block()
        else:
            body = [self.parse_stmt()]
        return For(iv, lower, upper, step, body)

    def parse_step(self, iv: str) -> int:
        tok = self.next()
        if tok.text == "++":
            self.expect(iv)
            return 1
        if tok.text == iv:
            op = self.next()
            if op.text == "++":
                return 1
            if op.text == "+=":
                return self.expect_int()
            if op.text == "=":
                self.expect(iv)
                self.expect("+")
                return self.expect_int()
        raise CSyntaxError(f"unsupported loop step near {tok.text!r}", tok.line)

    def parse_assign(self) -> Assign:
        target = self.parse_primary()
        if not isinstance(target, ArrayRef):
            raise CSyntaxError("assignment target must be an array reference")
        op = self.next()
        if op.text not in ("=", "+=", "-=", "*="):
            raise CSyntaxError(f"unsupported assignment {op.text!r}", op.line)
        value = self.parse_expr()
        self.expect(";")
        return Assign(target, op.text, value)

    # -- expressions -------------------------------------------------------------

    def parse_expr(self) -> Expr:
        expr = self.parse_term()
        while self.peek().text in ("+", "-"):
            op = self.next().text
            expr = BinOp(op, expr, self.parse_term())
        return expr

    def parse_term(self) -> Expr:
        expr = self.parse_factor()
        while self.peek().text in ("*", "/"):
            op = self.next().text
            expr = BinOp(op, expr, self.parse_factor())
        return expr

    def parse_factor(self) -> Expr:
        if self.accept("-"):
            return UnaryOp("-", self.parse_factor())
        if self.accept("+"):
            return self.parse_factor()
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        tok = self.next()
        if tok.text == "(":
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if tok.kind == "INTLIT":
            return Number(int(tok.text))
        if tok.kind == "FLOATLIT":
            return Number(float(tok.text.rstrip("fF")))
        if tok.kind == "ID":
            if self.at("["):
                indices: List[Expr] = []
                while self.accept("["):
                    indices.append(self.parse_expr())
                    self.expect("]")
                return ArrayRef(tok.text, indices)
            return Ident(tok.text)
        raise CSyntaxError(f"unexpected token {tok.text!r}", tok.line)


def parse_c(source: str) -> TranslationUnit:
    """Parse C source into the MET AST."""
    return CParser(source).parse_unit()
