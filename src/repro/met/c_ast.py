"""AST for the polyhedral C subset."""

from __future__ import annotations

from typing import List, Optional, Sequence, Union


class CSyntaxError(Exception):
    def __init__(self, message: str, line: Optional[int] = None):
        suffix = f" (line {line})" if line is not None else ""
        super().__init__(message + suffix)


class Node:
    def __repr__(self) -> str:
        fields = ", ".join(
            f"{k}={v!r}" for k, v in vars(self).items() if not k.startswith("_")
        )
        return f"{type(self).__name__}({fields})"


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


class Expr(Node):
    pass


class Number(Expr):
    """Integer or float literal."""

    def __init__(self, value: Union[int, float]):
        self.value = value

    @property
    def is_float(self) -> bool:
        return isinstance(self.value, float)


class Ident(Expr):
    def __init__(self, name: str):
        self.name = name


class ArrayRef(Expr):
    """``A[i][j]`` (multi-dim style) or ``A[i * lda + j]`` (linearized)."""

    def __init__(self, name: str, indices: Sequence[Expr]):
        self.name = name
        self.indices = list(indices)

    @property
    def rank(self) -> int:
        return len(self.indices)


class BinOp(Expr):
    def __init__(self, op: str, lhs: Expr, rhs: Expr):
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class UnaryOp(Expr):
    def __init__(self, op: str, operand: Expr):
        self.op = op
        self.operand = operand


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


class Stmt(Node):
    pass


class Assign(Stmt):
    """``lhs op rhs`` where op is '=', '+=', '-=', or '*='."""

    def __init__(self, target: ArrayRef, op: str, value: Expr):
        self.target = target
        self.op = op
        self.value = value


class For(Stmt):
    """``for (int iv = lb; iv < ub; iv += step) body``."""

    def __init__(
        self,
        iv: str,
        lower: Expr,
        upper: Expr,
        step: int,
        body: List[Stmt],
    ):
        self.iv = iv
        self.lower = lower
        self.upper = upper
        self.step = step
        self.body = body


class Decl(Stmt):
    """Local array declaration: ``float D[800][900];``."""

    def __init__(self, ctype: str, name: str, dims: Sequence[int]):
        self.ctype = ctype
        self.name = name
        self.dims = list(dims)


# ----------------------------------------------------------------------
# Top level
# ----------------------------------------------------------------------


class Param(Node):
    """Function parameter: scalar (``int n``, ``float alpha``) or array
    (``float A[256][512]``)."""

    def __init__(self, ctype: str, name: str, dims: Sequence[int] = ()):
        self.ctype = ctype
        self.name = name
        self.dims = list(dims)

    @property
    def is_array(self) -> bool:
        return bool(self.dims)


class FunctionDef(Node):
    def __init__(self, name: str, params: List[Param], body: List[Stmt]):
        self.name = name
        self.params = params
        self.body = body


class TranslationUnit(Node):
    def __init__(self, functions: List[FunctionDef]):
        self.functions = functions
