"""Lexer for the polyhedral C subset accepted by MET."""

from __future__ import annotations

import re
from typing import List, NamedTuple


class CLexError(Exception):
    pass


class CToken(NamedTuple):
    kind: str
    text: str
    line: int


KEYWORDS = {
    "void",
    "float",
    "double",
    "int",
    "for",
    "if",
    "else",
    "return",
    "const",
    "static",
}

_SPEC = [
    ("WS", r"[ \t\r]+"),
    ("NEWLINE", r"\n"),
    ("LINE_COMMENT", r"//[^\n]*"),
    ("BLOCK_COMMENT", r"/\*.*?\*/"),
    ("PREPROC", r"\#[^\n]*"),
    ("FLOATLIT", r"\d+\.\d*(?:[eE][-+]?\d+)?[fF]?|\d+[eE][-+]?\d+[fF]?|\d+[fF]"),
    ("INTLIT", r"\d+"),
    ("ID", r"[A-Za-z_][A-Za-z_0-9]*"),
    ("OP", r"\+\+|--|\+=|-=|\*=|/=|<=|>=|==|!=|&&|\|\||[-+*/%<>=!&|]"),
    ("PUNCT", r"[()\[\]{};,]"),
]

_MASTER = re.compile(
    "|".join(f"(?P<{name}>{pattern})" for name, pattern in _SPEC), re.DOTALL
)


def tokenize(source: str) -> List[CToken]:
    tokens: List[CToken] = []
    line = 1
    pos = 0
    while pos < len(source):
        match = _MASTER.match(source, pos)
        if match is None:
            raise CLexError(f"line {line}: unexpected character {source[pos]!r}")
        kind = match.lastgroup
        text = match.group()
        if kind == "NEWLINE":
            line += 1
        elif kind == "BLOCK_COMMENT":
            line += text.count("\n")
        elif kind not in ("WS", "LINE_COMMENT", "PREPROC"):
            if kind == "ID" and text in KEYWORDS:
                kind = "KW"
            tokens.append(CToken(kind, text, line))
        pos = match.end()
    tokens.append(CToken("EOF", "", line))
    return tokens
