"""Analytical performance model (roofline + working sets).

Predicts single-core execution time of a function at any abstraction
level:

  * **Affine loop nests** are costed per innermost statement with a
    roofline: compute throughput (scalar or vector, with a reduction
    penalty) vs. memory time derived from per-reference reuse analysis —
    each reference is assigned the cache level whose capacity covers the
    data touched between its temporal reuses, and charged that level's
    bandwidth for the bytes it moves per iteration.
  * **Library calls** (``blas.*``) are charged the machine's measured
    library efficiency plus the fixed dynamic-link dispatch overhead —
    the term that makes Pluto win the level-2 kernels in Figure 9.
  * **``affine.matmul``** is charged the OpenBLAS/BLIS codegen
    efficiency of §V-A (no call overhead: it lowers to inlined code).

This is the explicit stand-in for the paper's hardware testbed (see
DESIGN.md, "Substitutions"): absolute numbers are model outputs, but
the orderings and ratios the paper reports emerge from the same
arithmetic-intensity and overhead mechanics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.accesses import MemoryAccess, access_function
from ..dialects.affine import AffineForOp, AffineMatmulOp
from ..ir import IRError, MemRefType, Operation, Value
from ..ir.affine_expr import AffineDimExpr
from .machines import CacheLevel, Machine

_ELEMENT_BYTES = 4  # single-precision evaluation (paper §V)
_CACHE_LINE = 64


class CostModelError(IRError):
    pass


@dataclass
class StatementCost:
    description: str
    seconds: float
    flops: int


@dataclass
class CostReport:
    seconds: float = 0.0
    flops: int = 0
    statements: List[StatementCost] = field(default_factory=list)

    def add(self, description: str, seconds: float, flops: int) -> None:
        self.statements.append(StatementCost(description, seconds, flops))
        self.seconds += seconds
        self.flops += flops

    @property
    def gflops(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.flops / self.seconds / 1e9

    def merge(self, other: "CostReport") -> None:
        for stmt in other.statements:
            self.add(stmt.description, stmt.seconds, stmt.flops)


def approx_trip_count(loop: AffineForOp) -> int:
    """Trip count, handling the ``min(d0 + T, N)`` bounds of tiled code."""
    constant = loop.constant_trip_count()
    if constant is not None:
        return max(0, constant)
    lb_map = loop.lower_bound_map
    ub_map = loop.upper_bound_map
    lb_const: Optional[int] = None
    if all(e.is_constant() for e in lb_map.results):
        lb_const = max(e.evaluate((), ()) for e in lb_map.results)
    candidates: List[int] = []
    for expr in ub_map.results:
        linear = expr.as_linear()
        if linear is None:
            continue
        if linear.is_constant() and lb_const is not None:
            candidates.append(linear.constant - lb_const)
        elif not linear.symbol_coeffs and len(linear.dim_coeffs) == 1:
            ((pos, coeff),) = linear.dim_coeffs.items()
            if coeff == 1 and _lb_is_same_dim(lb_map, pos):
                candidates.append(linear.constant)
    if not candidates:
        raise CostModelError(
            "cannot approximate trip count of a symbolic loop"
        )
    trips = min(candidates)
    return max(0, -(-trips // loop.step))


def _lb_is_same_dim(lb_map, pos: int) -> bool:
    return (
        lb_map.num_results == 1
        and isinstance(lb_map.results[0], AffineDimExpr)
    )


class _Statement:
    """An innermost statement: straight-line ops at some nest depth."""

    def __init__(
        self,
        loops: List[AffineForOp],
        ops: List[Operation],
    ):
        self.loops = loops  # outermost first; last one holds the ops
        self.ops = ops
        self.accesses: List[MemoryAccess] = []
        for op in ops:
            access = access_function(op)
            if access is not None:
                self.accesses.append(access)
        self.flops = sum(
            1
            for op in ops
            if op.dialect == "std"
            and op.name in ("std.addf", "std.subf", "std.mulf", "std.divf", "std.maxf")
        )

    @property
    def innermost(self) -> AffineForOp:
        return self.loops[-1]


class CostModel:
    def __init__(self, machine: Machine):
        self.machine = machine

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def cost_function(self, func) -> CostReport:
        report = CostReport()
        for op in func.entry_block.operations:
            report.merge(self.cost_op(op))
        return report

    def cost_op(self, op: Operation) -> CostReport:
        report = CostReport()
        if isinstance(op, AffineForOp):
            self._cost_nest(op, report)
            return report
        seconds_flops = self._cost_leaf_op(op)
        if seconds_flops is not None:
            report.add(op.name, *seconds_flops)
        return report

    def estimate_module(self, module) -> CostReport:
        report = CostReport()
        for func in module.functions:
            report.merge(self.cost_function(func))
        return report

    # ------------------------------------------------------------------
    # Leaf (non-loop) op costs
    # ------------------------------------------------------------------

    def _memref_bytes(self, value: Value) -> int:
        ty = value.type
        count = ty.num_elements()
        if count is None:
            raise CostModelError(f"dynamic memref in cost model: {ty}")
        return count * _ELEMENT_BYTES

    def _cost_leaf_op(self, op: Operation) -> Optional[Tuple[float, int]]:
        machine = self.machine
        name = op.name
        if name == "affine.matmul":
            flops = 2
            m, k = op.a.type.shape
            n = op.b.type.shape[1]
            flops = 2 * m * k * n
            return flops / (machine.blis_matmul_gflops * 1e9), flops
        if name == "blas.sgemm":
            flops = op.flops()
            gf = machine.library_gflops(op.library, level=3)
            return (
                flops / (gf * 1e9) + machine.library_call_overhead_s,
                flops,
            )
        if name == "blas.sgemv":
            flops = op.flops()
            gf = machine.library_gflops(op.library, level=2)
            return (
                flops / (gf * 1e9) + machine.library_call_overhead_s,
                flops,
            )
        if name == "blas.conv2d":
            flops = op.flops()
            gf = machine.library_gflops(op.library, level=3)
            return (
                flops / (gf * 1e9) + machine.library_call_overhead_s,
                flops,
            )
        if name == "blas.transpose":
            bytes_moved = 2 * self._memref_bytes(op.input)
            return (
                bytes_moved / (machine.memory_bandwidth_gbs * 1e9)
                + machine.library_call_overhead_s,
                0,
            )
        if name == "blas.reshape":
            # contiguous view change: metadata only
            return (1e-7, 0)
        # Un-lowered linalg ops: price at default Linalg codegen quality
        # (tiled but scalar loops) so the model is total at any level.
        if name in ("linalg.matmul", "linalg.conv2d_nchw", "linalg.matvec"):
            flops = op.flops()
            if name == "linalg.matvec":
                seconds = max(
                    flops / (machine.scalar_gflops * 1e9),
                    (self._memref_bytes(op.a))
                    / (machine.memory_bandwidth_gbs * 1e9),
                )
            else:
                seconds = flops / (
                    machine.scalar_gflops * machine.reduction_penalty * 1e9
                )
            return (seconds, flops)
        if name in ("linalg.transpose", "linalg.copy"):
            bytes_moved = 2 * self._memref_bytes(op.operand(0))
            return (bytes_moved / (machine.memory_bandwidth_gbs * 1e9), 0)
        if name == "linalg.reshape":
            # a contiguous-buffer reshape is a metadata-only view
            return (1e-7, 0)
        if name == "linalg.fill":
            bytes_moved = self._memref_bytes(op.output)
            return (bytes_moved / (machine.memory_bandwidth_gbs * 1e9), 0)
        if name == "linalg.generic":
            flops = op.flops()
            return (
                flops
                / (machine.scalar_gflops * machine.reduction_penalty * 1e9),
                flops,
            )
        return None

    # ------------------------------------------------------------------
    # Loop-nest roofline
    # ------------------------------------------------------------------

    def _cost_nest(self, root: AffineForOp, report: CostReport) -> None:
        statements = self._collect_statements(root, [])
        for stmt in statements:
            seconds, flops = self._cost_statement(stmt)
            depth = len(stmt.loops)
            report.add(f"nest(depth={depth})", seconds, flops)

    def _collect_statements(
        self, loop: AffineForOp, enclosing: List[AffineForOp]
    ) -> List[_Statement]:
        chain = enclosing + [loop]
        direct_ops: List[Operation] = []
        nested: List[_Statement] = []
        for op in loop.ops_in_body():
            if isinstance(op, AffineForOp):
                nested.extend(self._collect_statements(op, chain))
            else:
                leaf = self._cost_leaf_op(op)
                if leaf is not None:
                    # library/linalg op inside a loop: scale by trips
                    trips = 1
                    for enclosing_loop in chain:
                        trips *= approx_trip_count(enclosing_loop)
                    scaled = _Statement(chain, [])
                    scaled.fixed_cost = (leaf[0] * trips, leaf[1] * trips)
                    nested.append(scaled)
                else:
                    direct_ops.append(op)
        out: List[_Statement] = []
        if any(
            access_function(op) is not None for op in direct_ops
        ) or any(op.dialect == "std" for op in direct_ops):
            out.append(_Statement(chain, direct_ops))
        out.extend(nested)
        return out

    def _cost_statement(self, stmt: _Statement) -> Tuple[float, int]:
        if hasattr(stmt, "fixed_cost"):
            return stmt.fixed_cost  # type: ignore[attr-defined]
        machine = self.machine
        trips = [approx_trip_count(loop) for loop in stmt.loops]
        total_iters = 1
        for t in trips:
            total_iters *= t
        if total_iters == 0:
            return (0.0, 0)
        inner_iv = stmt.innermost.induction_var
        inner_trip = max(1, trips[-1])

        flops_per_iter = stmt.flops
        vectorizable = True
        memory_ns_per_iter = 0.0
        is_reduction = False

        for access in stmt.accesses:
            stride_elems = self._innermost_stride(access, inner_iv)
            if access.is_write and stride_elems == 0:
                is_reduction = True
            if stride_elems not in (0, 1):
                vectorizable = False
            source = self._source_level(stmt, access, trips)
            if source.name == "L1":
                continue  # absorbed in the compute pipeline
            if stride_elems == 0:
                bytes_per_iter = _ELEMENT_BYTES / inner_trip
            elif stride_elems * _ELEMENT_BYTES >= _CACHE_LINE:
                bytes_per_iter = float(_CACHE_LINE)
            else:
                bytes_per_iter = float(stride_elems * _ELEMENT_BYTES)
            memory_ns_per_iter += bytes_per_iter / source.bandwidth_gbs

        if vectorizable:
            throughput = machine.vector_gflops
            if is_reduction:
                throughput *= 0.8  # reassociated vector reduction
            # Loop control amortizes over vector lanes and unrolling.
            overhead_ns_per_iter = machine.loop_overhead_cycles / (
                machine.frequency_ghz * machine.simd_width_f32 * 2
            )
        else:
            throughput = machine.scalar_gflops
            if is_reduction:
                throughput *= machine.reduction_penalty
            overhead_ns_per_iter = (
                machine.loop_overhead_cycles / machine.frequency_ghz
            )
        compute_ns_per_iter = (
            flops_per_iter / throughput if flops_per_iter else 0.0
        )
        # Outer-loop control overhead, amortized across inner iterations.
        outer_iters = total_iters // inner_trip
        outer_overhead_ns = outer_iters * 4.0 * machine.loop_overhead_cycles / (
            machine.frequency_ghz
        )

        per_iter_ns = max(
            compute_ns_per_iter + overhead_ns_per_iter, memory_ns_per_iter
        )
        seconds = (total_iters * per_iter_ns + outer_overhead_ns) * 1e-9
        return (seconds, flops_per_iter * total_iters)

    # -- reuse analysis ------------------------------------------------

    def _innermost_stride(self, access: MemoryAccess, inner_iv: Value) -> int:
        """Linear element stride of the access w.r.t. the innermost IV."""
        shape = access.memref.type.shape
        row_strides = [1] * len(shape)
        for d in range(len(shape) - 2, -1, -1):
            size = shape[d + 1]
            row_strides[d] = row_strides[d + 1] * (size if size > 0 else 1024)
        stride = 0
        for d, sub in enumerate(access.subscripts):
            stride += sub.coeff(inner_iv) * row_strides[d]
        return abs(stride)

    def _effective_used_levels(
        self, stmt: _Statement, access: MemoryAccess
    ) -> set:
        """Loop levels the access *effectively* depends on.

        A tiled point loop's IV encodes an absolute position whose range
        is set by the tile IV, so using the point IV means depending on
        the tile IV too (otherwise tiling would fake temporal reuse that
        does not exist).
        """
        ivs = [loop.induction_var for loop in stmt.loops]
        used = {
            level
            for level in range(len(ivs))
            if any(sub.coeff(ivs[level]) != 0 for sub in access.subscripts)
        }
        changed = True
        while changed:
            changed = False
            for level in list(used):
                loop = stmt.loops[level]
                for bound_operand in loop.operands:
                    for outer_level, outer_iv in enumerate(ivs):
                        if (
                            bound_operand is outer_iv
                            and outer_level not in used
                        ):
                            used.add(outer_level)
                            changed = True
        return used

    def _source_level(
        self,
        stmt: _Statement,
        access: MemoryAccess,
        trips: List[int],
    ) -> CacheLevel:
        """Cache level feeding this reference, from its temporal-reuse
        footprint."""
        machine = self.machine
        ivs = [loop.induction_var for loop in stmt.loops]
        used = self._effective_used_levels(stmt, access)
        # innermost loop level the access does NOT (effectively) use
        reuse_level: Optional[int] = None
        for level in range(len(ivs) - 1, -1, -1):
            if level not in used:
                reuse_level = level
                break
        if reuse_level is None:
            # No temporal reuse inside this nest: a cold stream, paid at
            # memory bandwidth (each element is touched exactly once).
            return CacheLevel("mem", 1 << 62, machine.memory_bandwidth_gbs)
        # Data touched by the whole statement during ONE iteration of the
        # reuse-carrying loop (i.e. across the loops inside it).
        footprint = 0.0
        for other in stmt.accesses:
            other_used = self._effective_used_levels(stmt, other)
            footprint += self._sub_nest_footprint(
                other,
                ivs[reuse_level + 1:],
                trips[reuse_level + 1:],
                {
                    level - reuse_level - 1
                    for level in other_used
                    if level > reuse_level
                },
            )
        return machine.cache_level_for(footprint)

    def _array_bytes(self, access: MemoryAccess) -> float:
        ty = access.memref.type
        count = ty.num_elements()
        if count is None:
            count = 1 << 30
        return count * _ELEMENT_BYTES

    def _sub_nest_footprint(
        self,
        access: MemoryAccess,
        ivs: Sequence[Value],
        trips: Sequence[int],
        used_positions: Optional[set] = None,
    ) -> float:
        """Distinct bytes ``access`` touches across the given sub-nest."""
        elements = 1.0
        uses_any = False
        innermost_used = False
        for pos, (iv, trip) in enumerate(zip(ivs, trips)):
            position_used = (
                pos in used_positions
                if used_positions is not None
                else any(sub.coeff(iv) != 0 for sub in access.subscripts)
            )
            if position_used:
                elements *= max(1, trip)
                uses_any = True
                if pos == len(ivs) - 1:
                    innermost_used = True
        if not uses_any:
            return _ELEMENT_BYTES
        bytes_touched = elements * _ELEMENT_BYTES
        # Non-unit innermost stride wastes the rest of each cache line.
        if innermost_used:
            stride = self._innermost_stride(access, ivs[-1])
            if stride > 1:
                bytes_touched *= min(
                    _CACHE_LINE / _ELEMENT_BYTES, float(stride)
                )
        # Never more than the whole array.
        return min(bytes_touched, self._array_bytes(access))


def estimate_seconds(func_or_op, machine: Machine) -> float:
    model = CostModel(machine)
    if hasattr(func_or_op, "entry_block"):
        return model.cost_function(func_or_op).seconds
    return model.cost_op(func_or_op).seconds


def estimate_gflops(func, machine: Machine) -> float:
    report = CostModel(machine).cost_function(func)
    return report.gflops
