"""A reference interpreter for the whole dialect stack.

Executes modules at any abstraction level — linalg/blas ops run as
numpy primitives, affine/scf loops run natively, and even the lowered
LLVM CFG form executes (branch-by-branch with block arguments).  Its
purpose is *semantic validation*: raising and lowering passes must
preserve observable behaviour, which the integration tests check by
running the same inputs through the IR before and after each transform.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from ..dialects import blas as blas_d
from ..dialects import linalg as linalg_d
from ..dialects import llvm as llvm_d
from ..dialects import scf as scf_d
from ..dialects import std
from ..dialects.affine import (
    AffineApplyOp,
    AffineForOp,
    AffineLoadOp,
    AffineMatmulOp,
    AffineStoreOp,
    AffineYieldOp,
)
from ..ir import (
    Block,
    FuncOp,
    IRError,
    MemRefType,
    ModuleOp,
    Operation,
    Value,
    is_float,
)
from ..ir.types import F64Type, IndexType, IntegerType


class InterpreterError(IRError):
    pass


def _np_dtype(elem_type) -> np.dtype:
    if isinstance(elem_type, F64Type):
        return np.dtype(np.float64)
    if isinstance(elem_type, IndexType) or isinstance(elem_type, IntegerType):
        return np.dtype(np.int64)
    return np.dtype(np.float32)


class _Env:
    """SSA value bindings for one function activation."""

    def __init__(self):
        self.bindings: Dict[int, Any] = {}

    def set(self, value: Value, concrete: Any) -> None:
        self.bindings[id(value)] = concrete

    def get(self, value: Value) -> Any:
        try:
            return self.bindings[id(value)]
        except KeyError:
            raise InterpreterError(f"unbound SSA value {value!r}")


class Interpreter:
    """Executes functions of a module against numpy arrays."""

    #: Library symbols the lowered llvm.call form may invoke.
    LIBRARY_CALLS = {
        "cblas_sgemm": lambda args: _sgemm(args[0], args[1], args[2]),
        "cblas_sgemv": lambda args: _sgemv(args[0], args[1], args[2]),
    }

    def __init__(
        self,
        module: ModuleOp,
        max_steps: int = 50_000_000,
        count_ops: bool = False,
    ):
        self.module = module
        self.max_steps = max_steps
        self._steps = 0
        #: dynamic op-execution histogram (enable with count_ops=True);
        #: used to cross-check the cost model's flop accounting
        self.count_ops = count_ops
        self.op_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------

    def run(self, func_name: str, *args) -> List[Any]:
        func = self.module.lookup(func_name)
        if func is None:
            raise InterpreterError(f"no function @{func_name}")
        return self.call_function(func, list(args))

    def call_function(self, func: FuncOp, args: Sequence[Any]) -> List[Any]:
        if len(args) != len(func.arguments):
            raise InterpreterError(
                f"@{func.sym_name} expects {len(func.arguments)} args, "
                f"got {len(args)}"
            )
        env = _Env()
        for formal, actual in zip(func.arguments, args):
            if isinstance(formal.type, MemRefType):
                if not isinstance(actual, np.ndarray):
                    raise InterpreterError(
                        f"@{func.sym_name}: expected ndarray for "
                        f"{formal.type}, got {type(actual).__name__}"
                    )
            env.set(formal, actual)
        region = func.regions[0]
        if len(region.blocks) == 1:
            result = self._run_block_sequential(region.entry_block, env)
        else:
            result = self._run_cfg(region, env)
        return result if result is not None else []

    # -- structured execution ----------------------------------------------

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise InterpreterError(
                f"exceeded interpreter step budget ({self.max_steps}); "
                "use the cost model for large problem sizes"
            )

    def _run_block_sequential(self, block: Block, env: _Env) -> Optional[List]:
        for op in block.operations:
            result = self.execute_op(op, env)
            if result is not None:  # func.return payload
                return result
        return None

    def _run_cfg(self, region, env: _Env) -> Optional[List]:
        block = region.entry_block
        while True:
            for op in block.operations:
                self._tick()
                if isinstance(op, llvm_d.BrOp):
                    for formal, actual in zip(
                        op.dest.arguments,
                        [env.get(v) for v in op.operands],
                    ):
                        env.set(formal, actual)
                    block = op.dest
                    break
                if isinstance(op, llvm_d.CondBrOp):
                    cond = env.get(op.condition)
                    block = op.true_dest if cond else op.false_dest
                    break
                result = self.execute_op(op, env)
                if result is not None:
                    return result
            else:
                raise InterpreterError("block fell through without terminator")

    # -- op dispatch --------------------------------------------------------

    def execute_op(self, op: Operation, env: _Env) -> Optional[List]:
        self._tick()
        if self.count_ops:
            self.op_counts[op.name] = self.op_counts.get(op.name, 0) + 1
        # Handler lookup memoized on the op instance: a loop body op is
        # dispatched once per iteration, so the dict probe on the hot
        # path collapses to an attribute read.  Keyed per instance (not
        # per class) because unregistered op names share the base
        # Operation class.
        handler = op._interp_handler
        if handler is None:
            handler = _HANDLERS.get(op.name)
            if handler is None:
                raise InterpreterError(f"interpreter: unhandled op {op.name}")
            op._interp_handler = handler
        return handler(self, op, env)

    def scalar_flops(self) -> int:
        """Scalar float operations executed (requires count_ops)."""
        return sum(
            count
            for name, count in self.op_counts.items()
            if name
            in (
                "std.addf",
                "std.subf",
                "std.mulf",
                "std.divf",
                "std.maxf",
                "std.negf",
            )
        )


# ----------------------------------------------------------------------
# Handlers
# ----------------------------------------------------------------------


def _handle_return(interp, op, env) -> List:
    return [env.get(v) for v in op.operands]


def _handle_constant(interp, op, env) -> None:
    value = op.value
    ty = op.results[0].type
    env.set(op.results[0], float(value) if is_float(ty) else int(value))


def _make_binary_handler(func):
    def handler(interp, op, env) -> None:
        lhs = env.get(op.operand(0))
        rhs = env.get(op.operand(1))
        result = func(lhs, rhs)
        ty = op.results[0].type
        if is_float(ty):
            # model single-precision rounding for f32 results
            if str(ty) == "f32":
                result = float(np.float32(result))
            env.set(op.results[0], float(result))
        else:
            env.set(op.results[0], int(result))

    return handler


def _handle_cmpi(interp, op, env) -> None:
    pred = std.CmpIOp.PREDICATES[op.predicate]
    env.set(op.results[0], bool(pred(env.get(op.operand(0)), env.get(op.operand(1)))))


def _handle_cmpf(interp, op, env) -> None:
    pred = std.CmpFOp.PREDICATES[op.predicate]
    env.set(op.results[0], bool(pred(env.get(op.operand(0)), env.get(op.operand(1)))))


def _handle_negf(interp, op, env) -> None:
    result = -env.get(op.operand(0))
    if str(op.results[0].type) == "f32":
        result = float(np.float32(result))
    env.set(op.results[0], float(result))


def _handle_alloc(interp, op, env) -> None:
    ty = op.results[0].type
    shape = ty.shape
    if any(d < 0 for d in shape):
        raise InterpreterError("cannot allocate dynamic memref")
    env.set(op.results[0], np.zeros(shape, dtype=_np_dtype(ty.element_type)))


def _handle_dealloc(interp, op, env) -> None:
    pass


def _eval_bound(map_, operand_values, minimize: bool) -> int:
    results = map_.evaluate(operand_values)
    return min(results) if minimize else max(results)


def _handle_affine_for(interp, op: AffineForOp, env) -> None:
    lb_vals = [env.get(v) for v in op.lb_operands]
    ub_vals = [env.get(v) for v in op.ub_operands]
    lb = _eval_bound(op.lower_bound_map, lb_vals, minimize=False)
    ub = _eval_bound(op.upper_bound_map, ub_vals, minimize=True)
    iv = op.induction_var
    body_ops = op.ops_in_body()
    for i in range(lb, ub, op.step):
        env.set(iv, i)
        for body_op in body_ops:
            interp.execute_op(body_op, env)


def _handle_affine_load(interp, op: AffineLoadOp, env) -> None:
    array = env.get(op.memref)
    dims = [env.get(v) for v in op.indices]
    idx = tuple(op.map.evaluate(dims))
    env.set(op.results[0], array[idx].item() if array.ndim else array.item())


def _handle_affine_store(interp, op: AffineStoreOp, env) -> None:
    array = env.get(op.memref)
    dims = [env.get(v) for v in op.indices]
    idx = tuple(op.map.evaluate(dims))
    array[idx] = env.get(op.value)


def _handle_affine_apply(interp, op: AffineApplyOp, env) -> None:
    dims = [env.get(v) for v in op.operands]
    env.set(op.results[0], op.map.evaluate(dims)[0])


def _handle_scf_for(interp, op, env) -> None:
    lb = env.get(op.lower_bound)
    ub = env.get(op.upper_bound)
    step = env.get(op.step)
    body_ops = op.ops_in_body()
    iv = op.induction_var
    for i in range(lb, ub, step):
        env.set(iv, i)
        for body_op in body_ops:
            interp.execute_op(body_op, env)


def _handle_scf_if(interp, op, env) -> None:
    cond = env.get(op.condition)
    if cond:
        for body_op in op.then_block.ops_without_terminator():
            interp.execute_op(body_op, env)
    elif len(op.regions) > 1:
        for body_op in op.else_block.ops_without_terminator():
            interp.execute_op(body_op, env)


def _handle_std_load(interp, op, env) -> None:
    array = env.get(op.memref)
    idx = tuple(env.get(v) for v in op.indices)
    env.set(op.results[0], array[idx].item())


def _handle_std_store(interp, op, env) -> None:
    array = env.get(op.memref)
    idx = tuple(env.get(v) for v in op.indices)
    array[idx] = env.get(op.value)


def _handle_llvm_load(interp, op, env) -> None:
    array = env.get(op.memref)
    env.set(op.results[0], array.reshape(-1)[env.get(op.index)].item())


def _handle_llvm_store(interp, op, env) -> None:
    array = env.get(op.memref)
    array.reshape(-1)[env.get(op.index)] = env.get(op.value)


def _handle_func_call(interp, op, env) -> None:
    callee = interp.module.lookup(op.callee)
    if callee is None:
        raise InterpreterError(f"call to unknown function @{op.callee}")
    results = interp.call_function(callee, [env.get(v) for v in op.operands])
    for res, val in zip(op.results, results):
        env.set(res, val)


def _handle_llvm_call(interp, op, env) -> None:
    handler = Interpreter.LIBRARY_CALLS.get(op.callee)
    if handler is None:
        raise InterpreterError(f"unknown library symbol @{op.callee}")
    handler([env.get(v) for v in op.operands])


# -- linear algebra ops -------------------------------------------------


def _sgemm(a, b, c, alpha=1.0, beta=1.0) -> None:
    c *= np.asarray(beta, dtype=c.dtype)
    c += np.asarray(alpha, dtype=c.dtype) * (a @ b).astype(c.dtype)


def _sgemv(a, x, y) -> None:
    y += (a @ x).astype(y.dtype)


def _handle_matmul(interp, op, env) -> None:
    a, b, c = (env.get(v) for v in op.operands)
    _sgemm(a, b, c)


def _handle_blas_sgemm(interp, op, env) -> None:
    a, b, c = (env.get(v) for v in op.operands)
    _sgemm(a, b, c, op.alpha, op.beta)


def _handle_matvec(interp, op, env) -> None:
    a, x, y = (env.get(v) for v in op.operands)
    if getattr(op, "trans", False):
        a = a.T
    _sgemv(a, x, y)


def _handle_transpose(interp, op, env) -> None:
    src = env.get(op.input)
    dst = env.get(op.output)
    dst[...] = np.transpose(src, op.permutation)


def _handle_reshape(interp, op, env) -> None:
    src = env.get(op.input)
    dst = env.get(op.output)
    dst[...] = np.ascontiguousarray(src).reshape(dst.shape)


def _handle_fill(interp, op, env) -> None:
    env.get(op.output)[...] = env.get(op.fill_value)


def _handle_copy(interp, op, env) -> None:
    env.get(op.output)[...] = env.get(op.input)


def _handle_conv2d(interp, op, env) -> None:
    src = env.get(op.input)
    kernel = env.get(op.kernel)
    out = env.get(op.output)
    _, _, kh, kw = kernel.shape
    n, f, oh, ow = out.shape
    for dy in range(kh):
        for dx in range(kw):
            # out[n,f,y,x] += sum_c in[n,c,y+dy,x+dx] * k[f,c,dy,dx]
            patch = src[:, :, dy:dy + oh, dx:dx + ow]
            out += np.einsum(
                "nchw,fc->nfhw", patch, kernel[:, :, dy, dx]
            ).astype(out.dtype)


def _handle_generic(interp, op, env) -> None:
    extents = op.iteration_domain()
    maps = op.indexing_maps
    operands = [env.get(v) for v in op.operands]
    body_ops = op.body.ops_without_terminator()
    term = op.body.terminator
    indices = [0] * len(extents)

    def loop(level: int) -> None:
        if level == len(extents):
            local = _Env()
            for arg, array, map_ in zip(op.body.arguments, operands, maps):
                idx = tuple(map_.evaluate(indices))
                local.set(arg, array[idx].item())
            for body_op in body_ops:
                interp.execute_op(body_op, local)
            for out_pos, yielded in enumerate(term.operands):
                out_map = maps[op.num_inputs + out_pos]
                idx = tuple(out_map.evaluate(indices))
                operands[op.num_inputs + out_pos][idx] = local.get(yielded)
            return
        for i in range(extents[level]):
            indices[level] = i
            loop(level + 1)

    loop(0)


def _noop(interp, op, env) -> None:
    pass


def _handle_unreachable(interp, op, env) -> None:
    raise InterpreterError(
        "executed llvm.unreachable: control flow reached a point the "
        "lowering marked as impossible (miscompiled CFG)"
    )


def _handle_cfg_terminator(interp, op, env) -> None:
    # llvm.br / llvm.cond_br are interpreted by the CFG driver; hitting
    # them through plain dispatch means a branch escaped a single-block
    # region, which is malformed IR rather than an unhandled op.
    raise InterpreterError(
        f"{op.name} outside a multi-block CFG region (malformed IR)"
    )


_HANDLERS = {
    "func.return": _handle_return,
    "func.call": _handle_func_call,
    "llvm.call": _handle_llvm_call,
    "std.constant": _handle_constant,
    "std.addf": _make_binary_handler(lambda a, b: a + b),
    "std.subf": _make_binary_handler(lambda a, b: a - b),
    "std.mulf": _make_binary_handler(lambda a, b: a * b),
    "std.divf": _make_binary_handler(lambda a, b: a / b),
    "std.maxf": _make_binary_handler(max),
    "std.negf": _handle_negf,
    "std.cmpf": _handle_cmpf,
    "std.addi": _make_binary_handler(lambda a, b: a + b),
    "std.subi": _make_binary_handler(lambda a, b: a - b),
    "std.muli": _make_binary_handler(lambda a, b: a * b),
    "std.divi": _make_binary_handler(lambda a, b: a // b),
    "std.remi": _make_binary_handler(lambda a, b: a % b),
    "std.cmpi": _handle_cmpi,
    "std.select": lambda i, op, env: env.set(
        op.results[0],
        env.get(op.operand(1)) if env.get(op.operand(0)) else env.get(op.operand(2)),
    ),
    "std.index_cast": lambda i, op, env: env.set(
        op.results[0], int(env.get(op.operand(0)))
    ),
    "std.alloc": _handle_alloc,
    "std.dealloc": _handle_dealloc,
    "std.load": _handle_std_load,
    "std.store": _handle_std_store,
    "affine.for": _handle_affine_for,
    "affine.load": _handle_affine_load,
    "affine.store": _handle_affine_store,
    "affine.apply": _handle_affine_apply,
    "affine.yield": _noop,
    "affine.matmul": _handle_matmul,
    "scf.for": _handle_scf_for,
    "scf.if": _handle_scf_if,
    "scf.yield": _noop,
    "llvm.load": _handle_llvm_load,
    "llvm.store": _handle_llvm_store,
    "llvm.br": _handle_cfg_terminator,
    "llvm.cond_br": _handle_cfg_terminator,
    "llvm.unreachable": _handle_unreachable,
    "linalg.yield": _noop,
    "linalg.matmul": _handle_matmul,
    "linalg.matvec": _handle_matvec,
    "linalg.transpose": _handle_transpose,
    "linalg.reshape": _handle_reshape,
    "linalg.conv2d_nchw": _handle_conv2d,
    "linalg.fill": _handle_fill,
    "linalg.copy": _handle_copy,
    "linalg.generic": _handle_generic,
    "blas.sgemm": _handle_blas_sgemm,
    "blas.sgemv": _handle_matvec,
    "blas.transpose": _handle_transpose,
    "blas.reshape": _handle_reshape,
    "blas.conv2d": _handle_conv2d,
}


def _handle_transform_op(interp, op, env) -> None:
    # Schedule IR scripts transformations over payload modules; it has
    # no runtime semantics of its own.
    raise InterpreterError(
        f"{op.name} is schedule IR, not payload: apply it with "
        "repro.scheduling.apply_schedule instead of executing it"
    )


_HANDLERS.update(
    {
        f"transform.{suffix}": _handle_transform_op
        for suffix in (
            "sequence",
            "yield",
            "match",
            "fuse",
            "copy_elim",
            "dead_loops",
            "canonicalize",
            "distribute",
            "tile",
            "unroll_jam",
            "vectorize",
            "raise",
        )
    }
)


def run_function(module: ModuleOp, func_name: str, *args) -> List[Any]:
    """One-shot convenience wrapper."""
    return Interpreter(module).run(func_name, *args)
