"""Execution substrate: a numpy-backed interpreter (for semantics), a
compiled NumPy execution engine (for measured performance), and an
analytical machine/cost model (for the paper's performance studies).
"""

from .interpreter import InterpreterError, Interpreter, run_function  # noqa: F401
from .engine import (  # noqa: F401
    CacheStats,
    DiskKernelCache,
    EngineError,
    ExecutionEngine,
    KERNEL_CACHE,
    KernelCache,
    OPT_MODES,
    OptStats,
    run_function_compiled,
    run_optimizer,
)
from .machines import AMD_2920X, INTEL_I9_9900K, Machine  # noqa: F401
from .cost_model import (  # noqa: F401
    CostModel,
    CostReport,
    estimate_gflops,
    estimate_seconds,
)
