"""Compiled NumPy execution engine.

Where the interpreter walks the IR tree op by op, this subsystem
*translates* a module into NumPy-vectorized Python source, compiles it
once with :func:`compile`, and caches the compiled kernel in a
content-addressed cache keyed by the module's printed form plus the
pipeline name.  Repeated benchmark invocations and fuzz replays of the
same module skip codegen entirely.

Entry point is :class:`ExecutionEngine`, which exposes the same
``run(func_name, *args)`` contract as the interpreter.
"""

from .cache import (  # noqa: F401
    CacheStats,
    KernelCache,
    KERNEL_CACHE,
    fingerprint_module,
)
from .codegen import (  # noqa: F401
    EMITTERS,
    EngineError,
    VECTORIZE_MODES,
    CompiledModule,
    compile_module,
    generate_module_source,
    load_compiled_source,
)
from .disk_cache import DiskKernelCache, default_disk_cache  # noqa: F401
from .engine import ExecutionEngine, run_function_compiled  # noqa: F401
from .optimizer import OPT_MODES, OptStats, run_optimizer  # noqa: F401
from .vectorize import VectorizeStats  # noqa: F401
