"""The :class:`ExecutionEngine`: compile once, run many times.

Drop-in replacement for the interpreter on benchmark hot paths — same
``run(func_name, *args)`` contract, same in-place memref semantics —
but instead of walking the IR per op it compiles the whole module to
NumPy-backed Python via :mod:`.codegen` and memoizes the compiled
kernel in a content-addressed :class:`~.cache.KernelCache`.
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from ...ir import ModuleOp, MemRefType
from .cache import KERNEL_CACHE, KernelCache
from .codegen import (
    CODEGEN_VERSION,
    VECTORIZE_MODES,
    CompiledModule,
    compile_module,
)
from .runtime import EngineError


class ExecutionEngine:
    """Compiled execution of a lowered module.

    Construction triggers codegen (or a cache hit); ``run`` is then a
    plain Python call into the compiled kernel.  ``pipeline`` is folded
    into the cache key so the same kernel lowered by two different
    pipelines never collides; the ``vectorize`` mode (see
    :data:`~.codegen.VECTORIZE_MODES`) and
    :data:`~.codegen.CODEGEN_VERSION` are folded in too, so the
    ``vectorize-diff`` oracle and the mode-comparison benchmarks never
    share kernels across modes and a code-generator upgrade never
    re-serves kernels from a stale persistent cache.

    ``opt_mode`` (see :data:`~.optimizer.OPT_MODES`) selects the
    mid-level loop-optimizer pipeline run before codegen.  The caller's
    module is never mutated: optimization happens on a clone, inside
    the cache-miss builder, and the mode is folded into the cache tag.
    """

    def __init__(
        self,
        module: ModuleOp,
        pipeline: str = "",
        cache: Optional[KernelCache] = None,
        vectorize: str = "nest",
        opt_mode: str = "none",
        tile_size: Optional[int] = None,
        schedule: Optional[ModuleOp] = None,
        pass_cache=None,
    ):
        from .optimizer import DEFAULT_TILE_SIZE, OPT_MODES, run_optimizer

        if tile_size is None:
            tile_size = DEFAULT_TILE_SIZE
        if schedule is not None:
            from ...scheduling.interpreter import (
                apply_schedule,
                schedule_vectorize,
            )

            requested = schedule_vectorize(schedule)
            if requested is not None:
                vectorize = requested
        if vectorize not in VECTORIZE_MODES:
            raise EngineError(
                f"engine: unknown vectorize mode {vectorize!r}; "
                f"known: {VECTORIZE_MODES}"
            )
        if opt_mode not in OPT_MODES:
            raise EngineError(
                f"engine: unknown opt mode {opt_mode!r}; known: {OPT_MODES}"
            )
        self.module = module
        self.pipeline = pipeline
        self.vectorize = vectorize
        self.opt_mode = opt_mode
        self.tile_size = tile_size
        self.schedule = schedule
        self.cache = cache if cache is not None else KERNEL_CACHE
        # The codegen version, vectorize mode, and opt mode are folded
        # in unconditionally so persistent disk caches written by an
        # older code generator (or another mode) never serve stale
        # kernels.  Non-default tile sizes and explicit schedules fold
        # in conditionally so pre-existing tags stay valid.
        cache_tag = (
            f"{pipeline}#cg={CODEGEN_VERSION}#vectorize={vectorize}"
            f"#opt={opt_mode}"
        )
        if tile_size != DEFAULT_TILE_SIZE:
            cache_tag += f"#tile={tile_size}"
        if schedule is not None:
            from .cache import fingerprint_module

            cache_tag += f"#sched={fingerprint_module(schedule)[:16]}"

        def _build(key: str) -> CompiledModule:
            # ``pass_cache`` is the function-granular compilation
            # firewall: on a kernel-cache miss, any optimizer/schedule
            # stage already cached for an unchanged function is spliced
            # in instead of re-running (keys are content-addressed, so
            # this never changes the produced IR).
            target = module
            opt_stats = None
            schedule_stats = None
            if schedule is not None:
                target = module.clone()
                schedule_stats = apply_schedule(
                    schedule, target, pass_cache=pass_cache
                ).snapshot()
            elif opt_mode != "none":
                target = module.clone()
                opt_stats = run_optimizer(
                    target,
                    opt_mode,
                    tile_size=tile_size,
                    pass_cache=pass_cache,
                ).snapshot()
            compiled = compile_module(target, key, vectorize=vectorize)
            compiled.opt_stats = opt_stats
            compiled.schedule_stats = schedule_stats
            return compiled

        self.compiled: CompiledModule = self.cache.get_or_compile(
            module, cache_tag, _build
        )

    @property
    def source(self) -> str:
        """Generated Python source of the compiled kernel."""
        return self.compiled.source

    @property
    def vectorize_stats(self) -> Optional[dict]:
        """Codegen-time vectorizer decisions for this kernel, or
        ``None`` when the kernel was re-hydrated from a disk artifact
        that predates stats."""
        return getattr(self.compiled, "vectorize_stats", None)

    @property
    def opt_stats(self) -> Optional[dict]:
        """Mid-level optimizer decisions for this kernel, or ``None``
        when the engine compiled with ``opt_mode="none"`` (or the
        kernel was re-hydrated from a pre-optimizer disk artifact)."""
        return getattr(self.compiled, "opt_stats", None)

    @property
    def schedule_stats(self) -> Optional[dict]:
        """What the applied transform-dialect schedule did, or ``None``
        when the engine compiled without a schedule (or hit a cached
        kernel artifact that predates schedules)."""
        return getattr(self.compiled, "schedule_stats", None)

    def stats(self) -> dict:
        return self.cache.stats.snapshot()

    def run(self, func_name: str, *args) -> List[Any]:
        func = self.module.lookup(func_name)
        if func is None:
            raise EngineError(f"engine: no function @{func_name}")
        if len(args) != len(func.arguments):
            raise EngineError(
                f"engine: @{func_name} expects {len(func.arguments)} args, "
                f"got {len(args)}"
            )
        for formal, actual in zip(func.arguments, args):
            if isinstance(formal.type, MemRefType) and not isinstance(
                actual, np.ndarray
            ):
                raise EngineError(
                    f"engine: @{func_name}: expected ndarray for "
                    f"{formal.type}, got {type(actual).__name__}"
                )
        return self.compiled.functions[func_name](*args)


def run_function_compiled(
    module: ModuleOp, func_name: str, *args, pipeline: str = ""
) -> List[Any]:
    """One-shot convenience wrapper mirroring ``run_function``."""
    return ExecutionEngine(module, pipeline=pipeline).run(func_name, *args)
