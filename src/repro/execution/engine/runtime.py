"""Runtime support library referenced by generated kernel code.

Generated source never imports anything itself; the engine executes it
with ``_rt`` bound to this module (plus ``_np``/``_f32``/``EngineError``
locals), so these helpers are the entire surface area available to
compiled kernels.  Numerical semantics deliberately mirror the
interpreter's handlers: ``blas.*``/``linalg.*`` ops must produce the
same values whether a module is interpreted or compiled.
"""

from __future__ import annotations

import numpy as np

from ...ir import IRError


class EngineError(IRError):
    """Raised on codegen gaps (no emitter) and runtime faults."""


def f32(value: float) -> float:
    """Single-precision rounding of a scalar intermediate (matches the
    interpreter's handling of ``f32``-typed arithmetic)."""
    return float(np.float32(value))


def sgemm(a, b, c, alpha: float = 1.0, beta: float = 1.0) -> None:
    c *= np.asarray(beta, dtype=c.dtype)
    c += np.asarray(alpha, dtype=c.dtype) * (a @ b).astype(c.dtype)


def sgemv(a, x, y, trans: bool = False) -> None:
    if trans:
        a = a.T
    y += (a @ x).astype(y.dtype)


def transpose(src, dst, permutation) -> None:
    dst[...] = np.transpose(src, permutation)


def reshape(src, dst) -> None:
    dst[...] = np.ascontiguousarray(src).reshape(dst.shape)


def conv2d(src, kernel, out) -> None:
    _, _, kh, kw = kernel.shape
    _, _, oh, ow = out.shape
    for dy in range(kh):
        for dx in range(kw):
            patch = src[:, :, dy:dy + oh, dx:dx + ow]
            out += np.einsum(
                "nchw,fc->nfhw", patch, kernel[:, :, dy, dx]
            ).astype(out.dtype)


def contract(spec, *operands):
    """Tensor contraction for whole-nest vectorized reduction kernels.

    ``spec`` is an einsum subscript string produced by the vectorizer's
    contraction matcher (one label per band axis, output labels in the
    store's subscript order).  The common two-operand case with pure
    contracted axes and no batch axes routes through ``np.tensordot``,
    which lands on the BLAS ``dot`` path; everything else falls back to
    ``np.einsum(..., optimize=True)``.  Input dtype is preserved (f32
    stays f32), so results match the scalar loop up to reassociation
    tolerance.
    """
    ins, out = spec.split("->")
    in_specs = ins.split(",")
    if len(operands) == 2:
        a_spec, b_spec = in_specs
        a, b = operands
        shared = set(a_spec) & set(b_spec)
        summed = [c for c in a_spec if c in shared and c not in out]
        batch = [c for c in shared if c in out]
        # tensordot only sums labels shared by both inputs; a contracted
        # label present in just one input must go through einsum.
        one_sided = set(a_spec) ^ set(b_spec)
        if summed and not batch and one_sided <= set(out):
            result = np.tensordot(
                a,
                b,
                axes=(
                    [a_spec.index(c) for c in summed],
                    [b_spec.index(c) for c in summed],
                ),
            )
            free = [c for c in a_spec if c not in summed] + [
                c for c in b_spec if c not in summed
            ]
            perm = [free.index(c) for c in out]
            if perm != list(range(len(perm))):
                result = result.transpose(perm)
            return result
    return np.einsum(spec, *operands, optimize=True)


#: Library symbols the lowered ``llvm.call`` form may invoke, mirroring
#: ``Interpreter.LIBRARY_CALLS``.
LIBRARY_CALLS = {
    "cblas_sgemm": lambda args: sgemm(args[0], args[1], args[2]),
    "cblas_sgemv": lambda args: sgemv(args[0], args[1], args[2]),
}


def library_call(symbol: str, args) -> None:
    handler = LIBRARY_CALLS.get(symbol)
    if handler is None:
        raise EngineError(f"engine: unknown library symbol @{symbol}")
    handler(args)
