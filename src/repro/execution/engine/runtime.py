"""Runtime support library referenced by generated kernel code.

Generated source never imports anything itself; the engine executes it
with ``_rt`` bound to this module (plus ``_np``/``_f32``/``EngineError``
locals), so these helpers are the entire surface area available to
compiled kernels.  Numerical semantics deliberately mirror the
interpreter's handlers: ``blas.*``/``linalg.*`` ops must produce the
same values whether a module is interpreted or compiled.
"""

from __future__ import annotations

import numpy as np

from ...ir import IRError


class EngineError(IRError):
    """Raised on codegen gaps (no emitter) and runtime faults."""


def f32(value: float) -> float:
    """Single-precision rounding of a scalar intermediate (matches the
    interpreter's handling of ``f32``-typed arithmetic)."""
    return float(np.float32(value))


def sgemm(a, b, c, alpha: float = 1.0, beta: float = 1.0) -> None:
    c *= np.asarray(beta, dtype=c.dtype)
    c += np.asarray(alpha, dtype=c.dtype) * (a @ b).astype(c.dtype)


def sgemv(a, x, y, trans: bool = False) -> None:
    if trans:
        a = a.T
    y += (a @ x).astype(y.dtype)


def transpose(src, dst, permutation) -> None:
    dst[...] = np.transpose(src, permutation)


def reshape(src, dst) -> None:
    dst[...] = np.ascontiguousarray(src).reshape(dst.shape)


def conv2d(src, kernel, out) -> None:
    _, _, kh, kw = kernel.shape
    _, _, oh, ow = out.shape
    for dy in range(kh):
        for dx in range(kw):
            patch = src[:, :, dy:dy + oh, dx:dx + ow]
            out += np.einsum(
                "nchw,fc->nfhw", patch, kernel[:, :, dy, dx]
            ).astype(out.dtype)


#: Library symbols the lowered ``llvm.call`` form may invoke, mirroring
#: ``Interpreter.LIBRARY_CALLS``.
LIBRARY_CALLS = {
    "cblas_sgemm": lambda args: sgemm(args[0], args[1], args[2]),
    "cblas_sgemv": lambda args: sgemv(args[0], args[1], args[2]),
}


def library_call(symbol: str, args) -> None:
    handler = LIBRARY_CALLS.get(symbol)
    if handler is None:
        raise EngineError(f"engine: unknown library symbol @{symbol}")
    handler(args)
