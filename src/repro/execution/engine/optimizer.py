"""Mid-level loop-optimizer pipeline for the compiled engine.

Runs on lowered (affine-level) modules *before* codegen's whole-nest
vectorizer, mirroring Parakeet's ``Fusion`` / ``CopyElimination`` /
``DCE`` / ``TileAdverbs`` stack:

1. **fuse** — producer/consumer sibling nests with identical iteration
   spaces fuse into one body (``greedy_fuse(require_flow=True)``), so
   array temporaries become forwardable same-block stores.
2. **copy-elim** — store-to-load forwarding, dead-store elimination,
   and write-only temporary removal (``transforms.copy_elimination``).
3. **dead-loops** — a loop whose induction variable is unused and
   whose body reads no buffer it writes is idempotent; with a known
   positive trip count it runs exactly once, so the body is spliced
   into the parent and the loop dropped.
4. **canonicalize** — constant folding + DCE + empty-loop removal to
   sweep the scalar debris the previous stages expose.
5. **distribute** — partial loop distribution carves maximal perfect
   sub-bands out of imperfect nests, feeding the vectorizer's
   whole-band collapse (``transforms.distribution``).
6. **tile** — cache-blocking tiling for nests the vectorizer would
   still reject, with a trip-count heuristic choosing tile sizes.
   Tiled loops are tagged ``_opt_no_vectorize`` so codegen skips the
   (provably futile) collapse attempt instead of inflating
   ``bail_reasons``.

``opt_mode`` selects the pipeline: ``"none"`` (no-op), ``"fuse"``
(stage 1 only), ``"full"`` (all stages).

Soundness gate: a function is only optimized when every op it contains
comes from a whitelist whose memory effects the legality analyses can
enumerate (affine loops/accesses + pure std arithmetic + local
alloc/dealloc) and every access map is linear.  Anything else — linalg,
blas, scf, llvm, calls — is left untouched and counted in
``OptStats.functions_skipped``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...analysis.accesses import access_function, collect_accesses
from ...dialects.affine import (
    AffineForOp,
    AffineLoadOp,
    AffineStoreOp,
    outermost_loops,
    perfect_nest,
)
from ...ir import Operation
from ...transforms.canonicalize import canonicalize
from ...transforms.copy_elimination import copy_eliminate
from ...transforms.distribution import distribute_loops
from ...transforms.fusion import greedy_fuse
from ...transforms.tiling import TilingError, tile_perfect_nest
from .vectorize import band_collapses

OPT_MODES = ("none", "fuse", "full")

#: Default cache-blocking tile edge; dims with fewer than twice this
#: many iterations stay untiled.
DEFAULT_TILE_SIZE = 32

#: Ops a function may contain for the optimizer to touch it at all.
_OPT_SAFE_OPS = frozenset(
    {
        "affine.for",
        "affine.load",
        "affine.store",
        "affine.yield",
        "affine.apply",
        "std.constant",
        "std.addf",
        "std.subf",
        "std.mulf",
        "std.divf",
        "std.maxf",
        "std.negf",
        "std.cmpf",
        "std.select",
        "std.addi",
        "std.subi",
        "std.muli",
        "std.index_cast",
        "std.alloc",
        "std.dealloc",
        "func.return",
    }
)


@dataclass
class OptStats:
    """Per-pipeline counters, mirroring ``VectorizeStats``.

    ``stages`` records, in execution order, the per-stage delta of
    every counter that stage changed — the observability contract the
    ISSUE calls a "per-stage snapshot".
    """

    mode: str = "none"
    functions_seen: int = 0
    functions_skipped: int = 0
    loops_fused: int = 0
    stores_forwarded: int = 0
    dead_stores_removed: int = 0
    dead_allocs_removed: int = 0
    loops_eliminated: int = 0
    simplifications: int = 0
    loops_distributed: int = 0
    nests_tiled: int = 0
    loops_unroll_jammed: int = 0
    #: Why fusion rejected candidate pairs (reason -> count): the
    #: taxonomy that makes a schedule's fuse decision explainable.
    fusion_bails: Dict[str, int] = field(default_factory=dict)
    stages: List[Dict[str, int]] = field(default_factory=list)

    _COUNTERS = (
        "loops_fused",
        "stores_forwarded",
        "dead_stores_removed",
        "dead_allocs_removed",
        "loops_eliminated",
        "simplifications",
        "loops_distributed",
        "nests_tiled",
        "loops_unroll_jammed",
    )

    def _counter_values(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self._COUNTERS}

    def snapshot(self) -> dict:
        """Plain-dict form, safe to serialize into cache artifacts."""
        snap = {
            "mode": self.mode,
            "functions_seen": self.functions_seen,
            "functions_skipped": self.functions_skipped,
        }
        snap.update(self._counter_values())
        snap["fusion_bails"] = dict(self.fusion_bails)
        snap["stages"] = [dict(stage) for stage in self.stages]
        return snap


def _function_is_optimizable(func: Operation) -> bool:
    for op in func.walk():
        if op is func:
            continue
        if op.name not in _OPT_SAFE_OPS:
            return False
        if isinstance(op, (AffineLoadOp, AffineStoreOp)):
            if access_function(op) is None:
                return False
    return True


# ----------------------------------------------------------------------
# Redundant (idempotent) loop elimination
# ----------------------------------------------------------------------


def _eliminate_redundant_loops(func: Operation, stats: OptStats) -> None:
    """Run idempotent loops exactly once.

    A loop whose induction variable is never used and whose body reads
    no buffer it also writes performs byte-identical side effects on
    every iteration.  With a known positive trip count the loop is
    equivalent to a single execution of its body, so the body is
    spliced into the parent block and the loop erased.  Zero-trip
    loops are left for canonicalize's empty-loop pattern.
    """
    changed = True
    while changed:
        changed = False
        for op in list(func.walk()):
            if not isinstance(op, AffineForOp) or op.parent_block is None:
                continue
            trip = op.constant_trip_count()
            if trip is None or trip < 1:
                continue
            iv = op.induction_var
            if any(
                operand is iv
                for nested in op.walk()
                for operand in nested.operands
            ):
                continue
            reads, writes = set(), set()
            for nested in op.walk():
                if isinstance(nested, AffineLoadOp):
                    reads.add(id(nested.memref))
                elif isinstance(nested, AffineStoreOp):
                    writes.add(id(nested.memref))
            if reads & writes:
                continue
            block = op.parent_block
            position = block.operations.index(op)
            for body_op in op.ops_in_body():
                op.body.remove(body_op)
                block.insert(position, body_op)
                position += 1
            op.erase()
            stats.loops_eliminated += 1
            changed = True
            break


# ----------------------------------------------------------------------
# Tiling heuristic
# ----------------------------------------------------------------------


def _tiling_is_legal(root: AffineForOp, band: List[AffineForOp]) -> bool:
    """Blocked execution is safe (and bit-exact) when every conflicting
    access pair touches identical elements per iteration (all
    dependences are distance 0, so the band is fully permutable) and
    any read/write pair leaves at most one band IV free — the blocked
    schedule preserves the relative order of iterations that differ in
    a single unused IV, keeping f32 reduction order intact."""
    band_ivs = {id(loop.induction_var) for loop in band}
    accesses = collect_accesses(root)
    for i, a in enumerate(accesses):
        for b in accesses[i + 1 :]:
            if a.memref is not b.memref or not (a.is_write or b.is_write):
                continue
            if not a.same_element(b):
                return False
            if not (a.is_write and b.is_write):
                for acc in (a, b):
                    used = {
                        id(iv)
                        for sub in acc.subscripts
                        for iv in sub.coeffs
                        if id(iv) in band_ivs
                    }
                    if len(band_ivs) - len(used) > 1:
                        return False
    return True


def _tile_sizes(band: List[AffineForOp], tile_size: int) -> Optional[List[int]]:
    sizes = []
    for loop in band:
        trip = loop.constant_trip_count()
        if trip is None:
            return None
        sizes.append(tile_size if trip >= 2 * tile_size else 1)
    if all(size == 1 for size in sizes):
        return None
    return sizes


def _tile_scalar_nests(func: Operation, tile_size: int, stats: OptStats) -> None:
    for root in list(outermost_loops(func)):
        if root.parent_block is None:
            continue
        band = perfect_nest(root)
        if len(band) < 2:
            continue
        if any(
            not loop.has_constant_bounds() or loop.step != 1 for loop in band
        ):
            continue
        # The vectorizer gets first refusal: if any suffix of the band
        # collapses (including the partial-collapse retry), leave it.
        if any(band_collapses(band[i:]) for i in range(len(band))):
            continue
        if not _tiling_is_legal(root, band):
            continue
        sizes = _tile_sizes(band, tile_size)
        if sizes is None:
            continue
        try:
            new_loops = tile_perfect_nest(root, sizes)
        except TilingError:
            continue
        for loop in new_loops:
            loop._opt_no_vectorize = True
        stats.nests_tiled += 1


# ----------------------------------------------------------------------
# Pipeline driver
# ----------------------------------------------------------------------


def _stage_runner(fn):
    """Adapt a ``fn(func, scratch_stats)`` stage body into a pass-cache
    runner returning the JSON-safe counter-delta dict."""

    def runner(func):
        scratch = OptStats()
        fn(func, scratch)
        meta = {
            key: value
            for key, value in scratch._counter_values().items()
            if value
        }
        if scratch.fusion_bails:
            meta["fusion_bails"] = dict(scratch.fusion_bails)
        return meta

    return runner


def apply_stage_meta(stats: OptStats, meta: Dict) -> None:
    """Fold one function's stage-counter deltas into ``stats`` — the
    replay path that keeps cached runs observably identical."""
    for key, value in meta.items():
        if key == "fusion_bails":
            for reason, count in value.items():
                stats.fusion_bails[reason] = (
                    stats.fusion_bails.get(reason, 0) + count
                )
        else:
            setattr(stats, key, getattr(stats, key) + value)


def run_function_stage(
    pass_cache, func, stage_name, config, fn, stats, fp=None
):
    """Run (or replay from cache) one optimizer stage on one function.

    Returns ``(func, fp)`` — the possibly-respliced function op plus
    its post-stage fingerprint (``None`` when unknown); callers must
    thread both back into their per-function lists so consecutive
    cache hits fingerprint each function once, not once per stage.
    """
    from ...ir.pass_cache import cached_stage

    func, meta, fp = cached_stage(
        pass_cache, func, stage_name, config, _stage_runner(fn), fp=fp
    )
    apply_stage_meta(stats, meta)
    return func, fp


def run_optimizer(
    module: Operation,
    mode: str = "full",
    tile_size: int = DEFAULT_TILE_SIZE,
    pass_cache=None,
) -> OptStats:
    """Run the optimizer pipeline in-place on ``module``.

    Returns the populated :class:`OptStats`.  ``mode="none"`` returns
    immediately without touching the IR.

    ``pass_cache`` (a :class:`~repro.ir.pass_cache.PassResultCache`)
    memoizes every stage per function: a warm run splices cached
    post-stage IR and replays the recorded counter deltas instead of
    re-running the transforms.  The ``tile`` stage is the exception —
    it annotates loops with the non-printed ``_opt_no_vectorize`` tag,
    which a text splice cannot reproduce — so it always executes.
    """
    if mode not in OPT_MODES:
        raise ValueError(
            f"unknown opt mode {mode!r}; expected one of {OPT_MODES}"
        )
    stats = OptStats(mode=mode)
    if mode == "none":
        return stats

    funcs: List[Operation] = []
    for func in module.functions:
        stats.functions_seen += 1
        if _function_is_optimizable(func):
            funcs.append(func)
        else:
            stats.functions_skipped += 1

    def _fuse(func, scratch) -> None:
        scratch.loops_fused += greedy_fuse(
            func, require_flow=True, bails=scratch.fusion_bails
        )

    def _copy_elim(func, scratch) -> None:
        result = copy_eliminate(func)
        scratch.stores_forwarded += result.stores_forwarded
        scratch.dead_stores_removed += result.dead_stores_removed
        scratch.dead_allocs_removed += result.dead_allocs_removed

    def _dead_loops(func, scratch) -> None:
        _eliminate_redundant_loops(func, scratch)

    def _canonicalize(func, scratch) -> None:
        scratch.simplifications += canonicalize(func)

    def _distribute(func, scratch) -> None:
        scratch.loops_distributed += distribute_loops(func)

    def _tile(func, scratch) -> None:
        _tile_scalar_nests(func, tile_size, scratch)

    # (stage name, body, cache config; None config = never cached).
    stages = [("fuse", _fuse, "flow=True")]
    if mode == "full":
        stages += [
            ("copy-elim", _copy_elim, ""),
            ("dead-loops", _dead_loops, ""),
            ("canonicalize", _canonicalize, ""),
            ("distribute", _distribute, ""),
            ("tile", _tile, None),
        ]

    fps: List[Optional[str]] = [None] * len(funcs)
    for name, fn, config in stages:
        before = stats._counter_values()
        cache = pass_cache if config is not None else None
        for index, func in enumerate(funcs):
            funcs[index], fps[index] = run_function_stage(
                cache, func, f"opt.{name}", config or "", fn, stats,
                fp=fps[index],
            )
        delta = {
            key: value - before[key]
            for key, value in stats._counter_values().items()
            if value != before[key]
        }
        stats.stages.append({"stage": name, **delta})
    return stats
