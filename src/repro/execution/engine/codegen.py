"""Translate a module into compiled NumPy-backed Python source.

Every function in the module becomes one generated ``def``:

* structured bodies (``affine.for``/``scf.for``/``scf.if``) become
  Python loops, with innermost ``affine.for`` bodies handed to the
  vectorizer (see :mod:`.vectorize`) so contiguous access patterns run
  as NumPy slice arithmetic instead of per-element dispatch;
* ``blas.*`` / ``linalg.*`` / ``affine.matmul`` ops dispatch straight
  to the NumPy/BLAS helpers in :mod:`.runtime`;
* lowered multi-block CFG regions (``llvm.br``/``llvm.cond_br``) become
  a ``while``-driven block dispatcher with tuple-assignments standing
  in for block arguments.

The per-op logic lives in the :data:`EMITTERS` table, the compiled
analogue of the interpreter's ``_HANDLERS`` — the coverage audit in
``tests/execution/test_engine_coverage.py`` keeps the two in lockstep.
An op without an emitter fails codegen with a one-line
:class:`EngineError` naming the op.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ...dialects.affine import AffineForOp
from ...ir import FuncOp, ModuleOp, Operation, is_float
from ...ir.affine_expr import AffineExpr, AffineExprKind
from ...ir.types import F64Type, IndexType, IntegerType, MemRefType
from . import runtime
from .runtime import EngineError

#: Hard bound on block transitions when executing a lowered CFG region;
#: compiled into the generated dispatcher as an infinite-loop backstop.
MAX_CFG_STEPS = 10_000_000

#: Vectorization modes: ``nest`` collapses whole perfect loop bands,
#: ``innermost`` restores the PR-2 innermost-only behavior (used by the
#: benchmarks as the comparison baseline), ``none`` disables the
#: vectorizer entirely (scalar loops; the ``vectorize-diff`` fuzz
#: oracle's reference).
VECTORIZE_MODES = ("nest", "innermost", "none")

#: Codegen schema version, folded into every kernel cache key.  Bump on
#: any change to generated-source semantics (vectorizer strategy,
#: emitter output, runtime helper contracts) so persistent disk caches
#: written by an older code generator are never re-served.
CODEGEN_VERSION = 4


def _np_dtype_literal(elem_type) -> str:
    if isinstance(elem_type, F64Type):
        return "float64"
    if isinstance(elem_type, (IndexType, IntegerType)):
        return "int64"
    return "float32"


def affine_expr_src(expr: AffineExpr, dim_names: Sequence[str]) -> str:
    """Render an affine expression as Python source over ``dim_names``."""
    if expr.is_constant():
        return str(expr.evaluate((), ()))
    kind = expr.kind
    if kind is AffineExprKind.DIM:
        return dim_names[expr.position]
    if kind is AffineExprKind.SYMBOL:
        raise EngineError("engine: symbolic affine operands are unsupported")
    lhs = affine_expr_src(expr.lhs, dim_names)
    rhs = affine_expr_src(expr.rhs, dim_names)
    if kind is AffineExprKind.ADD:
        return f"({lhs} + {rhs})"
    if kind is AffineExprKind.MUL:
        return f"({lhs} * {rhs})"
    if kind is AffineExprKind.MOD:
        return f"({lhs} % {rhs})"
    if kind is AffineExprKind.FLOORDIV:
        return f"({lhs} // {rhs})"
    return f"(-((-{lhs}) // {rhs}))"  # ceildiv


class _FuncContext:
    """Per-function codegen state: lines, indentation, value names."""

    def __init__(self, codegen: "CodeGenerator", func: FuncOp):
        self.codegen = codegen
        self.func = func
        self.lines: List[str] = []
        self.indent = 1
        self._names: Dict[int, str] = {}
        self._counter = 0
        #: depth of scalar-emitted affine.for loops around the current
        #: op — 0 means the next affine.for starts a fresh nest
        self.nest_depth = 0
        #: did any sub-band of the current nest root collapse?
        self.nest_collapsed_any = False
        #: induction variables of enclosing scalar loops (innermost
        #: last), used to split loop-invariant subscript arithmetic
        #: into hoistable statements
        self.loop_ivs: List = []

    # -- value naming ----------------------------------------------------

    def define(self, value) -> str:
        name = f"v{self._counter}"
        self._counter += 1
        self._names[id(value)] = name
        return name

    def name(self, value) -> str:
        try:
            return self._names[id(value)]
        except KeyError:
            raise EngineError(f"engine: unbound SSA value {value!r}")

    def fresh(self, prefix: str = "_t") -> str:
        name = f"{prefix}{self._counter}"
        self._counter += 1
        return name

    # -- emission --------------------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def emit_block(self, ops: Sequence[Operation]) -> None:
        """Emit a suite of ops, inserting ``pass`` for empty suites."""
        before = len(self.lines)
        for op in ops:
            self.codegen.emit_op(self, op)
        if len(self.lines) == before:
            self.emit("pass")

    # -- affine helpers --------------------------------------------------

    def operand_names(self, values) -> List[str]:
        return [self.name(v) for v in values]

    def bound_src(self, map_, operands, minimize: bool) -> str:
        names = self.operand_names(operands)
        exprs = [affine_expr_src(e, names) for e in map_.results]
        if len(exprs) == 1:
            return exprs[0]
        reducer = "min" if minimize else "max"
        return f"{reducer}({', '.join(exprs)})"


# ----------------------------------------------------------------------
# Scalar emitters
# ----------------------------------------------------------------------


def _emit_constant(ctx: _FuncContext, op) -> None:
    ty = op.results[0].type
    value = float(op.value) if is_float(ty) else int(op.value)
    ctx.emit(f"{ctx.define(op.results[0])} = {value!r}")


def _float_binary(expr: str):
    def emit(ctx: _FuncContext, op) -> None:
        a, b = ctx.name(op.operand(0)), ctx.name(op.operand(1))
        result = ctx.define(op.results[0])
        body = expr.format(a=a, b=b)
        if str(op.results[0].type) == "f32":
            ctx.emit(f"{result} = _f32({body})")
        else:
            ctx.emit(f"{result} = {body}")

    return emit


def _int_binary(expr: str):
    def emit(ctx: _FuncContext, op) -> None:
        a, b = ctx.name(op.operand(0)), ctx.name(op.operand(1))
        ctx.emit(f"{ctx.define(op.results[0])} = {expr.format(a=a, b=b)}")

    return emit


def _emit_cmpi(ctx: _FuncContext, op) -> None:
    python_op = {
        "eq": "==", "ne": "!=", "slt": "<", "sle": "<=", "sgt": ">", "sge": ">=",
    }[op.predicate]
    a, b = ctx.name(op.operand(0)), ctx.name(op.operand(1))
    ctx.emit(f"{ctx.define(op.results[0])} = ({a} {python_op} {b})")


def _emit_cmpf(ctx: _FuncContext, op) -> None:
    python_op = {
        "oeq": "==", "one": "!=", "olt": "<", "ole": "<=", "ogt": ">", "oge": ">=",
    }[op.predicate]
    a, b = ctx.name(op.operand(0)), ctx.name(op.operand(1))
    ctx.emit(f"{ctx.define(op.results[0])} = ({a} {python_op} {b})")


def _emit_negf(ctx: _FuncContext, op) -> None:
    # Negation is exact in binary floating point: no f32 re-rounding.
    ctx.emit(f"{ctx.define(op.results[0])} = (-{ctx.name(op.operand(0))})")


def _emit_select(ctx: _FuncContext, op) -> None:
    c, t, f = (ctx.name(op.operand(i)) for i in range(3))
    ctx.emit(f"{ctx.define(op.results[0])} = ({t} if {c} else {f})")


def _emit_index_cast(ctx: _FuncContext, op) -> None:
    ctx.emit(f"{ctx.define(op.results[0])} = int({ctx.name(op.operand(0))})")


def _emit_alloc(ctx: _FuncContext, op) -> None:
    ty = op.results[0].type
    if any(d < 0 for d in ty.shape):
        raise EngineError("engine: cannot allocate dynamic memref")
    shape = tuple(ty.shape)
    dtype = _np_dtype_literal(ty.element_type)
    ctx.emit(f"{ctx.define(op.results[0])} = _np.zeros({shape!r}, dtype={dtype!r})")


def _emit_noop(ctx: _FuncContext, op) -> None:
    pass


def _emit_std_load(ctx: _FuncContext, op) -> None:
    mem = ctx.name(op.memref)
    idx = ", ".join(ctx.operand_names(op.indices))
    ctx.emit(f"{ctx.define(op.results[0])} = {mem}[{idx}].item()")


def _emit_std_store(ctx: _FuncContext, op) -> None:
    mem = ctx.name(op.memref)
    idx = ", ".join(ctx.operand_names(op.indices))
    ctx.emit(f"{mem}[{idx}] = {ctx.name(op.value)}")


def _split_subscript_src(ctx: _FuncContext, expr, indices, names) -> str:
    """Subscript expression source with the part invariant in the
    innermost enclosing loop split into its own statement, so the
    textual LICM pass (:mod:`.licm`) can hoist it."""
    plain = affine_expr_src(expr, names)
    if not ctx.loop_ivs:
        return plain
    linear = expr.as_linear()
    if linear is None or linear.symbol_coeffs:
        return plain
    inner = ctx.loop_ivs[-1]
    var_terms, inv_terms = [], []
    for pos in sorted(linear.dim_coeffs):
        coeff = linear.dim_coeffs[pos]
        if coeff == 0:
            continue
        term = names[pos] if coeff == 1 else f"({coeff} * {names[pos]})"
        if indices[pos] is inner:
            var_terms.append(term)
        else:
            inv_terms.append(term)
    if linear.constant:
        inv_terms.append(str(linear.constant))
    if not inv_terms or (len(inv_terms) == 1 and not var_terms):
        return plain
    inv_src = inv_terms[0] if len(inv_terms) == 1 else f"({' + '.join(inv_terms)})"
    if not var_terms:
        temp = ctx.fresh("_i")
        ctx.emit(f"{temp} = {inv_src}")
        return temp
    temp = ctx.fresh("_i")
    ctx.emit(f"{temp} = {inv_src}")
    return f"({' + '.join([temp] + var_terms)})"


def _affine_access_src(ctx: _FuncContext, op) -> str:
    names = ctx.operand_names(op.indices)
    return ", ".join(
        _split_subscript_src(ctx, e, op.indices, names) for e in op.map.results
    )


def _emit_affine_load(ctx: _FuncContext, op) -> None:
    mem = ctx.name(op.memref)
    access = _affine_access_src(ctx, op)
    ctx.emit(f"{ctx.define(op.results[0])} = {mem}[{access}].item()")


def _emit_affine_store(ctx: _FuncContext, op) -> None:
    mem = ctx.name(op.memref)
    access = _affine_access_src(ctx, op)
    ctx.emit(f"{mem}[{access}] = {ctx.name(op.value)}")


def _emit_affine_apply(ctx: _FuncContext, op) -> None:
    names = ctx.operand_names(op.operands)
    expr = affine_expr_src(op.map.results[0], names)
    ctx.emit(f"{ctx.define(op.results[0])} = {expr}")


def _emit_affine_for(ctx: _FuncContext, op: AffineForOp) -> None:
    from .vectorize import collect_band, try_vectorize_band

    codegen = ctx.codegen
    mode = codegen.vectorize
    stats = codegen.vec_stats
    is_root = ctx.nest_depth == 0
    if is_root:
        ctx.nest_collapsed_any = False
    # The mid-level optimizer tags the loops it tiles: a tiled band was
    # proven non-collapsible pre-tiling, so skip the vectorize attempt
    # rather than re-recording the same bail 2d times.
    if mode != "none" and not getattr(op, "_opt_no_vectorize", False):
        band = collect_band(op)
        if mode == "innermost" and len(band) > 1:
            band = None  # emulate the innermost-only vectorizer
        if band is not None and try_vectorize_band(
            ctx, band, stats, allow_contraction=(mode == "nest")
        ):
            if is_root:
                stats.nests_collapsed += 1
            else:
                ctx.nest_collapsed_any = True
            return
    lb = ctx.bound_src(op.lower_bound_map, op.lb_operands, minimize=False)
    ub = ctx.bound_src(op.upper_bound_map, op.ub_operands, minimize=True)
    iv = ctx.define(op.induction_var)
    ctx.emit(f"for {iv} in range({lb}, {ub}, {op.step}):")
    ctx.indent += 1
    ctx.nest_depth += 1
    ctx.loop_ivs.append(op.induction_var)
    ctx.emit_block(op.ops_in_body())
    ctx.loop_ivs.pop()
    ctx.nest_depth -= 1
    ctx.indent -= 1
    if is_root and mode != "none":
        if ctx.nest_collapsed_any:
            stats.nests_partial += 1
        else:
            stats.nests_bailed += 1


def _emit_scf_for(ctx: _FuncContext, op) -> None:
    lb, ub, step = (ctx.name(v) for v in (op.lower_bound, op.upper_bound, op.step))
    iv = ctx.define(op.induction_var)
    ctx.emit(f"for {iv} in range({lb}, {ub}, {step}):")
    ctx.indent += 1
    ctx.loop_ivs.append(op.induction_var)
    ctx.emit_block(op.ops_in_body())
    ctx.loop_ivs.pop()
    ctx.indent -= 1


def _emit_scf_if(ctx: _FuncContext, op) -> None:
    ctx.emit(f"if {ctx.name(op.condition)}:")
    ctx.indent += 1
    ctx.emit_block(op.then_block.ops_without_terminator())
    ctx.indent -= 1
    if len(op.regions) > 1:
        ctx.emit("else:")
        ctx.indent += 1
        ctx.emit_block(op.else_block.ops_without_terminator())
        ctx.indent -= 1


def _emit_return(ctx: _FuncContext, op) -> None:
    values = ", ".join(ctx.operand_names(op.operands))
    ctx.emit(f"return [{values}]" if values else "return []")


def _emit_func_call(ctx: _FuncContext, op) -> None:
    callee = ctx.codegen.module.lookup(op.callee)
    if callee is None:
        raise EngineError(f"engine: call to unknown function @{op.callee}")
    args = ", ".join(ctx.operand_names(op.operands))
    if op.results:
        tmp = ctx.fresh("_r")
        ctx.emit(f"{tmp} = _fn_{op.callee}({args})")
        for pos, result in enumerate(op.results):
            ctx.emit(f"{ctx.define(result)} = {tmp}[{pos}]")
    else:
        ctx.emit(f"_fn_{op.callee}({args})")


def _emit_llvm_call(ctx: _FuncContext, op) -> None:
    if op.callee not in runtime.LIBRARY_CALLS:
        raise EngineError(f"engine: unknown library symbol @{op.callee}")
    args = ", ".join(ctx.operand_names(op.operands))
    ctx.emit(f"_rt.library_call({op.callee!r}, [{args}])")


def _emit_llvm_load(ctx: _FuncContext, op) -> None:
    mem, idx = ctx.name(op.memref), ctx.name(op.index)
    ctx.emit(
        f"{ctx.define(op.results[0])} = {mem}.reshape(-1)[{idx}].item()"
    )


def _emit_llvm_store(ctx: _FuncContext, op) -> None:
    mem, idx = ctx.name(op.memref), ctx.name(op.index)
    ctx.emit(f"{mem}.reshape(-1)[{idx}] = {ctx.name(op.value)}")


def _emit_cfg_terminator(ctx: _FuncContext, op) -> None:
    # Handled by the CFG block dispatcher; direct dispatch means a
    # branch sits in a single-block region, which is malformed IR.
    raise EngineError(f"engine: {op.name} outside a multi-block CFG region")


def _emit_unreachable(ctx: _FuncContext, op) -> None:
    ctx.emit(
        'raise EngineError("executed llvm.unreachable: '
        'control flow reached a point marked impossible")'
    )


# -- linear algebra ops -------------------------------------------------


def _emit_matmul(ctx: _FuncContext, op) -> None:
    a, b, c = ctx.operand_names(op.operands)
    ctx.emit(f"_rt.sgemm({a}, {b}, {c})")


def _emit_blas_sgemm(ctx: _FuncContext, op) -> None:
    a, b, c = ctx.operand_names(op.operands)
    ctx.emit(f"_rt.sgemm({a}, {b}, {c}, {op.alpha!r}, {op.beta!r})")


def _emit_matvec(ctx: _FuncContext, op) -> None:
    a, x, y = ctx.operand_names(op.operands)
    trans = bool(getattr(op, "trans", False))
    ctx.emit(f"_rt.sgemv({a}, {x}, {y}, trans={trans})")


def _emit_transpose(ctx: _FuncContext, op) -> None:
    src, dst = ctx.name(op.input), ctx.name(op.output)
    ctx.emit(f"_rt.transpose({src}, {dst}, {tuple(op.permutation)!r})")


def _emit_reshape(ctx: _FuncContext, op) -> None:
    ctx.emit(f"_rt.reshape({ctx.name(op.input)}, {ctx.name(op.output)})")


def _emit_conv2d(ctx: _FuncContext, op) -> None:
    src, kernel, out = ctx.operand_names(op.operands)
    ctx.emit(f"_rt.conv2d({src}, {kernel}, {out})")


def _emit_fill(ctx: _FuncContext, op) -> None:
    ctx.emit(f"{ctx.name(op.output)}[...] = {ctx.name(op.fill_value)}")


def _emit_copy(ctx: _FuncContext, op) -> None:
    ctx.emit(f"{ctx.name(op.output)}[...] = {ctx.name(op.input)}")


_CONTRACTION_LABELS = "abcdefghijklmnopqrstuvwxyz"


def _pure_dim_positions(map_) -> Optional[List[int]]:
    """Dim position per map result when every result is a bare ``dN``
    and no dim repeats (no diagonal accesses); ``None`` otherwise."""
    dims: List[int] = []
    for expr in map_.results:
        if expr.kind is not AffineExprKind.DIM:
            return None
        dims.append(expr.position)
    if len(set(dims)) != len(dims):
        return None
    return dims


def generic_contraction_spec(op) -> Optional[tuple]:
    """Recognize a two-input multiply-accumulate ``linalg.generic`` as a
    tensor contraction.

    Returns ``(spec, subtract, scalar_out)`` — an einsum subscript for
    :func:`runtime.contract`, whether accumulation subtracts, and
    whether the output map is all-constant-0 (scalar accumulator like
    ``s[0] += x[i]*y[i]``) — or ``None`` when the generic must run as
    scalar loops.  This is what routes synthesis-raised permuted /
    transposed / subtracting contractions onto the ``np.tensordot``
    fast path that the named ``linalg.matmul``/``matvec`` already enjoy.
    """
    if op.num_inputs != 2 or len(op.outputs) != 1:
        return None
    body_ops = op.body.ops_without_terminator()
    if len(body_ops) != 2:
        return None
    mul, combine = body_ops
    if mul.name != "std.mulf" or combine.name not in (
        "std.addf",
        "std.subf",
    ):
        return None
    a_arg, b_arg, out_arg = op.body.arguments
    if {id(v) for v in mul.operands} != {id(a_arg), id(b_arg)}:
        return None
    subtract = combine.name == "std.subf"
    if subtract:
        # subf is not commutative: only acc - a*b is an accumulation.
        if (
            combine.operands[0] is not out_arg
            or combine.operands[1] is not mul.result
        ):
            return None
    elif {id(v) for v in combine.operands} != {
        id(out_arg),
        id(mul.result),
    }:
        return None
    term = op.body.terminator
    if term.num_operands != 1 or term.operands[0] is not combine.result:
        return None

    maps = op.indexing_maps
    if op.num_loops > len(_CONTRACTION_LABELS):
        return None
    a_dims = _pure_dim_positions(maps[0])
    b_dims = _pure_dim_positions(maps[1])
    if a_dims is None or b_dims is None:
        return None
    out_map = maps[2]
    out_dims = _pure_dim_positions(out_map)
    scalar_out = False
    if out_dims is None:
        if all(
            e.is_constant() and e.evaluate((), ()) == 0
            for e in out_map.results
        ):
            scalar_out = True
            out_dims = []
        else:
            return None
    if set(a_dims) | set(b_dims) | set(out_dims) != set(
        range(op.num_loops)
    ):
        return None
    label = _CONTRACTION_LABELS.__getitem__
    spec = (
        "".join(label(d) for d in a_dims)
        + ","
        + "".join(label(d) for d in b_dims)
        + "->"
        + "".join(label(d) for d in out_dims)
    )
    return spec, subtract, scalar_out


def _emit_generic(ctx: _FuncContext, op) -> None:
    recognized = generic_contraction_spec(op)
    if recognized is not None:
        spec, subtract, scalar_out = recognized
        a, b, out = ctx.operand_names(op.operands)
        acc = ctx.fresh("_acc")
        ctx.emit(f"{acc} = _rt.contract({spec!r}, {a}, {b})")
        if scalar_out:
            index = ", ".join("0" for _ in op.indexing_maps[2].results)
            target = f"{out}[{index}]"
        else:
            target = f"{out}[...]"
        ctx.emit(f"{target} {'-=' if subtract else '+='} {acc}")
        return
    extents = op.iteration_domain()
    maps = op.indexing_maps
    loop_vars = [ctx.fresh("_g") for _ in extents]
    for var, extent in zip(loop_vars, extents):
        ctx.emit(f"for {var} in range({extent}):")
        ctx.indent += 1
    for arg, operand, map_ in zip(op.body.arguments, op.operands, maps):
        idx = ", ".join(affine_expr_src(e, loop_vars) for e in map_.results)
        ctx.emit(f"{ctx.define(arg)} = {ctx.name(operand)}[{idx}].item()")
    for body_op in op.body.ops_without_terminator():
        ctx.codegen.emit_op(ctx, body_op)
    term = op.body.terminator
    for out_pos, yielded in enumerate(term.operands):
        out_map = maps[op.num_inputs + out_pos]
        idx = ", ".join(affine_expr_src(e, loop_vars) for e in out_map.results)
        out = ctx.name(op.operands[op.num_inputs + out_pos])
        ctx.emit(f"{out}[{idx}] = {ctx.name(yielded)}")
    for _ in extents:
        ctx.indent -= 1


#: Op-name -> emitter.  The compiled counterpart of the interpreter's
#: ``_HANDLERS`` table; the engine coverage audit diffs the two.
EMITTERS: Dict[str, Callable[[_FuncContext, Operation], None]] = {
    "func.return": _emit_return,
    "func.call": _emit_func_call,
    "llvm.call": _emit_llvm_call,
    "std.constant": _emit_constant,
    "std.addf": _float_binary("({a} + {b})"),
    "std.subf": _float_binary("({a} - {b})"),
    "std.mulf": _float_binary("({a} * {b})"),
    "std.divf": _float_binary("({a} / {b})"),
    "std.maxf": _float_binary("({a} if {a} >= {b} else {b})"),
    "std.negf": _emit_negf,
    "std.cmpf": _emit_cmpf,
    "std.addi": _int_binary("({a} + {b})"),
    "std.subi": _int_binary("({a} - {b})"),
    "std.muli": _int_binary("({a} * {b})"),
    "std.divi": _int_binary("({a} // {b})"),
    "std.remi": _int_binary("({a} % {b})"),
    "std.cmpi": _emit_cmpi,
    "std.select": _emit_select,
    "std.index_cast": _emit_index_cast,
    "std.alloc": _emit_alloc,
    "std.dealloc": _emit_noop,
    "std.load": _emit_std_load,
    "std.store": _emit_std_store,
    "affine.for": _emit_affine_for,
    "affine.load": _emit_affine_load,
    "affine.store": _emit_affine_store,
    "affine.apply": _emit_affine_apply,
    "affine.yield": _emit_noop,
    "affine.matmul": _emit_matmul,
    "scf.for": _emit_scf_for,
    "scf.if": _emit_scf_if,
    "scf.yield": _emit_noop,
    "llvm.load": _emit_llvm_load,
    "llvm.store": _emit_llvm_store,
    "llvm.br": _emit_cfg_terminator,
    "llvm.cond_br": _emit_cfg_terminator,
    "llvm.unreachable": _emit_unreachable,
    "linalg.yield": _emit_noop,
    "linalg.matmul": _emit_matmul,
    "linalg.matvec": _emit_matvec,
    "linalg.transpose": _emit_transpose,
    "linalg.reshape": _emit_reshape,
    "linalg.conv2d_nchw": _emit_conv2d,
    "linalg.fill": _emit_fill,
    "linalg.copy": _emit_copy,
    "linalg.generic": _emit_generic,
    "blas.sgemm": _emit_blas_sgemm,
    "blas.sgemv": _emit_matvec,
    "blas.transpose": _emit_transpose,
    "blas.reshape": _emit_reshape,
    "blas.conv2d": _emit_conv2d,
}


def _emit_transform_op(ctx: "_FuncContext", op: Operation) -> None:
    # Schedule IR scripts transformations over payload modules; it has
    # no runtime semantics of its own.
    raise EngineError(
        f"engine: {op.name} is schedule IR, not payload: apply it with "
        "repro.scheduling.apply_schedule instead of compiling it"
    )


EMITTERS.update(
    {
        f"transform.{suffix}": _emit_transform_op
        for suffix in (
            "sequence",
            "yield",
            "match",
            "fuse",
            "copy_elim",
            "dead_loops",
            "canonicalize",
            "distribute",
            "tile",
            "unroll_jam",
            "vectorize",
            "raise",
        )
    }
)


# ----------------------------------------------------------------------
# Function / module generation
# ----------------------------------------------------------------------


class CodeGenerator:
    def __init__(
        self,
        module: ModuleOp,
        vectorize: str = "nest",
        licm: bool = True,
    ):
        if vectorize not in VECTORIZE_MODES:
            raise EngineError(
                f"engine: unknown vectorize mode {vectorize!r}; "
                f"known: {VECTORIZE_MODES}"
            )
        from .vectorize import VectorizeStats

        self.module = module
        self.vectorize = vectorize
        self.licm = licm
        self.vec_stats = VectorizeStats()

    def emit_op(self, ctx: _FuncContext, op: Operation) -> None:
        emitter = EMITTERS.get(op.name)
        if emitter is None:
            raise EngineError(f"engine: no emitter for op {op.name}")
        emitter(ctx, op)

    def generate_function(self, func: FuncOp) -> List[str]:
        ctx = _FuncContext(self, func)
        params = [ctx.define(arg) for arg in func.arguments]
        header = f"def _fn_{func.sym_name}({', '.join(params)}):"
        region = func.regions[0]
        if len(region.blocks) == 1:
            ctx.emit_block(region.entry_block.operations)
            if self.licm:
                from .licm import hoist_loop_invariants

                ctx.lines, hoisted = hoist_loop_invariants(ctx.lines)
                self.vec_stats.licm_hoisted += hoisted
            if not _returns_on_all_paths(ctx.lines):
                ctx.emit("return []")
        else:
            self._generate_cfg(ctx, region)
        return [header] + ctx.lines

    # -- lowered CFG form ------------------------------------------------

    def _generate_cfg(self, ctx: _FuncContext, region) -> None:
        blocks = list(region.blocks)
        block_ids = {id(block): pos for pos, block in enumerate(blocks)}
        # Pre-assign names for every block argument so branches can
        # tuple-assign into them (entry args already name the params).
        for block in blocks[1:]:
            for arg in block.arguments:
                ctx.define(arg)
        ctx.emit("_b = 0")
        ctx.emit("_steps = 0")
        ctx.emit("while True:")
        ctx.indent += 1
        ctx.emit("_steps += 1")
        ctx.emit(f"if _steps > {MAX_CFG_STEPS}:")
        ctx.indent += 1
        ctx.emit(
            'raise EngineError("engine: exceeded CFG step budget '
            f'({MAX_CFG_STEPS} block transitions)")'
        )
        ctx.indent -= 1
        for pos, block in enumerate(blocks):
            ctx.emit(f"{'if' if pos == 0 else 'elif'} _b == {pos}:")
            ctx.indent += 1
            before = len(ctx.lines)
            for op in block.operations:
                if op.name == "llvm.br":
                    self._emit_branch_assign(ctx, op)
                    ctx.emit(f"_b = {block_ids[id(op.dest)]}")
                    ctx.emit("continue")
                elif op.name == "llvm.cond_br":
                    true_id = block_ids[id(op.true_dest)]
                    false_id = block_ids[id(op.false_dest)]
                    ctx.emit(
                        f"_b = {true_id} if {ctx.name(op.condition)} "
                        f"else {false_id}"
                    )
                    ctx.emit("continue")
                else:
                    self.emit_op(ctx, op)
            if len(ctx.lines) == before:
                ctx.emit("pass")
            ctx.indent -= 1
        ctx.emit("else:")
        ctx.indent += 1
        ctx.emit('raise EngineError("engine: jump to unknown CFG block")')
        ctx.indent -= 2

    def _emit_branch_assign(self, ctx: _FuncContext, op) -> None:
        if not op.operands:
            return
        targets = ", ".join(ctx.name(arg) for arg in op.dest.arguments)
        sources = ", ".join(ctx.operand_names(op.operands))
        ctx.emit(f"{targets} = {sources}")


def _returns_on_all_paths(lines: List[str]) -> bool:
    """Cheap check: did the body end in a top-level return?"""
    for line in reversed(lines):
        if line.startswith("    return"):
            return True
        if not line.startswith("        "):
            return False
    return False


def _module_chunks(generator: CodeGenerator) -> str:
    chunks = ["# generated by repro.execution.engine — do not edit"]
    for func in generator.module.functions:
        chunks.append("\n".join(generator.generate_function(func)))
    return "\n\n\n".join(chunks) + "\n"


def generate_module_source(
    module: ModuleOp, vectorize: str = "nest", licm: bool = True
) -> str:
    """Generate the full Python source for a module's functions."""
    return _module_chunks(CodeGenerator(module, vectorize=vectorize, licm=licm))


@dataclass
class CompiledModule:
    """A compiled kernel: generated source plus callable entry points.

    ``vectorize_stats`` is the codegen-time :class:`~.vectorize.
    VectorizeStats` snapshot (``None`` for kernels re-hydrated from a
    pre-stats disk artifact); ``opt_stats`` is the mid-level
    optimizer's :class:`~.optimizer.OptStats` snapshot (``None`` when
    the engine compiled with ``opt_mode="none"``).
    """

    key: str
    source: str
    functions: Dict[str, Callable]
    vectorize_stats: Optional[dict] = None
    opt_stats: Optional[dict] = None


def load_compiled_source(
    source: str,
    key: str = "",
    vectorize_stats: Optional[dict] = None,
    opt_stats: Optional[dict] = None,
) -> CompiledModule:
    """``compile()`` + ``exec`` already-generated kernel source.

    This is the disk-cache re-hydration path: no IR walk, no codegen —
    the entry points are recovered from the generated ``_fn_*`` defs.
    """
    namespace = {
        "_np": np,
        "_rt": runtime,
        "_f32": runtime.f32,
        "EngineError": EngineError,
    }
    code = compile(source, f"<engine:{key[:12] or 'module'}>", "exec")
    exec(code, namespace)
    functions = {
        name[len("_fn_"):]: fn
        for name, fn in namespace.items()
        if name.startswith("_fn_") and callable(fn)
    }
    return CompiledModule(
        key=key,
        source=source,
        functions=functions,
        vectorize_stats=vectorize_stats,
        opt_stats=opt_stats,
    )


def compile_module(
    module: ModuleOp,
    key: str = "",
    vectorize: str = "nest",
    licm: bool = True,
) -> CompiledModule:
    """Codegen + ``compile()`` one module into callable kernels."""
    generator = CodeGenerator(module, vectorize=vectorize, licm=licm)
    return load_compiled_source(
        _module_chunks(generator),
        key,
        vectorize_stats=generator.vec_stats.snapshot(),
    )
