"""Loop-invariant code motion over generated kernel source.

Runs after codegen, before ``compile()``: a purely *textual* pass over
the emitted lines of one function that hoists invariant straight-line
assignments out of the residual scalar ``for`` loops the vectorizer
bailed on.  Codegen cooperates by splitting loop-invariant subscript
arithmetic into separate ``_i<N> = ...`` statements (see
``_split_subscript_src``), so both the subscript arithmetic and
invariant ``.item()`` loads become single hoistable lines.

Legality model (deliberately conservative):

* Only plain ``NAME = EXPR`` lines that are **direct** children of a
  ``for NAME in range(...):`` block are candidates.
* A candidate hoists only when no identifier in ``EXPR`` is the loop
  variable, assigned anywhere in the loop body, or a buffer the loop
  body writes (subscript stores, and — conservatively — every name
  that appears in a mutating ``_rt.*`` runtime call).
* Calls in ``EXPR`` must be known-pure (``len``/``min``/``max``/
  ``int``/``abs``/``_f32``/``.item()``); a loop containing a
  ``_fn_*`` call, ``while``, ``return``, or ``raise`` is skipped
  entirely.
* Generated code is single-assignment, so a hoisted name can in turn
  unlock later candidates that only depend on it.

Exception safety: an expression that can fault (a subscript read, a
division, a modulo) must not execute when the loop would have run zero
iterations, so such hoists wrap the loop in an
``if len(range(...)) > 0:`` guard.  Fault-free arithmetic hoists
unguarded, which leaves it a direct child of the enclosing loop —
eligible to keep hoisting outward level by level.
"""

from __future__ import annotations

import re
from typing import List, Optional, Set, Tuple

_INDENT = "    "

_ASSIGN_RE = re.compile(r"^(\w+) = (.+)$")
_FOR_RE = re.compile(r"^for (\w+) in range\((.+)\):$")
_NAME_RE = re.compile(r"[A-Za-z_]\w*")
_CALL_RE = re.compile(r"([\w.]+)\(")
_SUBSCRIPT_STORE_RE = re.compile(r"^(\w+)\[")

#: Call targets allowed inside a hoistable expression.  ``.item`` is a
#: method suffix (``A[i].item()``); everything here is pure.
_PURE_CALLS = {"len", "range", "min", "max", "int", "float", "abs", "_f32"}

#: A loop containing any of these anywhere gives up on hoisting: calls
#: into other generated functions have unknown effects, ``while`` only
#: appears in CFG dispatchers, and early exits change which statements
#: execute.
_POISON_RE = re.compile(r"_fn_\w+\(|^\s*(while |return|raise )")


class _Node:
    """One generated line, plus its nested suite when it opens a block."""

    __slots__ = ("text", "children")

    def __init__(self, text: str, children: Optional[List["_Node"]] = None):
        self.text = text
        self.children = children if children is not None else []

    def walk_lines(self):
        yield self.text
        for child in self.children:
            yield from child.walk_lines()


def _parse(lines: List[str], start: int, level: int) -> Tuple[List["_Node"], int]:
    nodes: List[_Node] = []
    i = start
    prefix = _INDENT * level
    while i < len(lines):
        line = lines[i]
        stripped = line.lstrip(" ")
        depth = (len(line) - len(stripped)) // len(_INDENT)
        if depth < level:
            break
        text = line[len(prefix):]
        if text.endswith(":") and i + 1 < len(lines):
            nxt = lines[i + 1]
            nxt_depth = (len(nxt) - len(nxt.lstrip(" "))) // len(_INDENT)
            if nxt_depth > level:
                children, i = _parse(lines, i + 1, level + 1)
                nodes.append(_Node(text, children))
                continue
        nodes.append(_Node(text))
        i += 1
    return nodes, i


def _render(nodes: List[_Node], level: int, out: List[str]) -> None:
    for node in nodes:
        out.append(_INDENT * level + node.text)
        _render(node.children, level + 1, out)


def _loop_facts(loop: _Node):
    """(assignment counts, written/mutated buffer names, poisoned)."""
    assigned: dict = {}
    stored: Set[str] = set()
    poisoned = False
    for line in loop.walk_lines():
        stripped = line.strip()
        if _POISON_RE.search(stripped):
            poisoned = True
        match = _FOR_RE.match(stripped)
        if match:
            name = match.group(1)
            assigned[name] = assigned.get(name, 0) + 2  # reassigned per trip
            continue
        if "_rt." in stripped:
            # Runtime helpers mutate their array arguments; poison
            # every name on the line.
            stored.update(_NAME_RE.findall(stripped))
            continue
        if " = " in stripped or " += " in stripped or " -= " in stripped:
            lhs = re.split(r" [-+]?= ", stripped, maxsplit=1)[0]
            sub = _SUBSCRIPT_STORE_RE.match(lhs)
            if sub:
                stored.add(sub.group(1))
            else:
                for name in _NAME_RE.findall(lhs):
                    assigned[name] = assigned.get(name, 0) + 1
    return assigned, stored, poisoned


def _calls_are_pure(expr: str) -> bool:
    for callee in _CALL_RE.findall(expr):
        if callee in _PURE_CALLS or callee.endswith(".item"):
            continue
        return False
    return True


def _can_fault(expr: str) -> bool:
    """Subscript reads can go out of bounds; ``/``, ``//``, ``%`` can
    divide by zero.  Pure +,*,comparison arithmetic on ints/floats
    cannot raise."""
    return "[" in expr or "/" in expr or "%" in expr


def _hoist_from_loop(loop: _Node) -> Tuple[List[_Node], List[_Node], int]:
    """Returns (unguarded hoists, guarded hoists, count)."""
    match = _FOR_RE.match(loop.text)
    assert match is not None
    loop_var = match.group(1)
    assigned, stored, poisoned = _loop_facts(loop)
    if poisoned:
        return [], [], 0
    blocked = set(assigned) | stored | {loop_var}
    free: List[_Node] = []
    guarded: List[_Node] = []
    guarded_names: Set[str] = set()
    kept: List[_Node] = []
    for node in loop.children:
        assign = None if node.children else _ASSIGN_RE.match(node.text)
        if assign is not None:
            name, expr = assign.group(1), assign.group(2)
            names = set(_NAME_RE.findall(expr))
            if not (names & blocked) and _calls_are_pure(expr):
                # A candidate depending on a guarded hoist must stay
                # behind the same guard to keep definition order.
                if _can_fault(expr) or (names & guarded_names):
                    guarded.append(node)
                    guarded_names.add(name)
                else:
                    free.append(node)
                # A name assigned exactly once in the loop is gone from
                # the body after hoisting, so later candidates that
                # only depended on it are now invariant too.
                if assigned.get(name) == 1 and name not in stored:
                    blocked.discard(name)
                continue
        kept.append(node)
    if not free and not guarded:
        return [], [], 0
    loop.children = kept if kept else [_Node("pass")]
    return free, guarded, len(free) + len(guarded)


def _process(nodes: List[_Node]) -> Tuple[List[_Node], int]:
    out: List[_Node] = []
    total = 0
    for node in nodes:
        if node.children:
            node.children, count = _process(node.children)
            total += count
        if _FOR_RE.match(node.text) is None:
            out.append(node)
            continue
        free, guarded, count = _hoist_from_loop(node)
        total += count
        out.extend(free)
        if guarded:
            range_args = _FOR_RE.match(node.text).group(2)
            guard = _Node(
                f"if len(range({range_args})) > 0:", guarded + [node]
            )
            out.append(guard)
        else:
            out.append(node)
    return out, total


def hoist_loop_invariants(lines: List[str]) -> Tuple[List[str], int]:
    """Hoist invariant assignments in one function's body lines.

    ``lines`` are the generated body statements (indent unit four
    spaces, starting at depth one).  Returns the transformed lines and
    the number of statements hoisted.
    """
    nodes, _ = _parse(lines, 0, 1)
    nodes, count = _process(nodes)
    if count == 0:
        return lines, 0
    out: List[str] = []
    _render(nodes, 1, out)
    return out, count
