"""Innermost-loop vectorization for the compiled engine.

An innermost ``affine.for`` whose body is a straight line of affine
loads/stores and float arithmetic is rewritten from a per-iteration
Python loop into NumPy slice arithmetic: every access where the
induction variable appears linearly in exactly one subscript becomes a
strided slice, the arithmetic chain evaluates element-wise over whole
vectors, and the single store either writes a slice (element-wise case)
or folds a ``_np.sum`` into its accumulator (reduction case).

The transform bails out — returning ``False`` so codegen falls back to
the scalar loop — whenever it cannot prove safety:

* any body op outside the safe set (nested loops, integer/index
  arithmetic, calls, ...);
* more than one store, or a store whose value is not a recognisable
  accumulator update when the induction variable is absent from its
  subscripts;
* the induction variable appearing non-linearly, with a non-positive
  stride, or in more than one subscript of an access;
* a load from the stored buffer whose subscripts are not structurally
  identical to the store's (a loop-carried dependence).

Buffers are assumed non-aliasing unless they are the same SSA value —
the same assumption the rest of the evaluation stack makes, and one the
fuzzing ``engine-diff`` stage continuously cross-checks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...dialects.affine import AffineForOp, AffineLoadOp, AffineStoreOp
from ...ir import Operation, is_float
from .codegen import affine_expr_src
from .runtime import EngineError

#: Ops a vectorizable body may contain.  Everything else forces the
#: scalar fallback.
SAFE_OPS = {
    "affine.load",
    "affine.store",
    "std.constant",
    "std.addf",
    "std.subf",
    "std.mulf",
    "std.divf",
    "std.maxf",
}

_VEC_BINOPS = {
    "std.addf": "({a} + {b})",
    "std.subf": "({a} - {b})",
    "std.mulf": "({a} * {b})",
    "std.divf": "({a} / {b})",
    "std.maxf": "_np.maximum({a}, {b})",
}

_SCALAR_BINOPS = {
    "std.addf": "({a} + {b})",
    "std.subf": "({a} - {b})",
    "std.mulf": "({a} * {b})",
    "std.divf": "({a} / {b})",
    "std.maxf": "({a} if {a} >= {b} else {b})",
}


def _access_signature(op) -> tuple:
    """Structural identity of an affine access: same map results over
    the same index SSA values on the same buffer."""
    return (
        tuple(expr._key() for expr in op.map.results),
        tuple(id(v) for v in op.indices),
        id(op.memref),
    )


class _Access:
    """Analysis of one affine load/store against the loop's iv."""

    def __init__(self, op, iv):
        self.op = op
        self.signature = _access_signature(op)
        #: per-subscript iv coefficient (0 when the iv is absent)
        self.coeffs: List[int] = []
        #: subscript position carrying the iv, or None
        self.vec_dim: Optional[int] = None
        iv_positions = {
            pos for pos, value in enumerate(op.indices) if value is iv
        }
        for result_pos, expr in enumerate(op.map.results):
            used = expr.dims_used() & iv_positions
            if not used:
                self.coeffs.append(0)
                continue
            linear = expr.as_linear()
            if linear is None:
                raise _Bail(f"non-linear use of the iv in {op.name}")
            coeff = sum(linear.dim_coeffs.get(pos, 0) for pos in used)
            if coeff <= 0:
                raise _Bail("iv stride must be positive")
            if self.vec_dim is not None:
                raise _Bail("iv appears in two subscripts of one access")
            self.vec_dim = result_pos
            self.coeffs.append(coeff)
        if self.vec_dim is None:
            self.coeffs = [0] * len(op.map.results)

    @property
    def is_vector(self) -> bool:
        return self.vec_dim is not None


class _Bail(Exception):
    """Internal: pattern not vectorizable, fall back to the scalar loop."""


def try_vectorize_affine_for(ctx, op: AffineForOp, lb: str, ub: str) -> bool:
    """Emit ``op`` as NumPy slice arithmetic; False means fall back."""
    try:
        _Vectorizer(ctx, op).emit(lb, ub)
        return True
    except _Bail:
        return False


class _Vectorizer:
    def __init__(self, ctx, op: AffineForOp):
        self.ctx = ctx
        self.op = op
        self.iv = op.induction_var
        self.body = op.ops_in_body()
        self.accesses: Dict[int, _Access] = {}
        #: generated expression + vec-ness per SSA value produced in the
        #: body: id(value) -> (source, is_vector)
        self.values: Dict[int, Tuple[str, bool]] = {}
        self.store: Optional[AffineStoreOp] = None
        self.fused_ops: set = set()
        self.analyze()

    # -- analysis --------------------------------------------------------

    def analyze(self) -> None:
        stores = []
        self.vec_ids: set = set()
        for body_op in self.body:
            if body_op.name not in SAFE_OPS:
                raise _Bail(f"unsafe op {body_op.name}")
            if isinstance(body_op, (AffineLoadOp, AffineStoreOp)):
                self.accesses[id(body_op)] = _Access(body_op, self.iv)
            if isinstance(body_op, AffineStoreOp):
                stores.append(body_op)
            elif body_op.results:
                result = body_op.results[0]
                if isinstance(body_op, AffineLoadOp):
                    if self.accesses[id(body_op)].is_vector:
                        self.vec_ids.add(id(result))
                elif any(
                    id(value) in self.vec_ids for value in body_op.operands
                ):
                    self.vec_ids.add(id(result))
        if len(stores) != 1:
            raise _Bail("need exactly one store")
        self.store = stores[0]
        store_access = self.accesses[id(self.store)]
        if store_access.is_vector:
            self._check_elementwise_hazards(store_access)
        else:
            self._match_reduction(store_access)

    def _loads_of_stored_buffer(self, store_access: _Access) -> List[_Access]:
        return [
            access
            for access in self.accesses.values()
            if isinstance(access.op, AffineLoadOp)
            and id(access.op.memref) == store_access.signature[2]
        ]

    def _check_elementwise_hazards(self, store_access: _Access) -> None:
        for access in self._loads_of_stored_buffer(store_access):
            if access.signature != store_access.signature:
                raise _Bail("loop-carried dependence on the stored buffer")

    def _match_reduction(self, store_access: _Access) -> None:
        """iv absent from the store: only ``acc = acc +/- vector`` folds."""
        update = self.store.value.defining_op
        if update is None or update.name not in ("std.addf", "std.subf"):
            raise _Bail("store target is loop-invariant but not a reduction")
        if not update.results[0].has_one_use():
            raise _Bail("reduction update has other users")
        lhs, rhs = update.operand(0), update.operand(1)
        acc, contrib = None, None
        for candidate, other in ((lhs, rhs), (rhs, lhs)):
            load = candidate.defining_op
            if (
                isinstance(load, AffineLoadOp)
                and id(load) in self.accesses
                and self.accesses[id(load)].signature == store_access.signature
            ):
                acc, contrib = load, other
                break
        if acc is None:
            raise _Bail("no accumulator load matching the store")
        if update.name == "std.subf" and update.operand(0) is not acc.results[0]:
            raise _Bail("subtraction reduction must subtract from the acc")
        if not acc.results[0].has_one_use():
            raise _Bail("accumulator load has other users")
        loads = self._loads_of_stored_buffer(store_access)
        if any(load.op is not acc for load in loads):
            raise _Bail("extra load of the reduction buffer")
        if id(contrib) not in self.vec_ids:
            raise _Bail("reduction contribution is loop-invariant")
        self.reduction = (update, acc, contrib)
        self.fused_ops = {id(update), id(acc)}

    # -- emission --------------------------------------------------------

    def emit(self, lb: str, ub: str) -> None:
        ctx = self.ctx
        n = ctx.fresh("_n")
        lb_name = ctx.fresh("_lb")
        ctx.emit(f"{lb_name} = {lb}")
        ctx.emit(f"{n} = len(range({lb_name}, {ub}, {self.op.step}))")
        self.n = n
        self.lb_name = lb_name
        ctx.emit(f"if {n} > 0:")
        ctx.indent += 1
        for body_op in self.body:
            if id(body_op) in self.fused_ops:
                continue
            self._emit_body_op(body_op)
        ctx.indent -= 1

    def _emit_body_op(self, body_op: Operation) -> None:
        ctx = self.ctx
        name = body_op.name
        if name == "std.constant":
            value = body_op.value
            literal = (
                repr(float(value))
                if is_float(body_op.results[0].type)
                else repr(int(value))
            )
            self.values[id(body_op.results[0])] = (literal, False)
        elif name == "affine.load":
            self._emit_load(body_op)
        elif name == "affine.store":
            self._emit_store(body_op)
        else:  # float binary
            a_src, a_vec = self._value(body_op.operand(0))
            b_src, b_vec = self._value(body_op.operand(1))
            vec = a_vec or b_vec
            table = _VEC_BINOPS if vec else _SCALAR_BINOPS
            src = table[name].format(a=a_src, b=b_src)
            if not vec and str(body_op.results[0].type) == "f32":
                src = f"_f32({src})"
            temp = ctx.fresh()
            ctx.emit(f"{temp} = {src}")
            self.values[id(body_op.results[0])] = (temp, vec)

    def _value(self, value) -> Tuple[str, bool]:
        entry = self.values.get(id(value))
        if entry is not None:
            return entry
        # Defined outside the loop body (outer iv, function arg, ...).
        return self.ctx.name(value), False

    def _subscript(self, access: _Access) -> str:
        """Render an access's subscript tuple, slicing the iv dimension."""
        ctx = self.ctx
        op = access.op
        # Index operand names with the iv position(s) replaced by the
        # hoisted lower bound, so the remaining expression computes the
        # slice *start*.
        names = [
            self.lb_name if value is self.iv else ctx.name(value)
            for value in op.indices
        ]
        parts = []
        for pos, expr in enumerate(op.map.results):
            src = affine_expr_src(expr, names)
            if pos == access.vec_dim:
                stride = access.coeffs[pos] * self.op.step
                start = ctx.fresh("_s")
                ctx.emit(f"{start} = {src}")
                parts.append(
                    f"slice({start}, {start} + {stride} * {self.n}, {stride})"
                )
            else:
                parts.append(src)
        return ", ".join(parts)

    def _emit_load(self, load: AffineLoadOp) -> None:
        ctx = self.ctx
        access = self.accesses[id(load)]
        temp = ctx.fresh()
        mem = ctx.name(load.memref)
        if access.is_vector:
            ctx.emit(f"{temp} = {mem}[{self._subscript(access)}]")
        else:
            ctx.emit(f"{temp} = {mem}[{self._subscript(access)}].item()")
        self.values[id(load.results[0])] = (temp, access.is_vector)

    def _emit_store(self, store: AffineStoreOp) -> None:
        ctx = self.ctx
        access = self.accesses[id(store)]
        mem = ctx.name(store.memref)
        if access.is_vector:
            value_src, _ = self._value(store.value)
            ctx.emit(f"{mem}[{self._subscript(access)}] = {value_src}")
            return
        update, _acc, contrib = self.reduction
        contrib_src, contrib_vec = self._value(contrib)
        if not contrib_vec:
            raise EngineError(
                "engine: internal error — scalar reduction contribution "
                "should have bailed out during analysis"
            )
        sign = "+" if update.name == "std.addf" else "-"
        subscript = self._subscript(access)
        ctx.emit(
            f"{mem}[{subscript}] = "
            f"{mem}[{subscript}] {sign} _np.sum({contrib_src})"
        )
