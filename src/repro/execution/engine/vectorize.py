"""Whole-nest vectorization for the compiled engine.

The unit of vectorization is a **band**: the longest chain of perfectly
nested ``affine.for`` ops starting at a given loop (each body is exactly
one ``affine.for`` until the compute body).  When the innermost body is
a straight line of affine loads/stores and element-wise float
arithmetic, the whole band collapses into *one* N-dimensional NumPy
expression — every induction variable becomes an array axis, every
access where an induction variable appears linearly in exactly one
subscript becomes a strided slice, and the single store either assigns
a slice (element-wise case) or folds a ``.sum``/contraction into its
accumulator (reduction case).

On top of the band analysis, **contraction recognition** turns the
canonical accumulate-a-product-of-loads shape (``C[i,j] += A[i,k] *
B[k,j]`` and friends) into a single :func:`~.runtime.contract` call —
``np.tensordot``/``np.einsum`` underneath — so even un-raised baseline
pipelines reach BLAS-grade kernels.

The transform bails out — returning ``False`` so codegen falls back to
a scalar Python loop for the *outermost* band loop and retries on the
next-inner loop (partial collapse: the innermost ``k`` dims of a band
still vectorize) — whenever it cannot prove safety:

* any body op outside :data:`SAFE_OPS` (nested non-perfect loops,
  integer/index arithmetic, calls, ...);
* an inner band loop whose bounds depend on an outer band induction
  variable (triangular nests);
* more than one store, or a store whose value is not a recognisable
  accumulator update when some band induction variable is absent from
  its subscripts;
* an induction variable appearing non-linearly, with a non-positive
  stride, in more than one subscript of an access, or two induction
  variables sharing one subscript;
* a load from the stored buffer whose subscripts are not structurally
  identical to the store's (a loop-carried dependence);
* a reduction whose contribution does not vary along every reduced
  axis (summing a broadcast value reassociates differently from the
  sequential scalar loop).

Every bail-out is recorded with a reason key on the function's
:class:`VectorizeStats`; a bail-out is never an error, just slower
code.  Buffers are assumed non-aliasing unless they are the same SSA
value — the same assumption the rest of the evaluation stack makes,
and one the fuzzing ``engine-diff``/``vectorize-diff`` stages
continuously cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...dialects.affine import AffineForOp, AffineLoadOp, AffineStoreOp
from ...ir import Operation, is_float
from .codegen import affine_expr_src
from .runtime import EngineError

#: Ops a vectorizable body may contain.  Everything else forces the
#: scalar fallback.
SAFE_OPS = {
    "affine.load",
    "affine.store",
    "std.constant",
    "std.addf",
    "std.subf",
    "std.mulf",
    "std.divf",
    "std.maxf",
    "std.negf",
    "std.cmpf",
    "std.select",
}

_VEC_BINOPS = {
    "std.addf": "({a} + {b})",
    "std.subf": "({a} - {b})",
    "std.mulf": "({a} * {b})",
    "std.divf": "({a} / {b})",
    "std.maxf": "_np.maximum({a}, {b})",
}

_SCALAR_BINOPS = {
    "std.addf": "({a} + {b})",
    "std.subf": "({a} - {b})",
    "std.mulf": "({a} * {b})",
    "std.divf": "({a} / {b})",
    "std.maxf": "({a} if {a} >= {b} else {b})",
}

_CMPF_PYTHON = {
    "oeq": "==",
    "one": "!=",
    "olt": "<",
    "ole": "<=",
    "ogt": ">",
    "oge": ">=",
}

#: Axis labels for contraction specs; bands deeper than this skip the
#: contraction fast path (the generic ``.sum`` path still applies).
_EINSUM_LETTERS = "abcdefghijklmnopqrstuvwxyz"


@dataclass
class VectorizeStats:
    """Per-module vectorizer observability, aggregated over functions.

    A *nest* is an outermost ``affine.for`` (one not syntactically
    contained in another ``affine.for``).  ``bail_reasons`` counts
    failed collapse *attempts* by reason key — a nest that bails at
    depth 3, 2, and 1 before running scalar records three attempts.
    """

    nests_collapsed: int = 0
    nests_partial: int = 0
    nests_bailed: int = 0
    contractions: int = 0
    licm_hoisted: int = 0
    bail_reasons: Dict[str, int] = field(default_factory=dict)

    def record_bail(self, reason: str) -> None:
        self.bail_reasons[reason] = self.bail_reasons.get(reason, 0) + 1

    def snapshot(self) -> dict:
        return {
            "nests_collapsed": self.nests_collapsed,
            "nests_partial": self.nests_partial,
            "nests_bailed": self.nests_bailed,
            "contractions": self.contractions,
            "licm_hoisted": self.licm_hoisted,
            "bail_reasons": dict(sorted(self.bail_reasons.items())),
        }


class _Bail(Exception):
    """Internal: pattern not vectorizable, fall back to a scalar loop."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


def collect_band(op: AffineForOp) -> List[AffineForOp]:
    """The maximal perfect nest rooted at ``op``, outermost first."""
    band = [op]
    while True:
        body = band[-1].ops_in_body()
        if len(body) == 1 and isinstance(body[0], AffineForOp):
            band.append(body[0])
        else:
            return band


def try_vectorize_band(
    ctx,
    band: List[AffineForOp],
    stats: Optional[VectorizeStats] = None,
    allow_contraction: bool = True,
) -> bool:
    """Emit ``band`` as one N-d NumPy expression; False means bail.

    On a bail the reason is recorded on ``stats`` and nothing has been
    emitted (analysis runs before any line is generated).
    """
    try:
        vec = _Vectorizer(ctx, band, allow_contraction)
    except _Bail as bail:
        if stats is not None:
            stats.record_bail(bail.reason)
        return False
    vec.emit()
    if stats is not None and vec.contraction is not None:
        stats.contractions += 1
    return True


def band_collapses(band: List[AffineForOp]) -> bool:
    """Pure legality query: would :func:`try_vectorize_band` accept this
    band?  Runs the analysis phase only (which never touches the
    emission context), records nothing, and emits nothing.  Used by the
    mid-level optimizer's tiling heuristic to leave vectorizable nests
    alone."""
    try:
        _Vectorizer(None, list(band), allow_contraction=True)
    except _Bail:
        return False
    return True


def _access_signature(op) -> tuple:
    """Structural identity of an affine access: same map results over
    the same index SSA values on the same buffer."""
    return (
        tuple(expr._key() for expr in op.map.results),
        tuple(id(v) for v in op.indices),
        id(op.memref),
    )


class _Access:
    """Analysis of one affine load/store against the band's ivs.

    ``axes`` maps a band iv index to ``(subscript position, iv
    coefficient)``; iv indices absent from ``axes`` do not appear in
    the access.  After slicing, the array's dimensions correspond to
    the sliced subscript positions in order — :attr:`sub_order` lists
    the band iv index carried by each of those dimensions.
    """

    def __init__(self, op, ivs):
        self.op = op
        self.signature = _access_signature(op)
        self.axes: Dict[int, Tuple[int, int]] = {}
        iv_positions = [
            {pos for pos, value in enumerate(op.indices) if value is iv}
            for iv in ivs
        ]
        for result_pos, expr in enumerate(op.map.results):
            used = expr.dims_used()
            hit = [
                b for b, positions in enumerate(iv_positions)
                if used & positions
            ]
            if not hit:
                continue
            if len(hit) > 1:
                raise _Bail("two-ivs-in-one-subscript")
            b = hit[0]
            linear = expr.as_linear()
            if linear is None:
                raise _Bail("non-linear-subscript")
            coeff = sum(
                linear.dim_coeffs.get(pos, 0) for pos in iv_positions[b]
            )
            if coeff <= 0:
                raise _Bail("non-positive-stride")
            if b in self.axes:
                raise _Bail("iv-in-two-subscripts")
            self.axes[b] = (result_pos, coeff)
        #: band iv indices in subscript (sliced-array dimension) order
        self.sub_order: List[int] = [
            b for _, b in sorted((pos, b) for b, (pos, _) in self.axes.items())
        ]
        self.vary = frozenset(self.axes)

    @property
    def is_vector(self) -> bool:
        return bool(self.axes)


class _Vectorizer:
    """Analysis (may raise :class:`_Bail`) then emission for one band."""

    def __init__(self, ctx, band: List[AffineForOp], allow_contraction: bool):
        self.ctx = ctx
        self.band = band
        self.rank = len(band)
        self.ivs = [loop.induction_var for loop in band]
        self.body = band[-1].ops_in_body()
        self.allow_contraction = allow_contraction
        self.accesses: Dict[int, _Access] = {}
        #: id(value) -> vary set, computed during analysis
        self.vary: Dict[int, frozenset] = {}
        #: id(value) -> generated canonical expression (emission phase)
        self.values: Dict[int, str] = {}
        #: id(value) -> raw (subscript-order) slice temp, for contraction
        self.raw_views: Dict[int, str] = {}
        self.store: Optional[AffineStoreOp] = None
        self.fused_ops: set = set()
        self.contraction = None
        self.analyze()

    # -- analysis --------------------------------------------------------

    def _vary_of(self, value) -> frozenset:
        return self.vary.get(id(value), frozenset())

    def analyze(self) -> None:
        ivs = set(map(id, self.ivs))
        for loop in self.band[1:]:
            if any(
                id(v) in ivs
                for v in list(loop.lb_operands) + list(loop.ub_operands)
            ):
                raise _Bail("triangular-bounds")
        stores = []
        for body_op in self.body:
            if body_op.name not in SAFE_OPS:
                raise _Bail("unsafe-op")
            if isinstance(body_op, (AffineLoadOp, AffineStoreOp)):
                self.accesses[id(body_op)] = _Access(body_op, self.ivs)
            if isinstance(body_op, AffineStoreOp):
                stores.append(body_op)
            elif body_op.results:
                result = body_op.results[0]
                if isinstance(body_op, AffineLoadOp):
                    self.vary[id(result)] = self.accesses[id(body_op)].vary
                else:
                    vary = frozenset()
                    for value in body_op.operands:
                        vary = vary | self._vary_of(value)
                    self.vary[id(result)] = vary
        if len(stores) != 1:
            raise _Bail("multiple-stores" if stores else "no-store")
        self.store = stores[0]
        store_access = self.accesses[id(self.store)]
        self.reduced = frozenset(range(self.rank)) - store_access.vary
        if not self.reduced:
            self._check_elementwise_hazards(store_access)
        else:
            self._match_reduction(store_access)

    def _loads_of_stored_buffer(self, store_access: _Access) -> List[_Access]:
        return [
            access
            for access in self.accesses.values()
            if isinstance(access.op, AffineLoadOp)
            and id(access.op.memref) == store_access.signature[2]
        ]

    def _check_elementwise_hazards(self, store_access: _Access) -> None:
        for access in self._loads_of_stored_buffer(store_access):
            if access.signature != store_access.signature:
                raise _Bail("loop-carried-dependence")

    def _match_reduction(self, store_access: _Access) -> None:
        """Some ivs absent from the store: only ``acc = acc +/- v`` folds."""
        update = self.store.value.defining_op
        if update is None or update.name not in ("std.addf", "std.subf"):
            raise _Bail("not-a-reduction")
        if not update.results[0].has_one_use():
            raise _Bail("reduction-update-shared")
        lhs, rhs = update.operand(0), update.operand(1)
        acc, contrib = None, None
        for candidate, other in ((lhs, rhs), (rhs, lhs)):
            load = candidate.defining_op
            if (
                isinstance(load, AffineLoadOp)
                and id(load) in self.accesses
                and self.accesses[id(load)].signature == store_access.signature
            ):
                acc, contrib = load, other
                break
        if acc is None:
            raise _Bail("no-accumulator-load")
        if update.name == "std.subf" and update.operand(0) is not acc.results[0]:
            raise _Bail("subtrahend-accumulator")
        if not acc.results[0].has_one_use():
            raise _Bail("accumulator-reused")
        loads = self._loads_of_stored_buffer(store_access)
        if any(load.op is not acc for load in loads):
            raise _Bail("extra-reduction-load")
        if not self.reduced <= self._vary_of(contrib):
            # Summing a value that is broadcast along a reduced axis
            # reassociates n sequential rounded adds into one multiply.
            raise _Bail("invariant-reduction-axis")
        self.reduction = (update, acc, contrib)
        self.fused_ops = {id(update), id(acc)}
        if self.allow_contraction:
            self.contraction = self._match_contraction(contrib)
            if self.contraction is not None:
                leaves, scalars, internal = self.contraction
                self.fused_ops.update(id(op) for op in internal)

    def _match_contraction(self, contrib):
        """Recognise ``contrib`` as a product of vector loads (times
        scalar factors) suitable for one :func:`~.runtime.contract`
        call.  Returns ``(vector_loads, scalar_values, internal_muls)``
        or ``None``."""
        if self.rank > len(_EINSUM_LETTERS):
            return None
        # Every output label must appear in some input: the product
        # must vary over the full band, not just the reduced axes.
        if self._vary_of(contrib) != frozenset(range(self.rank)):
            return None
        leaves: List[AffineLoadOp] = []
        scalars: List = []
        internal: List[Operation] = []

        def walk(value) -> bool:
            if not self._vary_of(value):
                scalars.append(value)
                return True
            op = value.defining_op
            if (
                isinstance(op, AffineLoadOp)
                and id(op) in self.accesses
                and self.accesses[id(op)].is_vector
            ):
                leaves.append(op)
                return True
            if (
                op is not None
                and op.name == "std.mulf"
                and id(op.results[0]) in self.vary
                and value.has_one_use()
            ):
                internal.append(op)
                return walk(op.operand(0)) and walk(op.operand(1))
            return False

        if not walk(contrib) or len(leaves) < 2:
            return None
        return leaves, scalars, internal

    # -- emission --------------------------------------------------------

    def emit(self) -> None:
        ctx = self.ctx
        self.lb_names: List[str] = []
        self.n_names: List[str] = []
        for loop in self.band:
            lb = ctx.bound_src(loop.lower_bound_map, loop.lb_operands, minimize=False)
            ub = ctx.bound_src(loop.upper_bound_map, loop.ub_operands, minimize=True)
            lb_name = ctx.fresh("_lb")
            n = ctx.fresh("_n")
            ctx.emit(f"{lb_name} = {lb}")
            ctx.emit(f"{n} = len(range({lb_name}, {ub}, {loop.step}))")
            self.lb_names.append(lb_name)
            self.n_names.append(n)
        guard = " and ".join(f"{n} > 0" for n in self.n_names)
        ctx.emit(f"if {guard}:")
        ctx.indent += 1
        for body_op in self.body:
            if id(body_op) in self.fused_ops:
                continue
            self._emit_body_op(body_op)
        ctx.indent -= 1

    def _emit_body_op(self, body_op: Operation) -> None:
        ctx = self.ctx
        name = body_op.name
        if name == "std.constant":
            value = body_op.value
            literal = (
                repr(float(value))
                if is_float(body_op.results[0].type)
                else repr(int(value))
            )
            self.values[id(body_op.results[0])] = literal
        elif name == "affine.load":
            self._emit_load(body_op)
        elif name == "affine.store":
            self._emit_store(body_op)
        elif name == "std.negf":
            a = self._value(body_op.operand(0))
            src = f"(-{a})"
            if not self._vary_of(body_op.results[0]) and str(
                body_op.results[0].type
            ) == "f32":
                src = f"_f32({src})"
            self._assign(body_op.results[0], src)
        elif name == "std.cmpf":
            a = self._value(body_op.operand(0))
            b = self._value(body_op.operand(1))
            self._assign(
                body_op.results[0],
                f"({a} {_CMPF_PYTHON[body_op.predicate]} {b})",
            )
        elif name == "std.select":
            c, t, f = (self._value(body_op.operand(i)) for i in range(3))
            if self._vary_of(body_op.results[0]) or self._vary_of(
                body_op.operand(0)
            ):
                src = f"_np.where({c}, {t}, {f})"
            else:
                src = f"({t} if {c} else {f})"
            self._assign(body_op.results[0], src)
        else:  # float binary
            a = self._value(body_op.operand(0))
            b = self._value(body_op.operand(1))
            vec = bool(self._vary_of(body_op.results[0]))
            table = _VEC_BINOPS if vec else _SCALAR_BINOPS
            src = table[name].format(a=a, b=b)
            if not vec and str(body_op.results[0].type) == "f32":
                src = f"_f32({src})"
            self._assign(body_op.results[0], src)

    def _assign(self, result, src: str) -> None:
        temp = self.ctx.fresh()
        self.ctx.emit(f"{temp} = {src}")
        self.values[id(result)] = temp

    def _value(self, value) -> str:
        src = self.values.get(id(value))
        if src is not None:
            return src
        # Defined outside the band (function arg, outer scalar, ...).
        return self.ctx.name(value)

    def _subscript(self, access: _Access) -> str:
        """Render an access's subscript tuple, slicing every band-iv
        dimension."""
        ctx = self.ctx
        op = access.op
        iv_index = {id(iv): b for b, iv in enumerate(self.ivs)}
        # Index operand names with iv positions replaced by the hoisted
        # lower bounds, so the remaining expression computes each slice
        # *start*.
        names = [
            self.lb_names[iv_index[id(value)]]
            if id(value) in iv_index
            else ctx.name(value)
            for value in op.indices
        ]
        sliced_at = {pos: b for b, (pos, _) in access.axes.items()}
        parts = []
        for pos, expr in enumerate(op.map.results):
            src = affine_expr_src(expr, names)
            b = sliced_at.get(pos)
            if b is not None:
                stride = access.axes[b][1] * self.band[b].step
                start = ctx.fresh("_s")
                ctx.emit(f"{start} = {src}")
                parts.append(
                    f"slice({start}, {start} + {stride} * "
                    f"{self.n_names[b]}, {stride})"
                )
            else:
                parts.append(src)
        return ", ".join(parts)

    def _canonicalize(self, raw: str, access: _Access) -> str:
        """Align a sliced array's axes to band order and broadcast-expand
        missing ivs, so all vector values combine by NumPy broadcasting.
        Both steps are O(1) views."""
        present = sorted(access.axes)
        expr = raw
        perm = tuple(access.sub_order.index(b) for b in present)
        if perm != tuple(range(len(perm))):
            expr = f"{expr}.transpose({perm})"
        if len(present) != self.rank:
            index = ", ".join(
                ":" if b in access.axes else "None" for b in range(self.rank)
            )
            expr = f"{expr}[{index}]"
        if expr is raw:
            return raw
        canon = self.ctx.fresh()
        self.ctx.emit(f"{canon} = {expr}")
        return canon

    def _emit_load(self, load: AffineLoadOp) -> None:
        ctx = self.ctx
        access = self.accesses[id(load)]
        mem = ctx.name(load.memref)
        if access.is_vector:
            raw = ctx.fresh()
            ctx.emit(f"{raw} = {mem}[{self._subscript(access)}]")
            self.raw_views[id(load.results[0])] = raw
            self.values[id(load.results[0])] = self._canonicalize(raw, access)
        else:
            temp = ctx.fresh()
            ctx.emit(f"{temp} = {mem}[{self._subscript(access)}].item()")
            self.values[id(load.results[0])] = temp

    def _labels(self, access: _Access) -> str:
        return "".join(_EINSUM_LETTERS[b] for b in access.sub_order)

    def _emit_store(self, store: AffineStoreOp) -> None:
        ctx = self.ctx
        access = self.accesses[id(store)]
        mem = ctx.name(store.memref)
        if not self.reduced:
            value_src = self._value(store.value)
            if self._vary_of(store.value):
                # Canonical axes are band order; the target's axes are
                # the store's subscript order.
                perm = tuple(access.sub_order)
                if perm != tuple(range(self.rank)):
                    value_src = f"{value_src}.transpose({perm})"
            ctx.emit(f"{mem}[{self._subscript(access)}] = {value_src}")
            return
        update, _acc, contrib = self.reduction
        sign = "+" if update.name == "std.addf" else "-"
        if self.contraction is not None:
            contrib_src = self._emit_contraction(access)
        else:
            contrib_src = self._value(contrib)
            if not self._vary_of(contrib):
                raise EngineError(
                    "engine: internal error — scalar reduction contribution "
                    "should have bailed out during analysis"
                )
            axes = tuple(sorted(self.reduced))
            contrib_src = f"{contrib_src}.sum(axis={axes})"
            # Remaining axes are the kept band ivs in band order; align
            # them to the store's subscript order.
            kept = [b for b in range(self.rank) if b not in self.reduced]
            perm = tuple(kept.index(b) for b in access.sub_order)
            if perm != tuple(range(len(perm))):
                contrib_src = f"{contrib_src}.transpose({perm})"
        subscript = self._subscript(access)
        ctx.emit(
            f"{mem}[{subscript}] = {mem}[{subscript}] {sign} {contrib_src}"
        )

    def _emit_contraction(self, store_access: _Access) -> str:
        leaves, scalars, _internal = self.contraction
        spec = "{}->{}".format(
            ",".join(self._labels(self.accesses[id(leaf)]) for leaf in leaves),
            self._labels(store_access),
        )
        operands = ", ".join(
            self.raw_views[id(leaf.results[0])] for leaf in leaves
        )
        src = f"_rt.contract({spec!r}, {operands})"
        if scalars:
            factors = " * ".join(self._value(value) for value in scalars)
            src = f"(({factors}) * {src})"
        return src
