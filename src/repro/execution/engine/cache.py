"""Content-addressed kernel cache.

A compiled kernel is keyed by the SHA-256 of the module's printed form
plus the pipeline name, so any IR mutation — a different kernel, a
different transform schedule, even a changed constant — produces a new
key, while re-running the same benchmark or replaying the same fuzz
seed hits the cache and skips codegen entirely.  Bounded FIFO eviction
keeps long fuzz campaigns from accumulating unbounded source strings.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Optional

from ...ir import ModuleOp, print_module


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    #: Number of full codegen+compile invocations (== misses unless a
    #: builder raised); benchmarks assert this stays flat on re-runs.
    codegen_count: int = 0
    evictions: int = 0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "codegen_count": self.codegen_count,
            "evictions": self.evictions,
        }


class KernelCache:
    """Maps (module print hash, pipeline name) -> compiled kernel."""

    def __init__(self, max_entries: int = 256):
        if max_entries <= 0:
            raise ValueError("kernel cache needs at least one slot")
        self.max_entries = max_entries
        self._store: "OrderedDict[str, object]" = OrderedDict()
        self.stats = CacheStats()

    @staticmethod
    def key_for(module: ModuleOp, pipeline: str = "") -> str:
        text = print_module(module)
        digest = hashlib.sha256()
        digest.update(text.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(pipeline.encode("utf-8"))
        return digest.hexdigest()

    def get(self, key: str) -> Optional[object]:
        entry = self._store.get(key)
        if entry is not None:
            self._store.move_to_end(key)
        return entry

    def put(self, key: str, compiled: object) -> None:
        self._store[key] = compiled
        self._store.move_to_end(key)
        while len(self._store) > self.max_entries:
            self._store.popitem(last=False)
            self.stats.evictions += 1

    def get_or_compile(
        self,
        module: ModuleOp,
        pipeline: str,
        builder: Callable[[str], object],
    ) -> object:
        key = self.key_for(module, pipeline)
        cached = self.get(key)
        if cached is not None:
            self.stats.hits += 1
            return cached
        self.stats.misses += 1
        compiled = builder(key)
        self.stats.codegen_count += 1
        self.put(key, compiled)
        return compiled

    def clear(self) -> None:
        self._store.clear()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._store)


#: Process-wide default cache shared by all engines (override per
#: engine with ``ExecutionEngine(..., cache=KernelCache())``).
KERNEL_CACHE = KernelCache()
