"""Content-addressed kernel cache (in-memory tier + optional disk tier).

A compiled kernel is keyed by the SHA-256 of the module's printed form
plus the pipeline name, so any IR mutation — a different kernel, a
different transform schedule, even a changed constant — produces a new
key, while re-running the same benchmark or replaying the same fuzz
seed hits the cache and skips codegen entirely.  The in-memory store
is bounded with **LRU eviction** (a ``get`` refreshes recency, so hot
kernels survive long fuzz campaigns while one-shot kernels age out).

Layered underneath, an optional :class:`~.disk_cache.DiskKernelCache`
persists artifacts across processes and sessions: a memory miss falls
through to a disk read (re-``exec`` of the stored kernel source — no
codegen), and a full miss compiles once and populates both tiers.
Worker processes of the parallel driver point at the same directory
and share compiled kernels without any coordination.

Cache-key hot path: printing a large module to hash it is the dominant
cost of a cache *hit*, so the printed-IR fingerprint is memoized on
the module's ``version`` counter (stamped by the PassManager's
incremental-verification machinery) — an unchanged module never
re-prints to hash.  Modules mutated outside any PassManager carry no
version and are conservatively re-printed every time; code that
mutates IR directly after a PassManager run must call
``module.bump_version()`` to invalidate the memo.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Optional

from ...ir import ModuleOp, print_module


@dataclass
class CacheStats:
    """Counter block shared by both cache tiers.

    Engines, the serving front-end and its executor threads all bump
    the same instance concurrently, so every mutation goes through
    :meth:`bump` under a lock — a bare ``stats.hits += 1`` from two
    threads can lose increments, and the serve benchmarks assert
    *exact* counts.
    """

    hits: int = 0
    misses: int = 0
    #: Number of full codegen+compile invocations (== full misses unless
    #: a builder raised); benchmarks assert this stays flat on re-runs
    #: and drops to zero on warm disk-cache runs.
    codegen_count: int = 0
    evictions: int = 0
    #: Payload traffic: bytes of kernel source (or artifact files, for
    #: the disk tier) written into and read out of this tier.
    bytes_written: int = 0
    bytes_read: int = 0
    _lock: threading.Lock = field(
        init=False, repr=False, compare=False, default_factory=threading.Lock
    )

    def bump(self, **deltas: int) -> None:
        """Atomically add ``deltas`` to the named counters."""
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "codegen_count": self.codegen_count,
                "evictions": self.evictions,
                "bytes_written": self.bytes_written,
                "bytes_read": self.bytes_read,
            }


def fingerprint_module(module: ModuleOp) -> str:
    """SHA-256 hex digest of the module's printed form, memoized on the
    module's ``version`` counter when one is present."""
    version = getattr(module, "version", None)
    if version is not None:
        memo = getattr(module, "_fingerprint_memo", None)
        if memo is not None and memo[0] == version:
            return memo[1]
    digest = hashlib.sha256(
        print_module(module).encode("utf-8")
    ).hexdigest()
    if version is not None:
        module._fingerprint_memo = (version, digest)
    return digest


class KernelCache:
    """Maps (module print hash, pipeline name) -> compiled kernel.

    ``disk`` attaches a persistent second tier shared across processes;
    see :mod:`.disk_cache`.
    """

    def __init__(self, max_entries: int = 256, disk=None):
        if max_entries <= 0:
            raise ValueError("kernel cache needs at least one slot")
        self.max_entries = max_entries
        self._store: "OrderedDict[str, object]" = OrderedDict()
        # The store is mutated from engine calls, serving executor
        # threads and the pool bridge concurrently; every structural
        # operation holds this lock (stats have their own).
        self._store_lock = threading.RLock()
        self.stats = CacheStats()
        self.disk = disk

    def attach_disk(self, path: str, max_bytes: Optional[int] = None):
        """Attach (or replace) the persistent tier at ``path``."""
        from .disk_cache import DEFAULT_MAX_BYTES, DiskKernelCache

        self.disk = DiskKernelCache(
            path, DEFAULT_MAX_BYTES if max_bytes is None else max_bytes
        )
        return self.disk

    @staticmethod
    def key_for_text(fingerprint: str, pipeline: str = "") -> str:
        """Key from an already-computed module fingerprint."""
        digest = hashlib.sha256()
        digest.update(fingerprint.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(pipeline.encode("utf-8"))
        return digest.hexdigest()

    @staticmethod
    def key_for(module: ModuleOp, pipeline: str = "") -> str:
        return KernelCache.key_for_text(
            fingerprint_module(module), pipeline
        )

    def get(self, key: str) -> Optional[object]:
        """LRU read: a hit moves the entry to most-recently-used."""
        with self._store_lock:
            entry = self._store.get(key)
            if entry is not None:
                self._store.move_to_end(key)
            return entry

    def put(self, key: str, compiled: object) -> None:
        evicted = 0
        with self._store_lock:
            self._store[key] = compiled
            self._store.move_to_end(key)
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
                evicted += 1
        if evicted:
            self.stats.bump(evictions=evicted)

    def get_or_compile(
        self,
        module: ModuleOp,
        pipeline: str,
        builder: Callable[[str], object],
    ) -> object:
        return self.get_or_compile_key(
            self.key_for(module, pipeline), builder
        )

    def get_or_compile_key(
        self, key: str, builder: Callable[[str], object]
    ) -> object:
        """Like :meth:`get_or_compile` for an already-computed key.

        Lets callers that hold the printed module text (batch driver,
        scale bench) hash it directly — a warm hit then needs neither
        a reparse nor a reprint of the module.
        """
        cached = self.get(key)
        if cached is not None:
            self.stats.bump(
                hits=1, bytes_read=len(getattr(cached, "source", ""))
            )
            return cached
        self.stats.bump(misses=1)
        if self.disk is not None:
            compiled = self.disk.load(key)
            if compiled is not None:
                self.put(key, compiled)
                self.stats.bump(
                    bytes_written=len(getattr(compiled, "source", ""))
                )
                return compiled
        compiled = builder(key)
        self.stats.bump(
            codegen_count=1,
            bytes_written=len(getattr(compiled, "source", "")),
        )
        self.put(key, compiled)
        if self.disk is not None:
            self.disk.store(key, compiled)
        return compiled

    def snapshot(self) -> dict:
        """Combined statistics for both tiers (``disk`` is ``None``
        when no persistent tier is attached)."""
        return {
            "memory": self.stats.snapshot(),
            "disk": self.disk.stats.snapshot()
            if self.disk is not None
            else None,
        }

    def clear(self) -> None:
        with self._store_lock:
            self._store.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        with self._store_lock:
            return len(self._store)


def _default_cache() -> KernelCache:
    from .disk_cache import default_disk_cache

    return KernelCache(disk=default_disk_cache())


#: Process-wide default cache shared by all engines (override per
#: engine with ``ExecutionEngine(..., cache=KernelCache())``).  Gains
#: a persistent disk tier when ``MLT_CACHE_DIR`` is set — the parallel
#: drivers rely on this to share artifacts across worker processes.
KERNEL_CACHE = _default_cache()
