"""Disk-backed, content-addressed artifact cache (the persistent tier).

The in-memory :class:`~.cache.KernelCache` dies with the process; this
tier keys artifacts by the same SHA-256 content hash but stores them as
files, so compiled kernels are shared across worker processes of the
parallel driver and survive across sessions.

Concurrency model (many processes, one directory, no daemon):

* **Atomic writes** — artifacts are written to a private temp file in
  the cache directory and published with :func:`os.replace`, so a
  reader never observes a half-written artifact.  Racing writers for
  the same key each publish a byte-identical artifact; last rename
  wins and both are valid.
* **Lock-free reads** — a read is a single ``open``; a missing or
  corrupt file (truncated by a crashed writer on a non-POSIX
  filesystem, pruned concurrently, …) is treated as a miss, never an
  error.
* **Bounded size with LRU pruning** — each read best-effort touches
  the artifact's mtime, and writers prune oldest-mtime artifacts once
  the directory exceeds ``max_bytes``.  Pruning races (two writers
  deleting the same file) are benign.

Two payload flavors share the machinery: *kernel* artifacts hold the
generated Python source of a compiled module (re-hydrated with
``exec``, skipping codegen entirely), and *text* artifacts hold
arbitrary strings — the evaluation/batch drivers use them to persist
printed post-pipeline IR so warm runs skip the C frontend and the
raising pipeline too.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import TYPE_CHECKING, Optional

from .cache import CacheStats

if TYPE_CHECKING:  # pragma: no cover
    from .codegen import CompiledModule

ARTIFACT_SUFFIX = ".artifact.json"

#: Default size bound: plenty for thousands of kernels (artifacts are a
#: few KiB of generated source each) while keeping runaway fuzz
#: campaigns from filling the disk.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


class DiskKernelCache:
    """Content-addressed artifact files under one directory.

    ``load``/``store`` move :class:`~.codegen.CompiledModule` payloads
    (kernel source, re-``exec``-ed on load); ``load_text``/``store_text``
    move plain strings.  Both are safe to call concurrently from any
    number of processes pointed at the same directory.
    """

    def __init__(self, path: str, max_bytes: int = DEFAULT_MAX_BYTES):
        if not path:
            raise ValueError("disk cache needs a directory path")
        self.path = os.path.abspath(path)
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        os.makedirs(self.path, exist_ok=True)

    # -- paths ----------------------------------------------------------

    def artifact_path(self, key: str) -> str:
        return os.path.join(self.path, key + ARTIFACT_SUFFIX)

    # -- generic payload I/O -------------------------------------------

    def _read_payload(self, key: str) -> Optional[dict]:
        try:
            with open(self.artifact_path(key), "rb") as handle:
                raw = handle.read()
            payload = json.loads(raw.decode("utf-8"))
        except (OSError, ValueError):
            self.stats.bump(misses=1)
            return None
        if not isinstance(payload, dict) or payload.get("key") != key:
            self.stats.bump(misses=1)
            return None
        self.stats.bump(hits=1, bytes_read=len(raw))
        try:  # recency signal for LRU pruning; best-effort only
            os.utime(self.artifact_path(key))
        except OSError:
            pass
        return payload

    def _write_payload(self, key: str, payload: dict) -> None:
        raw = json.dumps(payload, sort_keys=True).encode("utf-8")
        try:
            fd, tmp = tempfile.mkstemp(
                prefix=".tmp-" + key[:12] + "-", dir=self.path
            )
        except FileNotFoundError:
            # The directory was wiped out from under a long-lived
            # handle (cache reset on a running server): recreate it.
            os.makedirs(self.path, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=".tmp-" + key[:12] + "-", dir=self.path
            )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(raw)
            os.replace(tmp, self.artifact_path(key))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.bump(bytes_written=len(raw))
        self._prune()

    # -- kernel artifacts ----------------------------------------------

    def load(self, key: str) -> Optional["CompiledModule"]:
        """Re-hydrate a compiled kernel, or ``None`` on a miss."""
        from .codegen import load_compiled_source

        payload = self._read_payload(key)
        if payload is None or "source" not in payload:
            return None
        try:
            return load_compiled_source(
                payload["source"],
                key,
                vectorize_stats=payload.get("vectorize_stats"),
                opt_stats=payload.get("opt_stats"),
            )
        except Exception:
            # An artifact that no longer execs (e.g. written by an
            # incompatible engine version) is a miss, not a crash.
            self.stats.bump(hits=-1, misses=1)
            return None

    def store(self, key: str, compiled: "CompiledModule") -> None:
        payload = {
            "key": key,
            "kind": "kernel",
            "source": compiled.source,
            "functions": sorted(compiled.functions),
            "created": time.time(),
        }
        stats = getattr(compiled, "vectorize_stats", None)
        if stats is not None:
            payload["vectorize_stats"] = stats
        opt_stats = getattr(compiled, "opt_stats", None)
        if opt_stats is not None:
            payload["opt_stats"] = opt_stats
        self._write_payload(key, payload)

    # -- text artifacts (printed IR, batch outputs) --------------------

    def load_text(self, key: str) -> Optional[str]:
        payload = self._read_payload(key)
        if payload is None or "text" not in payload:
            return None
        return payload["text"]

    def store_text(self, key: str, text: str) -> None:
        self._write_payload(
            key,
            {"key": key, "kind": "text", "text": text, "created": time.time()},
        )

    # -- maintenance ----------------------------------------------------

    def _entries(self):
        """(mtime, size, path) for every artifact; racing deletions are
        skipped."""
        entries = []
        try:
            names = os.listdir(self.path)
        except OSError:
            return entries
        for name in names:
            if not name.endswith(ARTIFACT_SUFFIX):
                continue
            full = os.path.join(self.path, name)
            try:
                info = os.stat(full)
            except OSError:
                continue
            entries.append((info.st_mtime, info.st_size, full))
        return entries

    def total_bytes(self) -> int:
        return sum(size for _, size, _ in self._entries())

    def _prune(self) -> None:
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return
        for mtime, size, full in sorted(entries):
            try:
                os.unlink(full)
            except OSError:
                continue
            self.stats.bump(evictions=1)
            total -= size
            if total <= self.max_bytes:
                break

    def __len__(self) -> int:
        return len(self._entries())


def default_disk_cache() -> Optional[DiskKernelCache]:
    """The process-default persistent tier, from ``MLT_CACHE_DIR``.

    Unset (or empty) means no disk tier — unit tests and one-shot runs
    stay hermetic unless they opt in.
    """
    path = os.environ.get("MLT_CACHE_DIR", "")
    if not path:
        return None
    try:
        return DiskKernelCache(path)
    except OSError:
        return None
