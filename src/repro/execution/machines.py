"""Machine models for the paper's two test platforms (Table I).

Since the reproduction runs without the authors' testbed, performance
is predicted by an analytical model parameterized by per-core machine
characteristics:

  * scalar/vector FP throughput (FMA-based),
  * a three-level cache hierarchy with per-level sustained bandwidths,
  * sustained single-thread memory bandwidth,
  * measured library efficiencies (the MKL-DNN reference lines of
    Figure 9: 145.5 GFLOP/s on the i9-9900K, 63.6 on the 2920X; the
    OpenBLAS/BLIS ``affine.matmul`` path at 23.59 GFLOP/s from §V-A),
  * the fixed dynamic-link dispatch overhead of library calls the
    paper measures at ~1.5 ms (§V-B, atax discussion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class CacheLevel:
    name: str
    size_bytes: int
    bandwidth_gbs: float  # sustained, single core


@dataclass(frozen=True)
class Machine:
    """Per-core performance characteristics of one platform."""

    name: str
    frequency_ghz: float
    simd_width_f32: int  # f32 lanes per vector FMA
    fma_units: int
    caches: Tuple[CacheLevel, ...]
    memory_bandwidth_gbs: float
    #: fraction of vector peak reachable by compiled (non-library) code
    vector_efficiency: float
    #: throughput penalty for non-vectorized reductions (dep. chains)
    reduction_penalty: float
    #: library GFLOP/s for level-3 (GEMM-shaped) kernels, by library
    library_gemm_gflops: Dict[str, float]
    #: the custom affine.matmul OpenBLAS/BLIS codegen path (§V-A)
    blis_matmul_gflops: float
    #: fixed per-call dispatch overhead of dynamically linked libraries
    library_call_overhead_s: float = 1.5e-3
    #: loop control overhead (increment+compare+branch), cycles/iter
    loop_overhead_cycles: float = 2.0

    @property
    def scalar_gflops(self) -> float:
        """Scalar FMA throughput: 2 flops per cycle."""
        return self.frequency_ghz * 2.0

    @property
    def vector_gflops(self) -> float:
        return (
            self.frequency_ghz
            * 2.0
            * self.simd_width_f32
            * self.fma_units
            * self.vector_efficiency
        )

    def cache_level_for(self, footprint_bytes: float) -> CacheLevel:
        """Smallest cache holding ``footprint_bytes``; memory otherwise."""
        for level in self.caches:
            if footprint_bytes <= level.size_bytes:
                return level
        return CacheLevel("mem", 1 << 62, self.memory_bandwidth_gbs)

    def library_gflops(self, library: str, level: int) -> float:
        """Library throughput for level-3 (GEMM) or level-2 (GEMV) BLAS."""
        gemm = self.library_gemm_gflops.get(
            library, min(self.library_gemm_gflops.values())
        )
        if level == 3:
            return gemm
        # Level-2 BLAS is memory-bound: 0.5 flop/byte against streaming
        # bandwidth.
        return self.memory_bandwidth_gbs * 0.5


INTEL_I9_9900K = Machine(
    name="Intel i9-9900K",
    frequency_ghz=3.6,
    simd_width_f32=8,  # AVX2
    fma_units=2,
    caches=(
        CacheLevel("L1", 32 * 1024, 400.0),
        CacheLevel("L2", 256 * 1024, 120.0),
        CacheLevel("L3", 16 * 1024 * 1024, 60.0),
    ),
    memory_bandwidth_gbs=18.0,
    vector_efficiency=0.65,
    reduction_penalty=0.5,
    library_gemm_gflops={"mkl-dnn": 145.5, "openblas": 120.0},
    blis_matmul_gflops=52.0,
)

AMD_2920X = Machine(
    name="AMD 2920X",
    frequency_ghz=4.3,
    simd_width_f32=8,  # AVX2
    fma_units=2,
    caches=(
        CacheLevel("L1", 32 * 1024, 350.0),
        CacheLevel("L2", 512 * 1024, 100.0),
        CacheLevel("L3", 32 * 1024 * 1024, 45.0),
    ),
    memory_bandwidth_gbs=14.0,
    vector_efficiency=0.55,
    reduction_penalty=0.5,
    library_gemm_gflops={"mkl-dnn": 63.6, "openblas": 65.9},
    blis_matmul_gflops=23.59,
)

MACHINES: List[Machine] = [INTEL_I9_9900K, AMD_2920X]
