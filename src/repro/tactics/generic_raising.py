"""Raising arbitrary contractions to ``linalg.generic``.

The stock tactics target *named* ops (matmul, matvec, conv, the TTGT
specs).  This module adds the raising path the paper lists as future
work ("Shortly, we will provide more raising paths"): any
multiply-accumulate loop nest whose accesses are plain permutations of
the band's induction variables is raised to a ``linalg.generic`` with
the appropriate indexing maps and iterator types — preserving the
information that the computation is a structured contraction even when
no named op or library routine fits.

It runs at lower benefit than every named tactic, so it only captures
what they leave behind (e.g. a transposed-output GEMM, or contractions
outside the seven TTGT specs).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.accesses import MemoryAccess, access_function
from ..dialects import linalg as linalg_d
from ..dialects import std
from ..dialects.affine import (
    AffineForOp,
    AffineLoadOp,
    AffineStoreOp,
    perfect_nest,
)
from ..ir import (
    AffineMap,
    FrozenPatternSet,
    FunctionPass,
    Operation,
    PatternRewriter,
    RewritePattern,
    Value,
    apply_patterns_greedily,
)
from ..ir import affine_expr as ae
from .raising import RaisingStats


def _simple_subscript_dims(
    access: MemoryAccess, iv_positions: Dict[int, int]
) -> Optional[List[int]]:
    """If every subscript is exactly one band IV, return their band
    positions (in subscript order)."""
    dims: List[int] = []
    for sub in access.subscripts:
        if sub.constant != 0 or len(sub.coeffs) != 1:
            return None
        ((iv, coeff),) = sub.coeffs.items()
        if coeff != 1 or id(iv) not in iv_positions:
            return None
        dims.append(iv_positions[id(iv)])
    if len(set(dims)) != len(dims):
        return None
    return dims


class GenericContractionPattern(RewritePattern):
    """MAC loop nests -> linalg.generic (catch-all raising path)."""

    root_op_name = "affine.for"
    benefit = 0  # strictly after every named tactic

    def __init__(self, stats: Optional[RaisingStats] = None):
        self.stats = stats

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if not isinstance(op, AffineForOp):
            return False
        parent = op.parent_op
        if isinstance(parent, AffineForOp) and len(parent.ops_in_body()) == 1:
            return False
        band = perfect_nest(op)
        for loop in band:
            if loop.constant_lower_bound() != 0 or loop.step != 1:
                return False
            if loop.constant_trip_count() is None:
                return False
        payload = band[-1].ops_in_body()
        counts: Dict[str, int] = {}
        for body_op in payload:
            counts[body_op.name] = counts.get(body_op.name, 0) + 1
        if counts != {
            "affine.load": 3,
            "std.mulf": 1,
            "std.addf": 1,
            "affine.store": 1,
        }:
            return False

        store = next(o for o in payload if isinstance(o, AffineStoreOp))
        add = store.value.defining_op
        if not isinstance(add, std.AddFOp):
            return False
        mul = None
        acc_load = None
        for operand in add.operands:
            def_op = operand.defining_op
            if isinstance(def_op, std.MulFOp):
                mul = def_op
            elif isinstance(def_op, AffineLoadOp):
                acc_load = def_op
        if mul is None or acc_load is None:
            return False
        factors = [v.defining_op for v in mul.operands]
        if not all(isinstance(f, AffineLoadOp) for f in factors):
            return False

        out_access = access_function(store)
        acc_access = access_function(acc_load)
        in_accesses = [access_function(f) for f in factors]
        if out_access is None or acc_access is None or None in in_accesses:
            return False
        if not out_access.same_element(acc_access):
            return False
        if acc_access.memref in [a.memref for a in in_accesses]:
            return False  # accumulator aliased as input: not a contraction

        iv_positions = {
            id(loop.induction_var): i for i, loop in enumerate(band)
        }
        out_dims = _simple_subscript_dims(out_access, iv_positions)
        in_dims = [
            _simple_subscript_dims(a, iv_positions) for a in in_accesses
        ]
        if out_dims is None or None in in_dims:
            return False
        covered = set(out_dims)
        for dims in in_dims:
            covered.update(dims)
        if covered != set(range(len(band))):
            return False

        num_loops = len(band)
        maps = [
            AffineMap(num_loops, 0, [ae.dim(d) for d in dims])
            for dims in [*in_dims, out_dims]
        ]
        iterator_types = [
            "parallel" if d in set(out_dims) else "reduction"
            for d in range(num_loops)
        ]

        rewriter.set_insertion_point_before(op)
        generic = linalg_d.GenericOp.create(
            inputs=[a.memref for a in in_accesses],
            outputs=[out_access.memref],
            indexing_maps=maps,
            iterator_types=iterator_types,
        )
        block = generic.body
        a_arg, b_arg, c_arg = block.arguments
        new_mul = block.append(std.MulFOp.create(a_arg, b_arg))
        new_add = block.append(std.AddFOp.create(new_mul.result, c_arg))
        block.append(linalg_d.LinalgYieldOp.create([new_add.result]))
        rewriter.insert(generic)

        rewriter.erase_nest(band[0])
        if self.stats is not None:
            self.stats.record("GENERIC")
        return True


def raise_to_generic(module) -> RaisingStats:
    """Apply only the generic-contraction raising path."""
    from ..ir import apply_patterns_greedily

    stats = RaisingStats()
    apply_patterns_greedily(module, [GenericContractionPattern(stats)])
    return stats


class GenericRaisingPass(FunctionPass):
    """-raise-affine-to-generic: catch-all contraction raising."""

    name = "raise-affine-to-generic"

    def __init__(self):
        self.stats = RaisingStats()
        # One frozen set per pass object (the pattern closes over a
        # stable stats instance, so counters accumulate across runs).
        self._frozen = FrozenPatternSet(
            [GenericContractionPattern(self.stats)]
        )

    def run_on_function(self, func, context):
        result = apply_patterns_greedily(func, self._frozen)
        self.rewrite_results.append(result)
        return result.changed
