"""A miniature TableGen: records, template instantiation and backends.

TableGen files are only *containers* of domain-specific information —
they have no meaning without a backend (§II).  Here the records are
:class:`~repro.tactics.tds.TacticRecord` instances; the
:class:`TableGenBackend` interprets them at "compile time" and
generates the matchers and builders (the Python analogue of the C++
declarations the paper's backend emits).  ``emit_python`` produces the
generated code as source text — the moral equivalent of Listing 7.
"""

from __future__ import annotations

import re
from typing import List, Optional

from .tdl.ast import TdlSyntaxError
from .tdl.parser import _TdlParser
from .tds import BUILDER_KINDS, BuilderSpec, TacticRecord


class TableGenError(TdlSyntaxError):
    pass


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------

_DEF_RE = re.compile(
    r"def\s+(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s*:\s*Tactic\s*<", re.MULTILINE
)


def _find_matching(source: str, open_pos: int, open_ch: str, close_ch: str) -> int:
    depth = 0
    for i in range(open_pos, len(source)):
        if source[i] == open_ch:
            depth += 1
        elif source[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i
    raise TableGenError(f"unbalanced {open_ch}...{close_ch}")


def parse_tablegen(source: str) -> List[TacticRecord]:
    records: List[TacticRecord] = []
    for match in _DEF_RE.finditer(source):
        name = match.group("name")
        open_angle = match.end() - 1
        close_angle = _find_matching(source, open_angle, "<", ">")
        body = source[open_angle + 1:close_angle]
        records.append(_parse_tactic_body(name, body))
    if not records and source.strip():
        raise TableGenError("no Tactic records found")
    return records


def _parse_tactic_body(name: str, body: str) -> TacticRecord:
    # Split "pattern, [builders]" at the top-level '[',
    bracket = body.find("[")
    if bracket == -1:
        raise TableGenError(f"{name}: missing builder list")
    pattern_text = body[:bracket].rstrip().rstrip(",")
    close = _find_matching(body, bracket, "[", "]")
    builders_text = body[bracket + 1:close]
    parser = _TdlParser(pattern_text)
    pattern = parser.parse_statement()
    builders = _parse_builder_list(builders_text)
    return TacticRecord(name, pattern, builders)


_BUILDER_RE = re.compile(
    r"(?P<kind>" + "|".join(BUILDER_KINDS) + r")\s*<"
)


def _parse_builder_list(text: str) -> List[BuilderSpec]:
    builders: List[BuilderSpec] = []
    for match in _BUILDER_RE.finditer(text):
        kind = match.group("kind")
        open_angle = match.end() - 1
        close_angle = _find_matching(text, open_angle, "<", ">")
        builders.append(
            _parse_builder(kind, text[open_angle + 1:close_angle])
        )
    return builders


def _parse_builder(kind: str, body: str) -> BuilderSpec:
    ins = _parse_name_list(body, "In")
    outs = _parse_name_list(body, "Out")
    expr = _parse_expr(body)
    dims = _parse_dims(body)
    return BuilderSpec(kind, ins, outs, expr, dims)


def _parse_name_list(body: str, tag: str) -> List[str]:
    match = re.search(tag + r"\s*<\s*\[(?P<names>[^\]]*)\]\s*>", body)
    if match is None:
        raise TableGenError(f"builder missing {tag}<[...]>")
    names = [n.strip() for n in match.group("names").split(",") if n.strip()]
    return names


def _parse_dims(body: str) -> Optional[List[List[str]]]:
    match = re.search(r"Dims\s*<\s*\[", body)
    if match is None:
        return None
    open_bracket = match.end() - 1
    close_bracket = _find_matching(body, open_bracket, "[", "]")
    inner = body[open_bracket + 1:close_bracket]
    groups: List[List[str]] = []
    pos = 0
    while pos < len(inner):
        ch = inner[pos]
        if ch == "{":
            end = _find_matching(inner, pos, "{", "}")
            groups.append(
                [x.strip() for x in inner[pos + 1:end].split(",") if x.strip()]
            )
            pos = end + 1
        elif ch.isalnum() or ch == "_":
            end = pos
            while end < len(inner) and (inner[end].isalnum() or inner[end] == "_"):
                end += 1
            groups.append([inner[pos:end]])
            pos = end
        else:
            pos += 1
    return groups


def _parse_expr(body: str):
    match = re.search(r"Expr\s*<\s*\{", body)
    if match is None:
        return None
    open_brace = match.end() - 1
    close_brace = _find_matching(body, open_brace, "{", "}")
    inner = body[open_brace + 1:close_brace]
    if "{" in inner:
        # reassociation groups: {{0, 1}, 2}
        groups: List[List[int]] = []
        pos = 0
        while pos < len(inner):
            ch = inner[pos]
            if ch == "{":
                end = _find_matching(inner, pos, "{", "}")
                groups.append(
                    [int(x) for x in inner[pos + 1:end].split(",") if x.strip()]
                )
                pos = end + 1
            elif ch.isdigit():
                end = pos
                while end < len(inner) and inner[end].isdigit():
                    end += 1
                groups.append([int(inner[pos:end])])
                pos = end
            else:
                pos += 1
        return groups
    return [int(x) for x in inner.split(",") if x.strip()]


# ----------------------------------------------------------------------
# Backend
# ----------------------------------------------------------------------


class TableGenBackend:
    """Interprets TDS records and generates matchers/builders.

    ``compile`` produces executable :class:`CompiledTactic` objects;
    ``emit_python`` renders the generated matcher code as source text
    for inspection (the analogue of the emitted C++ in Listing 7).
    """

    def compile(self, records) -> list:
        from .compiled import compile_tactic

        return [compile_tactic(record) for record in records]

    def emit_python(self, record: TacticRecord) -> str:
        pattern = record.pattern
        loops = pattern.index_vars()
        lines: List[str] = []
        lines.append(f"# generated from TDS record {record.name}")
        nest = "For(" * len(loops) + "access_callback" + ")" * len(loops)
        lines.append(f"structural = {nest}")
        lines.append("")
        lines.append("def access_callback(body):")
        lines.append("    with AccessPatternContext() as pctx:")
        for var in loops:
            lines.append(f"        _{var} = m_Placeholder()")
        tensors: List[str] = []
        for access in [pattern.lhs, *pattern.rhs]:
            if access.tensor not in tensors:
                tensors.append(access.tensor)
        for tensor in tensors:
            lines.append(f"        _{tensor} = m_ArrayPlaceholder()")
        lhs = pattern.lhs
        subs = ", ".join(f"_{i}" for i in lhs.simple_index_names())
        lines.append(
            f"        store = m_Op(AffineStoreOp, _{lhs.tensor}({subs}))"
        )
        if pattern.op == "+=" and len(pattern.rhs) == 2:
            r0, r1 = pattern.rhs
            s0 = ", ".join(f"_{i}" for i in r0.index_vars())
            s1 = ", ".join(f"_{i}" for i in r1.index_vars())
            lines.append(
                f"        body_matcher = m_Op(AddFOp, "
                f"m_Op(AffineLoadOp, _{lhs.tensor}({subs})), "
                f"m_Op(MulFOp, m_Op(AffineLoadOp, _{r0.tensor}({s0})), "
                f"m_Op(AffineLoadOp, _{r1.tensor}({s1}))))"
            )
        else:
            r0 = pattern.rhs[0]
            s0 = ", ".join(f"_{i}" for i in r0.index_vars())
            lines.append(
                f"        body_matcher = m_Op(AffineLoadOp, _{r0.tensor}({s0}))"
            )
        lines.append(
            "        return match_block_accesses(body, store, body_matcher)"
        )
        return "\n".join(lines)
