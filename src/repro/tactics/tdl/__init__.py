"""TDL — the Tactics Description Language (§III-A, §IV)."""

from .ast import (  # noqa: F401
    TdlAccess,
    TdlIndexExpr,
    TdlStatement,
    TdlSyntaxError,
    TdlTactic,
)
from .parser import parse_tdl  # noqa: F401
from .frontend import tdl_to_tds  # noqa: F401
