"""Parser for the Tactics Description Language (grammar in Fig. 4).

Accepted forms::

    def NAME {
      pattern
        <stmt>
      builder
        <stmt>*
    }

    def NAME { pattern = builder <stmt> }      # pattern doubles as builder

A statement is ``access ('='|'+=') access {'*' access} [where ...]``
with accesses in Einstein index notation; index expressions may be
bare variables, sums (``y + kh``) and constant-scaled/shifted forms
(``2*i + 1``).
"""

from __future__ import annotations

import re
from typing import List, Tuple

from .ast import (
    TdlAccess,
    TdlIndexExpr,
    TdlStatement,
    TdlSyntaxError,
    TdlTactic,
)

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<comment>//[^\n]*)|(?P<op>\+=|[(){}=*+,\-])|"
    r"(?P<num>\d+)|(?P<id>[A-Za-z_][A-Za-z_0-9]*))"
)


def _tokenize(source: str) -> List[Tuple[str, str, int]]:
    tokens = []
    pos = 0
    line = 1
    while pos < len(source):
        newline = source.find("\n", pos)
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            remaining = source[pos:].strip()
            if not remaining:
                break
            raise TdlSyntaxError(f"bad TDL input near {remaining[:20]!r}", line)
        line += source.count("\n", pos, match.end())
        kind = match.lastgroup
        if kind != "comment":
            tokens.append((kind, match.group(kind), line))
        pos = match.end()
    tokens.append(("eof", "", line))
    return tokens


class _TdlParser:
    def __init__(self, source: str):
        self.tokens = _tokenize(source)
        self.pos = 0

    def peek(self) -> Tuple[str, str, int]:
        return self.tokens[self.pos]

    def next(self) -> Tuple[str, str, int]:
        tok = self.tokens[self.pos]
        if tok[0] != "eof":
            self.pos += 1
        return tok

    def at(self, text: str) -> bool:
        return self.peek()[1] == text

    def accept(self, text: str) -> bool:
        if self.at(text):
            self.pos += 1
            return True
        return False

    def expect(self, text: str):
        kind, got, line = self.next()
        if got != text:
            raise TdlSyntaxError(f"expected {text!r}, got {got!r}", line)

    def expect_id(self) -> str:
        kind, text, line = self.next()
        if kind != "id":
            raise TdlSyntaxError(f"expected identifier, got {text!r}", line)
        return text

    # ------------------------------------------------------------------

    def parse_file(self) -> List[TdlTactic]:
        tactics = []
        while self.peek()[0] != "eof":
            tactics.append(self.parse_tactic())
        return tactics

    def parse_tactic(self) -> TdlTactic:
        self.expect("def")
        name = self.expect_id()
        self.expect("{")
        self.expect("pattern")
        if self.accept("="):
            # "pattern = builder <stmt>": one statement for both roles.
            self.expect("builder")
            stmt = self.parse_statement()
            self.expect("}")
            return TdlTactic(name, stmt, [stmt])
        pattern = self.parse_statement()
        builders: List[TdlStatement] = []
        if self.accept("builder"):
            while not self.at("}"):
                builders.append(self.parse_statement())
        self.expect("}")
        return TdlTactic(name, pattern, builders)

    def parse_statement(self) -> TdlStatement:
        lhs = self.parse_access()
        kind, op, line = self.next()
        if op not in ("=", "+="):
            raise TdlSyntaxError(f"expected '=' or '+=', got {op!r}", line)
        rhs = [self.parse_access()]
        while self.accept("*"):
            rhs.append(self.parse_access())
        where = {}
        if self.accept("where"):
            while True:
                var = self.expect_id()
                self.expect("=")
                group = [self.expect_id()]
                while self.accept("*"):
                    group.append(self.expect_id())
                where[var] = group
                if not self.accept(","):
                    break
        return TdlStatement(lhs, op, rhs, where)

    def parse_access(self) -> TdlAccess:
        tensor = self.expect_id()
        self.expect("(")
        indices = []
        if not self.at(")"):
            indices.append(self.parse_index_expr())
            while self.accept(","):
                indices.append(self.parse_index_expr())
        self.expect(")")
        return TdlAccess(tensor, indices)

    def parse_index_expr(self) -> TdlIndexExpr:
        terms: List[Tuple[str, int]] = []
        constant = 0
        sign = 1
        while True:
            kind, text, line = self.next()
            if kind == "num":
                if self.accept("*"):
                    var = self.expect_id()
                    terms.append((var, sign * int(text)))
                else:
                    constant += sign * int(text)
            elif kind == "id":
                coeff = sign
                if self.accept("*"):
                    kind2, text2, line2 = self.next()
                    if kind2 != "num":
                        raise TdlSyntaxError(
                            "index products must have a constant factor", line2
                        )
                    coeff = sign * int(text2)
                terms.append((text, coeff))
            else:
                raise TdlSyntaxError(f"bad index expression at {text!r}", line)
            if self.accept("+"):
                sign = 1
            elif self.accept("-"):
                sign = -1
            else:
                break
        return TdlIndexExpr(terms, constant)


def parse_tdl(source: str) -> List[TdlTactic]:
    """Parse TDL source into tactic definitions."""
    return _TdlParser(source).parse_file()
