"""AST for the Tactics Description Language.

TDL borrows its pattern/replacement syntax from Tensor Comprehensions
(Einstein index notation)::

    def TTGT {
      pattern
        C(a,b,c) += A(a,c,d) * B(d,b)
      builder
        D(f,b) = C(a,b,c) where f = a * c
        E(f,d) = A(a,c,d) where f = a * c
        D(f,b) += E(f,d) * B(d,b)
        C(a,b,c) = D(f,b) where f = a * c
    }
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


class TdlSyntaxError(Exception):
    def __init__(self, message: str, line: Optional[int] = None):
        suffix = f" (line {line})" if line is not None else ""
        super().__init__(message + suffix)


class TdlIndexExpr:
    """An affine index expression: ``sum(coeff_i * var_i) + constant``.

    The common case is a bare index variable (one term, coeff 1).
    """

    def __init__(self, terms: Sequence[Tuple[str, int]], constant: int = 0):
        self.terms: List[Tuple[str, int]] = [
            (v, c) for v, c in terms if c != 0
        ]
        self.constant = constant

    @staticmethod
    def var(name: str) -> "TdlIndexExpr":
        return TdlIndexExpr([(name, 1)])

    @property
    def is_simple_var(self) -> bool:
        return (
            len(self.terms) == 1
            and self.terms[0][1] == 1
            and self.constant == 0
        )

    @property
    def single_var(self) -> str:
        if not self.is_simple_var:
            raise TdlSyntaxError(f"index expression {self} is not a bare var")
        return self.terms[0][0]

    def variables(self) -> List[str]:
        return [v for v, _ in self.terms]

    def __str__(self) -> str:
        parts = []
        for var, coeff in self.terms:
            parts.append(var if coeff == 1 else f"{coeff}*{var}")
        if self.constant or not parts:
            parts.append(str(self.constant))
        return " + ".join(parts)

    def __repr__(self) -> str:
        return f"TdlIndexExpr({self})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TdlIndexExpr)
            and sorted(self.terms) == sorted(other.terms)
            and self.constant == other.constant
        )


class TdlAccess:
    """``A(a, c, d)`` — a tensor access in index notation."""

    def __init__(self, tensor: str, indices: Sequence[TdlIndexExpr]):
        self.tensor = tensor
        self.indices = list(indices)

    @property
    def rank(self) -> int:
        return len(self.indices)

    def index_vars(self) -> List[str]:
        """Distinct variables, in order of first appearance."""
        seen: List[str] = []
        for idx in self.indices:
            for var in idx.variables():
                if var not in seen:
                    seen.append(var)
        return seen

    def simple_index_names(self) -> List[str]:
        return [idx.single_var for idx in self.indices]

    def __str__(self) -> str:
        return f"{self.tensor}({', '.join(map(str, self.indices))})"

    def __repr__(self) -> str:
        return f"TdlAccess({self})"


class TdlStatement:
    """``lhs op rhs_0 * rhs_1 * ... [where v = a * b, ...]``.

    ``op`` is '=' (copy/init) or '+=' (accumulation / contraction).
    ``where`` maps a grouped index variable to the ordered list of
    variables it flattens.
    """

    def __init__(
        self,
        lhs: TdlAccess,
        op: str,
        rhs: Sequence[TdlAccess],
        where: Optional[Dict[str, List[str]]] = None,
    ):
        if op not in ("=", "+="):
            raise TdlSyntaxError(f"unsupported statement operator {op!r}")
        self.lhs = lhs
        self.op = op
        self.rhs = list(rhs)
        self.where: Dict[str, List[str]] = dict(where or {})

    @property
    def is_contraction(self) -> bool:
        return self.op == "+=" and len(self.rhs) == 2

    @property
    def is_copy(self) -> bool:
        return self.op == "=" and len(self.rhs) == 1

    def index_vars(self) -> List[str]:
        """All distinct *loop* index variables (where-vars expanded)."""
        seen: List[str] = []

        def add(var: str) -> None:
            if var in self.where:
                for sub in self.where[var]:
                    add(sub)
            elif var not in seen:
                seen.append(var)

        for access in [self.lhs, *self.rhs]:
            for var in access.index_vars():
                add(var)
        return seen

    def __str__(self) -> str:
        rhs = " * ".join(map(str, self.rhs))
        text = f"{self.lhs} {self.op} {rhs}"
        if self.where:
            clauses = ", ".join(
                f"{v} = {' * '.join(group)}" for v, group in self.where.items()
            )
            text += f" where {clauses}"
        return text

    def __repr__(self) -> str:
        return f"TdlStatement({self})"


class TdlTactic:
    """A named tactic: one pattern, a list of builder statements."""

    def __init__(
        self,
        name: str,
        pattern: TdlStatement,
        builders: Sequence[TdlStatement],
    ):
        self.name = name
        self.pattern = pattern
        self.builders = list(builders)

    def __str__(self) -> str:
        lines = [f"def {self.name} {{", "  pattern", f"    {self.pattern}"]
        lines.append("  builder")
        for stmt in self.builders:
            lines.append(f"    {stmt}")
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"TdlTactic({self.name})"
