"""The TDL DSL frontend: lowers tactics to TDS records (§III-B).

Builder statements are classified and decomposed into the five TDS
builder templates.  A copy statement with a ``where`` clause —

    D(f, b) = C(a, b, c) where f = a * c

— decomposes into an (optional) transposition bringing the grouped
dimensions adjacent and in order, followed by a reshape merging them
(lines 2-3 of Listing 4); the inverse direction emits reshape followed
by transpose (lines 6-7).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..tds import BuilderSpec, TacticRecord
from .ast import TdlAccess, TdlStatement, TdlSyntaxError, TdlTactic


def tdl_to_tds(tactic: TdlTactic) -> TacticRecord:
    """Lower one TDL tactic into a TDS record."""
    converter = _Converter(tactic)
    return converter.convert()


class _Converter:
    def __init__(self, tactic: TdlTactic):
        self.tactic = tactic
        self.builders: List[BuilderSpec] = []
        self._temp_counter = 0

    def _temp(self, base: str) -> str:
        name = f"{base}_t{self._temp_counter}"
        self._temp_counter += 1
        return name

    def convert(self) -> TacticRecord:
        for stmt in self.tactic.builders:
            if stmt.is_contraction:
                self._convert_contraction(stmt)
            elif stmt.is_copy:
                self._convert_copy(stmt)
            else:
                raise TdlSyntaxError(
                    f"unsupported builder statement: {stmt}"
                )
        return TacticRecord(
            self.tactic.name, self.tactic.pattern, self.builders
        )

    # ------------------------------------------------------------------
    # Contractions -> matmul / matvec / conv
    # ------------------------------------------------------------------

    def _convert_contraction(self, stmt: TdlStatement) -> None:
        lhs, (r0, r1) = stmt.lhs, stmt.rhs
        if any(
            not idx.is_simple_var
            for access in stmt.rhs
            for idx in access.indices
        ):
            # Shifted/compound indices (y + kh): a convolution.  The
            # operand with composite subscripts is the sliding input.
            if any(not idx.is_simple_var for idx in r1.indices):
                r0, r1 = r1, r0
            self.builders.append(
                BuilderSpec("convBuilder", [r0.tensor, r1.tensor], [lhs.tensor])
            )
            return
        ranks = (lhs.rank, r0.rank, r1.rank)
        if ranks == (2, 2, 2):
            self._convert_matmul(stmt)
            return
        if ranks in ((1, 2, 1), (1, 1, 2)):
            matrix, vector = (r0, r1) if r0.rank == 2 else (r1, r0)
            self._convert_matvec(stmt, matrix, vector)
            return
        raise TdlSyntaxError(
            f"cannot classify contraction of ranks {ranks}: {stmt}"
        )

    def _convert_matvec(self, stmt, matrix, vector) -> None:
        """y(m) += A(?,?) * x(k): detect whether A is used transposed.

        ``Expr<{1, 0}>`` on a matvecBuilder encodes the CBLAS ``trans``
        parameter (y += A^T x), avoiding an explicit transposition copy.
        """
        lhs = stmt.lhs
        m = lhs.simple_index_names()[0]
        k = vector.simple_index_names()[0]
        a_idx = matrix.simple_index_names()
        if a_idx == [m, k]:
            expr = None
        elif a_idx == [k, m]:
            expr = [1, 0]
        else:
            raise TdlSyntaxError(
                f"matvec statement has inconsistent indices: {stmt}"
            )
        self.builders.append(
            BuilderSpec(
                "matvecBuilder",
                [matrix.tensor, vector.tensor],
                [lhs.tensor],
                expr,
            )
        )

    def _convert_matmul(self, stmt: TdlStatement) -> None:
        lhs, (r0, r1) = stmt.lhs, stmt.rhs
        m, n = lhs.simple_index_names()
        a_idx = r0.simple_index_names()
        b_idx = r1.simple_index_names()
        # Canonical orientation: lhs(m,n) += A(m,k) * B(k,n).
        for first, second in ((r0, r1), (r1, r0)):
            fi = first.simple_index_names()
            si = second.simple_index_names()
            if fi[0] == m and si[1] == n and fi[1] == si[0]:
                self.builders.append(
                    BuilderSpec(
                        "matmulBuilder",
                        [first.tensor, second.tensor],
                        [lhs.tensor],
                    )
                )
                return
        raise TdlSyntaxError(
            f"matmul statement is not in C(m,n) += A(m,k)*B(k,n) form: {stmt}"
        )

    # ------------------------------------------------------------------
    # Copies with grouping -> transpose / reshape
    # ------------------------------------------------------------------

    def _expanded_names(
        self, access: TdlAccess, where: Dict[str, List[str]]
    ) -> Tuple[List[str], List[List[str]]]:
        """Index names with where-vars expanded + the grouping."""
        flat: List[str] = []
        groups: List[List[str]] = []
        for idx in access.indices:
            var = idx.single_var
            group = where.get(var, [var])
            groups.append(list(group))
            flat.extend(group)
        return flat, groups

    def _convert_copy(self, stmt: TdlStatement) -> None:
        lhs, rhs = stmt.lhs, stmt.rhs[0]
        where = stmt.where
        lhs_flat, lhs_groups = self._expanded_names(lhs, where)
        rhs_flat, rhs_groups = self._expanded_names(rhs, where)
        if sorted(lhs_flat) != sorted(rhs_flat):
            raise TdlSyntaxError(f"copy statement index mismatch: {stmt}")
        lhs_grouped = any(len(g) > 1 for g in lhs_groups)
        rhs_grouped = any(len(g) > 1 for g in rhs_groups)
        if lhs_grouped and rhs_grouped:
            raise TdlSyntaxError(
                f"grouping on both sides is unsupported: {stmt}"
            )
        if rhs_grouped:
            self._emit_expand(stmt, lhs_flat, rhs, rhs_flat, rhs_groups)
        else:
            self._emit_collapse(stmt, lhs, lhs_flat, lhs_groups, rhs_flat)

    def _emit_collapse(
        self,
        stmt: TdlStatement,
        lhs: TdlAccess,
        lhs_flat: List[str],
        lhs_groups: List[List[str]],
        rhs_flat: List[str],
    ) -> None:
        """rhs -> (transpose?) -> (reshape?) -> lhs."""
        rhs_tensor = stmt.rhs[0].tensor
        perm = [rhs_flat.index(v) for v in lhs_flat]
        needs_transpose = perm != list(range(len(perm)))
        needs_reshape = any(len(g) > 1 for g in lhs_groups)
        source = rhs_tensor
        if needs_transpose:
            dest = self._temp(rhs_tensor) if needs_reshape else lhs.tensor
            self.builders.append(
                BuilderSpec(
                    "transposeBuilder",
                    [source],
                    [dest],
                    perm,
                    dims=[[v] for v in lhs_flat],
                )
            )
            source = dest
        if needs_reshape:
            groups: List[List[int]] = []
            pos = 0
            for group in lhs_groups:
                groups.append(list(range(pos, pos + len(group))))
                pos += len(group)
            self.builders.append(
                BuilderSpec(
                    "reshapeBuilder",
                    [source],
                    [lhs.tensor],
                    groups,
                    dims=lhs_groups,
                )
            )

    def _emit_expand(
        self,
        stmt: TdlStatement,
        lhs_flat: List[str],
        rhs: TdlAccess,
        rhs_flat: List[str],
        rhs_groups: List[List[str]],
    ) -> None:
        """rhs -> (reshape expand?) -> (transpose?) -> lhs."""
        lhs_tensor = stmt.lhs.tensor
        perm = [rhs_flat.index(v) for v in lhs_flat]
        needs_transpose = perm != list(range(len(perm)))
        source = rhs.tensor
        groups: List[List[int]] = []
        pos = 0
        for group in rhs_groups:
            groups.append(list(range(pos, pos + len(group))))
            pos += len(group)
        dest = self._temp(rhs.tensor) if needs_transpose else lhs_tensor
        self.builders.append(
            BuilderSpec(
                "reshapeBuilder",
                [source],
                [dest],
                groups,
                dims=[[v] for v in rhs_flat],
            )
        )
        if needs_transpose:
            self.builders.append(
                BuilderSpec(
                    "transposeBuilder",
                    [dest],
                    [lhs_tensor],
                    perm,
                    dims=[[v] for v in lhs_flat],
                )
            )
