"""Builder execution: materialize a tactic's replacement IR.

Given a :class:`~repro.tactics.compiled.MatchResult` and the TDS
builder list, emits the replacement — Linalg ops, BLAS library calls,
or the high-level ``affine.matmul`` — immediately before the matched
band, allocating intermediate buffers for the temporaries (the D/E
tensors of the TTGT recipe), then erases the band.
"""

from __future__ import annotations

from typing import Dict, List

from ..dialects import blas as blas_d
from ..dialects import linalg as linalg_d
from ..dialects import std
from ..dialects.affine import AffineMatmulOp
from ..ir import (
    Builder,
    IRError,
    InsertionPoint,
    MemRefType,
    Operation,
    Value,
)
from .compiled import MatchResult
from .tds import BuilderSpec, TacticRecord


class BuilderError(IRError):
    pass


def _erase_band(match: MatchResult) -> None:
    root = match.root
    block = root.parent_block
    root.drop_all_references()
    for op in list(root.walk_inner()):
        op.drop_all_references()
    block.remove(root)


def apply_builders(
    record: TacticRecord,
    match: MatchResult,
    target: str = "linalg",
    library: str = "mkl-dnn",
    rewriter=None,
) -> List[Operation]:
    """Run the builder list; returns the newly created operations.

    When a :class:`~repro.ir.PatternRewriter` is supplied, all
    insertions and the band erasure go through it, so the worklist
    driver sees the structural notifications.
    """
    if target not in ("linalg", "blas", "affine"):
        raise BuilderError(f"unknown raising target {target!r}")
    env: Dict[str, Value] = dict(match.memref_of)
    if rewriter is not None:
        rewriter.set_insertion_point_before(match.root)
        builder = rewriter
    else:
        builder = Builder(InsertionPoint.before(match.root))
    created: List[Operation] = []

    def extent(var: str) -> int:
        if var not in match.extent_of:
            raise BuilderError(
                f"tactic {record.name}: unknown index variable {var!r}"
            )
        return match.extent_of[var]

    def out_value(spec: BuilderSpec, element_type) -> Value:
        name = spec.out
        if name in env:
            return env[name]
        if spec.dims is None:
            raise BuilderError(
                f"tactic {record.name}: cannot size temporary {name!r} "
                "(builder lacks Dims)"
            )
        shape = []
        for group in spec.dims:
            size = 1
            for var in group:
                size *= extent(var)
            shape.append(size)
        alloc = builder.insert(
            std.AllocOp.create(MemRefType(shape, element_type))
        )
        created.append(alloc)
        env[name] = alloc.result
        return alloc.result

    for spec in record.builders:
        ins = []
        for name in spec.ins:
            if name not in env:
                raise BuilderError(
                    f"tactic {record.name}: builder input {name!r} is "
                    "neither a matched tensor nor a prior output"
                )
            ins.append(env[name])
        elem = ins[0].type.element_type
        out = out_value(spec, elem)
        op = _emit(spec, ins, out, target, library)
        builder.insert(op)
        created.append(op)

    if rewriter is not None:
        rewriter.erase_nest(match.root)
    else:
        _erase_band(match)
    return created


def _emit(
    spec: BuilderSpec,
    ins: List[Value],
    out: Value,
    target: str,
    library: str,
) -> Operation:
    kind = spec.kind
    if target == "affine":
        if kind == "matmulBuilder":
            return AffineMatmulOp.create(ins[0], ins[1], out)
        raise BuilderError(
            f"the Affine raising path only supports matmul, got {kind}"
        )
    if kind == "transposeBuilder":
        perm = spec.expr
        if target == "blas":
            return blas_d.TransposeOp.create(ins[0], out, perm, library)
        return linalg_d.TransposeOp.create(ins[0], out, perm)
    if kind == "reshapeBuilder":
        groups = spec.expr
        if target == "blas":
            return blas_d.ReshapeOp.create(ins[0], out, groups, library)
        return linalg_d.ReshapeOp.create(ins[0], out, groups)
    if kind == "matmulBuilder":
        if target == "blas":
            return blas_d.SgemmOp.create(ins[0], ins[1], out, library=library)
        return linalg_d.MatmulOp.create(ins[0], ins[1], out)
    if kind == "matvecBuilder":
        trans = spec.expr == [1, 0]
        if target == "blas":
            return blas_d.SgemvOp.create(
                ins[0], ins[1], out, library, trans=trans
            )
        return linalg_d.MatvecOp.create(ins[0], ins[1], out, trans=trans)
    if kind == "convBuilder":
        if target == "blas":
            return blas_d.Conv2DOp.create(ins[0], ins[1], out, library)
        return linalg_d.Conv2DNchwOp.create(ins[0], ins[1], out)
    raise BuilderError(f"unhandled builder kind {kind!r}")
