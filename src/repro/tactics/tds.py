"""TDS — the TableGen-based Tactics Description Specification (§III-B).

Each TDS entry derives from the ``Tactic`` class: a TC-notation pattern
plus a list of builder template instantiations (Listing 4)::

    def TTGT : Tactic<C(a, b, c) += A(a, c, d) * B(d, b), [
      transposeBuilder<In<[C]>, Out<[C_t0]>, Expr<{0, 2, 1}>>,
      reshapeBuilder<In<[C_t0]>, Out<[D]>, Expr<{{0, 1}, 2}>>,
      reshapeBuilder<In<[A]>, Out<[E]>, Expr<{{0, 1}, 2}>>,
      matmulBuilder<In<[E, B]>, Out<[D]>>,
      reshapeBuilder<In<[D]>, Out<[D_t1]>, Expr<{{0, 1}, 2}>>,
      transposeBuilder<In<[D_t1]>, Out<[C]>, Expr<{0, 2, 1}>>,
    ]>;

The two-step TDL -> TDS -> code process factors common matcher/builder
machinery into reusable templates (the five ``*Builder`` template
classes below).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from .tdl.ast import TdlStatement, TdlSyntaxError

#: The builder templates TDS supports (Figure 5).
BUILDER_KINDS = (
    "transposeBuilder",
    "reshapeBuilder",
    "matmulBuilder",
    "matvecBuilder",
    "convBuilder",
)

#: Builders processing a single input (Figure 5 constraints).
_SINGLE_INPUT = ("transposeBuilder", "reshapeBuilder")


class BuilderSpec:
    """One instantiated builder template."""

    def __init__(
        self,
        kind: str,
        ins: Sequence[str],
        outs: Sequence[str],
        expr: Optional[Union[List[int], List[List[int]]]] = None,
        dims: Optional[List[List[str]]] = None,
    ):
        if kind not in BUILDER_KINDS:
            raise TdlSyntaxError(f"unknown builder kind {kind!r}")
        if kind in _SINGLE_INPUT and len(ins) != 1:
            raise TdlSyntaxError(f"{kind} processes a single input")
        if len(outs) != 1:
            raise TdlSyntaxError("all builders produce a single output")
        if kind in _SINGLE_INPUT and expr is None:
            raise TdlSyntaxError(f"{kind} requires an affine expression")
        self.kind = kind
        self.ins = list(ins)
        self.outs = list(outs)
        self.expr = expr
        #: per-output-dimension index-variable groups (sizes the buffer
        #: the builder materializes: extent = product of var extents)
        self.dims = dims

    @property
    def out(self) -> str:
        return self.outs[0]

    def _expr_text(self) -> str:
        if self.expr is None:
            return ""
        if self.expr and isinstance(self.expr[0], list):
            inner = ", ".join(
                "{" + ", ".join(map(str, group)) + "}"
                if len(group) > 1
                else str(group[0])
                for group in self.expr
            )
        else:
            inner = ", ".join(map(str, self.expr))
        return f", Expr<{{{inner}}}>"

    def _dims_text(self) -> str:
        if self.dims is None:
            return ""
        inner = ", ".join(
            group[0] if len(group) == 1 else "{" + ", ".join(group) + "}"
            for group in self.dims
        )
        return f", Dims<[{inner}]>"

    def __str__(self) -> str:
        ins = ", ".join(self.ins)
        return (
            f"{self.kind}<In<[{ins}]>, Out<[{self.out}]>"
            f"{self._expr_text()}{self._dims_text()}>"
        )

    def __repr__(self) -> str:
        return f"BuilderSpec({self})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, BuilderSpec)
            and self.kind == other.kind
            and self.ins == other.ins
            and self.outs == other.outs
            and self.expr == other.expr
        )


class TacticRecord:
    """A TDS record: name, TC pattern, ordered builder list."""

    def __init__(
        self,
        name: str,
        pattern: TdlStatement,
        builders: Sequence[BuilderSpec],
    ):
        self.name = name
        self.pattern = pattern
        self.builders = list(builders)

    def emit_tablegen(self) -> str:
        """Serialize to the TDS TableGen syntax (Listing 4)."""
        lines = [f"def {self.name} : Tactic<{self.pattern}, ["]
        for builder in self.builders:
            lines.append(f"  {builder},")
        lines.append("]>;")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.emit_tablegen()

    def __repr__(self) -> str:
        return f"TacticRecord({self.name})"


def parse_tds(source: str) -> List[TacticRecord]:
    """Parse TDS (TableGen) text back into records."""
    from .tablegen import parse_tablegen

    return parse_tablegen(source)
