"""Compiled tactics: executable matchers generated from TDS records.

This is the runtime form of the code the MLT TableGen backend emits
(Listing 7): a structural matcher over the loop nest plus access
matchers over the innermost block, producing a :class:`MatchResult`
that the builders consume.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.accesses import access_function
from ..dialects.affine import (
    AffineForOp,
    AffineLoadOp,
    AffineStoreOp,
    perfect_nest,
)
from ..dialects.std import AddFOp, MulFOp
from ..ir import Operation, Value
from .matchers.access import (
    AccessPatternContext,
    ArrayAccessPattern,
    Placeholder,
    PlaceholderExpr,
    PlaceholderSum,
    match_block_accesses,
)
from .matchers.op_matchers import m_Op
from .matchers.structural import For, NestedPatternContext
from .tds import TacticRecord
from .tdl.ast import TdlAccess, TdlIndexExpr, TdlStatement


class MatchResult:
    """Everything a builder needs from one matched callsite."""

    def __init__(
        self,
        tactic_name: str,
        band: List[AffineForOp],
        iv_of: Dict[str, Value],
        extent_of: Dict[str, int],
        memref_of: Dict[str, Value],
    ):
        self.tactic_name = tactic_name
        self.band = band
        self.iv_of = iv_of
        self.extent_of = extent_of
        self.memref_of = memref_of

    @property
    def root(self) -> AffineForOp:
        return self.band[0]

    def __repr__(self) -> str:
        return (
            f"<MatchResult {self.tactic_name} depth={len(self.band)} "
            f"tensors={sorted(self.memref_of)}>"
        )


class CompiledTactic:
    """A tactic compiled to matcher + builder form."""

    def __init__(self, record: TacticRecord):
        self.record = record
        self.pattern: TdlStatement = record.pattern
        self.loop_vars: List[str] = self.pattern.index_vars()

    @property
    def name(self) -> str:
        return self.record.name

    @property
    def num_loops(self) -> int:
        return len(self.loop_vars)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------

    def match(self, op: Operation) -> Optional[MatchResult]:
        """Match the pattern with ``op`` as the band's outermost loop."""
        return self.match_explain(op)[0]

    def match_explain(
        self, op: Operation
    ) -> Tuple[Optional[MatchResult], str]:
        """Like :meth:`match`, but also reports *why* the matcher
        bailed: the second element is ``"matched"`` or a key from
        ``repro.raising.stats.TDL_BAIL_REASONS``."""
        if not isinstance(op, AffineForOp):
            return None, "pattern-mismatch"
        # The relative root must not itself be an inner loop of a larger
        # perfect band (the enclosing loop would then be part of the
        # computation we are about to replace).
        parent = op.parent_op
        if isinstance(parent, AffineForOp) and len(parent.ops_in_body()) == 1:
            return None, "inner-loop-root"
        band = perfect_nest(op)
        if len(band) != self.num_loops:
            return None, "depth-mismatch"
        # Cheap pre-filter before building matcher machinery: the
        # innermost block must have the right operation mix.
        if not self._block_is_exact(band[-1]):
            return None, "body-shape"

        with NestedPatternContext(), AccessPatternContext() as pctx:
            placeholders: Dict[str, Placeholder] = {
                var: pctx.placeholder() for var in self.loop_vars
            }
            arrays: Dict[str, object] = {}
            store_pattern = self._access_pattern(
                self.pattern.lhs, placeholders, arrays, pctx
            )
            body_matcher = self._body_matcher(placeholders, arrays, pctx)

            structural = For(
                lambda body: match_block_accesses(
                    body, store_pattern, body_matcher
                )
            )
            node = structural
            for _ in range(self.num_loops - 1):
                node = For(node)
            if not node.match(op):
                return None, "structure-mismatch"
            if not self._block_is_exact(band[-1]):
                return None, "body-shape"

            # Bound candidates must be exactly the band's IVs.
            band_ivs = {id(loop.induction_var) for loop in band}
            iv_of: Dict[str, Value] = {}
            extent_of: Dict[str, int] = {}
            for var, placeholder in placeholders.items():
                candidate = pctx.candidate(placeholder)
                if candidate is None or id(candidate) not in band_ivs:
                    return None, "iv-binding"
                iv_of[var] = candidate
                loop = candidate.owner.parent_op
                trip = loop.constant_trip_count()
                if trip is None:
                    return None, "non-constant-trip"
                extent_of[var] = trip
            memref_of = {
                tensor: pctx[array] for tensor, array in arrays.items()
            }
            return (
                MatchResult(self.name, band, iv_of, extent_of, memref_of),
                "matched",
            )

    def _block_is_exact(self, innermost: AffineForOp) -> bool:
        """The matched block must contain only the pattern's operations
        ("make sure we have only the defined operations in the block")."""
        ops = innermost.ops_in_body()
        if self.pattern.op == "+=":
            expected = {
                "affine.load": 1 + len(self.pattern.rhs),
                "affine.store": 1,
                "std.mulf": len(self.pattern.rhs) - 1,
                "std.addf": 1,
            }
        else:
            expected = {"affine.load": 1, "affine.store": 1}
        counts: Dict[str, int] = {}
        for op in ops:
            counts[op.name] = counts.get(op.name, 0) + 1
        return counts == expected

    def _subscript_pattern(
        self, idx: TdlIndexExpr, placeholders: Dict[str, Placeholder]
    ):
        terms = [(placeholders[var], coeff) for var, coeff in idx.terms]
        if len(terms) == 1:
            placeholder, coeff = terms[0]
            return PlaceholderExpr(placeholder, coeff, idx.constant)
        return PlaceholderSum(terms, idx.constant)

    def _access_pattern(
        self,
        access: TdlAccess,
        placeholders: Dict[str, Placeholder],
        arrays: Dict[str, object],
        pctx: AccessPatternContext,
    ) -> ArrayAccessPattern:
        if access.tensor not in arrays:
            arrays[access.tensor] = pctx.array_placeholder()
        subscripts = [
            self._subscript_pattern(idx, placeholders)
            for idx in access.indices
        ]
        return arrays[access.tensor](subscripts)

    def _body_matcher(self, placeholders, arrays, pctx):
        pattern = self.pattern
        if pattern.op == "+=" and len(pattern.rhs) == 2:
            lhs_load = m_Op(
                AffineLoadOp,
                self._access_pattern(pattern.lhs, placeholders, arrays, pctx),
            )
            factor0 = m_Op(
                AffineLoadOp,
                self._access_pattern(pattern.rhs[0], placeholders, arrays, pctx),
            )
            factor1 = m_Op(
                AffineLoadOp,
                self._access_pattern(pattern.rhs[1], placeholders, arrays, pctx),
            )
            return m_Op(AddFOp, lhs_load, m_Op(MulFOp, factor0, factor1))
        if pattern.op == "=" and len(pattern.rhs) == 1:
            return m_Op(
                AffineLoadOp,
                self._access_pattern(pattern.rhs[0], placeholders, arrays, pctx),
            )
        raise NotImplementedError(
            f"unsupported pattern shape in tactic {self.name}: {pattern}"
        )

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def build(self, match: MatchResult, target: str = "linalg") -> List[Operation]:
        """Replace the matched band by the tactic's builder ops."""
        from .builders import apply_builders

        return apply_builders(self.record, match, target)


def compile_tactic(record: TacticRecord) -> CompiledTactic:
    return CompiledTactic(record)
