"""Matrix-chain multiplication reordering at the Linalg level (§V-C).

A case for *progressive* raising: once loop nests have been raised to
``linalg.matmul``, chains of multiplications become visible and the
classic dynamic-programming optimal-parenthesization (CLRS [24]) can
rewrite them, minimizing scalar multiplications.

Detection walks producer-consumer links through temporary buffers: a
matmul whose output buffer is a local temporary consumed as an input
of exactly one later matmul extends the chain.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..dialects import linalg as linalg_d
from ..dialects import std
from ..ir import (
    Builder,
    Context,
    InsertionPoint,
    MemRefType,
    ModuleOp,
    Operation,
    Pass,
    Value,
)

#: Parenthesization tree: a leaf (matrix position) or (left, right).
ParenTree = Union[int, Tuple["ParenTree", "ParenTree"]]


# ----------------------------------------------------------------------
# Dynamic programming
# ----------------------------------------------------------------------


def optimal_parenthesization(dims: Sequence[int]) -> Tuple[int, ParenTree]:
    """Matrix-chain order for matrices A_i of size dims[i] x dims[i+1].

    Returns (minimal number of scalar multiplications, tree).
    """
    n = len(dims) - 1
    if n < 1:
        raise ValueError("need at least one matrix")
    if n == 1:
        return (0, 0)
    best: Dict[Tuple[int, int], int] = {}
    split: Dict[Tuple[int, int], int] = {}
    for i in range(n):
        best[(i, i)] = 0
    for length in range(2, n + 1):
        for i in range(0, n - length + 1):
            j = i + length - 1
            best[(i, j)] = 1 << 62
            for k in range(i, j):
                cost = (
                    best[(i, k)]
                    + best[(k + 1, j)]
                    + dims[i] * dims[k + 1] * dims[j + 1]
                )
                if cost < best[(i, j)]:
                    best[(i, j)] = cost
                    split[(i, j)] = k

    def build(i: int, j: int) -> ParenTree:
        if i == j:
            return i
        k = split[(i, j)]
        return (build(i, k), build(k + 1, j))

    return best[(0, n - 1)], build(0, n - 1)


def chain_multiplications(dims: Sequence[int], tree: ParenTree) -> int:
    """Scalar multiplications of an explicit parenthesization."""

    def walk(node: ParenTree) -> Tuple[int, int, int]:
        if isinstance(node, int):
            return (dims[node], dims[node + 1], 0)
        (lr, lc, lcost) = walk(node[0])
        (rr, rc, rcost) = walk(node[1])
        if lc != rr:
            raise ValueError("inconsistent parenthesization")
        return (lr, rc, lcost + rcost + lr * lc * rc)

    return walk(tree)[2]


def left_associative_tree(n: int) -> ParenTree:
    tree: ParenTree = 0
    for i in range(1, n):
        tree = (tree, i)
    return tree


def parenthesization_str(tree: ParenTree, base: int = 1) -> str:
    """Human-readable form, 1-based like Table II: ``(A1x(A2xA3))``."""
    if isinstance(tree, int):
        return f"A{tree + base}"
    left = parenthesization_str(tree[0], base)
    right = parenthesization_str(tree[1], base)
    return f"({left}x{right})"


# ----------------------------------------------------------------------
# Chain detection in the IR
# ----------------------------------------------------------------------


class MatrixChain:
    """A detected chain: ordered matrices and the matmuls computing it."""

    def __init__(
        self,
        matrices: List[Value],
        matmuls: List[linalg_d.MatmulOp],
        output: Value,
    ):
        self.matrices = matrices
        self.matmuls = matmuls
        self.output = output

    @property
    def dims(self) -> List[int]:
        dims = [m.type.shape[0] for m in self.matrices]
        dims.append(self.matrices[-1].type.shape[1])
        return dims

    def __len__(self) -> int:
        return len(self.matrices)

    def __repr__(self) -> str:
        return f"<MatrixChain n={len(self.matrices)} dims={self.dims}>"


def _is_temporary(value: Value) -> bool:
    def_op = value.defining_op
    return def_op is not None and def_op.name == "std.alloc"


def _single_matmul_consumer(
    temp: Value, after: Operation
) -> Optional[linalg_d.MatmulOp]:
    """The unique later matmul reading ``temp`` as an input; None if
    the temp escapes (other readers/writers)."""
    block = after.parent_block
    ops = block.operations
    start = ops.index(after) + 1
    consumer: Optional[linalg_d.MatmulOp] = None
    for use in temp.uses:
        user = use.owner
        if user is after or user.name == "std.dealloc":
            continue
        if user.name == "linalg.fill" and user.operand(1) is temp:
            continue  # the zero-initialization of the temporary
        if (
            isinstance(user, linalg_d.MatmulOp)
            and user.parent_block is block
            and ops.index(user) >= start
            and (user.a is temp or user.b is temp)
            and user.c is not temp
        ):
            if consumer is not None:
                return None
            consumer = user
        else:
            return None
    return consumer


def find_matrix_chains(func) -> List[MatrixChain]:
    """Detect maximal matmul chains in a function body."""
    chains: List[MatrixChain] = []
    claimed: set = set()
    block = func.entry_block
    matmuls = [
        op for op in block.operations if isinstance(op, linalg_d.MatmulOp)
    ]
    for head in matmuls:
        if id(head) in claimed:
            continue
        # A chain head: neither of its inputs is a chained temp.
        matrices = [head.a, head.b]
        ops_in_chain = [head]
        current = head
        while _is_temporary(current.c):
            consumer = _single_matmul_consumer(current.c, current)
            if consumer is None or id(consumer) in claimed:
                break
            # Extend: temp is one operand; the other matrix joins.
            if consumer.a is current.c:
                matrices.append(consumer.b)
            else:
                matrices.insert(0, consumer.a)
            ops_in_chain.append(consumer)
            current = consumer
        if len(ops_in_chain) >= 2:
            for op in ops_in_chain:
                claimed.add(id(op))
            chains.append(
                MatrixChain(matrices, ops_in_chain, current.c)
            )
    return chains


# ----------------------------------------------------------------------
# Rewriting
# ----------------------------------------------------------------------


def _reorder_chain(chain: MatrixChain) -> bool:
    dims = chain.dims
    n = len(chain.matrices)
    best_cost, tree = optimal_parenthesization(dims)
    current_cost = _current_cost(chain)
    if best_cost >= current_cost:
        return False

    first_old = chain.matmuls[0]
    block = first_old.parent_block
    insert_index = block.operations.index(first_old)
    # The output's zero-initialization may sit between the old matmuls
    # (program order); it must precede the reordered chain.
    for op in list(block.operations[insert_index:]):
        if (
            op.name == "linalg.fill"
            and op.operand(1) is chain.output
        ):
            fill_value_def = op.operand(0).defining_op
            if (
                fill_value_def is not None
                and fill_value_def.parent_block is block
                and first_old.is_before_in_block(fill_value_def)
            ):
                fill_value_def.move_before(first_old)
            op.move_before(first_old)

    builder = Builder(InsertionPoint.before(chain.matmuls[0]))
    elem = chain.output.type.element_type

    def emit(node: ParenTree) -> Value:
        if isinstance(node, int):
            return chain.matrices[node]
        left = emit(node[0])
        right = emit(node[1])
        is_root = node is tree
        if is_root:
            out = chain.output
        else:
            shape = [left.type.shape[0], right.type.shape[1]]
            out = builder.insert(
                std.AllocOp.create(MemRefType(shape, elem))
            ).result
            zero = builder.insert(std.ConstantOp.create(0.0, elem)).result
            builder.insert(linalg_d.FillOp.create(zero, out))
        builder.insert(linalg_d.MatmulOp.create(left, right, out))
        return out

    emit(tree)
    _erase_old_chain(chain)
    return True


def _current_cost(chain: MatrixChain) -> int:
    return sum(
        op.a.type.shape[0] * op.a.type.shape[1] * op.b.type.shape[1]
        for op in chain.matmuls
    )


def _erase_old_chain(chain: MatrixChain) -> None:
    for op in chain.matmuls:
        op.erase()
    # Dead temporaries (alloc + fill pairs) are swept afterwards by
    # _cleanup_dead_temps at the function level.


def _cleanup_dead_temps(func) -> int:
    """Erase allocs whose only remaining users are fills/deallocs."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for op in list(func.walk()):
            if op.name != "std.alloc" or op.parent_block is None:
                continue
            users = op.results[0].users
            if all(
                u.name in ("linalg.fill", "std.dealloc") for u in users
            ):
                for user in list(users):
                    user.erase()
                op.erase()
                removed += 1
                changed = True
    return removed


def reorder_matrix_chains(module: ModuleOp) -> int:
    """Reorder every beneficial matrix chain; returns how many."""
    from ..transforms.canonicalize import canonicalize

    reordered = 0
    for func in module.functions:
        for chain in find_matrix_chains(func):
            if len(chain) >= 3 and _reorder_chain(chain):
                reordered += 1
        _cleanup_dead_temps(func)
        canonicalize(func)
    return reordered


class MatrixChainReorderPass(Pass):
    name = "linalg-matrix-chain-reorder"

    def __init__(self):
        self.num_reordered = 0

    def run(self, module: ModuleOp, context: Context) -> None:
        self.num_reordered = reorder_matrix_chains(module)
