"""Tensor-contraction tactics: the TTGT rewriting (§III-A).

A contraction spec follows the paper's naming convention
``out-A-B``, e.g. ``abc-acd-db`` for::

    C(a,b,c) += A(a,c,d) * B(d,b)

:func:`ttgt_plan` computes the Transpose-Transpose-GEMM-Transpose
decomposition — flatten the tensors into matrices via explicit
transpositions and reshapes, run GEMM, fold the result back — and
:func:`contraction_tactic_tdl` renders it as TDL text, which then goes
through the ordinary TDL -> TDS -> matchers pipeline.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from .tdl.ast import TdlSyntaxError


class TTGTPlan(NamedTuple):
    out_indices: List[str]
    a_indices: List[str]
    b_indices: List[str]
    m_group: List[str]  # A-free indices (GEMM rows), in A order
    n_group: List[str]  # B-free indices (GEMM cols), in B order
    k_group: List[str]  # contracted indices, in A order


def parse_contraction_spec(spec: str) -> Tuple[List[str], List[str], List[str]]:
    parts = spec.split("-")
    if len(parts) != 3:
        raise TdlSyntaxError(f"bad contraction spec {spec!r} (want out-A-B)")
    return [list(part) for part in parts]


def ttgt_plan(spec: str) -> TTGTPlan:
    """Derive the TTGT grouping for a contraction spec."""
    out_idx, a_idx, b_idx = parse_contraction_spec(spec)
    out_set, a_set, b_set = set(out_idx), set(a_idx), set(b_idx)
    if len(a_set) != len(a_idx) or len(b_set) != len(b_idx):
        raise TdlSyntaxError(f"{spec}: repeated index within a tensor")
    k_group = [v for v in a_idx if v in b_set and v not in out_set]
    m_group = [v for v in a_idx if v in out_set]
    n_group = [v for v in b_idx if v in out_set]
    if not k_group:
        raise TdlSyntaxError(f"{spec}: no contracted index")
    if sorted(m_group + n_group) != sorted(out_idx):
        raise TdlSyntaxError(
            f"{spec}: output indices are not the union of free indices"
        )
    if sorted(a_idx) != sorted(m_group + k_group):
        raise TdlSyntaxError(f"{spec}: A has indices outside M+K")
    if sorted(b_idx) != sorted(k_group + n_group):
        raise TdlSyntaxError(f"{spec}: B has indices outside K+N")
    return TTGTPlan(out_idx, a_idx, b_idx, m_group, n_group, k_group)


def _group_ref(
    group: List[str], fresh: str, where: Dict[str, List[str]]
) -> str:
    """Name for a (possibly grouped) GEMM dimension; records the
    where-clause when flattening more than one index."""
    if len(group) == 1:
        return group[0]
    where[fresh] = list(group)
    return fresh


def _copy_stmt_needed(src_indices: List[str], grouped: List[List[str]]) -> bool:
    """A copy is needed unless the source is already the flattened
    matrix: exactly the groups, in order, each of size 1."""
    flat = [v for group in grouped for v in group]
    if src_indices != flat:
        return True
    return any(len(group) > 1 for group in grouped)


def contraction_tactic_tdl(spec: str, name: Optional[str] = None) -> str:
    """Render the TTGT tactic for a contraction spec as TDL text."""
    plan = ttgt_plan(spec)
    tactic_name = name or "TTGT_" + spec.replace("-", "_")
    where_c: Dict[str, List[str]] = {}
    m_ref = _group_ref(plan.m_group, "m0", where_c)
    n_ref = _group_ref(plan.n_group, "n0", where_c)
    where_a: Dict[str, List[str]] = {}
    m_ref_a = _group_ref(plan.m_group, "m0", where_a)
    where_b: Dict[str, List[str]] = {}
    n_ref_b = _group_ref(plan.n_group, "n0", where_b)
    k_ref_holder: Dict[str, List[str]] = {}
    k_ref = _group_ref(plan.k_group, "k0", k_ref_holder)

    def clause(where: Dict[str, List[str]]) -> str:
        if not where:
            return ""
        return " where " + ", ".join(
            f"{v} = {' * '.join(group)}" for v, group in where.items()
        )

    out_list = ", ".join(plan.out_indices)
    a_list = ", ".join(plan.a_indices)
    b_list = ", ".join(plan.b_indices)

    lines = [f"def {tactic_name} {{", "  pattern",
             f"    C({out_list}) += A({a_list}) * B({b_list})", "  builder"]

    # D = flatten(C), E = flatten(A), F = flatten(B) — omitting
    # flattenings that would be identities.
    c_grouped = [plan.m_group, plan.n_group]
    needs_d = _copy_stmt_needed(plan.out_indices, c_grouped)
    if needs_d:
        d_name = "D"
        lines.append(
            f"    {d_name}({m_ref}, {n_ref}) = C({out_list})" + clause(where_c)
        )
    else:
        d_name = "C"
    a_grouped = [plan.m_group, plan.k_group]
    if _copy_stmt_needed(plan.a_indices, a_grouped):
        e_name = "E"
        lines.append(
            f"    {e_name}({m_ref_a}, {k_ref}) = A({a_list})"
            + clause({**where_a, **k_ref_holder})
        )
    else:
        e_name = "A"
    b_grouped = [plan.k_group, plan.n_group]
    if _copy_stmt_needed(plan.b_indices, b_grouped):
        f_name = "F"
        lines.append(
            f"    {f_name}({k_ref}, {n_ref_b}) = B({b_list})"
            + clause({**k_ref_holder, **where_b})
        )
    else:
        f_name = "B"
    lines.append(
        f"    {d_name}({m_ref}, {n_ref}) += "
        f"{e_name}({m_ref}, {k_ref}) * {f_name}({k_ref}, {n_ref})"
    )
    if needs_d:
        lines.append(
            f"    C({out_list}) = {d_name}({m_ref}, {n_ref})" + clause(where_c)
        )
    lines.append("}")
    return "\n".join(lines)


#: The seven contractions evaluated in Figure 9, from coupled-cluster
#: methods and chemistry kernels (refs [19]-[21] of the paper).
PAPER_CONTRACTIONS = [
    "ab-acd-dbc",
    "abc-acd-db",
    "abc-ad-bdc",
    "ab-cad-dcb",
    "abc-bda-dc",
    "abcd-aebf-dfce",
    "abcd-aebf-fdec",
]
