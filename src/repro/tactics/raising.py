"""Raising passes: the complementary direction to progressive lowering.

``-raise-affine-to-affine`` lifts GEMM-shaped loop nests to the
high-level ``affine.matmul`` op *within* the Affine dialect (§V-A);
``-raise-affine-to-linalg`` lifts to the Linalg dialect (§V-B),
optionally followed by the BLAS substitution pass.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.accesses import access_function
from ..dialects import linalg as linalg_d
from ..dialects import std
from ..dialects.affine import AffineForOp, AffineStoreOp, perfect_nest
from ..ir import (
    Context,
    FrozenPatternSet,
    FunctionPass,
    ModuleOp,
    Operation,
    PatternRewriter,
    RewritePattern,
    apply_patterns_greedily,
)
from ..raising.stats import RaiseStats
from .compiled import CompiledTactic, compile_tactic
from .contraction import PAPER_CONTRACTIONS, contraction_tactic_tdl
from .tdl.frontend import tdl_to_tds
from .tdl.parser import parse_tdl

#: Raising tiers: the structural TDL matchers, the enumerative
#: synthesizer (``repro.raising``), or TDL with synthesis as fallback.
RAISE_MODES = ("tdl", "synth", "tdl+synth")

# ----------------------------------------------------------------------
# The stock tactics library (all defined in TDL — we eat our own food)
# ----------------------------------------------------------------------

GEMM_TDL = "def GEMM { pattern = builder C(i, j) += A(i, k) * B(k, j) }"

MATVEC_TDL = "def MATVEC { pattern = builder y(i) += A(i, j) * x(j) }"

#: y(j) += A(i, j) * x(i): A used transposed (CBLAS trans parameter).
MATVEC_T_TDL = "def MATVEC_T { pattern = builder y(j) += A(i, j) * x(i) }"

CONV2D_TDL = (
    "def CONV2D { pattern = builder "
    "O(b, f, y, x) += I(b, c, y + kh, x + kw) * K(f, c, kh, kw) }"
)


def compile_tdl(source: str) -> List[CompiledTactic]:
    """TDL text -> TDS records -> compiled tactics (the full Figure 3
    pipeline)."""
    return [compile_tactic(tdl_to_tds(t)) for t in parse_tdl(source)]


_DEFAULT_TACTICS_CACHE: Optional[List[CompiledTactic]] = None


def default_linalg_tactics() -> List[CompiledTactic]:
    """Tactics for the Affine-to-Linalg raising path: named ops plus
    the TTGT tactics for the paper's contraction benchmarks.

    Compiled tactics are stateless between matches, so the library is
    built once per process (like the C++ flow, where TableGen output is
    compiled ahead of time).
    """
    global _DEFAULT_TACTICS_CACHE
    if _DEFAULT_TACTICS_CACHE is None:
        sources = [GEMM_TDL, MATVEC_TDL, MATVEC_T_TDL, CONV2D_TDL]
        sources += [
            contraction_tactic_tdl(spec) for spec in PAPER_CONTRACTIONS
        ]
        tactics: List[CompiledTactic] = []
        for source in sources:
            tactics.extend(compile_tdl(source))
        _DEFAULT_TACTICS_CACHE = tactics
    return list(_DEFAULT_TACTICS_CACHE)


def gemm_tactic() -> CompiledTactic:
    return compile_tdl(GEMM_TDL)[0]


# ----------------------------------------------------------------------
# Rewrite patterns
# ----------------------------------------------------------------------


class RaisingStats:
    """Counts raised callsites per tactic (Figure 8's metric)."""

    def __init__(self):
        self.callsites: Dict[str, int] = {}

    def record(self, tactic_name: str) -> None:
        self.callsites[tactic_name] = self.callsites.get(tactic_name, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.callsites.values())

    def __repr__(self) -> str:
        return f"RaisingStats({self.callsites})"


class TacticRewritePattern(RewritePattern):
    """Hooks a compiled tactic into the MLIR-style pattern rewriter."""

    root_op_name = "affine.for"

    def __init__(
        self,
        tactic: CompiledTactic,
        target: str = "linalg",
        library: str = "mkl-dnn",
        stats: Optional[RaisingStats] = None,
        raise_stats: Optional[RaiseStats] = None,
    ):
        self.tactic = tactic
        self.target = target
        self.library = library
        self.stats = stats
        self.raise_stats = raise_stats
        # Deeper patterns first: a contraction band must be claimed by
        # its contraction tactic, not a shallower pattern.
        self.benefit = tactic.num_loops

    @property
    def pattern_name(self) -> str:
        return self.tactic.name

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        result, reason = self.tactic.match_explain(op)
        if self.raise_stats is not None:
            self.raise_stats.record_tdl(self.tactic.name, reason)
        if result is None:
            return False
        from .builders import apply_builders

        apply_builders(
            self.tactic.record,
            result,
            self.target,
            self.library,
            rewriter=rewriter,
        )
        if self.stats is not None:
            self.stats.record(self.tactic.name)
        return True


class FillRaisingPattern(RewritePattern):
    """Raise constant-initialization nests to ``linalg.fill``.

    TDL cannot express scalar constants, so this complementary pattern
    is hand-written against the matcher API — it recognizes a perfect
    band whose only payload is ``store const -> T[ivs]`` covering every
    band IV exactly once.
    """

    root_op_name = "affine.for"
    benefit = 0  # after all tactics

    def __init__(
        self,
        stats: Optional[RaisingStats] = None,
        raise_stats: Optional[RaiseStats] = None,
    ):
        self.stats = stats
        self.raise_stats = raise_stats

    def _bail(self, reason: str = "pattern-mismatch") -> bool:
        if self.raise_stats is not None:
            self.raise_stats.record_tdl("FILL", reason)
        return False

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if not isinstance(op, AffineForOp):
            return self._bail()
        parent = op.parent_op
        if isinstance(parent, AffineForOp) and len(parent.ops_in_body()) == 1:
            return self._bail("inner-loop-root")
        band = perfect_nest(op)
        payload = band[-1].ops_in_body()
        if len(payload) != 2:
            return self._bail("body-shape")
        const_op, store_op = payload
        if not isinstance(const_op, std.ConstantOp) or not isinstance(
            store_op, AffineStoreOp
        ):
            return self._bail("body-shape")
        if store_op.value is not const_op.result:
            return self._bail("structure-mismatch")
        access = access_function(store_op)
        if access is None:
            return self._bail("structure-mismatch")
        band_ivs = [loop.induction_var for loop in band]
        if len(access.subscripts) != len(band_ivs):
            return self._bail("structure-mismatch")
        seen = set()
        for sub in access.subscripts:
            single = None
            if len(sub.coeffs) == 1 and sub.constant == 0:
                ((iv, coeff),) = sub.coeffs.items()
                if coeff == 1:
                    single = iv
            if single is None or id(single) in seen:
                return self._bail("iv-binding")
            if not any(single is iv for iv in band_ivs):
                return self._bail("iv-binding")
            seen.add(id(single))
        # Bounds must cover the full memref.
        memref = store_op.memref
        for loop in band:
            if loop.constant_lower_bound() != 0:
                return self._bail("non-constant-trip")
        extents = {}
        for sub, dim_size in zip(access.subscripts, memref.type.shape):
            ((iv, _),) = sub.coeffs.items()
            loop = iv.owner.parent_op
            if loop.constant_trip_count() != dim_size:
                return self._bail("non-constant-trip")
        rewriter.set_insertion_point_before(op)
        new_const = rewriter.insert(
            std.ConstantOp.create(const_op.value, memref.type.element_type)
        )
        rewriter.insert(linalg_d.FillOp.create(new_const.result, memref))
        rewriter.erase_nest(band[0])
        if self.stats is not None:
            self.stats.record("FILL")
        if self.raise_stats is not None:
            self.raise_stats.record_tdl("FILL", "matched")
        return True


# ----------------------------------------------------------------------
# Passes
# ----------------------------------------------------------------------


class RaiseAffineToAffinePass(FunctionPass):
    """-raise-affine-to-affine: GEMM loop nests -> affine.matmul."""

    name = "raise-affine-to-affine"

    def __init__(self):
        self.stats = RaisingStats()
        self._frozen = None

    def prepare(self, module: ModuleOp, context: Context) -> None:
        # Freeze the pattern set once per pass *object*, not once per
        # run (let alone per function): the index only depends on the
        # pattern list, which is fixed at construction.  (The frozen
        # set is driver-independent — both drivers consume the same
        # benefit-ordered buckets.)
        if self._frozen is None:
            self._frozen = FrozenPatternSet(
                [
                    TacticRewritePattern(
                        gemm_tactic(), target="affine", stats=self.stats
                    )
                ]
            )

    def run_on_function(self, func, context: Context):
        result = apply_patterns_greedily(func, self._frozen)
        self.rewrite_results.append(result)
        return result.changed


class RaiseAffineToLinalgPass(FunctionPass):
    """-raise-affine-to-linalg: loop nests -> Linalg named ops."""

    name = "raise-affine-to-linalg"

    def __init__(
        self,
        tactics: Optional[Sequence[CompiledTactic]] = None,
        raise_fills: bool = True,
        raise_generics: bool = False,
        raise_mode: str = "tdl",
        synth_config=None,
    ):
        if raise_mode not in RAISE_MODES:
            raise ValueError(
                f"unknown raise mode {raise_mode!r}; known: {RAISE_MODES}"
            )
        self.tactics = list(tactics) if tactics is not None else None
        self.raise_fills = raise_fills
        self.raise_generics = raise_generics
        self.raise_mode = raise_mode
        self.synth_config = synth_config
        self.stats = RaisingStats()
        #: Per-pattern / per-bail-reason observability for both tiers
        #: (``mlt-opt --raise-stats``).
        self.raise_stats = RaiseStats()
        self._frozen = None
        self._frozen_built = False

    def cache_config(self) -> str:
        tactic_names = (
            "default"
            if self.tactics is None
            else ",".join(getattr(t, "name", repr(t)) for t in self.tactics)
        )
        return (
            f"mode={self.raise_mode};fills={self.raise_fills};"
            f"generics={self.raise_generics};tactics={tactic_names};"
            f"synth={self.synth_config!r}"
        )

    def prepare(self, module: ModuleOp, context: Context) -> None:
        # The pattern set depends only on constructor configuration, so
        # freeze (and bucket-index) it once per pass object instead of
        # once per run.
        if self._frozen_built:
            return
        tactics = (
            self.tactics if self.tactics is not None else default_linalg_tactics()
        )
        patterns: List[RewritePattern] = []
        if "tdl" in self.raise_mode:
            patterns = [
                TacticRewritePattern(
                    t,
                    target="linalg",
                    stats=self.stats,
                    raise_stats=self.raise_stats,
                )
                for t in tactics
            ]
            if self.raise_fills:
                patterns.append(
                    FillRaisingPattern(self.stats, self.raise_stats)
                )
            if self.raise_generics:
                from .generic_raising import GenericContractionPattern

                patterns.append(GenericContractionPattern(self.stats))
        self._frozen = FrozenPatternSet(patterns) if patterns else None
        self._frozen_built = True

    def run_on_function(self, func, context: Context):
        changed = False
        if self._frozen is not None:
            result = apply_patterns_greedily(func, self._frozen)
            self.rewrite_results.append(result)
            changed = result.changed
        if "synth" in self.raise_mode:
            # Fallback tier: whatever the structural matchers left
            # behind gets one enumerative-synthesis attempt per band.
            from ..raising.synthesize import synthesize_function

            changed = (
                synthesize_function(
                    func, self.raise_stats, self.synth_config
                )
                > 0
            ) or changed
        return changed


# ----------------------------------------------------------------------
# Convenience wrappers
# ----------------------------------------------------------------------


def raise_affine_to_affine(module: ModuleOp) -> RaisingStats:
    pass_ = RaiseAffineToAffinePass()
    pass_.run(module, Context())
    return pass_.stats


def raise_affine_to_linalg(
    module: ModuleOp,
    tactics: Optional[Sequence[CompiledTactic]] = None,
    raise_fills: bool = True,
    raise_generics: bool = False,
    raise_mode: str = "tdl",
) -> RaisingStats:
    pass_ = RaiseAffineToLinalgPass(
        tactics, raise_fills, raise_generics, raise_mode=raise_mode
    )
    pass_.run(module, Context())
    return pass_.stats
