"""Structural matchers: declaratively describe the control-flow shape
of the IR (§III-C, Listing 5).

The API visually resembles the IR it matches::

    with NestedPatternContext():
        matcher = For(For(is_mac))   # 2-d perfect nest with a MAC body

A structural matcher consists of a control-flow op type, a list of
children matchers, and an optional filtering callback.  The top matcher
is the *relative root*; matching starts at a given operation and
recursively walks its descendants against the matcher's descendants,
failing fast on the first mismatch.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ...dialects.affine import AffineForOp
from ...dialects.scf import ForOp as SCFForOp, IfOp as SCFIfOp
from ...ir import Block, IRError, Operation

_ACTIVE_CONTEXTS: List["NestedPatternContext"] = []


class NestedPatternContext:
    """Owns structural matchers; matchers require a live context."""

    def __init__(self):
        self.matchers: List["StructuralMatcher"] = []
        _ACTIVE_CONTEXTS.append(self)
        self._closed = False

    def close(self) -> None:
        if not self._closed:
            _ACTIVE_CONTEXTS.remove(self)
            self._closed = True

    def __enter__(self) -> "NestedPatternContext":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def register(self, matcher: "StructuralMatcher") -> None:
        self.matchers.append(matcher)


def _current_context() -> NestedPatternContext:
    if not _ACTIVE_CONTEXTS:
        raise IRError(
            "structural matchers require an active NestedPatternContext"
        )
    return _ACTIVE_CONTEXTS[-1]


class StructuralMatcher:
    """Matches a control-flow subtree.

    ``node_kinds`` — op classes accepted at this node;
    ``children``   — matchers for the nested loops, in order;
    ``callback``   — optional predicate over the matched op's body.
    """

    def __init__(
        self,
        node_kinds,
        children: List["StructuralMatcher"],
        callback: Optional[Callable[[Block], bool]] = None,
        context: Optional[NestedPatternContext] = None,
    ):
        self.node_kinds = node_kinds
        self.children = children
        self.callback = callback
        (context or _current_context()).register(self)

    def match(self, op: Operation) -> bool:
        """Match starting at ``op`` (the relative root)."""
        if not isinstance(op, self.node_kinds):
            return False
        body = op.body
        if not self.children:
            # A leaf matcher describes an innermost loop: no nested loops.
            if any(
                isinstance(o, _LOOP_KINDS)
                for o in body.ops_without_terminator()
            ):
                return False
        if self.children:
            # Perfect-nest semantics: the body's loop children must be
            # exactly the children matchers, in order, with no other
            # (non-terminator) operations in between.
            body_ops = body.ops_without_terminator()
            loop_ops = [o for o in body_ops if isinstance(o, _LOOP_KINDS)]
            if len(loop_ops) != len(self.children):
                return False
            if len(loop_ops) != len(body_ops):
                return False  # interleaved straight-line code: not perfect
            for child, loop_op in zip(self.children, loop_ops):
                if not child.match(loop_op):
                    return False
        if self.callback is not None:
            if not self.callback(body):
                return False
        return True

    def match_anywhere(self, root: Operation) -> List[Operation]:
        """All ops under ``root`` where this matcher matches."""
        return [op for op in root.walk() if self.match(op)]

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def __repr__(self) -> str:
        inner = ", ".join(map(repr, self.children))
        cb = "cb, " if self.callback else ""
        names = (
            self.node_kinds.__name__
            if isinstance(self.node_kinds, type)
            else "|".join(k.__name__ for k in self.node_kinds)
        )
        return f"{names}({cb}{inner})"


_LOOP_KINDS = (AffineForOp, SCFForOp)


def _split_args(args):
    callback = None
    children = []
    for arg in args:
        if isinstance(arg, StructuralMatcher):
            children.append(arg)
        elif callable(arg):
            if callback is not None:
                raise IRError("structural matcher takes one callback at most")
            callback = arg
        else:
            raise IRError(f"bad structural matcher argument: {arg!r}")
    return callback, children


def For(*args) -> StructuralMatcher:
    """Matches a loop (affine or scf).  Leading callback optional."""
    callback, children = _split_args(args)
    return StructuralMatcher(_LOOP_KINDS, children, callback)


def If(*args) -> StructuralMatcher:
    callback, children = _split_args(args)
    return StructuralMatcher((SCFIfOp,), children, callback)
