"""Operation matchers (``m_Op``, ``m_Capt``) in the style of §III-C.

An operation matcher checks the type of an operation and recursively
matches its operands by walking the use-def chain backwards::

    MACOp = m_Op(AddFOp, a, m_Op(MulFOp, b, c))
    MACOp.match(add_op)

Argument matchers can be other ``m_Op`` matchers, value captures
(``m_Capt``), access patterns (array placeholders, see
:mod:`.access`), or ``m_Any()``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from ...ir import Operation, Value


class Capture:
    """Captures the :class:`Value` it matched for later inspection."""

    def __init__(self, name: str = ""):
        self.name = name
        self.value: Optional[Value] = None

    def match_value(self, value: Value, bindings: "_Bindings") -> bool:
        bindings.record_capture(self, value)
        return True

    def get(self) -> Value:
        if self.value is None:
            raise ValueError(f"capture {self.name!r} did not match")
        return self.value

    def __repr__(self) -> str:
        return f"m_Capt({self.name})"


def m_Capt(name: str = "") -> Capture:
    return Capture(name)


class AnyValue:
    def match_value(self, value: Value, bindings: "_Bindings") -> bool:
        return True

    def __repr__(self) -> str:
        return "m_Any()"


def m_Any() -> AnyValue:
    return AnyValue()


class _Bindings:
    """Tentative capture assignments, committed only on full success."""

    def __init__(self):
        self.captures: List = []

    def record_capture(self, capture: Capture, value: Value) -> None:
        self.captures.append((capture, value))

    def commit(self) -> None:
        for capture, value in self.captures:
            capture.value = value


class OpMatcher:
    """Matches an op by kind and (optionally) its operand tree.

    Matching is *commutativity-aware* for known commutative ops
    (add/mul): if the operand matchers fail in order, the swapped
    order is tried.
    """

    _COMMUTATIVE = {"std.addf", "std.mulf", "std.addi", "std.muli", "std.maxf"}

    def __init__(self, op_kind, *arg_matchers):
        self.op_kind = op_kind
        self.arg_matchers = list(arg_matchers)

    def _kind_matches(self, op: Operation) -> bool:
        if isinstance(self.op_kind, str):
            return op.name == self.op_kind
        return isinstance(op, self.op_kind)

    def match(self, op: Operation) -> bool:
        bindings = _Bindings()
        if self._match_op(op, bindings):
            bindings.commit()
            return True
        return False

    def _match_op(self, op: Operation, bindings: _Bindings) -> bool:
        if not isinstance(op, Operation) or not self._kind_matches(op):
            return False
        if not self.arg_matchers:
            return True
        # A single access-pattern argument matches the op's whole access
        # (memref + subscripts), e.g. m_Op(AffineLoadOp, _A(_i, _j)).
        if len(self.arg_matchers) == 1 and hasattr(
            self.arg_matchers[0], "match_access"
        ):
            return self.arg_matchers[0].match_access(op)
        if len(self.arg_matchers) != op.num_operands:
            return False
        orders = [list(range(op.num_operands))]
        if op.name in self._COMMUTATIVE and op.num_operands == 2:
            orders.append([1, 0])
        from .access import restore_all_contexts, snapshot_all_contexts

        for order in orders:
            saved = list(bindings.captures)
            snapshots = snapshot_all_contexts()
            if all(
                self._match_arg(self.arg_matchers[i], op.operand(perm_i), bindings)
                for i, perm_i in enumerate(order)
            ):
                return True
            bindings.captures = saved
            restore_all_contexts(snapshots)
        return False

    def _match_arg(self, matcher, value: Value, bindings: _Bindings) -> bool:
        if isinstance(matcher, OpMatcher):
            def_op = value.defining_op
            if def_op is None:
                return False
            return matcher._match_op(def_op, bindings)
        if hasattr(matcher, "match_value"):
            return matcher.match_value(value, bindings)
        if hasattr(matcher, "match_access_operand"):
            def_op = value.defining_op
            if def_op is None:
                return False
            return matcher.match_access_operand(def_op)
        raise TypeError(f"not a matcher: {matcher!r}")

    def __repr__(self) -> str:
        kind = (
            self.op_kind
            if isinstance(self.op_kind, str)
            else self.op_kind.__name__
        )
        return f"m_Op<{kind}>({', '.join(map(repr, self.arg_matchers))})"


def m_Op(op_kind, *arg_matchers) -> OpMatcher:
    """Create an operation matcher.

    ``op_kind`` is an op class (e.g. ``AddFOp``) or a full op name
    string ("std.addf").
    """
    return OpMatcher(op_kind, *arg_matchers)
