"""Access-pattern matchers: placeholders and array placeholders (§III-C).

A placeholder matches any induction dimension of the form ``k*i + c``
where ``k`` and ``c`` are pattern coefficients and ``i`` is the
*candidate*: the ``Value`` of the induction variable it binds.  An
array placeholder matches a tensor access and takes placeholder
expressions as subscripts.  Candidates assigned to different
placeholders are required to be distinct, while multiple references to
the same placeholder must refer to the same candidate.

Every placeholder belongs to an :class:`AccessPatternContext` which
orchestrates matching, owns the assignments, and frees everything when
it goes out of scope::

    with AccessPatternContext() as pctx:
        _i, _j = m_Placeholder(), m_Placeholder()
        _A = m_ArrayPlaceholder()
        matcher = m_Op(AffineLoadOp, _A(2 * _i + 1, _j + 5))
        if matcher.match(load_op):
            iv = pctx[_i]          # read out the matched value
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ...analysis.accesses import AccessFunction, access_function
from ...dialects.affine import AffineLoadOp, AffineStoreOp
from ...ir import IRError, Operation, Value


class MatchFailure(IRError):
    pass


#: Contexts currently alive; matcher construction requires one.
_ACTIVE_CONTEXTS: List["AccessPatternContext"] = []


def _current_context() -> "AccessPatternContext":
    if not _ACTIVE_CONTEXTS:
        raise MatchFailure(
            "matchers cannot be constructed without an active "
            "AccessPatternContext"
        )
    return _ACTIVE_CONTEXTS[-1]


def snapshot_all_contexts() -> List[Tuple["AccessPatternContext", dict, dict]]:
    return [
        (ctx, dict(ctx._assignments), dict(ctx._array_assignments))
        for ctx in _ACTIVE_CONTEXTS
    ]


def restore_all_contexts(snapshots) -> None:
    for ctx, assignments, arrays in snapshots:
        ctx._assignments = assignments
        ctx._array_assignments = arrays


class AccessPatternContext:
    """Tracks placeholder-candidate assignments during matching."""

    def __init__(self):
        self._placeholders: List["Placeholder"] = []
        self._arrays: List["ArrayPlaceholder"] = []
        self._assignments: Dict[int, Value] = {}
        self._array_assignments: Dict[int, Value] = {}
        _ACTIVE_CONTEXTS.append(self)
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if not self._closed:
            _ACTIVE_CONTEXTS.remove(self)
            self._closed = True

    def __enter__(self) -> "AccessPatternContext":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- construction --------------------------------------------------------

    def placeholder(self) -> "Placeholder":
        p = Placeholder(self, len(self._placeholders))
        self._placeholders.append(p)
        return p

    def array_placeholder(self) -> "ArrayPlaceholder":
        a = ArrayPlaceholder(self, len(self._arrays))
        self._arrays.append(a)
        return a

    # -- assignment --------------------------------------------------------

    def reset(self) -> None:
        self._assignments.clear()
        self._array_assignments.clear()

    def candidate(self, placeholder: "Placeholder") -> Optional[Value]:
        return self._assignments.get(placeholder.uid)

    def __getitem__(self, key) -> Value:
        if isinstance(key, Placeholder):
            value = self._assignments.get(key.uid)
        elif isinstance(key, ArrayPlaceholder):
            value = self._array_assignments.get(key.uid)
        else:
            raise TypeError("context lookup requires a placeholder")
        if value is None:
            raise MatchFailure("placeholder has no candidate assigned")
        return value

    def try_bind(self, placeholder: "Placeholder", candidate: Value) -> bool:
        bound = self._assignments.get(placeholder.uid)
        if bound is not None:
            return bound is candidate
        # Distinctness: no other placeholder may hold this candidate.
        if any(v is candidate for v in self._assignments.values()):
            return False
        self._assignments[placeholder.uid] = candidate
        return True

    def try_bind_array(self, array: "ArrayPlaceholder", memref: Value) -> bool:
        bound = self._array_assignments.get(array.uid)
        if bound is not None:
            return bound is memref
        if any(v is memref for v in self._array_assignments.values()):
            return False
        self._array_assignments[array.uid] = memref
        return True

    @property
    def num_assigned(self) -> int:
        return len(self._assignments)


class PlaceholderExpr:
    """``coeff * placeholder + constant`` — the ``k*i + c`` pattern."""

    def __init__(self, placeholder: "Placeholder", coeff: int = 1, constant: int = 0):
        self.placeholder = placeholder
        self.coeff = coeff
        self.constant = constant

    # operator sugar mirrors the C++ API's operator overloading
    def __mul__(self, k: int) -> "PlaceholderExpr":
        return PlaceholderExpr(
            self.placeholder, self.coeff * k, self.constant * k
        )

    __rmul__ = __mul__

    def __add__(self, other) -> Union["PlaceholderExpr", "PlaceholderSum"]:
        if isinstance(other, PlaceholderExpr):
            return PlaceholderSum(
                [(self.placeholder, self.coeff), (other.placeholder, other.coeff)],
                self.constant + other.constant,
            )
        return PlaceholderExpr(
            self.placeholder, self.coeff, self.constant + other
        )

    __radd__ = __add__

    def __sub__(self, c: int) -> "PlaceholderExpr":
        return self + (-c)

    def match_subscript(self, fn: AccessFunction) -> bool:
        """Match one access function against ``coeff*candidate + const``."""
        if fn.constant != self.constant:
            return False
        if len(fn.coeffs) != 1:
            return False
        ((candidate, coeff),) = fn.coeffs.items()
        if coeff != self.coeff:
            return False
        return self.placeholder.context.try_bind(self.placeholder, candidate)

    def __repr__(self) -> str:
        return f"{self.coeff}*_{self.placeholder.uid}+{self.constant}"


class PlaceholderSum:
    """A multi-placeholder subscript pattern, e.g. ``_y + _kh`` for
    convolution input accesses."""

    def __init__(self, terms: List[Tuple["Placeholder", int]], constant: int = 0):
        self.terms = list(terms)
        self.constant = constant

    @property
    def context(self) -> "AccessPatternContext":
        return self.terms[0][0].context

    def __add__(self, other) -> "PlaceholderSum":
        if isinstance(other, PlaceholderSum):
            return PlaceholderSum(
                self.terms + other.terms, self.constant + other.constant
            )
        if isinstance(other, PlaceholderExpr):
            return PlaceholderSum(
                self.terms + [(other.placeholder, other.coeff)],
                self.constant + other.constant,
            )
        return PlaceholderSum(self.terms, self.constant + other)

    __radd__ = __add__

    def match_subscript(self, fn: AccessFunction) -> bool:
        """Assign candidates to all terms; backtracks over ambiguous
        (same-coefficient) assignments."""
        if fn.constant != self.constant:
            return False
        if len(fn.coeffs) != len(self.terms):
            return False
        candidates = list(fn.coeffs.items())
        ctx_snapshot = snapshot_all_contexts()

        def assign(term_idx: int, used: set) -> bool:
            if term_idx == len(self.terms):
                return True
            placeholder, coeff = self.terms[term_idx]
            for pos, (candidate, cand_coeff) in enumerate(candidates):
                if pos in used or cand_coeff != coeff:
                    continue
                inner = snapshot_all_contexts()
                if placeholder.context.try_bind(placeholder, candidate):
                    if assign(term_idx + 1, used | {pos}):
                        return True
                restore_all_contexts(inner)
            return False

        if assign(0, set()):
            return True
        restore_all_contexts(ctx_snapshot)
        return False

    def __repr__(self) -> str:
        parts = [f"{c}*_{p.uid}" for p, c in self.terms]
        return " + ".join(parts) + f" + {self.constant}"


class Placeholder(PlaceholderExpr):
    """A fresh induction-dimension placeholder."""

    def __init__(self, context: AccessPatternContext, uid: int):
        self.context = context
        self.uid = uid
        PlaceholderExpr.__init__(self, self, 1, 0)

    def __repr__(self) -> str:
        return f"m_Placeholder(#{self.uid})"


class ArrayPlaceholder:
    """Matches a tensor (memref) with placeholder subscripts."""

    def __init__(self, context: AccessPatternContext, uid: int):
        self.context = context
        self.uid = uid

    def __call__(self, *subscripts) -> "ArrayAccessPattern":
        exprs: List[PlaceholderExpr] = []
        flat: Sequence = (
            subscripts[0]
            if len(subscripts) == 1 and isinstance(subscripts[0], (list, tuple))
            else subscripts
        )
        for s in flat:
            if not isinstance(s, (PlaceholderExpr, PlaceholderSum)):
                raise TypeError(f"array subscripts must be placeholders: {s!r}")
            exprs.append(s)
        return ArrayAccessPattern(self, exprs)

    def __repr__(self) -> str:
        return f"m_ArrayPlaceholder(#{self.uid})"


class ArrayAccessPattern:
    """``_A(_i, _j)``: a full access pattern for one load/store."""

    def __init__(self, array: ArrayPlaceholder, subscripts: List[PlaceholderExpr]):
        self.array = array
        self.subscripts = subscripts

    @property
    def context(self) -> AccessPatternContext:
        return self.array.context

    def match_access(self, op: Operation) -> bool:
        """Match a load/store op's access, binding placeholders.

        Self-contained transactionality: bindings are rolled back on
        failure.
        """
        access = access_function(op)
        if access is None:
            return False
        if access.rank != len(self.subscripts):
            return False
        snapshots = snapshot_all_contexts()
        if not self.context.try_bind_array(self.array, access.memref):
            restore_all_contexts(snapshots)
            return False
        for pattern, fn in zip(self.subscripts, access.subscripts):
            if not pattern.match_subscript(fn):
                restore_all_contexts(snapshots)
                return False
        return True

    # Integration point for m_Op(LoadOp, _A(...)).
    def match_access_operand(self, def_op: Operation) -> bool:
        return self.match_access(def_op)

    def __repr__(self) -> str:
        return f"{self.array!r}({', '.join(map(repr, self.subscripts))})"


def m_Placeholder(context: Optional[AccessPatternContext] = None) -> Placeholder:
    return (context or _current_context()).placeholder()


def m_ArrayPlaceholder(
    context: Optional[AccessPatternContext] = None,
) -> ArrayPlaceholder:
    return (context or _current_context()).array_placeholder()


def match_block_accesses(block, store_pattern, body_matcher) -> bool:
    """The matching procedure of §III-C: start from the last store in
    the block, then walk the use-def chain backwards via the body
    matcher, and ensure the block contains only the matched operations.
    """
    stores = [op for op in block.operations if isinstance(op, AffineStoreOp)]
    if len(stores) != 1:
        return False
    store = stores[-1]
    non_terminator = block.ops_without_terminator()
    if non_terminator and non_terminator[-1] is not store:
        return False
    if not store_pattern.match_access(store):
        return False
    value_def = store.value.defining_op
    if value_def is None:
        return False
    return body_matcher.match(value_def)
