"""Matcher library: structural, operation, and access-pattern matchers."""

from .op_matchers import m_Any, m_Capt, m_Op  # noqa: F401
from .access import (  # noqa: F401
    AccessPatternContext,
    MatchFailure,
    m_ArrayPlaceholder,
    m_Placeholder,
    match_block_accesses,
)
from .structural import For, If, NestedPatternContext, StructuralMatcher  # noqa: F401
from .producers import m_ProducerOp, producer_of  # noqa: F401
