"""Producer-chasing op matchers for buffer-semantics (Linalg) ops.

Listing 9 of the paper matches a chain of three matrix multiplications
with nested ``m_Op<MatmulOp>`` matchers whose third operand is *the
matmul producing it*.  With buffer semantics there is no SSA edge
between the ops — the link goes through the memref: the "producer" of
an operand is the last operation before the consumer that wrote that
buffer.  :func:`m_ProducerOp` packages that lookup so Listing 9 can be
written verbatim::

    _chain = m_ProducerOp(
        MatmulOp, m_Capt("A"), m_Capt("B"),
        m_ProducerOp(MatmulOp, out1, m_Capt("C"),
                     m_ProducerOp(MatmulOp, out2, m_Capt("D"), out3)))
    _chain.match(last_matmul_in_block)
"""

from __future__ import annotations

from typing import List, Optional

from ...ir import Operation, Value
from .op_matchers import OpMatcher, _Bindings


def producer_of(value: Value, before: Operation) -> Optional[Operation]:
    """The last op before ``before`` (same block) writing buffer
    ``value``.

    "Writing" means using the buffer as an output operand: the last
    operand of a linalg structured op, the destination of a fill/copy/
    transpose/reshape, or an affine/std store.
    """
    block = before.parent_block
    if block is None:
        return None
    ops = block.operations
    position = ops.index(before)
    for op in reversed(ops[:position]):
        if _writes(op, value):
            return op
    return None


def _writes(op: Operation, buffer: Value) -> bool:
    name = op.name
    if name in (
        "linalg.matmul",
        "linalg.matvec",
        "linalg.conv2d_nchw",
        "blas.sgemm",
        "blas.sgemv",
        "blas.conv2d",
    ):
        return op.operands[-1] is buffer
    if name in (
        "linalg.transpose",
        "linalg.reshape",
        "linalg.copy",
        "blas.transpose",
        "blas.reshape",
    ):
        return op.operand(1) is buffer
    if name == "linalg.fill":
        return op.operand(1) is buffer
    if name in ("affine.store", "std.store"):
        return op.memref is buffer
    return False


class ProducerOpMatcher(OpMatcher):
    """Like :class:`OpMatcher`, but operand sub-matchers that are
    themselves op matchers follow the buffer-producer relation instead
    of the (absent) SSA def."""

    def _match_arg(self, matcher, value: Value, bindings: _Bindings) -> bool:
        if isinstance(matcher, OpMatcher):
            anchor = getattr(bindings, "anchor_op", None)
            producer = (
                producer_of(value, anchor) if anchor is not None else None
            )
            if producer is None:
                return False
            saved_anchor = bindings.anchor_op
            bindings.anchor_op = producer
            try:
                return matcher._match_op(producer, bindings)
            finally:
                bindings.anchor_op = saved_anchor
        return super()._match_arg(matcher, value, bindings)

    def match(self, op: Operation) -> bool:
        bindings = _Bindings()
        bindings.anchor_op = op
        if self._match_op(op, bindings):
            bindings.commit()
            return True
        return False

    def _match_op(self, op: Operation, bindings: _Bindings) -> bool:
        if getattr(bindings, "anchor_op", None) is None:
            bindings.anchor_op = op
        saved = bindings.anchor_op
        bindings.anchor_op = op
        try:
            return super()._match_op(op, bindings)
        finally:
            bindings.anchor_op = saved


def m_ProducerOp(op_kind, *arg_matchers) -> ProducerOpMatcher:
    return ProducerOpMatcher(op_kind, *arg_matchers)
