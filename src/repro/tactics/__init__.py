"""Multi-Level Tactics: declarative progressive raising.

The compilation flow (Figure 3 of the paper)::

    TDL text --(TDL frontend)--> TDS (TableGen records)
             --(MLT backend)---> matchers + builders
             --(pattern rewriter)--> raised IR

Public entry points:

    raise_affine_to_affine(module)   # -raise-affine-to-affine  (§V-A)
    raise_affine_to_linalg(module)   # -raise-affine-to-linalg  (§V-B)
    reorder_matrix_chains(module)    # Linalg-level chain opt    (§V-C)
"""

from .tdl.ast import TdlAccess, TdlStatement, TdlTactic, TdlSyntaxError  # noqa: F401
from .tdl.parser import parse_tdl  # noqa: F401
from .tdl.frontend import tdl_to_tds  # noqa: F401
from .tds import (  # noqa: F401
    BuilderSpec,
    TacticRecord,
    parse_tds,
)
from .tablegen import TableGenBackend, TableGenError  # noqa: F401
from .compiled import CompiledTactic, MatchResult, compile_tactic  # noqa: F401
from .raising import (  # noqa: F401
    RaiseAffineToAffinePass,
    RaiseAffineToLinalgPass,
    TacticRewritePattern,
    default_linalg_tactics,
    raise_affine_to_affine,
    raise_affine_to_linalg,
)
from .contraction import contraction_tactic_tdl, ttgt_plan  # noqa: F401
from .chain import (  # noqa: F401
    MatrixChainReorderPass,
    optimal_parenthesization,
    reorder_matrix_chains,
)
from .generic_raising import (  # noqa: F401
    GenericContractionPattern,
    raise_to_generic,
)
