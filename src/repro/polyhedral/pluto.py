"""The Pluto baseline: polyhedral tiling + fusion + interchange.

Models the source-to-source optimizer the paper compares against:

  * ``Pluto-default`` — tiling factor 32 on each dimension with the
    ``smartfuse`` heuristic (§V-B).
  * ``Pluto-best``    — an autotuning sweep over tile sizes, the three
    fusion heuristics (maxfuse / smartfuse / nofuse), and the innermost
    loop choice, selecting the configuration the machine model rates
    fastest (the paper's version sweeps >3000 configurations for days;
    the sweep here is the same search over a coarser grid).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..dialects.affine import AffineForOp, outermost_loops, perfect_nest
from ..execution.cost_model import CostModel
from ..execution.machines import Machine
from ..ir import ModuleOp, Operation
from ..transforms.fusion import greedy_fuse
from ..transforms.tiling import TilingError, tile_perfect_nest
from .dependences import band_is_fully_permutable

FUSION_HEURISTICS = ("smartfuse", "maxfuse", "nofuse")


@dataclass
class PlutoOptions:
    tile_size: int = 32
    fusion: str = "smartfuse"
    #: rotate the band so this (band-relative) loop becomes innermost;
    #: None keeps the program order.
    innermost: Optional[int] = None

    def describe(self) -> str:
        inner = "orig" if self.innermost is None else f"inner={self.innermost}"
        return f"tile={self.tile_size},{self.fusion},{inner}"


def permute_band(root: AffineForOp, perm: Sequence[int]) -> AffineForOp:
    """Interchange a fully-permutable perfect band.

    ``perm[i]`` gives the old position of the loop placed at new
    position ``i``.  Returns the new outermost loop.
    """
    band = perfect_nest(root)
    if sorted(perm) != list(range(len(band))):
        raise TilingError(f"bad permutation {perm}")
    if len(band) != len(perm):
        raise TilingError("permutation length does not match band depth")
    innermost = band[-1]
    payload = innermost.ops_in_body()
    parent_block = root.parent_block
    position = parent_block.operations.index(root)

    new_loops: List[AffineForOp] = []
    for new_pos, old_pos in enumerate(perm):
        old = band[old_pos]
        loop = AffineForOp.create(
            old.lower_bound_map,
            old.upper_bound_map,
            old.step,
            old.lb_operands,
            old.ub_operands,
        )
        new_loops.append(loop)
    for outer, inner in zip(new_loops, new_loops[1:]):
        outer.body.insert(len(outer.body.operations) - 1, inner)
    inner_body = new_loops[-1].body
    insert_at = len(inner_body.operations) - 1
    for op in payload:
        innermost.body.remove(op)
        inner_body.insert(insert_at, op)
        insert_at += 1
    for new_pos, old_pos in enumerate(perm):
        band[old_pos].induction_var.replace_all_uses_with(
            new_loops[new_pos].induction_var
        )
    parent_block.insert(position, new_loops[0])
    root.drop_all_references()
    for op in list(root.walk_inner()):
        op.drop_all_references()
    parent_block.remove(root)
    return new_loops[0]


def _rotation(depth: int, innermost: int) -> List[int]:
    """Order keeping relative order but making ``innermost`` last."""
    order = [i for i in range(depth) if i != innermost]
    order.append(innermost)
    return order


def pluto_optimize(
    module: ModuleOp, options: Optional[PlutoOptions] = None
) -> ModuleOp:
    """Apply the Pluto schedule in place and return the module."""
    options = options or PlutoOptions()
    for func in module.functions:
        if options.fusion in ("smartfuse", "maxfuse"):
            # smartfuse ~ maxfuse on our kernels: fuse whenever legal,
            # which merges same-shape sibling nests.
            greedy_fuse(func)
        for root in _band_roots(func):
            _schedule_band(root, options)
    return module


def _band_roots(func) -> List[AffineForOp]:
    """Roots of maximal perfect bands, found recursively: if a loop's
    band is trivial (depth 1) but contains nested loops, descend."""
    roots: List[AffineForOp] = []

    def visit(loop: AffineForOp) -> None:
        band = perfect_nest(loop)
        if len(band) >= 2:
            roots.append(loop)
            return
        for op in band[-1].ops_in_body():
            if isinstance(op, AffineForOp):
                visit(op)

    for loop in outermost_loops(func):
        visit(loop)
    return roots


def _schedule_band(root: AffineForOp, options: PlutoOptions) -> None:
    band = perfect_nest(root)
    if not band_is_fully_permutable(band):
        return
    if options.innermost is not None and len(band) > 1:
        inner = min(options.innermost, len(band) - 1)
        order = _rotation(len(band), inner)
        if order != list(range(len(band))):
            root = permute_band(root, order)
            band = perfect_nest(root)
    if options.tile_size > 1 and len(band) > 1:
        try:
            tile_perfect_nest(root, [options.tile_size] * len(band))
        except TilingError:
            pass


def pluto_best(
    module_factory: Callable[[], ModuleOp],
    machine: Machine,
    tile_sizes: Sequence[int] = (1, 8, 16, 32, 64, 128, 256),
    max_innermost: int = 7,
) -> Tuple[PlutoOptions, float]:
    """Autotune Pluto options against the machine model.

    ``module_factory`` must produce a fresh module per configuration
    (transforms are destructive).  Returns the best options and the
    predicted seconds.
    """
    model = CostModel(machine)
    best: Optional[Tuple[PlutoOptions, float]] = None
    for fusion in FUSION_HEURISTICS:
        for tile in tile_sizes:
            for innermost in [None, *range(max_innermost)]:
                options = PlutoOptions(tile, fusion, innermost)
                module = pluto_optimize(module_factory(), options)
                seconds = sum(
                    model.cost_function(f).seconds for f in module.functions
                )
                if best is None or seconds < best[1]:
                    best = (options, seconds)
    assert best is not None
    return best
