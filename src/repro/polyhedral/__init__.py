"""The polyhedral source-to-source baseline (Pluto stand-in)."""

from .dependences import band_is_fully_permutable, has_uniform_writes  # noqa: F401
from .pluto import (  # noqa: F401
    FUSION_HEURISTICS,
    PlutoOptions,
    pluto_best,
    pluto_optimize,
)
