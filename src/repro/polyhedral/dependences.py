"""Lightweight affine dependence analysis.

Full polyhedral dependence analysis (ISL-style) is not needed for the
kernel classes the paper evaluates; the property the transforms rely on
— *full permutability* of a loop band (legal to tile and interchange)
— is decided by a conservative sufficient condition: every pair of
conflicting accesses (at least one write) to the same buffer within the
band must use the identical access function, i.e. every dependence has
distance 0 in all band dimensions.  That holds for reductions of the
GEMM/contraction family and for element-wise updates, and fails (as it
should) for loop-carried recurrences like ``A[i] = A[i-1]``.
"""

from __future__ import annotations

from typing import List, Sequence

from ..analysis.accesses import MemoryAccess, collect_accesses
from ..dialects.affine import AffineForOp


def _conflicts(a: MemoryAccess, b: MemoryAccess) -> bool:
    return a.memref is b.memref and (a.is_write or b.is_write)


def band_is_fully_permutable(band: Sequence[AffineForOp]) -> bool:
    """True when every dependence carried by the band has distance 0."""
    accesses = collect_accesses(band[0])
    for i, a in enumerate(accesses):
        for b in accesses[i:]:
            if not _conflicts(a, b):
                continue
            if not a.same_element(b):
                return False
    return True


def has_uniform_writes(root: AffineForOp) -> bool:
    """Every written buffer is written through a single access
    function (sufficient for distribution/fusion reasoning)."""
    accesses = collect_accesses(root)
    by_memref = {}
    for access in accesses:
        if access.is_write:
            by_memref.setdefault(id(access.memref), []).append(access)
    for group in by_memref.values():
        first = group[0]
        if any(not first.same_element(other) for other in group[1:]):
            return False
    return True
