"""The ``llvm`` dialect: the lowest-level representation.

Models LLVM-IR-like unstructured control flow (branches between blocks
with block arguments standing in for phi nodes) and flat memory access
through explicitly linearized indices.  This is the code-generation
floor of the progressive-lowering pipeline (the "valley" of Figure 1).
"""

from __future__ import annotations

from typing import Sequence

from ..ir.attributes import StringAttr
from ..ir.core import Block, IRError, Operation, register_op
from ..ir.types import IndexType, MemRefType, Type
from ..ir.values import Value


@register_op
class BrOp(Operation):
    """Unconditional branch, passing values to the successor's args."""

    OP_NAME = "llvm.br"
    IS_TERMINATOR = True

    @staticmethod
    def create(dest: Block, args: Sequence[Value] = ()) -> "BrOp":
        return BrOp(operands=args, successors=[dest])

    @property
    def dest(self) -> Block:
        return self.successors[0]

    def verify_(self) -> None:
        if len(self.successors) != 1:
            raise IRError("llvm.br needs exactly one successor")
        dest_args = self.successors[0].arguments
        if len(dest_args) != self.num_operands:
            raise IRError(
                f"llvm.br passes {self.num_operands} values to a block "
                f"expecting {len(dest_args)}"
            )


@register_op
class CondBrOp(Operation):
    """Conditional branch on an i1 value (no block arguments passed)."""

    OP_NAME = "llvm.cond_br"
    IS_TERMINATOR = True

    @staticmethod
    def create(cond: Value, true_dest: Block, false_dest: Block) -> "CondBrOp":
        return CondBrOp(operands=[cond], successors=[true_dest, false_dest])

    @property
    def condition(self) -> Value:
        return self.operand(0)

    @property
    def true_dest(self) -> Block:
        return self.successors[0]

    @property
    def false_dest(self) -> Block:
        return self.successors[1]

    def verify_(self) -> None:
        if len(self.successors) != 2:
            raise IRError("llvm.cond_br needs exactly two successors")
        if self.successors[0].arguments or self.successors[1].arguments:
            raise IRError("llvm.cond_br successors must not take arguments")


@register_op
class LoadOp(Operation):
    """Flat load: element at a linearized index of a buffer."""

    OP_NAME = "llvm.load"

    @staticmethod
    def create(memref: Value, index: Value) -> "LoadOp":
        ty = memref.type
        if not isinstance(ty, MemRefType):
            raise IRError("llvm.load expects a memref operand")
        return LoadOp(operands=[memref, index], result_types=[ty.element_type])

    @property
    def memref(self) -> Value:
        return self.operand(0)

    @property
    def index(self) -> Value:
        return self.operand(1)


@register_op
class StoreOp(Operation):
    """Flat store: write an element at a linearized index."""

    OP_NAME = "llvm.store"

    @staticmethod
    def create(value: Value, memref: Value, index: Value) -> "StoreOp":
        return StoreOp(operands=[value, memref, index])

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def memref(self) -> Value:
        return self.operand(1)

    @property
    def index(self) -> Value:
        return self.operand(2)


@register_op
class CallOp(Operation):
    """Call into an external (library) symbol."""

    OP_NAME = "llvm.call"

    @staticmethod
    def create(
        callee: str, operands: Sequence[Value], result_types: Sequence[Type] = ()
    ) -> "CallOp":
        return CallOp(
            operands=operands,
            result_types=result_types,
            attributes={"callee": StringAttr(callee)},
        )

    @property
    def callee(self) -> str:
        return self.attributes["callee"].value


@register_op
class UnreachableOp(Operation):
    OP_NAME = "llvm.unreachable"
    IS_TERMINATOR = True
