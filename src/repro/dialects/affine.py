"""The ``affine`` dialect: polyhedral loops and affine memory access.

Loops carry their bounds as affine maps over bound operands, loads and
stores carry an access map applied to their index operands, which keeps
transformation validity preconditions (affine-ness) in the IR itself.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from ..ir.affine_expr import AffineExpr
from ..ir.affine_map import AffineMap
from ..ir.attributes import AffineMapAttr, IntegerAttr
from ..ir.core import Block, IRError, Operation, register_op
from ..ir.types import IndexType, MemRefType
from ..ir.values import BlockArgument, Value


@register_op
class AffineYieldOp(Operation):
    """Terminates the body of an affine.for."""

    OP_NAME = "affine.yield"
    IS_TERMINATOR = True

    @staticmethod
    def create() -> "AffineYieldOp":
        return AffineYieldOp()


@register_op
class AffineForOp(Operation):
    """``affine.for %iv = lb to ub step s { ... }``.

    Bounds are affine maps evaluated over the op's operands; the common
    case of constant bounds uses nullary constant maps.
    """

    OP_NAME = "affine.for"

    @staticmethod
    def create(
        lower_bound: Union[int, AffineMap],
        upper_bound: Union[int, AffineMap],
        step: int = 1,
        lb_operands: Sequence[Value] = (),
        ub_operands: Sequence[Value] = (),
    ) -> "AffineForOp":
        if isinstance(lower_bound, int):
            lower_bound = AffineMap.constant_map([lower_bound])
        if isinstance(upper_bound, int):
            upper_bound = AffineMap.constant_map([upper_bound])
        if step <= 0:
            raise IRError(f"affine.for step must be positive, got {step}")
        op = AffineForOp(
            operands=list(lb_operands) + list(ub_operands),
            attributes={
                "lower_bound": AffineMapAttr(lower_bound),
                "upper_bound": AffineMapAttr(upper_bound),
                "step": IntegerAttr(step),
                "lb_operand_count": IntegerAttr(len(lb_operands)),
            },
            num_regions=1,
        )
        body = op.regions[0].add_block(Block([IndexType()]))
        body.append(AffineYieldOp.create())
        return op

    # -- accessors --------------------------------------------------------

    @property
    def induction_var(self) -> BlockArgument:
        return self.body.arguments[0]

    @property
    def step(self) -> int:
        return self.attributes["step"].value

    @property
    def lower_bound_map(self) -> AffineMap:
        return self.attributes["lower_bound"].map

    @property
    def upper_bound_map(self) -> AffineMap:
        return self.attributes["upper_bound"].map

    @property
    def lb_operands(self) -> List[Value]:
        count = self.attributes["lb_operand_count"].value
        return self.operands[:count]

    @property
    def ub_operands(self) -> List[Value]:
        count = self.attributes["lb_operand_count"].value
        return self.operands[count:]

    def constant_lower_bound(self) -> Optional[int]:
        map_ = self.lower_bound_map
        if map_.num_results == 1 and map_.results[0].is_constant():
            return map_.results[0].evaluate((), ())
        return None

    def constant_upper_bound(self) -> Optional[int]:
        """Constant upper bound; for multi-result (min) maps, the min of
        the constant results if all are constant."""
        map_ = self.upper_bound_map
        if all(e.is_constant() for e in map_.results):
            return min(e.evaluate((), ()) for e in map_.results)
        return None

    def has_constant_bounds(self) -> bool:
        return (
            self.constant_lower_bound() is not None
            and self.constant_upper_bound() is not None
        )

    def constant_trip_count(self) -> Optional[int]:
        lb = self.constant_lower_bound()
        ub = self.constant_upper_bound()
        if lb is None or ub is None:
            return None
        if ub <= lb:
            return 0
        return -((lb - ub) // self.step)  # ceildiv(ub - lb, step)

    def set_constant_bounds(self, lb: int, ub: int, step: Optional[int] = None):
        self.attributes["lower_bound"] = AffineMapAttr(AffineMap.constant_map([lb]))
        self.attributes["upper_bound"] = AffineMapAttr(AffineMap.constant_map([ub]))
        if step is not None:
            self.attributes["step"] = IntegerAttr(step)

    def ops_in_body(self) -> List[Operation]:
        """Body operations, excluding the terminator."""
        return self.body.ops_without_terminator()

    def verify_(self) -> None:
        if len(self.regions) != 1 or not self.regions[0].blocks:
            raise IRError("affine.for requires a body block")
        body = self.body
        if len(body.arguments) != 1 or not isinstance(
            body.arguments[0].type, IndexType
        ):
            raise IRError("affine.for body must take a single index argument")
        if not isinstance(body.terminator, AffineYieldOp):
            raise IRError("affine.for body must end with affine.yield")
        count = self.attributes["lb_operand_count"].value
        if self.lower_bound_map.num_dims != count:
            raise IRError("affine.for lower bound operand count mismatch")
        if self.upper_bound_map.num_dims != self.num_operands - count:
            raise IRError("affine.for upper bound operand count mismatch")


class AffineAccessOpBase(Operation):
    """Shared accessors for affine.load / affine.store."""

    MEMREF_OPERAND_INDEX = 0

    @property
    def memref(self) -> Value:
        return self.operand(self.MEMREF_OPERAND_INDEX)

    @property
    def indices(self) -> List[Value]:
        return self.operands[self.MEMREF_OPERAND_INDEX + 1:]

    @property
    def map(self) -> AffineMap:
        return self.attributes["map"].map

    @property
    def memref_type(self) -> MemRefType:
        ty = self.memref.type
        if not isinstance(ty, MemRefType):
            raise IRError(f"{self.name}: operand is not a memref")
        return ty

    def access_exprs(self) -> Tuple[AffineExpr, ...]:
        return self.map.results

    def verify_(self) -> None:
        map_ = self.map
        if map_.num_results != self.memref_type.rank:
            raise IRError(
                f"{self.name}: map has {map_.num_results} results for "
                f"rank-{self.memref_type.rank} memref"
            )
        if map_.num_dims != len(self.indices):
            raise IRError(
                f"{self.name}: map expects {map_.num_dims} dims, "
                f"got {len(self.indices)} index operands"
            )
        for idx in self.indices:
            if not isinstance(idx.type, IndexType):
                raise IRError(f"{self.name}: index operand is not of index type")


@register_op
class AffineLoadOp(AffineAccessOpBase):
    OP_NAME = "affine.load"

    @staticmethod
    def create(
        memref: Value,
        indices: Sequence[Value],
        map_: Optional[AffineMap] = None,
    ) -> "AffineLoadOp":
        if map_ is None:
            map_ = AffineMap.identity(len(indices))
        elem = memref.type.element_type
        return AffineLoadOp(
            operands=[memref, *indices],
            result_types=[elem],
            attributes={"map": AffineMapAttr(map_)},
        )


@register_op
class AffineStoreOp(AffineAccessOpBase):
    OP_NAME = "affine.store"
    MEMREF_OPERAND_INDEX = 1

    @staticmethod
    def create(
        value: Value,
        memref: Value,
        indices: Sequence[Value],
        map_: Optional[AffineMap] = None,
    ) -> "AffineStoreOp":
        if map_ is None:
            map_ = AffineMap.identity(len(indices))
        return AffineStoreOp(
            operands=[value, memref, *indices],
            attributes={"map": AffineMapAttr(map_)},
        )

    @property
    def value(self) -> Value:
        return self.operand(0)


@register_op
class AffineApplyOp(Operation):
    """Applies a single-result affine map to index operands."""

    OP_NAME = "affine.apply"

    @staticmethod
    def create(map_: AffineMap, operands: Sequence[Value]) -> "AffineApplyOp":
        if map_.num_results != 1:
            raise IRError("affine.apply requires a single-result map")
        return AffineApplyOp(
            operands=operands,
            result_types=[IndexType()],
            attributes={"map": AffineMapAttr(map_)},
        )

    @property
    def map(self) -> AffineMap:
        return self.attributes["map"].map


@register_op
class AffineMatmulOp(Operation):
    """High-level matrix-multiply op *within* the Affine dialect.

    Models the custom ``matmul`` operation of Bondhugula's "High
    Performance Code Generation in MLIR" study: ``C += A * B`` on 2-d
    memrefs, lowered to OpenBLAS/BLIS-style tiled, vectorized code.
    This is the raising target of the Affine-to-Affine path (§V-A).
    """

    OP_NAME = "affine.matmul"

    @staticmethod
    def create(a: Value, b: Value, c: Value) -> "AffineMatmulOp":
        return AffineMatmulOp(operands=[a, b, c])

    @property
    def a(self) -> Value:
        return self.operand(0)

    @property
    def b(self) -> Value:
        return self.operand(1)

    @property
    def c(self) -> Value:
        return self.operand(2)

    def verify_(self) -> None:
        for operand in self.operands:
            ty = operand.type
            if not isinstance(ty, MemRefType) or ty.rank != 2:
                raise IRError("affine.matmul operands must be 2-d memrefs")
        m, k = self.a.type.shape
        k2, n = self.b.type.shape
        m2, n2 = self.c.type.shape
        dims_known = -1 not in (m, k, k2, n, m2, n2)
        if dims_known and (k != k2 or m != m2 or n != n2):
            raise IRError(
                f"affine.matmul shape mismatch: ({m}x{k}) * ({k2}x{n}) "
                f"-> ({m2}x{n2})"
            )


# ----------------------------------------------------------------------
# Loop-nest utilities
# ----------------------------------------------------------------------


def perfect_nest(root: AffineForOp) -> List[AffineForOp]:
    """The maximal perfectly-nested loop band starting at ``root``.

    A loop band is perfect when each loop's body contains exactly one
    operation (besides the terminator) and that operation is the next
    loop.  The innermost loop of the band may contain arbitrary
    straight-line code.
    """
    band = [root]
    current = root
    while True:
        body_ops = current.ops_in_body()
        if len(body_ops) == 1 and isinstance(body_ops[0], AffineForOp):
            current = body_ops[0]
            band.append(current)
        else:
            return band


def innermost_loops(op: Operation) -> List[AffineForOp]:
    """All affine.for ops that contain no nested affine.for."""
    result = []
    for nested in op.walk():
        if isinstance(nested, AffineForOp) and not any(
            isinstance(inner, AffineForOp)
            for inner in nested.walk_inner()
        ):
            result.append(nested)
    return result


def outermost_loops(op: Operation) -> List[AffineForOp]:
    """Affine loops not nested inside another affine loop within ``op``."""
    result = []
    for nested in op.walk():
        if isinstance(nested, AffineForOp):
            parent = nested.parent_op
            is_outer = True
            while parent is not None and parent is not op:
                if isinstance(parent, AffineForOp):
                    is_outer = False
                    break
                parent = parent.parent_op
            if is_outer:
                result.append(nested)
    return result


def loop_nest_depth(root: AffineForOp) -> int:
    """Maximum loop nesting depth, counting ``root`` itself."""
    deepest = 0
    for op in root.body.walk():
        if isinstance(op, AffineForOp):
            deepest = max(deepest, loop_nest_depth(op))
    return 1 + deepest


def build_loop_nest(
    builder,
    bounds: Sequence[Tuple[int, int]],
    steps: Optional[Sequence[int]] = None,
) -> Tuple[List[AffineForOp], List[Value]]:
    """Create a perfect nest of constant-bound loops.

    Returns the loops (outermost first) and their induction variables.
    The builder's insertion point is left *unchanged*; use the innermost
    loop's body to emit the payload.
    """
    steps = list(steps) if steps is not None else [1] * len(bounds)
    loops: List[AffineForOp] = []
    ivs: List[Value] = []
    for (lb, ub), step in zip(bounds, steps):
        loop = AffineForOp.create(lb, ub, step)
        if loops:
            loops[-1].body.insert(len(loops[-1].body.operations) - 1, loop)
        else:
            builder.insert(loop)
        loops.append(loop)
        ivs.append(loop.induction_var)
    return loops, ivs
