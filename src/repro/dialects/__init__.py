"""Dialects of the multi-level IR stack.

Importing this package registers every dialect's operations with the
global op registry.  The abstraction ladder, from high to low:

    linalg / blas  >  affine  >  scf  >  std  >  llvm
"""

from typing import List

from ..ir.context import Dialect

from . import std  # noqa: F401  (registration side effects)
from . import affine  # noqa: F401
from . import scf  # noqa: F401
from . import linalg  # noqa: F401
from . import blas  # noqa: F401
from . import llvm  # noqa: F401
from . import transform  # noqa: F401

#: Height of each dialect on the abstraction ladder (Figure 1/2 of the
#: paper).  Raising moves code to a higher number, lowering to a lower one.
ABSTRACTION_LEVEL = {
    "llvm": 0,
    "std": 1,
    "scf": 2,
    "affine": 3,
    "linalg": 4,
    "blas": 4,
    "func": 5,
    "builtin": 6,
    # Schedules are meta-IR: they sit above every payload dialect.
    "transform": 6,
}


def all_dialects() -> List[Dialect]:
    return [
        Dialect("std", "miscellaneous standard operations"),
        Dialect("affine", "polyhedral loop and memory abstraction"),
        Dialect("scf", "structured control flow"),
        Dialect("linalg", "linear algebra on buffers"),
        Dialect("blas", "vendor-optimized library calls"),
        Dialect("llvm", "low-level CFG representation"),
        Dialect("transform", "schedules-as-data scripting payload IR"),
    ]
