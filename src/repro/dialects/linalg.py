"""The ``linalg`` dialect: linear-algebra operations on buffers.

Named ops (`matmul`, `matvec`, `transpose`, `reshape`, `conv2d_nchw`)
cover the builders the paper's TDS supports; ``linalg.generic`` provides
the fully general structured-op form with indexing maps and iterator
types.  All ops here use memref (buffer) operands, matching the paper's
evaluation flow (C code -> Affine -> Linalg on buffers).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..ir.affine_map import AffineMap
from ..ir.attributes import (
    AffineMapAttr,
    ArrayAttr,
    Attribute,
    IntegerAttr,
    StringAttr,
    int_array_attr,
)
from ..ir.core import Block, IRError, Operation, register_op
from ..ir.types import MemRefType
from ..ir.values import Value


def _require_memref(op_name: str, value: Value, rank: Optional[int] = None):
    ty = value.type
    if not isinstance(ty, MemRefType):
        raise IRError(f"{op_name}: operand must be a memref, got {ty}")
    if rank is not None and ty.rank != rank:
        raise IRError(f"{op_name}: expected rank-{rank} memref, got {ty}")
    return ty


class LinalgStructuredOp(Operation):
    """Base class for linalg ops; provides flop accounting hooks."""

    def flops(self) -> int:
        """Number of scalar floating-point operations executed."""
        return 0

    def memory_footprint_bytes(self) -> int:
        total = 0
        for operand in self.operands:
            ty = operand.type
            if isinstance(ty, MemRefType):
                count = ty.num_elements()
                if count is not None:
                    total += count * 4
        return total


@register_op
class MatmulOp(LinalgStructuredOp):
    """``linalg.matmul``: C += A * B on 2-d memrefs."""

    OP_NAME = "linalg.matmul"

    @staticmethod
    def create(a: Value, b: Value, c: Value) -> "MatmulOp":
        return MatmulOp(operands=[a, b, c])

    @property
    def a(self) -> Value:
        return self.operand(0)

    @property
    def b(self) -> Value:
        return self.operand(1)

    @property
    def c(self) -> Value:
        return self.operand(2)

    def verify_(self) -> None:
        a = _require_memref(self.name, self.a, 2)
        b = _require_memref(self.name, self.b, 2)
        c = _require_memref(self.name, self.c, 2)
        m, k = a.shape
        k2, n = b.shape
        m2, n2 = c.shape
        if -1 not in (m, k, k2, n, m2, n2) and (k != k2 or m != m2 or n != n2):
            raise IRError(
                f"linalg.matmul shape mismatch ({m}x{k})*({k2}x{n})->({m2}x{n2})"
            )

    def flops(self) -> int:
        m, k = self.a.type.shape
        n = self.b.type.shape[1]
        return 2 * m * k * n


@register_op
class MatvecOp(LinalgStructuredOp):
    """``linalg.matvec``: y += A * x (or y += A^T * x with trans)."""

    OP_NAME = "linalg.matvec"

    @staticmethod
    def create(a: Value, x: Value, y: Value, trans: bool = False) -> "MatvecOp":
        from ..ir.attributes import BoolAttr

        return MatvecOp(operands=[a, x, y], attributes={"trans": BoolAttr(trans)})

    @property
    def trans(self) -> bool:
        attr = self.attributes.get("trans")
        return bool(attr.value) if attr is not None else False

    @property
    def a(self) -> Value:
        return self.operand(0)

    @property
    def x(self) -> Value:
        return self.operand(1)

    @property
    def y(self) -> Value:
        return self.operand(2)

    def verify_(self) -> None:
        a = _require_memref(self.name, self.a, 2)
        x = _require_memref(self.name, self.x, 1)
        y = _require_memref(self.name, self.y, 1)
        m, n = a.shape
        if self.trans:
            m, n = n, m
        if -1 not in (m, n) and (x.shape[0] != n or y.shape[0] != m):
            raise IRError(
                f"linalg.matvec shape mismatch ({m}x{n})*({x.shape[0]})"
                f"->({y.shape[0]})"
            )

    def flops(self) -> int:
        m, n = self.a.type.shape
        return 2 * m * n


@register_op
class TransposeOp(LinalgStructuredOp):
    """``linalg.transpose``: out = permute(in, permutation)."""

    OP_NAME = "linalg.transpose"

    @staticmethod
    def create(input: Value, output: Value, permutation: Sequence[int]):
        return TransposeOp(
            operands=[input, output],
            attributes={"permutation": int_array_attr(permutation)},
        )

    @property
    def input(self) -> Value:
        return self.operand(0)

    @property
    def output(self) -> Value:
        return self.operand(1)

    @property
    def permutation(self) -> List[int]:
        return [a.value for a in self.attributes["permutation"]]

    def verify_(self) -> None:
        in_ty = _require_memref(self.name, self.input)
        out_ty = _require_memref(self.name, self.output)
        perm = self.permutation
        if sorted(perm) != list(range(in_ty.rank)):
            raise IRError(f"linalg.transpose: bad permutation {perm}")
        expected = tuple(in_ty.shape[p] for p in perm)
        if -1 not in in_ty.shape and out_ty.shape != expected:
            raise IRError(
                f"linalg.transpose: output shape {out_ty.shape} != {expected}"
            )


@register_op
class ReshapeOp(LinalgStructuredOp):
    """``linalg.reshape``: collapse or expand dimensions by reassociation.

    ``reassociation`` groups source (collapse) or target (expand)
    dimensions; e.g. ``[[0, 1], [2]]`` collapses a 3-d buffer into 2-d.
    The direction is inferred from operand ranks.
    """

    OP_NAME = "linalg.reshape"

    @staticmethod
    def create(
        input: Value, output: Value, reassociation: Sequence[Sequence[int]]
    ) -> "ReshapeOp":
        groups = ArrayAttr([int_array_attr(g) for g in reassociation])
        return ReshapeOp(
            operands=[input, output], attributes={"reassociation": groups}
        )

    @property
    def input(self) -> Value:
        return self.operand(0)

    @property
    def output(self) -> Value:
        return self.operand(1)

    @property
    def reassociation(self) -> List[List[int]]:
        return [
            [a.value for a in group]
            for group in self.attributes["reassociation"]
        ]

    def is_collapse(self) -> bool:
        return self.input.type.rank >= self.output.type.rank

    def verify_(self) -> None:
        in_ty = _require_memref(self.name, self.input)
        out_ty = _require_memref(self.name, self.output)
        groups = self.reassociation
        high, low = (in_ty, out_ty) if self.is_collapse() else (out_ty, in_ty)
        if len(groups) != low.rank:
            raise IRError(
                f"linalg.reshape: {len(groups)} groups for rank-{low.rank} result"
            )
        covered = [d for group in groups for d in group]
        if covered != list(range(high.rank)):
            raise IRError(
                f"linalg.reshape: reassociation {groups} does not cover "
                f"rank-{high.rank} operand"
            )
        if -1 not in high.shape and -1 not in low.shape:
            for group, low_dim in zip(groups, low.shape):
                size = 1
                for d in group:
                    size *= high.shape[d]
                if size != low_dim:
                    raise IRError(
                        f"linalg.reshape: group {group} product {size} != "
                        f"{low_dim}"
                    )


@register_op
class Conv2DNchwOp(LinalgStructuredOp):
    """``linalg.conv2d_nchw``: 2-d convolution, NCHW layout.

    Input (N, C, H, W), kernel (F, C, KH, KW), output (N, F, OH, OW).
    """

    OP_NAME = "linalg.conv2d_nchw"

    @staticmethod
    def create(input: Value, kernel: Value, output: Value) -> "Conv2DNchwOp":
        return Conv2DNchwOp(operands=[input, kernel, output])

    @property
    def input(self) -> Value:
        return self.operand(0)

    @property
    def kernel(self) -> Value:
        return self.operand(1)

    @property
    def output(self) -> Value:
        return self.operand(2)

    def verify_(self) -> None:
        in_ty = _require_memref(self.name, self.input, 4)
        k_ty = _require_memref(self.name, self.kernel, 4)
        out_ty = _require_memref(self.name, self.output, 4)
        n, c, h, w = in_ty.shape
        f, c2, kh, kw = k_ty.shape
        n2, f2, oh, ow = out_ty.shape
        static = -1 not in in_ty.shape + k_ty.shape + out_ty.shape
        if static and (
            c != c2
            or n != n2
            or f != f2
            or oh != h - kh + 1
            or ow != w - kw + 1
        ):
            raise IRError("linalg.conv2d_nchw shape mismatch")

    def flops(self) -> int:
        f, c, kh, kw = self.kernel.type.shape
        n, _, oh, ow = self.output.type.shape
        return 2 * n * f * oh * ow * c * kh * kw


@register_op
class FillOp(LinalgStructuredOp):
    """``linalg.fill``: out[...] = scalar."""

    OP_NAME = "linalg.fill"

    @staticmethod
    def create(value: Value, output: Value) -> "FillOp":
        return FillOp(operands=[value, output])

    @property
    def fill_value(self) -> Value:
        return self.operand(0)

    @property
    def output(self) -> Value:
        return self.operand(1)


@register_op
class CopyOp(LinalgStructuredOp):
    OP_NAME = "linalg.copy"

    @staticmethod
    def create(input: Value, output: Value) -> "CopyOp":
        return CopyOp(operands=[input, output])

    @property
    def input(self) -> Value:
        return self.operand(0)

    @property
    def output(self) -> Value:
        return self.operand(1)


@register_op
class LinalgYieldOp(Operation):
    OP_NAME = "linalg.yield"
    IS_TERMINATOR = True

    @staticmethod
    def create(values: Sequence[Value]) -> "LinalgYieldOp":
        return LinalgYieldOp(operands=values)


@register_op
class GenericOp(LinalgStructuredOp):
    """``linalg.generic``: the general structured op.

    Iteration space is implied by iterator_types; each operand is read
    (inputs) or read-written (outputs) through its indexing map.  The
    body block receives one scalar argument per operand and yields the
    values stored to the outputs.
    """

    OP_NAME = "linalg.generic"

    @staticmethod
    def create(
        inputs: Sequence[Value],
        outputs: Sequence[Value],
        indexing_maps: Sequence[AffineMap],
        iterator_types: Sequence[str],
    ) -> "GenericOp":
        operands = list(inputs) + list(outputs)
        if len(indexing_maps) != len(operands):
            raise IRError("linalg.generic: one indexing map per operand")
        for it in iterator_types:
            if it not in ("parallel", "reduction"):
                raise IRError(f"bad iterator type {it!r}")
        op = GenericOp(
            operands=operands,
            attributes={
                "indexing_maps": ArrayAttr(
                    [AffineMapAttr(m) for m in indexing_maps]
                ),
                "iterator_types": ArrayAttr(
                    [StringAttr(s) for s in iterator_types]
                ),
                "num_inputs": IntegerAttr(len(inputs)),
            },
            num_regions=1,
        )
        scalar_types = [v.type.element_type for v in operands]
        op.regions[0].add_block(Block(scalar_types))
        return op

    @property
    def num_inputs(self) -> int:
        return self.attributes["num_inputs"].value

    @property
    def inputs(self) -> List[Value]:
        return self.operands[: self.num_inputs]

    @property
    def outputs(self) -> List[Value]:
        return self.operands[self.num_inputs:]

    @property
    def indexing_maps(self) -> List[AffineMap]:
        return [a.map for a in self.attributes["indexing_maps"]]

    @property
    def iterator_types(self) -> List[str]:
        return [a.value for a in self.attributes["iterator_types"]]

    @property
    def num_loops(self) -> int:
        return len(self.iterator_types)

    def iteration_domain(self) -> List[int]:
        """Loop extents inferred from operand shapes via indexing maps."""
        extents: List[Optional[int]] = [None] * self.num_loops
        for operand, map_ in zip(self.operands, self.indexing_maps):
            shape = operand.type.shape
            for expr, size in zip(map_.results, shape):
                linear = expr.as_linear()
                if linear is None:
                    continue
                single = linear.single_dim()
                if single and single[1] == 1 and single[2] == 0:
                    extents[single[0]] = size
        if any(e is None for e in extents):
            raise IRError(
                "linalg.generic: could not infer the full iteration domain"
            )
        return extents  # type: ignore[return-value]

    def flops(self) -> int:
        domain = 1
        for extent in self.iteration_domain():
            domain *= extent
        body_arith = sum(
            1 for op in self.body.operations if op.dialect == "std"
        )
        return domain * body_arith

    def verify_(self) -> None:
        maps = self.indexing_maps
        loops = self.num_loops
        for map_ in maps:
            if map_.num_dims != loops:
                raise IRError(
                    f"linalg.generic: map {map_} expects {map_.num_dims} "
                    f"dims but op has {loops} loops"
                )
        for operand, map_ in zip(self.operands, maps):
            ty = operand.type
            if not isinstance(ty, MemRefType):
                raise IRError("linalg.generic operands must be memrefs")
            if map_.num_results != ty.rank:
                raise IRError(
                    f"linalg.generic: map {map_} rank {map_.num_results} vs "
                    f"memref rank {ty.rank}"
                )
        block = self.body
        if len(block.arguments) != self.num_operands:
            raise IRError(
                "linalg.generic body must take one scalar per operand"
            )
        term = block.terminator
        if not isinstance(term, LinalgYieldOp):
            raise IRError("linalg.generic body must end with linalg.yield")
        if term.num_operands != len(self.outputs):
            raise IRError(
                "linalg.yield must yield one value per output operand"
            )
