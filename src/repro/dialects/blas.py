"""The ``blas`` dialect: calls into vendor-optimized libraries.

These ops model dynamically-linked BLAS/MKL-DNN routines.  They sit at
the same abstraction level as Linalg; the MLT-BLAS path replaces Linalg
ops with these (§V-B).  Each call carries the target ``library``
attribute and — important for the level-2 BLAS results in Figure 9 —
incurs a fixed dynamic-link dispatch overhead modeled by the cost model.
"""

from __future__ import annotations

from typing import List, Sequence

from ..ir.attributes import ArrayAttr, FloatAttr, StringAttr, int_array_attr
from ..ir.core import IRError, Operation, register_op
from ..ir.types import MemRefType
from ..ir.values import Value

#: Libraries with modeled efficiencies (see repro.execution.machines).
KNOWN_LIBRARIES = ("mkl-dnn", "openblas")


class BlasCallOp(Operation):
    """Base class for library-call ops."""

    @property
    def library(self) -> str:
        return self.attributes["library"].value

    def verify_(self) -> None:
        if self.attributes["library"].value not in KNOWN_LIBRARIES:
            raise IRError(f"{self.name}: unknown library {self.library!r}")


@register_op
class SgemmOp(BlasCallOp):
    """``blas.sgemm``: C = alpha*A*B + beta*C (single precision)."""

    OP_NAME = "blas.sgemm"

    @staticmethod
    def create(
        a: Value,
        b: Value,
        c: Value,
        alpha: float = 1.0,
        beta: float = 1.0,
        library: str = "mkl-dnn",
    ) -> "SgemmOp":
        return SgemmOp(
            operands=[a, b, c],
            attributes={
                "alpha": FloatAttr(alpha),
                "beta": FloatAttr(beta),
                "library": StringAttr(library),
            },
        )

    @property
    def a(self) -> Value:
        return self.operand(0)

    @property
    def b(self) -> Value:
        return self.operand(1)

    @property
    def c(self) -> Value:
        return self.operand(2)

    @property
    def alpha(self) -> float:
        return self.attributes["alpha"].value

    @property
    def beta(self) -> float:
        return self.attributes["beta"].value

    def flops(self) -> int:
        m, k = self.a.type.shape
        n = self.b.type.shape[1]
        return 2 * m * k * n


@register_op
class SgemvOp(BlasCallOp):
    """``blas.sgemv``: y += op(A)*x where op is identity or transpose
    (the CBLAS ``trans`` parameter)."""

    OP_NAME = "blas.sgemv"

    @staticmethod
    def create(
        a: Value,
        x: Value,
        y: Value,
        library: str = "mkl-dnn",
        trans: bool = False,
    ) -> "SgemvOp":
        from ..ir.attributes import BoolAttr

        return SgemvOp(
            operands=[a, x, y],
            attributes={
                "library": StringAttr(library),
                "trans": BoolAttr(trans),
            },
        )

    @property
    def trans(self) -> bool:
        attr = self.attributes.get("trans")
        return bool(attr.value) if attr is not None else False

    @property
    def a(self) -> Value:
        return self.operand(0)

    @property
    def x(self) -> Value:
        return self.operand(1)

    @property
    def y(self) -> Value:
        return self.operand(2)

    def flops(self) -> int:
        m, n = self.a.type.shape
        return 2 * m * n


@register_op
class TransposeOp(BlasCallOp):
    """``blas.transpose``: out-of-place tensor transposition routine."""

    OP_NAME = "blas.transpose"

    @staticmethod
    def create(
        input: Value,
        output: Value,
        permutation: Sequence[int],
        library: str = "mkl-dnn",
    ) -> "TransposeOp":
        return TransposeOp(
            operands=[input, output],
            attributes={
                "permutation": int_array_attr(permutation),
                "library": StringAttr(library),
            },
        )

    @property
    def input(self) -> Value:
        return self.operand(0)

    @property
    def output(self) -> Value:
        return self.operand(1)

    @property
    def permutation(self) -> List[int]:
        return [a.value for a in self.attributes["permutation"]]


@register_op
class ReshapeOp(BlasCallOp):
    """``blas.reshape``: view a buffer with collapsed/expanded dims.

    Library-side reshapes of contiguous buffers are metadata-only; the
    cost model accounts them as free (no data movement).
    """

    OP_NAME = "blas.reshape"

    @staticmethod
    def create(
        input: Value,
        output: Value,
        reassociation: Sequence[Sequence[int]],
        library: str = "mkl-dnn",
    ) -> "ReshapeOp":
        groups = ArrayAttr([int_array_attr(g) for g in reassociation])
        return ReshapeOp(
            operands=[input, output],
            attributes={"reassociation": groups, "library": StringAttr(library)},
        )

    @property
    def input(self) -> Value:
        return self.operand(0)

    @property
    def output(self) -> Value:
        return self.operand(1)

    @property
    def reassociation(self) -> List[List[int]]:
        return [
            [a.value for a in group]
            for group in self.attributes["reassociation"]
        ]


@register_op
class Conv2DOp(BlasCallOp):
    """``blas.conv2d``: library convolution (e.g. MKL-DNN primitive)."""

    OP_NAME = "blas.conv2d"

    @staticmethod
    def create(
        input: Value, kernel: Value, output: Value, library: str = "mkl-dnn"
    ) -> "Conv2DOp":
        return Conv2DOp(
            operands=[input, kernel, output],
            attributes={"library": StringAttr(library)},
        )

    @property
    def input(self) -> Value:
        return self.operand(0)

    @property
    def kernel(self) -> Value:
        return self.operand(1)

    @property
    def output(self) -> Value:
        return self.operand(2)

    def flops(self) -> int:
        f, c, kh, kw = self.kernel.type.shape
        n, _, oh, ow = self.output.type.shape
        return 2 * n * f * oh * ow * c * kh * kw
