"""The ``scf`` dialect: structured control flow with SSA-value bounds.

``scf.for`` is the non-affine counterpart of ``affine.for``: bounds and
step are ordinary index values, so no polyhedral analysis applies.  The
paper notes Multi-Level Tactics can also lift from SCF (footnote 1).
"""

from __future__ import annotations

from typing import List, Sequence

from ..ir.core import Block, IRError, Operation, register_op
from ..ir.types import IndexType
from ..ir.values import BlockArgument, Value


@register_op
class YieldOp(Operation):
    OP_NAME = "scf.yield"
    IS_TERMINATOR = True

    @staticmethod
    def create(values: Sequence[Value] = ()) -> "YieldOp":
        return YieldOp(operands=values)


@register_op
class ForOp(Operation):
    """``scf.for %iv = %lb to %ub step %step { ... }``."""

    OP_NAME = "scf.for"

    @staticmethod
    def create(lb: Value, ub: Value, step: Value) -> "ForOp":
        op = ForOp(operands=[lb, ub, step], num_regions=1)
        body = op.regions[0].add_block(Block([IndexType()]))
        body.append(YieldOp.create())
        return op

    @property
    def lower_bound(self) -> Value:
        return self.operand(0)

    @property
    def upper_bound(self) -> Value:
        return self.operand(1)

    @property
    def step(self) -> Value:
        return self.operand(2)

    @property
    def induction_var(self) -> BlockArgument:
        return self.body.arguments[0]

    def ops_in_body(self) -> List[Operation]:
        return self.body.ops_without_terminator()

    def verify_(self) -> None:
        if self.num_operands != 3:
            raise IRError("scf.for expects (lb, ub, step) operands")
        for operand in self.operands:
            if not isinstance(operand.type, IndexType):
                raise IRError("scf.for bounds must have index type")
        if not isinstance(self.body.terminator, YieldOp):
            raise IRError("scf.for body must end with scf.yield")


@register_op
class IfOp(Operation):
    """``scf.if %cond { ... } else { ... }`` (no results)."""

    OP_NAME = "scf.if"

    @staticmethod
    def create(cond: Value, with_else: bool = False) -> "IfOp":
        op = IfOp(operands=[cond], num_regions=2 if with_else else 1)
        then = op.regions[0].add_block()
        then.append(YieldOp.create())
        if with_else:
            els = op.regions[1].add_block()
            els.append(YieldOp.create())
        return op

    @property
    def condition(self) -> Value:
        return self.operand(0)

    @property
    def then_block(self) -> Block:
        return self.regions[0].entry_block

    @property
    def else_block(self) -> Block:
        if len(self.regions) < 2:
            raise IRError("scf.if has no else region")
        return self.regions[1].entry_block
