"""The ``std`` dialect: constants and scalar arithmetic.

This matches the standard dialect of the MLIR version the paper builds
on (git ``48c28d5``), where scalar float arithmetic lives in ``std``
(``std.addf``, ``std.mulf``, ...).
"""

from __future__ import annotations

from typing import Union

from ..ir.attributes import FloatAttr, IntegerAttr
from ..ir.core import IRError, Operation, register_op
from ..ir.types import F32Type, F64Type, IndexType, IntegerType, Type, is_float
from ..ir.values import Value


@register_op
class ConstantOp(Operation):
    """An SSA constant of index, integer, or float type."""

    OP_NAME = "std.constant"

    @staticmethod
    def create(value: Union[int, float], ty: Type) -> "ConstantOp":
        if isinstance(ty, (IndexType, IntegerType)):
            attr = IntegerAttr(int(value))
        elif is_float(ty):
            attr = FloatAttr(float(value))
        else:
            raise IRError(f"unsupported constant type {ty}")
        return ConstantOp(result_types=[ty], attributes={"value": attr})

    @property
    def value(self) -> Union[int, float]:
        return self.attributes["value"].value


class BinaryArithOp(Operation):
    """Base for two-operand, one-result arithmetic ops."""

    PYTHON_FUNC = staticmethod(lambda a, b: None)

    @classmethod
    def create(cls, lhs: Value, rhs: Value) -> "BinaryArithOp":
        if lhs.type != rhs.type:
            raise IRError(
                f"{cls.OP_NAME}: operand types differ ({lhs.type} vs {rhs.type})"
            )
        return cls(operands=[lhs, rhs], result_types=[lhs.type])

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)

    def verify_(self) -> None:
        if self.num_operands != 2 or self.num_results != 1:
            raise IRError(f"{self.name}: expects 2 operands and 1 result")
        if self.operand(0).type != self.operand(1).type:
            raise IRError(f"{self.name}: operand type mismatch")


class FloatArithOp(BinaryArithOp):
    def verify_(self) -> None:
        super().verify_()
        if not is_float(self.operand(0).type):
            raise IRError(f"{self.name}: requires float operands")


class IntArithOp(BinaryArithOp):
    def verify_(self) -> None:
        super().verify_()
        if not isinstance(self.operand(0).type, (IntegerType, IndexType)):
            raise IRError(f"{self.name}: requires integer or index operands")


@register_op
class AddFOp(FloatArithOp):
    OP_NAME = "std.addf"
    PYTHON_FUNC = staticmethod(lambda a, b: a + b)


@register_op
class SubFOp(FloatArithOp):
    OP_NAME = "std.subf"
    PYTHON_FUNC = staticmethod(lambda a, b: a - b)


@register_op
class MulFOp(FloatArithOp):
    OP_NAME = "std.mulf"
    PYTHON_FUNC = staticmethod(lambda a, b: a * b)


@register_op
class DivFOp(FloatArithOp):
    OP_NAME = "std.divf"
    PYTHON_FUNC = staticmethod(lambda a, b: a / b)


@register_op
class MaxFOp(FloatArithOp):
    OP_NAME = "std.maxf"
    PYTHON_FUNC = staticmethod(max)


@register_op
class NegFOp(Operation):
    """Floating-point negation: ``%r = std.negf %a : f32``."""

    OP_NAME = "std.negf"
    PYTHON_FUNC = staticmethod(lambda a: -a)

    @staticmethod
    def create(value: Value) -> "NegFOp":
        if not is_float(value.type):
            raise IRError("std.negf requires a float operand")
        return NegFOp(operands=[value], result_types=[value.type])

    def verify_(self) -> None:
        if self.num_operands != 1 or self.num_results != 1:
            raise IRError(f"{self.name}: expects 1 operand and 1 result")
        if not is_float(self.operand(0).type):
            raise IRError(f"{self.name}: requires a float operand")


@register_op
class CmpFOp(Operation):
    """Float comparison (ordered predicates only); predicate attribute
    in {oeq, one, olt, ole, ogt, oge}.  Result type is ``i1``."""

    OP_NAME = "std.cmpf"

    PREDICATES = {
        "oeq": lambda a, b: a == b,
        "one": lambda a, b: a != b,
        "olt": lambda a, b: a < b,
        "ole": lambda a, b: a <= b,
        "ogt": lambda a, b: a > b,
        "oge": lambda a, b: a >= b,
    }

    @staticmethod
    def create(predicate: str, lhs: Value, rhs: Value) -> "CmpFOp":
        from ..ir.attributes import StringAttr
        from ..ir.types import i1

        if predicate not in CmpFOp.PREDICATES:
            raise IRError(f"unknown cmpf predicate {predicate!r}")
        if lhs.type != rhs.type or not is_float(lhs.type):
            raise IRError("std.cmpf requires matching float operands")
        return CmpFOp(
            operands=[lhs, rhs],
            result_types=[i1],
            attributes={"predicate": StringAttr(predicate)},
        )

    @property
    def predicate(self) -> str:
        return self.attributes["predicate"].value


@register_op
class AddIOp(IntArithOp):
    OP_NAME = "std.addi"
    PYTHON_FUNC = staticmethod(lambda a, b: a + b)


@register_op
class SubIOp(IntArithOp):
    OP_NAME = "std.subi"
    PYTHON_FUNC = staticmethod(lambda a, b: a - b)


@register_op
class MulIOp(IntArithOp):
    OP_NAME = "std.muli"
    PYTHON_FUNC = staticmethod(lambda a, b: a * b)


@register_op
class DivIOp(IntArithOp):
    """Signed integer floor division (used when expanding affine
    floordiv/ceildiv during lowering)."""

    OP_NAME = "std.divi"
    PYTHON_FUNC = staticmethod(lambda a, b: a // b)


@register_op
class RemIOp(IntArithOp):
    OP_NAME = "std.remi"
    PYTHON_FUNC = staticmethod(lambda a, b: a % b)


@register_op
class LoadOp(Operation):
    """Multi-dimensional load with plain index operands (post-affine)."""

    OP_NAME = "std.load"

    @staticmethod
    def create(memref: Value, indices) -> "LoadOp":
        return LoadOp(
            operands=[memref, *indices],
            result_types=[memref.type.element_type],
        )

    @property
    def memref(self) -> Value:
        return self.operand(0)

    @property
    def indices(self):
        return self.operands[1:]


@register_op
class StoreOp(Operation):
    OP_NAME = "std.store"

    @staticmethod
    def create(value: Value, memref: Value, indices) -> "StoreOp":
        return StoreOp(operands=[value, memref, *indices])

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def memref(self) -> Value:
        return self.operand(1)

    @property
    def indices(self):
        return self.operands[2:]


@register_op
class CmpIOp(Operation):
    """Integer/index comparison; predicate attribute in
    {eq, ne, slt, sle, sgt, sge}."""

    OP_NAME = "std.cmpi"

    PREDICATES = {
        "eq": lambda a, b: a == b,
        "ne": lambda a, b: a != b,
        "slt": lambda a, b: a < b,
        "sle": lambda a, b: a <= b,
        "sgt": lambda a, b: a > b,
        "sge": lambda a, b: a >= b,
    }

    @staticmethod
    def create(predicate: str, lhs: Value, rhs: Value) -> "CmpIOp":
        from ..ir.attributes import StringAttr
        from ..ir.types import i1

        if predicate not in CmpIOp.PREDICATES:
            raise IRError(f"unknown cmpi predicate {predicate!r}")
        return CmpIOp(
            operands=[lhs, rhs],
            result_types=[i1],
            attributes={"predicate": StringAttr(predicate)},
        )

    @property
    def predicate(self) -> str:
        return self.attributes["predicate"].value


@register_op
class SelectOp(Operation):
    """``select(cond, a, b)``: a if cond else b."""

    OP_NAME = "std.select"

    @staticmethod
    def create(cond: Value, true_value: Value, false_value: Value) -> "SelectOp":
        if true_value.type != false_value.type:
            raise IRError("std.select operand types differ")
        return SelectOp(
            operands=[cond, true_value, false_value],
            result_types=[true_value.type],
        )

    @property
    def condition(self) -> Value:
        return self.operand(0)


@register_op
class IndexCastOp(Operation):
    """Cast between index and integer types."""

    OP_NAME = "std.index_cast"

    @staticmethod
    def create(value: Value, ty: Type) -> "IndexCastOp":
        return IndexCastOp(operands=[value], result_types=[ty])


@register_op
class AllocOp(Operation):
    """Allocate a buffer (local array in the source program)."""

    OP_NAME = "std.alloc"

    @staticmethod
    def create(memref_type) -> "AllocOp":
        from ..ir.types import MemRefType

        if not isinstance(memref_type, MemRefType):
            raise IRError("std.alloc result must be a memref type")
        return AllocOp(result_types=[memref_type])


@register_op
class DeallocOp(Operation):
    OP_NAME = "std.dealloc"

    @staticmethod
    def create(memref: Value) -> "DeallocOp":
        return DeallocOp(operands=[memref])


#: Ops a multiply-accumulate body may consist of, used by matchers.
FLOAT_BINARY_OPS = (AddFOp, SubFOp, MulFOp, DivFOp, MaxFOp)
