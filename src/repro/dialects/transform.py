"""The ``transform`` scheduling dialect: schedules as data.

Modeled on MLIR's transform dialect (Zinenko's tutorial, PAPERS.md):
a *schedule module* is ordinary IR whose ops script transformations
over a separate *payload* module.  The ops do not touch payload IR
themselves — :mod:`repro.scheduling.interpreter` walks a
``transform.sequence`` and applies each step through the existing
transform/pass infrastructure.

Handle values (:class:`TransformHandleType`) thread the targeted
payload functions from op to op::

    transform.sequence {
      %0 = transform.match
      %1 = transform.fuse %0 {flow = true}
      %2 = transform.tile %1 {size = 32}
    }

Because schedules are plain IR they round-trip through the printer and
parser byte-identically, diff like text, live in the persistent disk
cache (the autotuner's ``schedules/`` namespace), and can be generated
randomly for the ``schedule-diff`` fuzz oracle.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..ir.attributes import (
    Attribute,
    BoolAttr,
    IntegerAttr,
    StringAttr,
    int_array_attr,
)
from ..ir.core import IRError, Operation, register_op
from ..ir.types import Type

#: Vectorize modes ``transform.vectorize`` may request (mirrors
#: ``codegen.VECTORIZE_MODES``; duplicated to avoid importing the
#: execution engine from a dialect definition).
VECTORIZE_MODES = ("none", "innermost", "nest")

#: Raising tiers ``transform.raise`` may request (mirrors
#: ``mlt-opt --raise-mode``).
RAISE_MODES = ("tdl", "synth", "tdl+synth")


class TransformHandleType(Type):
    """Type of a value naming a set of payload functions."""

    def __str__(self) -> str:
        return "!transform.handle"


@register_op
class SequenceOp(Operation):
    """Top-level container holding one block of transform steps."""

    OP_NAME = "transform.sequence"

    @staticmethod
    def create() -> "SequenceOp":
        op = SequenceOp(num_regions=1)
        block = op.regions[0].add_block()
        block.append(YieldOp.create())
        return op

    def steps(self) -> List[Operation]:
        """The schedule's transform ops, in program order."""
        return [
            op
            for op in self.body.operations
            if not isinstance(op, YieldOp)
        ]

    def append_step(self, op: Operation) -> Operation:
        """Insert ``op`` before the terminator."""
        self.body.insert(len(self.body.operations) - 1, op)
        return op

    def verify_(self) -> None:
        if len(self.regions) != 1 or len(self.regions[0].blocks) != 1:
            raise IRError("transform.sequence needs exactly one block")
        for op in self.body.operations:
            if op.dialect != "transform":
                raise IRError(
                    f"transform.sequence may only contain transform ops, "
                    f"found {op.name}"
                )


@register_op
class YieldOp(Operation):
    OP_NAME = "transform.yield"
    IS_TERMINATOR = True

    @staticmethod
    def create() -> "YieldOp":
        return YieldOp()


@register_op
class MatchOp(Operation):
    """Produce a handle to the payload functions a schedule targets.

    With a ``target`` attribute only the named function is matched;
    without one, every function of the payload module.  Either way the
    interpreter applies the optimizer's soundness gate, so a schedule
    can never touch a function whose memory effects the legality
    analyses cannot enumerate.
    """

    OP_NAME = "transform.match"

    @staticmethod
    def create(target: Optional[str] = None) -> "MatchOp":
        attrs = {}
        if target is not None:
            attrs["target"] = StringAttr(target)
        return MatchOp(
            result_types=[TransformHandleType()], attributes=attrs
        )

    @property
    def target(self) -> Optional[str]:
        attr = self.attributes.get("target")
        return attr.value if attr is not None else None

    def verify_(self) -> None:
        _check_handle_results(self)


class TransformStepOp(Operation):
    """Base for handle -> handle transform steps."""

    def verify_(self) -> None:
        if self.num_operands != 1 or not isinstance(
            self.operand(0).type, TransformHandleType
        ):
            raise IRError(f"{self.name} takes exactly one handle operand")
        _check_handle_results(self)

    @classmethod
    def _create(cls, handle, attributes=None):
        return cls(
            operands=[handle],
            result_types=[TransformHandleType()],
            attributes=attributes or {},
        )

    @property
    def handle(self):
        return self.operand(0)


def _check_handle_results(op: Operation) -> None:
    if len(op.results) != 1 or not isinstance(
        op.results[0].type, TransformHandleType
    ):
        raise IRError(f"{op.name} must produce exactly one handle")


@register_op
class FuseOp(TransformStepOp):
    """Greedy sibling-nest fusion (``transforms.fusion``).

    ``flow = true`` restricts fusion to producer/consumer pairs — the
    engine optimizer's policy; ``false`` is maxfuse.
    """

    OP_NAME = "transform.fuse"

    @staticmethod
    def create(handle, flow: bool = True) -> "FuseOp":
        return FuseOp._create(handle, {"flow": BoolAttr(flow)})

    @property
    def flow(self) -> bool:
        attr = self.attributes.get("flow")
        return attr.value if attr is not None else True


@register_op
class CopyElimOp(TransformStepOp):
    """Store-to-load forwarding + dead-store/alloc elimination."""

    OP_NAME = "transform.copy_elim"

    @staticmethod
    def create(handle) -> "CopyElimOp":
        return CopyElimOp._create(handle)


@register_op
class DeadLoopsOp(TransformStepOp):
    """Idempotent-loop elimination (optimizer stage 3)."""

    OP_NAME = "transform.dead_loops"

    @staticmethod
    def create(handle) -> "DeadLoopsOp":
        return DeadLoopsOp._create(handle)


@register_op
class CanonicalizeOp(TransformStepOp):
    """Constant folding + DCE + empty-loop removal."""

    OP_NAME = "transform.canonicalize"

    @staticmethod
    def create(handle) -> "CanonicalizeOp":
        return CanonicalizeOp._create(handle)


@register_op
class DistributeOp(TransformStepOp):
    """Partial loop distribution (``transforms.distribution``)."""

    OP_NAME = "transform.distribute"

    @staticmethod
    def create(handle) -> "DistributeOp":
        return DistributeOp._create(handle)


@register_op
class TileOp(TransformStepOp):
    """Cache-blocking tiling.

    ``size`` runs the optimizer's trip-count heuristic with that tile
    edge; ``sizes`` tiles every legal depth-matching band with the
    explicit per-loop sizes.  Exactly one of the two must be present.
    """

    OP_NAME = "transform.tile"

    @staticmethod
    def create(
        handle,
        size: Optional[int] = None,
        sizes: Optional[Sequence[int]] = None,
    ) -> "TileOp":
        attrs = {}
        if size is not None:
            attrs["size"] = IntegerAttr(size)
        if sizes is not None:
            attrs["sizes"] = int_array_attr(sizes)
        op = TileOp._create(handle, attrs)
        op.verify_()
        return op

    @property
    def size(self) -> Optional[int]:
        attr = self.attributes.get("size")
        return attr.value if attr is not None else None

    @property
    def sizes(self) -> Optional[List[int]]:
        attr = self.attributes.get("sizes")
        if attr is None:
            return None
        return [e.value for e in attr.elements]

    def verify_(self) -> None:
        super().verify_()
        size, sizes = self.size, self.sizes
        if (size is None) == (sizes is None):
            raise IRError(
                "transform.tile needs exactly one of {size}, {sizes}"
            )
        if size is not None and size < 2:
            raise IRError("transform.tile size must be >= 2")
        if sizes is not None and (
            not sizes or any(s < 0 for s in sizes)
        ):
            raise IRError(
                "transform.tile sizes must be a non-empty list of "
                "non-negative ints"
            )


@register_op
class UnrollJamOp(TransformStepOp):
    """Unroll-and-jam outer loops by ``factor`` (``transforms.unroll``)."""

    OP_NAME = "transform.unroll_jam"

    @staticmethod
    def create(handle, factor: int) -> "UnrollJamOp":
        op = UnrollJamOp._create(handle, {"factor": IntegerAttr(factor)})
        op.verify_()
        return op

    @property
    def factor(self) -> int:
        return self.attributes["factor"].value

    def verify_(self) -> None:
        super().verify_()
        attr = self.attributes.get("factor")
        if attr is None or attr.value < 2:
            raise IRError("transform.unroll_jam needs factor >= 2")


@register_op
class VectorizeOp(TransformStepOp):
    """Request a codegen vectorize mode for the scheduled payload.

    Pure annotation: the interpreter records the mode in its result so
    the engine construction that follows can honor it; payload IR is
    untouched.
    """

    OP_NAME = "transform.vectorize"

    @staticmethod
    def create(handle, mode: str = "nest") -> "VectorizeOp":
        op = VectorizeOp._create(handle, {"mode": StringAttr(mode)})
        op.verify_()
        return op

    @property
    def mode(self) -> str:
        return self.attributes["mode"].value

    def verify_(self) -> None:
        super().verify_()
        attr = self.attributes.get("mode")
        if attr is None or attr.value not in VECTORIZE_MODES:
            raise IRError(
                f"transform.vectorize mode must be one of "
                f"{VECTORIZE_MODES}"
            )


@register_op
class RaiseOp(TransformStepOp):
    """Run the progressive-raising pass over the payload module."""

    OP_NAME = "transform.raise"

    @staticmethod
    def create(handle, mode: str = "tdl") -> "RaiseOp":
        op = RaiseOp._create(handle, {"mode": StringAttr(mode)})
        op.verify_()
        return op

    @property
    def mode(self) -> str:
        return self.attributes["mode"].value

    def verify_(self) -> None:
        super().verify_()
        attr = self.attributes.get("mode")
        if attr is None or attr.value not in RAISE_MODES:
            raise IRError(
                f"transform.raise mode must be one of {RAISE_MODES}"
            )


#: Ops allowed inside a sequence, keyed by mnemonic — the parser, the
#: fuzz generator, and the interpreter all dispatch over this table.
STEP_OPS = {
    "transform.match": MatchOp,
    "transform.fuse": FuseOp,
    "transform.copy_elim": CopyElimOp,
    "transform.dead_loops": DeadLoopsOp,
    "transform.canonicalize": CanonicalizeOp,
    "transform.distribute": DistributeOp,
    "transform.tile": TileOp,
    "transform.unroll_jam": UnrollJamOp,
    "transform.vectorize": VectorizeOp,
    "transform.raise": RaiseOp,
}


def find_sequences(module) -> List[SequenceOp]:
    """Every ``transform.sequence`` at the top level of ``module``."""
    return [
        op
        for op in module.body.operations
        if isinstance(op, SequenceOp)
    ]
