"""Schedule-as-data: the transform-dialect interpreter and autotuner.

The :mod:`repro.dialects.transform` dialect expresses *schedules* —
sequences of transformations over payload IR — as ordinary IR modules.
This package applies them (:mod:`.interpreter`) and searches over them
(:mod:`.autotune`).
"""

from .interpreter import (  # noqa: F401
    ScheduleError,
    ScheduleResult,
    apply_schedule,
    canned_schedule,
    random_schedule,
    schedule_from_params,
    schedule_vectorize,
)
