"""Interpreter applying a transform-dialect schedule to payload IR.

:func:`apply_schedule` walks a ``transform.sequence`` and executes each
step through the existing transform/pass infrastructure — the same
``greedy_fuse`` / ``copy_eliminate`` / tiling helpers the hardcoded
``opt_mode`` pipelines call.  Applying :func:`canned_schedule`\\ (mode)
therefore produces byte-identical IR to ``run_optimizer(module, mode)``:
the canned schedules *are* the old pipelines, reified as data.

Every step re-checks its own legality on the payload it actually sees
(fusion legality, tiling legality, unroll-jam divisibility), so any
schedule drawn from the transform dialect — including the fuzzer's
:func:`random_schedule` — is semantics-preserving by construction; an
inapplicable step is a no-op, never an error.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..dialects.affine import AffineForOp, outermost_loops, perfect_nest
from ..dialects.transform import (
    CanonicalizeOp,
    CopyElimOp,
    DeadLoopsOp,
    DistributeOp,
    FuseOp,
    MatchOp,
    RaiseOp,
    SequenceOp,
    TileOp,
    TransformStepOp,
    UnrollJamOp,
    VectorizeOp,
    YieldOp,
    find_sequences,
)
from ..execution.engine.optimizer import (
    DEFAULT_TILE_SIZE,
    OptStats,
    _eliminate_redundant_loops,
    _function_is_optimizable,
    _tile_scalar_nests,
    _tiling_is_legal,
    run_function_stage,
)
from ..ir import ModuleOp, Operation
from ..transforms.canonicalize import canonicalize
from ..transforms.copy_elimination import copy_eliminate
from ..transforms.distribution import distribute_loops
from ..transforms.fusion import greedy_fuse
from ..transforms.tiling import TilingError, tile_perfect_nest
from ..transforms.unroll import unroll_jam_loops


class ScheduleError(ValueError):
    """A schedule module is malformed (not a legality failure)."""


@dataclass
class ScheduleResult:
    """What applying a schedule did (and requested).

    ``stats`` uses the optimizer's counter vocabulary so per-step
    deltas land in ``stats.stages`` exactly like ``run_optimizer``'s
    per-stage snapshots.  ``vectorize`` is the codegen mode a
    ``transform.vectorize`` step requested (``None`` when the schedule
    leaves the engine default in charge); ``raise_stats`` is the
    raising snapshot when a ``transform.raise`` step ran.
    """

    stats: OptStats = field(default_factory=OptStats)
    vectorize: Optional[str] = None
    raise_stats: Optional[dict] = None

    def snapshot(self) -> dict:
        snap = self.stats.snapshot()
        snap["vectorize"] = self.vectorize
        if self.raise_stats is not None:
            snap["raise"] = dict(self.raise_stats)
        return snap


def _schedule_sequence(schedule) -> SequenceOp:
    if isinstance(schedule, SequenceOp):
        return schedule
    sequences = find_sequences(schedule)
    if len(sequences) != 1:
        raise ScheduleError(
            f"schedule module must hold exactly one transform.sequence, "
            f"found {len(sequences)}"
        )
    return sequences[0]


def schedule_vectorize(schedule) -> Optional[str]:
    """The codegen vectorize mode ``schedule`` requests, if any.

    Lets engine construction honor a ``transform.vectorize`` step
    *before* compiling (the mode is part of the kernel cache key).
    Last step wins, matching the interpreter's apply order.
    """
    mode = None
    for step in _schedule_sequence(schedule).steps():
        if isinstance(step, VectorizeOp):
            mode = step.mode
    return mode


def _tile_explicit(func: Operation, sizes: List[int], stats: OptStats) -> None:
    """Tile every depth-matching legal band with explicit sizes.

    Unlike the heuristic path this skips the vectorizer first-refusal
    and the trip-count heuristic — explicit sizes mean the schedule
    author (or the autotuner) overrides the defaults — but the
    dependence-legality gate stays."""
    for root in list(outermost_loops(func)):
        if root.parent_block is None:
            continue
        band = perfect_nest(root)
        if len(band) != len(sizes):
            continue
        if any(
            not loop.has_constant_bounds() or loop.step != 1 for loop in band
        ):
            continue
        if not _tiling_is_legal(root, band):
            continue
        try:
            new_loops = tile_perfect_nest(root, list(sizes))
        except TilingError:
            continue
        for loop in new_loops:
            loop._opt_no_vectorize = True
        stats.nests_tiled += 1


def apply_schedule(
    schedule, payload: ModuleOp, pass_cache=None
) -> ScheduleResult:
    """Apply ``schedule`` (a schedule module or sequence) to ``payload``
    in place and return the populated :class:`ScheduleResult`.

    ``pass_cache`` memoizes each step's result per function, so
    schedule search re-applying dozens of candidates to one payload
    pays for the shared prefix (match / fuse / copy_elim / ...) exactly
    once — only the schedule-dependent suffix executes per candidate.
    ``tile`` steps always execute (they tag loops with the non-printed
    ``_opt_no_vectorize`` annotation, which a text splice cannot
    reproduce); ``raise`` steps are module-level and likewise bypass
    the cache.
    """
    sequence = _schedule_sequence(schedule)
    result = ScheduleResult(stats=OptStats(mode="schedule"))
    stats = result.stats

    funcs: List[Operation] = []
    fps: List[Optional[str]] = []
    matched = False
    #: Caching stops at the first non-cacheable step: past it every
    #: input fingerprint must be recomputed per candidate (the shared
    #: prefix is gone), which costs more than running the suffix.
    prefix_sound = True

    def run_step(stage_name, config, fn, cacheable=True) -> None:
        nonlocal prefix_sound
        if not cacheable:
            prefix_sound = False
        cache = pass_cache if prefix_sound else None
        for index, func in enumerate(funcs):
            funcs[index], fps[index] = run_function_stage(
                cache, func, stage_name, config, fn, stats,
                fp=fps[index],
            )

    for step in sequence.steps():
        if isinstance(step, MatchOp):
            matched = True
            funcs = []
            for func in payload.functions:
                stats.functions_seen += 1
                if step.target is not None and func.sym_name != step.target:
                    continue
                if _function_is_optimizable(func):
                    funcs.append(func)
                else:
                    stats.functions_skipped += 1
            fps[:] = [None] * len(funcs)
            continue
        if not isinstance(step, TransformStepOp):
            raise ScheduleError(f"unknown schedule step {step.name}")
        if not matched:
            raise ScheduleError(
                f"{step.name} before any transform.match — nothing to "
                f"transform"
            )
        before = stats._counter_values()
        if isinstance(step, FuseOp):

            def _fuse(func, scratch, _flow=step.flow):
                scratch.loops_fused += greedy_fuse(
                    func, require_flow=_flow, bails=scratch.fusion_bails
                )

            run_step("transform.fuse", f"flow={step.flow}", _fuse)
        elif isinstance(step, CopyElimOp):

            def _copy_elim(func, scratch):
                elim = copy_eliminate(func)
                scratch.stores_forwarded += elim.stores_forwarded
                scratch.dead_stores_removed += elim.dead_stores_removed
                scratch.dead_allocs_removed += elim.dead_allocs_removed

            run_step("transform.copy_elim", "", _copy_elim)
        elif isinstance(step, DeadLoopsOp):
            run_step("transform.dead_loops", "", _eliminate_redundant_loops)
        elif isinstance(step, CanonicalizeOp):

            def _canonicalize(func, scratch):
                scratch.simplifications += canonicalize(func)

            run_step("transform.canonicalize", "", _canonicalize)
        elif isinstance(step, DistributeOp):

            def _distribute(func, scratch):
                scratch.loops_distributed += distribute_loops(func)

            run_step("transform.distribute", "", _distribute)
        elif isinstance(step, TileOp):

            def _tile(func, scratch, _step=step):
                if _step.size is not None:
                    _tile_scalar_nests(func, _step.size, scratch)
                else:
                    _tile_explicit(func, _step.sizes, scratch)

            run_step("transform.tile", "", _tile, cacheable=False)
        elif isinstance(step, UnrollJamOp):

            def _unroll_jam(func, scratch, _factor=step.factor):
                scratch.loops_unroll_jammed += unroll_jam_loops(
                    func, _factor
                )

            run_step(
                "transform.unroll_jam", f"factor={step.factor}", _unroll_jam
            )
        elif isinstance(step, VectorizeOp):
            result.vectorize = step.mode
        elif isinstance(step, RaiseOp):
            from ..tactics.raising import raise_affine_to_linalg

            raising = raise_affine_to_linalg(
                payload, raise_mode=step.mode
            )
            result.raise_stats = dict(raising.callsites)
            # Module-level rewrite: every memoized fingerprint is
            # stale, and the shared cacheable prefix ends here.
            fps[:] = [None] * len(funcs)
            prefix_sound = False
        else:
            raise ScheduleError(f"unknown schedule step {step.name}")
        delta = {
            key: value - before[key]
            for key, value in stats._counter_values().items()
            if value != before[key]
        }
        stats.stages.append({"stage": step.name, **delta})

    if isinstance(payload, ModuleOp):
        payload.bump_version()
    return result


# ----------------------------------------------------------------------
# Schedule builders
# ----------------------------------------------------------------------


def _new_schedule_module() -> ModuleOp:
    module = ModuleOp.create()
    module.body.append(SequenceOp.create())
    return module


def canned_schedule(
    mode: str, tile_size: int = DEFAULT_TILE_SIZE
) -> ModuleOp:
    """The ``opt_mode`` pipelines as schedule modules.

    Applying ``canned_schedule(mode)`` to a payload produces IR
    byte-identical to ``run_optimizer(payload, mode)`` (asserted by
    ``tests/scheduling``): same transforms, same order, same legality
    gates.
    """
    module = _new_schedule_module()
    sequence = find_sequences(module)[0]
    handle = sequence.append_step(MatchOp.create()).results[0]
    if mode == "none":
        return module
    if mode not in ("fuse", "full"):
        raise ScheduleError(f"no canned schedule for mode {mode!r}")
    handle = sequence.append_step(
        FuseOp.create(handle, flow=True)
    ).results[0]
    if mode == "fuse":
        return module
    handle = sequence.append_step(CopyElimOp.create(handle)).results[0]
    handle = sequence.append_step(DeadLoopsOp.create(handle)).results[0]
    handle = sequence.append_step(CanonicalizeOp.create(handle)).results[0]
    handle = sequence.append_step(DistributeOp.create(handle)).results[0]
    handle = sequence.append_step(
        TileOp.create(handle, size=tile_size)
    ).results[0]
    return module


def schedule_from_params(params: Dict) -> ModuleOp:
    """Build a schedule module from an autotuner parameter point.

    Recognized keys (all optional): ``fuse`` (bool), ``order``
    (``"fuse-first"`` | ``"distribute-first"``), ``tile`` (int, 0 =
    untiled), ``unroll_jam`` (int, 0 = off), ``vectorize`` (codegen
    mode), ``target`` (function name).
    """
    module = _new_schedule_module()
    sequence = find_sequences(module)[0]
    handle = sequence.append_step(
        MatchOp.create(params.get("target"))
    ).results[0]

    def add(op) -> None:
        nonlocal handle
        handle = sequence.append_step(op).results[0]

    fuse = bool(params.get("fuse", True))
    order = params.get("order", "fuse-first")
    if order not in ("fuse-first", "distribute-first"):
        raise ScheduleError(f"unknown schedule order {order!r}")
    if fuse and order == "fuse-first":
        add(FuseOp.create(handle, flow=True))
    add(CopyElimOp.create(handle))
    add(DeadLoopsOp.create(handle))
    add(CanonicalizeOp.create(handle))
    add(DistributeOp.create(handle))
    if fuse and order == "distribute-first":
        add(FuseOp.create(handle, flow=True))
    tile = int(params.get("tile", 0))
    if tile:
        add(TileOp.create(handle, size=tile))
    factor = int(params.get("unroll_jam", 0))
    if factor:
        add(UnrollJamOp.create(handle, factor))
    vectorize = params.get("vectorize")
    if vectorize is not None:
        add(VectorizeOp.create(handle, vectorize))
    return module


#: Step menu for :func:`random_schedule`.  ``vectorize`` and ``raise``
#: are deliberately absent: the fuzz oracle compares *interpreted*
#: payload outputs, where a vectorize annotation is inert and raising
#: is exercised by its own oracle stage.
_RANDOM_TILE_SIZES = (2, 4, 8, 16, 32, 64)
_RANDOM_FACTORS = (2, 3, 4)


def random_schedule(rng: random.Random) -> ModuleOp:
    """A random *legal* schedule: any step sequence drawn here is
    semantics-preserving because every step re-checks its own legality
    when applied."""
    module = _new_schedule_module()
    sequence = find_sequences(module)[0]
    handle = sequence.append_step(MatchOp.create()).results[0]

    def add(op) -> None:
        nonlocal handle
        handle = sequence.append_step(op).results[0]

    menu = (
        lambda: FuseOp.create(handle, flow=rng.random() < 0.5),
        lambda: CopyElimOp.create(handle),
        lambda: DeadLoopsOp.create(handle),
        lambda: CanonicalizeOp.create(handle),
        lambda: DistributeOp.create(handle),
        lambda: TileOp.create(
            handle, size=rng.choice(_RANDOM_TILE_SIZES)
        ),
        lambda: TileOp.create(
            handle,
            sizes=[
                rng.choice(_RANDOM_TILE_SIZES)
                for _ in range(rng.randint(1, 3))
            ],
        ),
        lambda: UnrollJamOp.create(
            handle, rng.choice(_RANDOM_FACTORS)
        ),
    )
    for _ in range(rng.randint(0, 6)):
        add(rng.choice(menu)())
    return module
