"""Parallel schedule autotuning with a persisted best-schedule cache.

The tuner turns the transform dialect into a search space: every
candidate is a parameter point (:func:`enumerate_space`) reified as a
schedule module (:func:`~.interpreter.schedule_from_params`), applied
by the engine on a clone of the payload, and timed on deterministic
real inputs.  Candidates shard across the persistent worker pool
(:func:`repro.runtime.pool.parallel_map`), so the search parallelizes
exactly like the fuzz campaigns and the corpus driver.

The winning schedule persists in the disk cache's ``schedules/``
namespace (beside ``modules/`` and ``kernels/``), keyed by the payload
module's content fingerprint — so a warm compile of the same kernel
(including through ``mlt-serve``) replays the tuned schedule with
**zero** search evaluations.  The enumeration places the parameter
point equivalent to ``opt_mode="full"`` first, so any in-budget search
returns a schedule at least as fast as the default pipeline on the
measured inputs.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Sequence

from ..execution.engine.cache import KernelCache, fingerprint_module
from ..execution.engine.disk_cache import DiskKernelCache
from ..execution.engine.optimizer import DEFAULT_TILE_SIZE

#: Folded into every schedule-cache key: bump when the schedule space
#: or the record layout changes so stale tunings never replay.
SCHEDULE_CACHE_VERSION = "schedules-v1"

#: Tile edges the tuner tries (0 = untiled).
TILE_SIZES = (0, 8, 16, 32, 64)

#: Unroll-and-jam factors for small reduction trips (0 = off).
UNROLL_JAM_FACTORS = (0, 2, 4)


def default_params() -> Dict:
    """The parameter point equivalent to ``opt_mode="full"``."""
    return {
        "fuse": True,
        "order": "fuse-first",
        "tile": DEFAULT_TILE_SIZE,
        "unroll_jam": 0,
        "vectorize": "nest",
    }


def enumerate_space() -> List[Dict]:
    """The full candidate list, deterministic, default point first.

    Axes: fuse on/off, fuse-vs-distribute order, tile edge, unroll-jam
    factor.  ``fuse=False`` collapses the order axis (there is nothing
    to reorder against).
    """
    default = default_params()
    points: List[Dict] = [default]
    for fuse, order in (
        (True, "fuse-first"),
        (True, "distribute-first"),
        (False, "fuse-first"),
    ):
        for tile in TILE_SIZES:
            for factor in UNROLL_JAM_FACTORS:
                point = {
                    "fuse": fuse,
                    "order": order,
                    "tile": tile,
                    "unroll_jam": factor,
                    "vectorize": "nest",
                }
                if point != default:
                    points.append(point)
    return points


# ----------------------------------------------------------------------
# Persisted best-schedule cache
# ----------------------------------------------------------------------


class ScheduleCache:
    """Best-schedule records in the ``schedules/`` disk namespace.

    A record is JSON text keyed by the payload module's fingerprint:
    the winning schedule's IR text plus the measurements that chose it.
    """

    def __init__(self, root: str):
        self.disk = DiskKernelCache(os.path.join(root, "schedules"))

    @staticmethod
    def key_for(fingerprint: str) -> str:
        return KernelCache.key_for_text(fingerprint, SCHEDULE_CACHE_VERSION)

    def load(self, fingerprint: str) -> Optional[Dict]:
        text = self.disk.load_text(self.key_for(fingerprint))
        if text is None:
            return None
        try:
            record = json.loads(text)
        except ValueError:
            return None
        return record if isinstance(record, dict) else None

    def store(self, fingerprint: str, record: Dict) -> None:
        self.disk.store_text(
            self.key_for(fingerprint), json.dumps(record, sort_keys=True)
        )


# ----------------------------------------------------------------------
# Candidate evaluation (worker side)
# ----------------------------------------------------------------------

_WORKER_STATE: Optional[dict] = None


def _init_worker(config: dict) -> None:
    global _WORKER_STATE
    from ..ir import PassResultCache
    from ..ir.parser import parse_module

    state = dict(config)
    state["module"] = parse_module(config["module_text"])
    if config.get("pass_cache", True):
        # One pass-result cache per worker, shared across every
        # candidate this worker evaluates: the schedule prefix
        # (match / fuse / copy_elim / ...) common to all candidates
        # runs once, and with a disk root the whole pool shares it.
        cache = PassResultCache()
        if config.get("pass_cache_dir"):
            cache.attach_disk(config["pass_cache_dir"])
        state["pass_cache_obj"] = cache
    else:
        state["pass_cache_obj"] = None
    _WORKER_STATE = state


def _measure_schedule(
    module, func_name, schedule, repeats, seed, pass_cache=None
):
    """Compile ``module`` under ``schedule`` and time steady-state
    execution (best of ``repeats``); returns (wall, checksum, result)."""
    from ..execution.engine.engine import ExecutionEngine
    from ..fuzzing.oracle import make_args, module_arg_shapes

    engine = ExecutionEngine(
        module, cache=KernelCache(), schedule=schedule,
        pass_cache=pass_cache,
    )
    # One untimed run first: it absorbs the lazy compile plus any
    # first-touch process costs (allocator, numpy dispatch) that would
    # otherwise bias the comparison toward whichever schedule is
    # measured *second* in a given process.
    warmup = make_args(module_arg_shapes(module, func_name), seed)
    engine.run(func_name, *warmup)
    wall = float("inf")
    digest = 0.0
    for _ in range(max(1, repeats)):
        args = make_args(module_arg_shapes(module, func_name), seed)
        start = time.perf_counter()
        engine.run(func_name, *args)
        wall = min(wall, time.perf_counter() - start)
        digest = float(sum(float(buf.sum()) for buf in args))
    return wall, digest, engine


def _evaluate_candidate(unit) -> Dict:
    """One tuning evaluation: build the schedule for a parameter point,
    compile + run the payload under it, report the wall-clock."""
    index, params = unit
    state = _WORKER_STATE
    from .interpreter import schedule_from_params

    schedule = schedule_from_params(params)
    pass_cache = state.get("pass_cache_obj")
    before = (
        pass_cache.stats.snapshot() if pass_cache is not None else None
    )
    start = time.perf_counter()
    wall, digest, engine = _measure_schedule(
        state["module"],
        state["func_name"],
        schedule,
        state["repeats"],
        state["seed"],
        pass_cache=pass_cache,
    )
    row = {
        "index": index,
        "params": params,
        "wall_time_s": wall,
        "checksum": digest,
        "compile_s": time.perf_counter() - start - wall,
        "schedule_stats": engine.schedule_stats,
    }
    if before is not None:
        after = pass_cache.stats.snapshot()
        row["pass_cache"] = {
            key: after[key] - before[key]
            for key in after
            if after[key] != before[key]
        }
    return row


# ----------------------------------------------------------------------
# Per-kernel tuning driver
# ----------------------------------------------------------------------


def autotune_kernel(
    kernel: str,
    budget: int = 24,
    jobs: int = 1,
    repeats: int = 3,
    seed: int = 0,
    cache_dir: Optional[str] = None,
    pipeline: str = "mlt-linalg",
    heavy: bool = False,
    pass_cache: bool = True,
) -> Dict:
    """Tune one paper-corpus kernel; returns a ``BENCH_autotune`` row.

    With a ``cache_dir`` whose ``schedules/`` namespace already holds a
    record for this payload, the search is skipped entirely
    (``evaluations == 0``, ``cached == True``) and the persisted
    schedule replays at default-compile latency.

    ``pass_cache`` (default on) gives every search worker a
    function-granular pass-result cache (persisted under ``cache_dir``
    when set), so the schedule prefix shared by all candidates is
    applied once per worker instead of once per candidate.
    """
    from ..evaluation import get_kernel
    from ..evaluation.pipelines import build_module
    from ..ir.parser import parse_module
    from ..ir.printer import print_module
    from ..runtime.pool import parallel_map
    from .interpreter import schedule_from_params

    spec = get_kernel(kernel)
    source = spec.large() if heavy else spec.small()
    module = build_module(source, pipeline)
    fingerprint = fingerprint_module(module)
    cache = ScheduleCache(cache_dir) if cache_dir else None

    record = cache.load(fingerprint) if cache is not None else None
    if record is not None:
        # Warm replay: no search, just compile + run under the
        # persisted winner to prove it still applies.  The reported
        # speedup is the *search-time* measurement pair — the only two
        # timings taken under identical conditions; re-measuring the
        # default here would compare runs from different process
        # states, which on a loaded box swamps the signal.
        tuned_schedule = parse_module(record["schedule"])
        replay_wall, tuned_digest, _ = _measure_schedule(
            module, spec.func_name, tuned_schedule, repeats, seed
        )
        tuned_wall = float(record.get("wall_time_s", replay_wall))
        default_wall = float(record.get("default_wall_s", tuned_wall))
        return {
            "kernel": kernel,
            "cached": True,
            "evaluations": 0,
            "best_params": record["params"],
            "schedule": record["schedule"],
            "default_wall_s": default_wall,
            "tuned_wall_s": tuned_wall,
            "replay_wall_s": replay_wall,
            "speedup": default_wall / tuned_wall if tuned_wall > 0 else 1.0,
            "checksum": tuned_digest,
        }

    points = enumerate_space()[: max(1, budget)]
    config = {
        "module_text": print_module(module),
        "func_name": spec.func_name,
        "repeats": repeats,
        "seed": seed,
        "pass_cache": pass_cache,
        "pass_cache_dir": cache_dir if pass_cache else None,
    }
    search_start = time.perf_counter()
    results = parallel_map(
        _evaluate_candidate,
        list(enumerate(points)),
        jobs=jobs,
        initializer=_init_worker,
        initargs=(config,),
    )
    search_s = time.perf_counter() - search_start
    by_index = {row["index"]: row for row in results}
    default_row = by_index[0]
    # Correctness screen: a candidate whose output digest disagrees
    # with the default pipeline's is discarded, never declared a win.
    tolerance = 1e-4 * max(1.0, abs(default_row["checksum"]))
    valid = [
        row
        for row in results
        if abs(row["checksum"] - default_row["checksum"]) <= tolerance
    ]
    best_row = min(valid, key=lambda row: (row["wall_time_s"], row["index"]))
    best_schedule_text = print_module(
        schedule_from_params(best_row["params"])
    )
    if cache is not None:
        cache.store(
            fingerprint,
            {
                "version": SCHEDULE_CACHE_VERSION,
                "kernel": kernel,
                "fingerprint": fingerprint,
                "params": best_row["params"],
                "schedule": best_schedule_text,
                "wall_time_s": best_row["wall_time_s"],
                "default_wall_s": default_row["wall_time_s"],
                "evaluations": len(results),
            },
        )
    tuned_wall = best_row["wall_time_s"]
    default_wall = default_row["wall_time_s"]
    cache_totals: Dict[str, int] = {}
    for row in results:
        for key, value in (row.get("pass_cache") or {}).items():
            cache_totals[key] = cache_totals.get(key, 0) + value
    return {
        "kernel": kernel,
        "cached": False,
        "evaluations": len(results),
        "best_params": best_row["params"],
        "schedule": best_schedule_text,
        "default_wall_s": default_wall,
        "tuned_wall_s": tuned_wall,
        "speedup": default_wall / tuned_wall if tuned_wall > 0 else 1.0,
        "checksum": best_row["checksum"],
        "rejected_candidates": len(results) - len(valid),
        "search_s": search_s,
        "pass_cache": cache_totals,
    }


#: Kernels ``mlt-tune`` tunes when none are named.
DEFAULT_TUNE_KERNELS = ("gemm", "2mm", "doitgen", "atax")


def autotune(
    kernels: Sequence[str] = DEFAULT_TUNE_KERNELS,
    budget: int = 24,
    jobs: int = 1,
    repeats: int = 3,
    seed: int = 0,
    cache_dir: Optional[str] = None,
    pipeline: str = "mlt-linalg",
    heavy: bool = False,
    pass_cache: bool = True,
) -> Dict:
    """Tune a kernel list; returns the ``BENCH_autotune`` payload."""
    rows = [
        autotune_kernel(
            kernel,
            budget=budget,
            jobs=jobs,
            repeats=repeats,
            seed=seed,
            cache_dir=cache_dir,
            pipeline=pipeline,
            heavy=heavy,
            pass_cache=pass_cache,
        )
        for kernel in kernels
    ]
    return {
        "rows": rows,
        "summary": {
            "budget": budget,
            "jobs": jobs,
            "repeats": repeats,
            "evaluations": sum(row["evaluations"] for row in rows),
            "cached": sum(1 for row in rows if row["cached"]),
            "best_speedup": max(row["speedup"] for row in rows),
            "search_s": sum(row.get("search_s", 0.0) for row in rows),
        },
    }
