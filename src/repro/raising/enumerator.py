"""Bottom-up candidate enumeration over a nest's live-in/live-out arrays.

The enumerator never inspects *how* the payload wires its loads
together beyond a coarse multiply-accumulate classification — that is
the TDL matchers' job, and exactly what makes them brittle.  Instead it
proposes every linalg/blas op whose operand shapes, ranks, and abstract
access patterns are consistent with the nest (via :mod:`.pruner`), in a
fixed preference order:

1. named ops (``linalg.matmul``, ``linalg.matvec``) — these reach the
   engine's ``sgemm``/``sgemv`` runtime directly;
2. generic contractions (multiply-accumulate bodies over enumerated
   permutation indexing maps, add or subtract accumulation) — these
   reach the engine's ``np.tensordot`` contraction fast path;
3. clone-body generics (the payload's scalar ops replayed inside a
   ``linalg.generic`` body) for elementwise maps and reductions.

Candidates are *descriptions*; :mod:`.rewriter` materializes them and
:mod:`.equivalence` decides which (if any) is actually equivalent.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from .nest import NestSummary
from .pruner import (
    Assignment,
    covers_all_dims,
    enumerate_assignments,
    reduction_dims,
)


@dataclass
class EnumeratorConfig:
    #: Hard cap on survivors; exceeding it bails "too-many-candidates"
    #: rather than spending unbounded oracle time.
    max_candidates: int = 128
    named_ops: bool = True
    contractions: bool = True
    maps: bool = True


@dataclass
class Candidate:
    """One proposed high-level op, as data (not yet IR)."""

    kind: str       # "matmul" | "matvec" | "contraction" | "map"
    op_name: str    # "linalg.matmul" | "linalg.matvec" | "linalg.generic"
    #: Operand positions as indices into ``summary.arrays``
    #: (inputs then the single output).
    inputs: Tuple[int, ...]
    output: int
    #: For generics: one dim assignment per operand, inputs first,
    #: output last.  ``None`` entries are constant-0 subscripts.
    assignments: Optional[Tuple[Assignment, ...]] = None
    #: Generic body: "mac-add" | "mac-sub" | "clone".
    body: str = ""
    #: For clone bodies: index into ``summary.loads`` per input operand.
    input_loads: Tuple[int, ...] = field(default_factory=tuple)
    trans: bool = False  # linalg.matvec transpose flag

    def describe(self) -> str:
        if self.op_name != "linalg.generic":
            suffix = " (trans)" if self.trans else ""
            return f"{self.op_name}{suffix}"

        def fmt(assignment: Assignment) -> str:
            return (
                "("
                + ", ".join(
                    "0" if s is None else f"d{s}" for s in assignment
                )
                + ")"
            )

        maps = ", ".join(fmt(a) for a in self.assignments or ())
        return f"linalg.generic[{self.body}] {maps}"


def classify_mac(summary: NestSummary) -> Optional[str]:
    """``"+"``/``"-"`` if the payload is a single multiply-accumulate
    (``acc = acc ± a*b`` with three loads), else ``None``.

    This is the only structural peek the enumerator takes, and it only
    selects *which body* to propose — operand order, loop order, and
    indexing all stay enumerated, so re-associated or permuted variants
    the TDL matchers reject still land here.
    """
    counts = Counter(op.name for op in summary.payload)
    if counts.get("std.mulf") != 1 or len(summary.loads) != 3:
        return None
    adds = counts.get("std.addf", 0)
    subs = counts.get("std.subf", 0)
    if adds + subs != 1:
        return None
    if set(counts) - {
        "affine.load",
        "affine.store",
        "std.mulf",
        "std.addf",
        "std.subf",
    }:
        return None
    if len(summary.accumulator_loads()) != 1:
        return None
    return "+" if adds else "-"


def _multiset_eq(a, b) -> bool:
    return Counter(a) == Counter(b)


def _named_candidates(summary: NestSummary, sign: str) -> List[Candidate]:
    """matmul/matvec candidates (accumulating adds only — the named ops
    have fixed ``+=`` semantics)."""
    if sign != "+":
        return []
    out = summary.live_out[0]
    out_idx = summary.arrays.index(out)
    out_shape = summary.array_shape(out)
    candidates: List[Candidate] = []
    ins = [a for a in summary.live_in if a is not out]

    if summary.depth == 3 and len(out_shape) == 2:
        m, n = out_shape
        for a in ins:
            for b in ins:
                a_shape = summary.array_shape(a)
                b_shape = summary.array_shape(b)
                if len(a_shape) != 2 or len(b_shape) != 2:
                    continue
                if a_shape[0] != m or b_shape[1] != n:
                    continue
                if a_shape[1] != b_shape[0]:
                    continue
                if not _multiset_eq(
                    summary.extents, [m, n, a_shape[1]]
                ):
                    continue
                candidates.append(
                    Candidate(
                        kind="matmul",
                        op_name="linalg.matmul",
                        inputs=(
                            summary.arrays.index(a),
                            summary.arrays.index(b),
                        ),
                        output=out_idx,
                    )
                )

    if summary.depth == 2 and len(out_shape) == 1:
        (m,) = out_shape
        for a in ins:
            for x in ins:
                a_shape = summary.array_shape(a)
                x_shape = summary.array_shape(x)
                if len(a_shape) != 2 or len(x_shape) != 1:
                    continue
                for trans in (False, True):
                    rows, cols = a_shape
                    if trans:
                        rows, cols = cols, rows
                    if rows != m or cols != x_shape[0]:
                        continue
                    if not _multiset_eq(summary.extents, [m, cols]):
                        continue
                    candidates.append(
                        Candidate(
                            kind="matvec",
                            op_name="linalg.matvec",
                            inputs=(
                                summary.arrays.index(a),
                                summary.arrays.index(x),
                            ),
                            output=out_idx,
                            trans=trans,
                        )
                    )
    return candidates


def _contraction_candidates(
    summary: NestSummary, sign: str
) -> Tuple[List[Candidate], int]:
    """Generic mac-body contractions over enumerated permutation maps.

    Returns ``(candidates, pruned)`` where ``pruned`` counts fully
    assembled map combinations discarded by coverage / reduction-dim
    checks.
    """
    out = summary.live_out[0]
    out_idx = summary.arrays.index(out)
    num_dims = summary.depth
    body = "mac-add" if sign == "+" else "mac-sub"

    out_assignments = list(
        enumerate_assignments(
            summary.array_shape(out),
            summary.extents,
            summary.observed_dims(out),
        )
    )
    candidates: List[Candidate] = []
    pruned = 0
    ins = [a for a in summary.live_in if a is not out]
    for a in ins:
        a_assignments = list(
            enumerate_assignments(
                summary.array_shape(a),
                summary.extents,
                summary.observed_dims(a),
            )
        )
        for b in ins:
            b_assignments = list(
                enumerate_assignments(
                    summary.array_shape(b),
                    summary.extents,
                    summary.observed_dims(b),
                )
            )
            for out_asg in out_assignments:
                if not reduction_dims(out_asg, num_dims):
                    pruned += 1  # no reduction dim -> not a contraction
                    continue
                for a_asg in a_assignments:
                    for b_asg in b_assignments:
                        combo = (a_asg, b_asg, out_asg)
                        if not covers_all_dims(combo, num_dims):
                            pruned += 1
                            continue
                        candidates.append(
                            Candidate(
                                kind="contraction",
                                op_name="linalg.generic",
                                inputs=(
                                    summary.arrays.index(a),
                                    summary.arrays.index(b),
                                ),
                                output=out_idx,
                                assignments=combo,
                                body=body,
                            )
                        )
    return candidates, pruned


def _map_candidates(summary: NestSummary) -> Tuple[List[Candidate], int]:
    """Clone-body generics: one input operand per non-accumulator load,
    maps enumerated per load's array, original scalar ops replayed in
    the body."""
    out = summary.live_out[0]
    out_idx = summary.arrays.index(out)
    num_dims = summary.depth
    acc_ids = {id(load) for load in summary.accumulator_loads()}
    in_loads = [
        i for i, load in enumerate(summary.loads) if id(load) not in acc_ids
    ]

    per_operand: List[List[Assignment]] = []
    for li in in_loads:
        array = summary.accesses[id(summary.loads[li])].memref
        per_operand.append(
            list(
                enumerate_assignments(
                    summary.array_shape(array),
                    summary.extents,
                    summary.observed_dims(array),
                )
            )
        )
    out_assignments = list(
        enumerate_assignments(
            summary.array_shape(out),
            summary.extents,
            summary.observed_dims(out),
        )
    )

    candidates: List[Candidate] = []
    pruned = 0

    def recurse(pos: int, acc: Tuple[Assignment, ...]):
        nonlocal pruned
        if pos == len(per_operand):
            for out_asg in out_assignments:
                combo = acc + (out_asg,)
                if not covers_all_dims(combo, num_dims):
                    pruned += 1
                    continue
                candidates.append(
                    Candidate(
                        kind="map",
                        op_name="linalg.generic",
                        inputs=tuple(
                            summary.arrays.index(
                                summary.accesses[
                                    id(summary.loads[li])
                                ].memref
                            )
                            for li in in_loads
                        ),
                        output=out_idx,
                        assignments=combo,
                        body="clone",
                        input_loads=tuple(in_loads),
                    )
                )
            return
        for assignment in per_operand[pos]:
            recurse(pos + 1, acc + (assignment,))

    recurse(0, ())
    return candidates, pruned


def enumerate_candidates(
    summary: NestSummary, config: Optional[EnumeratorConfig] = None
) -> Tuple[Union[List[Candidate], str], int]:
    """Propose candidates for ``summary`` in preference order.

    Returns ``(candidates_or_bail_reason, pruned_count)``; the bail
    reason is ``"no-candidate"`` or ``"too-many-candidates"``.
    """
    config = config or EnumeratorConfig()
    sign = classify_mac(summary)
    candidates: List[Candidate] = []
    pruned = 0
    if sign is not None:
        if config.named_ops:
            candidates.extend(_named_candidates(summary, sign))
        if config.contractions:
            more, p = _contraction_candidates(summary, sign)
            candidates.extend(more)
            pruned += p
    elif config.maps:
        # Non-mac payloads: elementwise maps / general reductions with
        # the original scalar body replayed.
        more, p = _map_candidates(summary)
        candidates.extend(more)
        pruned += p
    if not candidates:
        return "no-candidate", pruned
    if len(candidates) > config.max_candidates:
        return "too-many-candidates", pruned
    return candidates, pruned
