"""Synthesis-based raising: the enumerative fallback tier.

Where the TDL matchers (``repro.tactics``) recognize loop nests
*structurally*, this package recovers linalg/blas ops the matchers
miss by bottom-up enumeration over the nest's live-in/live-out arrays,
cheap shape/access-pattern pruning, and I/O-equivalence validation
against the interpreter (with the compiled engine as cross-check) —
the mlirSynth recipe applied to this repo's oracle machinery.

See ``docs/raising.md`` for the candidate space and the validation
protocol.
"""

from .enumerator import (  # noqa: F401
    Candidate,
    EnumeratorConfig,
    classify_mac,
    enumerate_candidates,
)
from .equivalence import (  # noqa: F401
    EquivalenceChecker,
    EquivalenceConfig,
    OracleError,
    build_candidate_module,
    build_nest_module,
    check_candidate,
)
from .nest import NestSummary, summarize_nest  # noqa: F401
from .rewriter import (  # noqa: F401
    apply_candidate,
    candidate_maps,
    materialize_candidate,
)
from .stats import (  # noqa: F401
    RaiseStats,
    SYNTH_BAIL_REASONS,
    TDL_BAIL_REASONS,
)
from .synthesize import (  # noqa: F401
    SynthConfig,
    SynthRaisingPass,
    raise_with_synthesis,
    synthesize_function,
    synthesize_nest,
)
