"""The synthesis raising pass: the fallback tier behind the TDL
matchers.

Per affine band left in a function, :func:`synthesize_nest` runs the
full enumerate -> prune -> validate -> rewrite loop; the first candidate
(in the enumerator's preference order: named op, then contraction
generic, then clone-body generic) that survives I/O-equivalence
validation replaces the nest.  Every outcome — raise or bail — is
recorded in a :class:`~.stats.RaiseStats`.

``SynthRaisingPass`` (``-raise-affine-synth``) applies this to a whole
module; ``RaiseAffineToLinalgPass(raise_mode=...)`` in
``repro.tactics.raising`` composes it after the TDL tier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from ..dialects.affine import AffineForOp, perfect_nest
from ..ir import Context, FunctionPass, ModuleOp, PatternRewriter
from .enumerator import Candidate, EnumeratorConfig, enumerate_candidates
from .equivalence import (
    EquivalenceChecker,
    EquivalenceConfig,
    OracleError,
)
from .nest import NestSummary, summarize_nest
from .rewriter import apply_candidate
from .stats import RaiseStats


@dataclass
class SynthConfig:
    enumerator: EnumeratorConfig = field(default_factory=EnumeratorConfig)
    equivalence: EquivalenceConfig = field(default_factory=EquivalenceConfig)


def synthesize_nest(
    root: AffineForOp,
    stats: RaiseStats,
    config: SynthConfig,
    rewriter: Optional[PatternRewriter] = None,
) -> Union[Candidate, str]:
    """Try to raise the band rooted at ``root``; returns the applied
    candidate or a :data:`~.stats.SYNTH_BAIL_REASONS` key."""
    summary = summarize_nest(root)
    if isinstance(summary, str):
        stats.record_synth_bail(summary)
        return summary

    result, pruned = enumerate_candidates(summary, config.enumerator)
    stats.candidates_pruned += pruned
    if isinstance(result, str):
        stats.record_synth_bail(result)
        return result
    stats.candidates_enumerated += len(result)

    try:
        checker = EquivalenceChecker(summary, config.equivalence, stats)
    except OracleError:
        stats.record_synth_bail("oracle-error")
        return "oracle-error"

    for candidate in result:
        if checker.check(candidate):
            apply_candidate(candidate, summary, rewriter or PatternRewriter())
            stats.record_synth_raise(candidate.op_name)
            return candidate
    stats.record_synth_bail("validation-failed")
    return "validation-failed"


def synthesize_function(
    func,
    stats: Optional[RaiseStats] = None,
    config: Optional[SynthConfig] = None,
) -> int:
    """Raise every eligible band in ``func``; returns the raise count.

    Bands are visited outermost-first; an imperfect outer band bails
    but its inner loops are retried as roots of their own, so the
    subsystem still recovers e.g. the compute nest of an
    init-then-compute pair under one outer loop.
    """
    stats = stats if stats is not None else RaiseStats()
    config = config or SynthConfig()
    rewriter = PatternRewriter()
    worklist: List[AffineForOp] = [
        op
        for op in func.walk()
        if isinstance(op, AffineForOp)
        and not isinstance(op.parent_op, AffineForOp)
    ]
    raised = 0
    while worklist:
        root = worklist.pop(0)
        outcome = synthesize_nest(root, stats, config, rewriter)
        if isinstance(outcome, Candidate):
            raised += 1
        elif outcome == "imperfect-nest":
            band = perfect_nest(root)
            worklist.extend(
                op
                for op in band[-1].ops_in_body()
                if isinstance(op, AffineForOp)
            )
    return raised


class SynthRaisingPass(FunctionPass):
    """``-raise-affine-synth``: enumerative raising for every affine
    band still standing (typically run after the TDL tier)."""

    name = "raise-affine-synth"

    def __init__(
        self,
        config: Optional[SynthConfig] = None,
        stats: Optional[RaiseStats] = None,
    ):
        self.config = config or SynthConfig()
        self.stats = stats if stats is not None else RaiseStats()

    def cache_config(self) -> str:
        return repr(self.config)

    @property
    def raise_stats(self) -> RaiseStats:
        """Uniform accessor for ``mlt-opt --raise-stats``."""
        return self.stats

    def run_on_function(self, func, context: Context):
        return synthesize_function(func, self.stats, self.config) > 0


def raise_with_synthesis(
    module: ModuleOp, config: Optional[SynthConfig] = None
) -> RaiseStats:
    """Convenience wrapper mirroring ``raise_affine_to_linalg``."""
    pass_ = SynthRaisingPass(config)
    pass_.run(module, Context())
    return pass_.stats
