"""Cheap candidate pruning for the enumerative raiser.

The enumerator proposes indexing-map assignments *blindly* (that is
the point: no structural matching); this module is the fast filter
that discards candidates which cannot possibly be equivalent before
any interpreter trial runs:

* **rank check** — one subscript expression per memref dimension;
* **shape check** — a band dim may only index a memref dimension of
  the same extent (a constant-0 subscript may only index a size-1
  dimension);
* **abstract access-pattern check** — a candidate map may only use
  band dims the array's accesses in the original nest actually use
  (an array never indexed by ``j`` cannot behave as if it were);
* **coverage check** — together the maps must mention every band dim,
  otherwise the candidate's iteration domain is under-constrained.

Everything here is *necessary*, never sufficient: survivors still go
through the I/O-equivalence oracle.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

#: A subscript assignment: band-dim position, or ``None`` for the
#: constant-0 subscript (only legal on size-1 dimensions).
Subscript = Optional[int]
Assignment = Tuple[Subscript, ...]


def subscript_options(
    dim_size: int,
    extents: Sequence[int],
    observed_dims: frozenset,
) -> List[Subscript]:
    """Band dims eligible to index a memref dimension of ``dim_size``.

    Only dims whose extent matches and which the array's real accesses
    use are eligible; a size-1 dimension may also take the constant-0
    subscript (the scalar-accumulator case, e.g. ``s[0]``).
    """
    options: List[Subscript] = [
        d
        for d, extent in enumerate(extents)
        if extent == dim_size and d in observed_dims
    ]
    if dim_size == 1:
        options.append(None)
    return options


def enumerate_assignments(
    shape: Sequence[int],
    extents: Sequence[int],
    observed_dims: frozenset,
) -> Iterator[Assignment]:
    """All shape-valid, access-valid dim assignments for one operand.

    Dims are distinct within one assignment (no diagonal accesses —
    the original C subset cannot express them either).
    """
    per_position = [
        subscript_options(size, extents, observed_dims) for size in shape
    ]

    def recurse(pos: int, used: frozenset, acc: Tuple[Subscript, ...]):
        if pos == len(per_position):
            yield acc
            return
        for option in per_position[pos]:
            if option is not None and option in used:
                continue
            next_used = used if option is None else used | {option}
            yield from recurse(pos + 1, next_used, acc + (option,))

    yield from recurse(0, frozenset(), ())


def covers_all_dims(
    assignments: Sequence[Assignment], num_dims: int
) -> bool:
    """Every band dim must appear in at least one operand map, or the
    candidate op's iteration domain cannot be inferred."""
    seen = set()
    for assignment in assignments:
        for sub in assignment:
            if sub is not None:
                seen.add(sub)
    return seen == set(range(num_dims))


def reduction_dims(
    out_assignment: Assignment, num_dims: int
) -> List[int]:
    """Band dims absent from the output map (iterated, not stored)."""
    out_dims = {sub for sub in out_assignment if sub is not None}
    return [d for d in range(num_dims) if d not in out_dims]
