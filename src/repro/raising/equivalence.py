"""I/O-equivalence validation of synthesis candidates.

A candidate is accepted only if the original nest and the candidate op
produce identical observable memory on N generated input sets:

* **integer trials** — inputs are small integer-valued float32 arrays,
  so every multiply-accumulate is exact and the comparison is
  bit-equality (``np.array_equal``).  Reassociated/permuted evaluation
  orders cannot produce false negatives here, which matters because the
  candidate's iteration order is generally *not* the nest's.
* **one uniform random trial** — catches candidates that only agree on
  the integer lattice; compared with the same relative tolerance the
  differential fuzzer grants compiled kernels (``rtol=2e-3``).
* **engine cross-check** — the accepted candidate is additionally run
  through the compiled NumPy :class:`ExecutionEngine`, so a raised op
  that the engine would miscompile (or that cannot execute at all) is
  rejected before it is ever emitted.

Both sides run as standalone single-function modules whose arguments
are the nest's arrays in first-touch order; *all* arrays are compared
afterwards, so a candidate that clobbers a live-in is rejected too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..ir import (
    Builder,
    FuncOp,
    InsertionPoint,
    ModuleOp,
    ReturnOp,
)
from ..ir.verifier import verify
from .enumerator import Candidate
from .nest import NestSummary
from .rewriter import materialize_candidate
from .stats import RaiseStats

FUNC_NAME = "synth_check"


@dataclass
class EquivalenceConfig:
    integer_trials: int = 3
    #: Uniform-random extra trials (approximate comparison).
    random_trials: int = 1
    seed: int = 0
    rtol: float = 2e-3
    atol: float = 1e-5
    #: Cross-check accepted candidates on the compiled engine.
    check_engine: bool = True
    #: Interpreter step budget per trial — a nest too big to validate
    #: is a bail ("oracle-error"), not a hang.
    max_steps: int = 5_000_000
    #: Integer inputs are drawn from [0, integer_range); small enough
    #: that f32 accumulation stays exact for every nest size the
    #: generators produce.
    integer_range: int = 5


def _build_module(summary: NestSummary, fill) -> ModuleOp:
    module = ModuleOp.create()
    func = FuncOp.create(FUNC_NAME, [a.type for a in summary.arrays])
    module.append_function(func)
    builder = Builder(InsertionPoint.at_end(func.entry_block))
    fill(builder, func.arguments)
    builder.insert(ReturnOp.create())
    return module


def build_nest_module(summary: NestSummary) -> ModuleOp:
    """The original band cloned into a standalone function."""

    def fill(builder: Builder, args):
        value_map = dict(zip(summary.arrays, args))
        builder.insert(summary.root.clone(value_map))

    return _build_module(summary, fill)


def build_candidate_module(
    summary: NestSummary, candidate: Candidate
) -> ModuleOp:
    """The candidate op materialized over the same signature."""

    def fill(builder: Builder, args):
        builder.insert(materialize_candidate(candidate, summary, args))

    return _build_module(summary, fill)


class OracleError(Exception):
    """The *reference* side failed — the nest cannot be validated at
    all (bail reason "oracle-error")."""


class EquivalenceChecker:
    """Validates candidates against one summarized nest.

    Reference outputs are computed once per nest (not once per
    candidate); each :meth:`check` call then costs one interpreter run
    per trial plus, on success, the engine cross-check.
    """

    def __init__(
        self,
        summary: NestSummary,
        config: Optional[EquivalenceConfig] = None,
        stats: Optional[RaiseStats] = None,
    ):
        self.summary = summary
        self.config = config or EquivalenceConfig()
        self.stats = stats
        rng = np.random.default_rng(self.config.seed)
        self.trial_inputs: List[List[np.ndarray]] = []
        self.trial_exact: List[bool] = []
        for _ in range(self.config.integer_trials):
            self.trial_inputs.append(self._draw(rng, integer=True))
            self.trial_exact.append(True)
        for _ in range(self.config.random_trials):
            self.trial_inputs.append(self._draw(rng, integer=False))
            self.trial_exact.append(False)

        nest_module = build_nest_module(summary)
        self.expected: List[List[np.ndarray]] = []
        for inputs in self.trial_inputs:
            try:
                self.expected.append(self._run_interp(nest_module, inputs))
            except Exception as exc:  # interpreter budget, bad IR, ...
                raise OracleError(str(exc)) from exc

    # ------------------------------------------------------------------

    def _draw(self, rng, integer: bool) -> List[np.ndarray]:
        arrays = []
        for value in self.summary.arrays:
            shape = self.summary.array_shape(value)
            if integer:
                data = rng.integers(
                    0, self.config.integer_range, size=shape
                ).astype(np.float32)
            else:
                data = rng.random(shape, dtype=np.float32) - 0.5
            arrays.append(data)
        return arrays

    def _run_interp(
        self, module: ModuleOp, inputs: List[np.ndarray]
    ) -> List[np.ndarray]:
        from ..execution.interpreter import Interpreter

        arrays = [a.copy() for a in inputs]
        Interpreter(module, max_steps=self.config.max_steps).run(
            FUNC_NAME, *arrays
        )
        if self.stats is not None:
            self.stats.trials_run += 1
        return arrays

    def _run_engine(
        self, module: ModuleOp, inputs: List[np.ndarray]
    ) -> List[np.ndarray]:
        from ..execution.engine import ExecutionEngine

        arrays = [a.copy() for a in inputs]
        ExecutionEngine(module).run(FUNC_NAME, *arrays)
        if self.stats is not None:
            self.stats.trials_run += 1
        return arrays

    def _agree(
        self,
        got: List[np.ndarray],
        want: List[np.ndarray],
        exact: bool,
    ) -> bool:
        for g, w in zip(got, want):
            if exact:
                if not np.array_equal(g, w):
                    return False
            elif not np.allclose(
                g, w, rtol=self.config.rtol, atol=self.config.atol
            ):
                return False
        return True

    # ------------------------------------------------------------------

    def check(self, candidate: Candidate) -> bool:
        """True iff the candidate matches the nest on every trial (and
        on the engine, when enabled)."""
        try:
            module = build_candidate_module(self.summary, candidate)
            verify(module)
            for inputs, want, exact in zip(
                self.trial_inputs, self.expected, self.trial_exact
            ):
                got = self._run_interp(module, inputs)
                if not self._agree(got, want, exact):
                    self._note(False)
                    return False
            if self.config.check_engine:
                for index in (0, len(self.trial_inputs) - 1):
                    got = self._run_engine(module, self.trial_inputs[index])
                    if not self._agree(
                        got, self.expected[index], self.trial_exact[index]
                    ):
                        self._note(False)
                        return False
        except Exception:
            # A candidate the IR verifier, interpreter, or engine cannot
            # digest is simply not equivalent.
            self._note(False)
            return False
        self._note(True)
        return True

    def _note(self, accepted: bool) -> None:
        if self.stats is None:
            return
        if accepted:
            self.stats.candidates_validated += 1
        else:
            self.stats.candidates_rejected += 1


def check_candidate(
    summary: NestSummary,
    candidate: Candidate,
    config: Optional[EquivalenceConfig] = None,
    stats: Optional[RaiseStats] = None,
) -> bool:
    """One-shot convenience wrapper around :class:`EquivalenceChecker`."""
    return EquivalenceChecker(summary, config, stats).check(candidate)
