"""Raising observability: the ``RaiseStats`` taxonomy.

Mirrors the engine's ``VectorizeStats``: every raising attempt — TDL
matcher or synthesis — is accounted for with a *stable* bail-reason
key, so synth-vs-TDL coverage is measurable across runs and the fuzz
corpus ("which nests fall off the raise path, and why") instead of
silently disappearing.

Two taxonomies:

* :data:`TDL_BAIL_REASONS` — why a compiled TDL tactic rejected a
  candidate root (per pattern, attempted/matched/bailed).
* :data:`SYNTH_BAIL_REASONS` — why the enumerative synthesizer gave up
  on a nest (or rejected every candidate).

Keys are part of the observable surface (tests and ``BENCH_raise.json``
key on them); add new ones, never rename.
"""

from __future__ import annotations

from typing import Dict

#: Why a compiled TDL tactic's matcher bailed on an ``affine.for`` root.
TDL_BAIL_REASONS = (
    "inner-loop-root",      # root is an inner loop of a larger perfect band
    "depth-mismatch",       # band depth != pattern loop count
    "body-shape",           # innermost block has the wrong operation mix
    "structure-mismatch",   # structural/access matchers rejected the body
    "iv-binding",           # placeholder bound to a non-band IV
    "non-constant-trip",    # a matched loop has no constant trip count
    "pattern-mismatch",     # coarse reason for hand-written patterns
)

#: Why the synthesizer bailed on a nest (nest-level) or raised nothing.
SYNTH_BAIL_REASONS = (
    "imperfect-nest",        # band is not a perfect rectangular nest
    "unsupported-bounds",    # non-constant bounds, lb != 0, or step != 1
    "store-count",           # zero or more than one affine.store
    "unsupported-payload",   # payload op outside the safe scalar set
    "non-affine-access",     # an access map is non-linear (mod/div)
    "external-value",        # payload reads an SSA value defined outside
    "no-candidate",          # enumerator produced nothing after pruning
    "too-many-candidates",   # enumeration exceeded the candidate cap
    "validation-failed",     # every candidate was rejected by the oracle
    "oracle-error",          # interpreter/engine crashed during trials
)


class RaiseStats:
    """Aggregated raising observability for one pass run.

    ``patterns`` tracks the TDL tier per compiled tactic:
    ``{name: {"attempted": n, "matched": n, "bailed": n,
    "bail_reasons": {reason: n}}}``.  ``attempted`` counts matcher
    *invocations* (the greedy driver may try one root several times),
    so it is an upper bound on distinct nests.

    The synthesis tier counts nests and candidates:
    ``nests_attempted``/``nests_raised``/``nests_bailed``,
    ``candidates_enumerated``/``candidates_pruned`` (never validated),
    ``candidates_validated``/``candidates_rejected`` (oracle verdicts),
    ``trials_run`` (interpreter executions spent), ``raised_ops``
    (emitted op name -> count), and ``bail_reasons`` keyed by
    :data:`SYNTH_BAIL_REASONS`.
    """

    def __init__(self) -> None:
        self.patterns: Dict[str, Dict] = {}
        self.synth_nests_attempted = 0
        self.synth_nests_raised = 0
        self.synth_nests_bailed = 0
        self.candidates_enumerated = 0
        self.candidates_pruned = 0
        self.candidates_validated = 0
        self.candidates_rejected = 0
        self.trials_run = 0
        self.raised_ops: Dict[str, int] = {}
        self.bail_reasons: Dict[str, int] = {}

    # -- TDL tier ------------------------------------------------------

    def _pattern(self, name: str) -> Dict:
        entry = self.patterns.get(name)
        if entry is None:
            entry = {
                "attempted": 0,
                "matched": 0,
                "bailed": 0,
                "bail_reasons": {},
            }
            self.patterns[name] = entry
        return entry

    def record_tdl(self, pattern_name: str, reason: str) -> None:
        """One matcher invocation; ``reason`` is ``"matched"`` or a
        :data:`TDL_BAIL_REASONS` key."""
        entry = self._pattern(pattern_name)
        entry["attempted"] += 1
        if reason == "matched":
            entry["matched"] += 1
        else:
            entry["bailed"] += 1
            reasons = entry["bail_reasons"]
            reasons[reason] = reasons.get(reason, 0) + 1

    # -- synthesis tier ------------------------------------------------

    def record_synth_bail(self, reason: str) -> None:
        self.synth_nests_attempted += 1
        self.synth_nests_bailed += 1
        self.bail_reasons[reason] = self.bail_reasons.get(reason, 0) + 1

    def record_synth_raise(self, op_name: str) -> None:
        self.synth_nests_attempted += 1
        self.synth_nests_raised += 1
        self.raised_ops[op_name] = self.raised_ops.get(op_name, 0) + 1

    # -- reporting -----------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready view with deterministic key order."""
        return {
            "tdl": {
                name: {
                    "attempted": entry["attempted"],
                    "matched": entry["matched"],
                    "bailed": entry["bailed"],
                    "bail_reasons": dict(
                        sorted(entry["bail_reasons"].items())
                    ),
                }
                for name, entry in sorted(self.patterns.items())
            },
            "synth": {
                "nests_attempted": self.synth_nests_attempted,
                "nests_raised": self.synth_nests_raised,
                "nests_bailed": self.synth_nests_bailed,
                "candidates_enumerated": self.candidates_enumerated,
                "candidates_pruned": self.candidates_pruned,
                "candidates_validated": self.candidates_validated,
                "candidates_rejected": self.candidates_rejected,
                "trials_run": self.trials_run,
                "raised_ops": dict(sorted(self.raised_ops.items())),
                "bail_reasons": dict(sorted(self.bail_reasons.items())),
            },
        }

    def merge(self, other: "RaiseStats") -> "RaiseStats":
        """Fold ``other`` into this instance (for multi-pass reports)."""
        for name, entry in other.patterns.items():
            mine = self._pattern(name)
            mine["attempted"] += entry["attempted"]
            mine["matched"] += entry["matched"]
            mine["bailed"] += entry["bailed"]
            for reason, count in entry["bail_reasons"].items():
                mine["bail_reasons"][reason] = (
                    mine["bail_reasons"].get(reason, 0) + count
                )
        for field in (
            "synth_nests_attempted",
            "synth_nests_raised",
            "synth_nests_bailed",
            "candidates_enumerated",
            "candidates_pruned",
            "candidates_validated",
            "candidates_rejected",
            "trials_run",
        ):
            setattr(self, field, getattr(self, field) + getattr(other, field))
        for key, count in other.raised_ops.items():
            self.raised_ops[key] = self.raised_ops.get(key, 0) + count
        for key, count in other.bail_reasons.items():
            self.bail_reasons[key] = self.bail_reasons.get(key, 0) + count
        return self

    def __repr__(self) -> str:
        return (
            f"RaiseStats(tdl_patterns={len(self.patterns)}, "
            f"synth_raised={self.synth_nests_raised}/"
            f"{self.synth_nests_attempted})"
        )
