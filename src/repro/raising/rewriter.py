"""Materialize synthesis candidates as IR and apply them as rewrites.

Two entry points:

* :func:`materialize_candidate` — build the candidate op over a given
  list of array SSA values (parallel to ``summary.arrays``).  Used both
  by the equivalence checker (over fresh function arguments) and the
  rewrite (over the original memrefs).
* :func:`apply_candidate` — replace the original nest with the
  validated candidate via a :class:`~..ir.PatternRewriter`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..dialects import linalg as linalg_d
from ..dialects import std
from ..dialects.affine import AffineLoadOp, AffineStoreOp
from ..ir import Operation, PatternRewriter, Value
from ..ir import affine_expr as ae
from ..ir.affine_map import AffineMap
from .enumerator import Candidate
from .nest import NestSummary


def candidate_maps(
    candidate: Candidate, summary: NestSummary
) -> List[AffineMap]:
    """Indexing maps (inputs then output) for a generic candidate."""
    assert candidate.assignments is not None
    num_dims = summary.depth
    maps = []
    for assignment in candidate.assignments:
        exprs = [
            ae.constant(0) if sub is None else ae.dim(sub)
            for sub in assignment
        ]
        maps.append(AffineMap(num_dims, 0, exprs))
    return maps


def candidate_iterator_types(
    candidate: Candidate, summary: NestSummary
) -> List[str]:
    assert candidate.assignments is not None
    out_dims = {
        sub for sub in candidate.assignments[-1] if sub is not None
    }
    return [
        "parallel" if d in out_dims else "reduction"
        for d in range(summary.depth)
    ]


def _fill_mac_body(op: linalg_d.GenericOp, subtract: bool) -> None:
    block = op.body
    a, b, acc = block.arguments
    mul = block.append(std.MulFOp.create(a, b))
    combine = (std.SubFOp if subtract else std.AddFOp).create(
        acc, mul.result
    )
    block.append(combine)
    block.append(linalg_d.LinalgYieldOp.create([combine.result]))


def _fill_clone_body(
    op: linalg_d.GenericOp, candidate: Candidate, summary: NestSummary
) -> None:
    """Replay the payload's scalar ops inside the generic body: input
    loads become input block args, accumulator loads become the output
    block arg, and the stored value is yielded."""
    block = op.body
    value_map: Dict[Value, Value] = {}
    for pos, load_index in enumerate(candidate.input_loads):
        value_map[summary.loads[load_index].result] = block.arguments[pos]
    out_arg = block.arguments[len(candidate.input_loads)]
    for load in summary.accumulator_loads():
        value_map[load.result] = out_arg
    for payload_op in summary.payload:
        if isinstance(payload_op, (AffineLoadOp, AffineStoreOp)):
            continue
        block.append(payload_op.clone(value_map))
    store = summary.store
    assert store is not None
    yielded = value_map.get(store.value, store.value)
    block.append(linalg_d.LinalgYieldOp.create([yielded]))


def materialize_candidate(
    candidate: Candidate,
    summary: NestSummary,
    arrays: Sequence[Value],
) -> Operation:
    """Build the candidate op over ``arrays`` (parallel to
    ``summary.arrays``)."""
    out = arrays[candidate.output]
    ins = [arrays[i] for i in candidate.inputs]
    if candidate.op_name == "linalg.matmul":
        return linalg_d.MatmulOp.create(ins[0], ins[1], out)
    if candidate.op_name == "linalg.matvec":
        return linalg_d.MatvecOp.create(
            ins[0], ins[1], out, trans=candidate.trans
        )
    op = linalg_d.GenericOp.create(
        inputs=ins,
        outputs=[out],
        indexing_maps=candidate_maps(candidate, summary),
        iterator_types=candidate_iterator_types(candidate, summary),
    )
    if candidate.body in ("mac-add", "mac-sub"):
        _fill_mac_body(op, subtract=candidate.body == "mac-sub")
    else:
        _fill_clone_body(op, candidate, summary)
    return op


def apply_candidate(
    candidate: Candidate,
    summary: NestSummary,
    rewriter: PatternRewriter,
) -> Operation:
    """Replace the summarized nest with the candidate op in place."""
    rewriter.set_insertion_point_before(summary.root)
    op = rewriter.insert(
        materialize_candidate(candidate, summary, summary.arrays)
    )
    rewriter.erase_nest(summary.root)
    return op
