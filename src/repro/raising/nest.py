"""Nest summarization for synthesis-based raising.

Before any candidate is proposed, the nest under consideration is
distilled into a :class:`NestSummary`: the perfect band, its extents,
the arrays it touches (live-in/live-out), and its scalar payload.  A
nest the synthesizer cannot reason about is rejected *here*, with a
stable bail reason from :data:`~.stats.SYNTH_BAIL_REASONS` — the
enumerator and oracle only ever see well-formed summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..analysis.accesses import MemoryAccess, access_function
from ..dialects.affine import (
    AffineForOp,
    AffineLoadOp,
    AffineStoreOp,
    perfect_nest,
)
from ..ir import Operation, Value

#: Scalar payload ops the synthesizer understands.  Anything else in
#: the innermost block (calls, integer arithmetic, raw pointers) makes
#: the nest ineligible — the oracle could not faithfully replay it on
#: a candidate's body.
SAFE_PAYLOAD_OPS = frozenset(
    {
        "affine.load",
        "affine.store",
        "std.constant",
        "std.addf",
        "std.subf",
        "std.mulf",
        "std.divf",
        "std.maxf",
        "std.negf",
        "std.cmpf",
        "std.select",
    }
)


@dataclass
class NestSummary:
    """Everything the enumerator needs to know about one affine band."""

    band: List[AffineForOp]
    extents: List[int]
    #: Distinct memrefs in first-touch order (reads and writes).
    arrays: List[Value]
    #: Arrays read (in ``arrays`` order).
    live_in: List[Value]
    #: Arrays written (in ``arrays`` order); exactly one store op, so
    #: exactly one element today.
    live_out: List[Value]
    #: Innermost-block operations, in program order.
    payload: List[Operation]
    loads: List[AffineLoadOp] = field(default_factory=list)
    store: Optional[AffineStoreOp] = None
    #: Decomposed access per load/store op id.
    accesses: Dict[int, MemoryAccess] = field(default_factory=dict)

    @property
    def depth(self) -> int:
        return len(self.band)

    @property
    def root(self) -> AffineForOp:
        return self.band[0]

    def array_shape(self, array: Value) -> Tuple[int, ...]:
        return tuple(array.type.shape)

    def iv_position(self, iv: Value) -> Optional[int]:
        for pos, loop in enumerate(self.band):
            if loop.induction_var is iv:
                return pos
        return None

    def observed_dims(self, array: Value) -> frozenset:
        """Band-dim positions this array's accesses actually use — the
        abstract access pattern the pruner compares candidates against.
        """
        dims = set()
        for access in self.accesses.values():
            if access.memref is not array:
                continue
            for sub in access.subscripts:
                for iv in sub.coeffs:
                    pos = self.iv_position(iv)
                    if pos is not None:
                        dims.add(pos)
        return frozenset(dims)

    def store_access(self) -> MemoryAccess:
        return self.accesses[id(self.store)]

    def accumulator_loads(self) -> List[AffineLoadOp]:
        """Loads that read exactly the element the store writes."""
        store_access = self.store_access()
        return [
            load
            for load in self.loads
            if self.accesses[id(load)].same_element(store_access)
        ]


def summarize_nest(root: AffineForOp) -> Union[NestSummary, str]:
    """Summarize the band rooted at ``root``; a ``str`` is a bail
    reason (:data:`~.stats.SYNTH_BAIL_REASONS` key)."""
    band = perfect_nest(root)
    payload = band[-1].ops_in_body()
    # perfect_nest stops at the first block with more than one op; a
    # loop in *that* block means the nest is imperfect, not scalar.
    if any(isinstance(op, AffineForOp) for op in payload):
        return "imperfect-nest"

    extents: List[int] = []
    for loop in band:
        trip = loop.constant_trip_count()
        if trip is None:
            return "unsupported-bounds"
        if loop.constant_lower_bound() != 0 or loop.step != 1:
            return "unsupported-bounds"
        extents.append(trip)

    loads: List[AffineLoadOp] = []
    stores: List[AffineStoreOp] = []
    accesses: Dict[int, MemoryAccess] = {}
    band_ids = {id(loop.induction_var) for loop in band}
    defined = set(band_ids)
    for op in payload:
        if op.name not in SAFE_PAYLOAD_OPS:
            return "unsupported-payload"
        if isinstance(op, (AffineLoadOp, AffineStoreOp)):
            access = access_function(op)
            if access is None:
                return "non-affine-access"
            accesses[id(op)] = access
            (loads if isinstance(op, AffineLoadOp) else stores).append(op)
        # Every non-memref scalar operand must come from the payload or
        # a band IV; a value flowing in from outside the nest cannot be
        # replayed inside a candidate op's body.
        for operand in op.operands:
            if operand is getattr(op, "memref", None):
                continue
            if id(operand) in defined:
                continue
            owner = operand.defining_op
            if owner is None or owner not in payload:
                return "external-value"
        for result in op.results:
            defined.add(id(result))

    if len(stores) != 1:
        return "store-count"
    store = stores[0]

    arrays: List[Value] = []
    for op in [*loads, store]:
        memref = accesses[id(op)].memref
        if memref not in arrays:
            arrays.append(memref)
    live_in = [
        a
        for a in arrays
        if any(
            accesses[id(load)].memref is a for load in loads
        )
    ]
    live_out = [a for a in arrays if accesses[id(store)].memref is a]

    return NestSummary(
        band=band,
        extents=extents,
        arrays=arrays,
        live_in=live_in,
        live_out=live_out,
        payload=payload,
        loads=loads,
        store=store,
        accesses=accesses,
    )
