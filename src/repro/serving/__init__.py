"""Compilation-as-a-service: a persistent compile/execute server.

The one-shot drivers (``mlt-opt``, the batch runner, the fuzz
campaign) pay interpreter start-up, cache attachment, and pool fork
for every invocation.  This package keeps all of that alive behind a
socket: a long-lived asyncio server over the execution engine's
kernel caches, with per-tenant namespaces, coalescing of identical
in-flight work, request batching onto the persistent worker pool,
and admission control.  See ``docs/serving.md``.
"""

from .client import ServeClient, ServeError  # noqa: F401
from .protocol import (  # noqa: F401
    ERROR_CODES,
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    REQUEST_OPS,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    read_message,
    write_message,
)
from .server import CompileServer, ServerConfig, run_server  # noqa: F401
from .units import (  # noqa: F401
    BadRequest,
    configure_serving,
    normalize_request,
    reset_serving_state,
    serve_unit,
    serving_cache_snapshots,
    tenant_dir,
)
