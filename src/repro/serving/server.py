"""Compilation-as-a-service front-end.

A :class:`CompileServer` keeps one process-lifetime compilation state —
per-tenant kernel caches, the hot-kernel map, and (when ``jobs > 0``) a
persistent worker pool — behind an asyncio NDJSON endpoint, so clients
pay codegen once and every later request is a cache or hot-map hit.

Request lifecycle::

    read -> admission control -> coalesce -> batch -> run -> respond

* **Admission control** — at most ``max_pending`` units may be queued
  or running; beyond that, requests are shed immediately with an
  ``overloaded`` error instead of growing an unbounded queue.  Shed
  responses cost microseconds, so a client retry loop degrades
  gracefully instead of timing out.
* **Coalescing** — concurrent requests for the same ``(tenant, module
  key, seed, entry function)`` share one in-flight compilation: the
  first becomes the *leader*, the rest await its future and are
  answered from the same result.  A thundering herd of N identical
  cold requests runs codegen exactly once.
* **Batching** — in pool mode, admitted units gather for a short
  window (``batch_window_s``) and ship to the persistent pool as one
  batched schedule, amortizing queue round-trips; the pool's
  work-stealing spreads the batch across workers.
* **Tenant isolation** — unit work for one tenant is serialized per
  key *shard* (``shards`` asyncio locks per tenant), bounding
  duplicated codegen for near-identical keys while letting distinct
  tenants and distinct shards proceed concurrently.

Shutdown is a drain: new work is refused with ``shutting-down``,
everything queued or in flight completes and is answered, then the
listener closes.  A pool-worker crash fails only the units that were
lost — the pool respawns the worker and the server answers those
requests with a ``worker-crash`` error instead of hanging the client.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..runtime.pool import WorkerCrashError, get_pool, pool_stats
from . import protocol
from .units import (
    BadRequest,
    configure_serving,
    is_hot,
    normalize_request,
    serve_unit,
    serving_cache_snapshots,
)


@dataclass
class ServerConfig:
    """Tuning knobs for one :class:`CompileServer`."""

    #: Cache root; tenants namespace themselves under
    #: ``<cache_dir>/tenants/<tenant>/``.  ``None`` disables the disk
    #: tier (in-memory caches only).
    cache_dir: Optional[str] = None
    #: ``0`` runs units inline on executor threads of this process;
    #: ``N > 0`` ships batches to a persistent ``N``-worker pool.
    jobs: int = 0
    #: Admission bound: queued + running units; excess requests are
    #: shed with an ``overloaded`` error.
    max_pending: int = 256
    #: Pool mode: how long admitted units gather before shipping as
    #: one batch.  Zero ships every unit alone.
    batch_window_s: float = 0.002
    #: Per-tenant lock shards for inline mode.
    shards: int = 16
    default_tenant: str = "default"
    default_tile: int = 32
    #: Honor ``debug_delay_s``/``debug_crash`` request fields (test
    #: seams for the concurrency suite); never enable in production.
    allow_debug: bool = False


class CompileServer:
    """One serving endpoint over one compilation state."""

    def __init__(self, config: Optional[ServerConfig] = None):
        self.config = config or ServerConfig()
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self._stopped = asyncio.Event()
        self._pending = 0
        self._idle = asyncio.Event()
        self._idle.set()
        # Coalescing table: unit identity -> the leader's result
        # future (see :meth:`_run_coalesced` for the key shape).
        self._inflight: Dict[tuple, asyncio.Future] = {}
        self._shutdown_started = False
        self._shutdown_task: Optional[asyncio.Task] = None
        # tenant -> shard locks (inline mode serializes per shard).
        self._tenant_locks: Dict[str, List[asyncio.Lock]] = {}
        # Open connections and outstanding request tasks, so shutdown
        # can flush every response and then close every transport.
        self._connections: set = set()
        self._conn_tasks: set = set()
        self._request_tasks: set = set()
        self._batch_queue: Optional[asyncio.Queue] = None
        self._batcher_task: Optional[asyncio.Task] = None
        # Pool .map blocks, so it runs on this single-thread bridge;
        # one thread also serializes batches, matching pool.map's own
        # internal lock.
        self._pool_bridge: Optional[
            concurrent.futures.ThreadPoolExecutor
        ] = None
        self.counters = {
            "connections": 0,
            "received": 0,
            "completed": 0,
            "errors": 0,
            "shed": 0,
            "coalesced": 0,
            "batches": 0,
            "batched_units": 0,
            "worker_crashes": 0,
        }
        self._started = time.monotonic()
        configure_serving(self.config.cache_dir)

    # -- lifecycle ------------------------------------------------------

    async def start_unix(self, path: str) -> None:
        self._prepare()
        self._server = await asyncio.start_unix_server(
            self._handle_connection,
            path=path,
            limit=protocol.MAX_MESSAGE_BYTES,
        )

    async def start_tcp(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._prepare()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=host,
            port=port,
            limit=protocol.MAX_MESSAGE_BYTES,
        )

    def _prepare(self) -> None:
        if self.config.jobs > 0:
            self._batch_queue = asyncio.Queue()
            self._batcher_task = asyncio.get_running_loop().create_task(
                self._batcher()
            )
            self._pool_bridge = concurrent.futures.ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="mlt-serve-pool"
            )
            # Fork workers before traffic so the first burst is not
            # also paying pool start-up.
            get_pool(self.config.jobs)

    @property
    def sockets(self):
        return self._server.sockets if self._server else ()

    def port(self) -> int:
        return self.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until a ``shutdown`` request (or :meth:`shutdown`)."""
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful drain; idempotent."""
        if self._shutdown_started:
            await self._stopped.wait()
            return
        self._shutdown_started = True
        self._draining = True
        await self._idle.wait()  # queued + in-flight units finish
        # Flush: every admitted request has written its response.
        if self._request_tasks:
            await asyncio.gather(
                *list(self._request_tasks), return_exceptions=True
            )
        if self._batcher_task is not None:
            self._batch_queue.put_nowait(None)
            await self._batcher_task
            self._batcher_task = None
        if self._pool_bridge is not None:
            self._pool_bridge.shutdown(wait=True)
            self._pool_bridge = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Close lingering connections (handlers exit on the EOF) so no
        # task survives into event-loop teardown.
        for writer in list(self._connections):
            with contextlib.suppress(Exception):
                writer.close()
        if self._conn_tasks:
            await asyncio.gather(
                *list(self._conn_tasks), return_exceptions=True
            )
        self._stopped.set()

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.counters["connections"] += 1
        self._connections.add(writer)
        self._conn_tasks.add(asyncio.current_task())
        write_lock = asyncio.Lock()
        tasks: List[asyncio.Task] = []
        try:
            while True:
                try:
                    request = await protocol.read_message(reader)
                except protocol.ProtocolError as exc:
                    await self._respond(
                        writer,
                        write_lock,
                        protocol.error_response(
                            {}, "bad-request", str(exc)
                        ),
                    )
                    break
                if request is None:
                    break
                self.counters["received"] += 1
                # Cheap hot units answer synchronously right here: no
                # task, no future, no executor — the microseconds of
                # pinned compiled call aren't worth a scheduling
                # round-trip, and this is what keeps warm p50 within a
                # few multiples of the bare engine call.  Heavy hot
                # units fall through to the task path so their ms-scale
                # kernel calls never stall the loop.
                fast = self._try_fast_path(request)
                if fast is not None:
                    await self._respond(writer, write_lock, fast)
                    continue
                # Everything else is its own task so one slow compile
                # never blocks later (possibly cache-hot) requests
                # pipelined on the same connection.
                task = asyncio.get_running_loop().create_task(
                    self._serve_request(request, writer, write_lock)
                )
                tasks.append(task)
                self._request_tasks.add(task)
                task.add_done_callback(self._request_tasks.discard)
                tasks = [t for t in tasks if not t.done()]
        finally:
            for task in tasks:
                with contextlib.suppress(Exception):
                    await task
            self._connections.discard(writer)
            self._conn_tasks.discard(asyncio.current_task())
            with contextlib.suppress(Exception):
                writer.close()

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        response: dict,
    ) -> None:
        if response.get("ok"):
            self.counters["completed"] += 1
        else:
            self.counters["errors"] += 1
        with contextlib.suppress(ConnectionError, RuntimeError):
            async with write_lock:
                await protocol.write_message(writer, response)

    def _try_fast_path(self, request: dict) -> Optional[dict]:
        """Serve a cheap hot compile/execute unit synchronously, or
        ``None`` to fall through to the task-per-request slow path."""
        if (
            request.get("op") not in ("compile", "execute")
            or self.config.jobs > 0
            or self._draining
        ):
            return None
        try:
            spec = normalize_request(
                request,
                default_tenant=self.config.default_tenant,
                default_tile=self.config.default_tile,
                allow_debug=self.config.allow_debug,
            )
        except Exception:  # noqa: BLE001 — malformed fields can raise
            # more than BadRequest (e.g. unhashable types); the slow
            # path re-runs normalization and reports the error instead
            # of letting it escape the connection read loop.
            return None
        if spec.get("heavy") or spec.get("debug_delay_s") or not is_hot(spec):
            return None
        if not self._admit():
            return protocol.error_response(
                request,
                "overloaded",
                f"{self._pending} units pending (max "
                f"{self.config.max_pending})",
            )
        try:
            result = serve_unit(spec)
        except Exception as exc:  # noqa: BLE001 — reported to client
            return protocol.error_response(
                request, "compile-error", f"{type(exc).__name__}: {exc}"
            )
        finally:
            self._release()
        return protocol.ok_response(request, coalesced=False, **result)

    async def _serve_request(
        self,
        request: dict,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        try:
            response = await self._dispatch(request)
        except Exception as exc:  # noqa: BLE001 — never kill the task
            response = protocol.error_response(
                request, "internal", f"{type(exc).__name__}: {exc}"
            )
        if response is not None:
            await self._respond(writer, write_lock, response)

    async def _dispatch(self, request: dict) -> Optional[dict]:
        op = request.get("op")
        if op == "ping":
            return protocol.ok_response(
                request, version=protocol.PROTOCOL_VERSION
            )
        if op == "stats":
            return protocol.ok_response(request, stats=self.stats())
        if op == "shutdown":
            # Flip the drain flag *now* so requests racing behind this
            # one are refused, then finish the drain in the background
            # and answer once everything queued has been served.
            self._draining = True
            # Strong reference: asyncio only weakly references tasks,
            # so an unstored drain task could be collected mid-drain.
            self._shutdown_task = asyncio.get_running_loop().create_task(
                self.shutdown()
            )
            return protocol.ok_response(request, draining=True)
        if op in ("compile", "execute"):
            return await self._serve_unit_request(request)
        if op == "prewarm":
            return await self._serve_prewarm(request)
        return protocol.error_response(
            request,
            "bad-request",
            f"unknown op {op!r}; known: {protocol.REQUEST_OPS}",
        )

    # -- unit serving ---------------------------------------------------

    def _admit(self) -> bool:
        if self._pending >= self.config.max_pending:
            self.counters["shed"] += 1
            return False
        self._pending += 1
        self._idle.clear()
        return True

    def _release(self) -> None:
        self._pending -= 1
        if self._pending == 0:
            self._idle.set()

    async def _serve_unit_request(self, request: dict) -> dict:
        if self._draining:
            return protocol.error_response(
                request, "shutting-down", "server is draining"
            )
        try:
            spec = normalize_request(
                request,
                default_tenant=self.config.default_tenant,
                default_tile=self.config.default_tile,
                allow_debug=self.config.allow_debug,
            )
        except BadRequest as exc:
            return protocol.error_response(request, "bad-request", str(exc))
        if not self._admit():
            return protocol.error_response(
                request,
                "overloaded",
                f"{self._pending} units pending (max "
                f"{self.config.max_pending})",
            )
        try:
            result, coalesced = await self._run_coalesced(spec)
        except BadRequest as exc:
            return protocol.error_response(request, "bad-request", str(exc))
        except WorkerCrashError as exc:
            return protocol.error_response(
                request, "worker-crash", str(exc)
            )
        except Exception as exc:  # noqa: BLE001 — reported to client
            return protocol.error_response(
                request, "compile-error", f"{type(exc).__name__}: {exc}"
            )
        finally:
            self._release()
        return protocol.ok_response(
            request, coalesced=coalesced, **result
        )

    async def _run_coalesced(self, spec: dict) -> Tuple[dict, bool]:
        """Run one unit, sharing identical in-flight work.

        Coalescing keys on the content identity ``(tenant, mkey)``; an
        ``execute`` only joins an in-flight ``execute`` with the same
        seed (a compile-only leader has no checksums to share).  The
        entry function is part of the key: a multi-function module can
        be executed (and hot-pinned) per function, so followers must
        not receive checksums for a different ``func``.
        """
        key = (
            spec["tenant"],
            spec["mkey"],
            spec["execute"],
            spec["seed"] if spec["execute"] else 0,
            spec["warm_hot"],
            spec.get("func"),
        )
        existing = self._inflight.get(key)
        if existing is not None:
            self.counters["coalesced"] += 1
            result = dict(await asyncio.shield(existing))
            result["cached"] = "coalesced"
            return result, True
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            result = await self._run_unit(spec)
        except BaseException as exc:
            if not future.cancelled():
                future.set_exception(exc)
                # Consume the exception in case nobody coalesced.
                future.exception()
            raise
        else:
            future.set_result(result)
            return result, False
        finally:
            self._inflight.pop(key, None)

    async def _run_unit(self, spec: dict) -> dict:
        if self.config.jobs > 0:
            return await self._run_in_pool(spec)
        # Cheap hot units (pinned compiled call, no parsing or hashing)
        # run directly on the loop — microseconds of work, and skipping
        # the executor round-trip is what keeps warm p50 within a few
        # multiples of the bare in-process call.  Heavy units (ms-scale
        # kernels) would stall every other connection, so even hot they
        # go to the executor (no shard lock: the hot path touches no
        # cache that needs serializing).
        loop = asyncio.get_running_loop()
        if not spec.get("debug_delay_s") and is_hot(spec):
            if not spec.get("heavy"):
                return serve_unit(spec)
            return await loop.run_in_executor(None, serve_unit, spec)
        async with self._shard_lock(spec["tenant"], spec["mkey"]):
            return await loop.run_in_executor(None, serve_unit, spec)

    def _shard_lock(self, tenant: str, mkey: str) -> asyncio.Lock:
        locks = self._tenant_locks.get(tenant)
        if locks is None:
            locks = [asyncio.Lock() for _ in range(self.config.shards)]
            self._tenant_locks[tenant] = locks
        return locks[int(mkey[:8], 16) % self.config.shards]

    # -- pool mode: micro-batching -------------------------------------

    async def _run_in_pool(self, spec: dict) -> dict:
        future = asyncio.get_running_loop().create_future()
        self._batch_queue.put_nowait((spec, future))
        return await future

    async def _batcher(self) -> None:
        """Gather admitted units for one batch window, ship to the
        persistent pool, fan results back out to request futures."""
        loop = asyncio.get_running_loop()
        while True:
            first = await self._batch_queue.get()
            if first is None:
                return
            batch = [first]
            if self.config.batch_window_s > 0:
                deadline = loop.time() + self.config.batch_window_s
                while True:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        item = await asyncio.wait_for(
                            self._batch_queue.get(), remaining
                        )
                    except asyncio.TimeoutError:
                        break
                    if item is None:
                        await self._ship(batch)
                        return
                    batch.append(item)
            await self._ship(batch)

    async def _ship(self, batch) -> None:
        specs = [spec for spec, _ in batch]
        self.counters["batches"] += 1
        self.counters["batched_units"] += len(specs)
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(
                self._pool_bridge, self._pool_map, specs
            )
        except BaseException as exc:  # noqa: BLE001 — fanned out
            if isinstance(exc, WorkerCrashError):
                self.counters["worker_crashes"] += 1
            for _, future in batch:
                if not future.done():
                    future.set_exception(_copy_exception(exc))
            return
        for (_, future), result in zip(batch, results):
            if not future.done():
                future.set_result(result)

    def _pool_map(self, specs: List[dict]) -> List[dict]:
        return get_pool(self.config.jobs).map(
            serve_unit,
            specs,
            initializer=configure_serving,
            initargs=(self.config.cache_dir,),
        )

    async def _serve_prewarm(self, request: dict) -> dict:
        """Compile a list of corpus kernels and pin them hot."""
        if self._draining:
            return protocol.error_response(
                request, "shutting-down", "server is draining"
            )
        kernels = request.get("kernels")
        if not isinstance(kernels, list) or not kernels:
            return protocol.error_response(
                request,
                "bad-request",
                "prewarm needs a non-empty 'kernels' list",
            )
        warmed, failed = [], {}
        for entry in kernels:
            if isinstance(entry, str):
                entry = {"kernel": entry}
            sub = dict(request, **entry)
            sub["op"] = "compile"
            sub["warm_hot"] = True
            sub.pop("kernels", None)
            response = await self._serve_unit_request(sub)
            if response.get("ok"):
                warmed.append(response["key"])
            else:
                failed[str(entry.get("kernel"))] = response["error"]
        if failed:
            return protocol.error_response(
                request,
                "compile-error",
                f"prewarm failed for {sorted(failed)}",
                warmed=warmed,
                failures=failed,
            )
        return protocol.ok_response(request, warmed=warmed)

    # -- stats ----------------------------------------------------------

    def stats(self) -> dict:
        report = {
            "uptime_s": time.monotonic() - self._started,
            "pending": self._pending,
            "draining": self._draining,
            "config": {
                "jobs": self.config.jobs,
                "max_pending": self.config.max_pending,
                "batch_window_s": self.config.batch_window_s,
                "cache_dir": self.config.cache_dir,
            },
            "counters": dict(self.counters),
            "pool": pool_stats(),
        }
        if self.config.jobs == 0:
            report["tenants"] = serving_cache_snapshots()
        return report


def _copy_exception(exc: BaseException) -> BaseException:
    """One exception instance per awaiting future.

    Sharing a single instance across futures is legal but makes
    tracebacks confusing; a cheap pickle round-trip gives each future
    its own copy, falling back to the shared instance for exotic
    unpicklable exceptions.
    """
    try:
        return pickle.loads(pickle.dumps(exc))
    except Exception:  # noqa: BLE001
        return exc


async def run_server(
    config: ServerConfig,
    socket_path: Optional[str] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    prewarm: Optional[List[dict]] = None,
    ready_callback=None,
) -> None:
    """Start a server, announce the endpoint, and serve until drained.

    ``prewarm`` compiles a list of corpus-kernel entries (dicts with
    ``kernel`` + optional ``pipeline``) and pins them hot before the
    endpoint is announced ready.
    """
    server = CompileServer(config)
    if socket_path:
        await server.start_unix(socket_path)
        endpoint = socket_path
    else:
        await server.start_tcp(host, port)
        endpoint = f"{host}:{server.port()}"
    if prewarm:
        response = await server._serve_prewarm(
            {"op": "prewarm", "kernels": list(prewarm)}
        )
        if not response.get("ok"):
            raise RuntimeError(f"prewarm failed: {response.get('error')}")
    if ready_callback is not None:
        ready_callback(server, endpoint)
    try:
        await server.serve_forever()
    finally:
        if socket_path and os.path.exists(socket_path):
            with contextlib.suppress(OSError):
                os.unlink(socket_path)
