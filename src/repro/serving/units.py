"""The compile/execute work unit behind every serving request.

This layer is deliberately free of asyncio so the same function serves
three callers:

* the server's **inline** mode (``jobs=0``), which runs units on
  executor threads of the event loop process;
* the **persistent pool** mode, where units ship to long-lived worker
  processes (:mod:`repro.runtime.pool`) as batched schedules;
* the benchmark's **bare-call baseline**, which times ``serve_unit``
  directly to price the socket + protocol overhead against it.

State model — all module-global so pool workers keep their caches
across batch generations:

* ``configure_serving(root)`` pins the cache root (the pool's
  per-generation initializer re-applies it; re-application is cheap
  and keeps the registries).
* Per-tenant caches live under ``<root>/tenants/<tenant>/`` — a
  *namespace*: two tenants never share artifacts even for identical
  kernels, and two servers pointed at one root but different tenants
  can never cross-serve each other's kernels.
* The **hot-kernel map** pins ``(compiled function, argument shapes)``
  for served kernels, so a warm ``execute`` touches no IR at all —
  no parse, no fingerprint, just input synthesis and the kernel call.
"""

from __future__ import annotations

import hashlib
import os
import re
import threading
import time
from collections import OrderedDict
from typing import Dict, Optional, Tuple

_TENANT_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.-]{0,63}$")

#: Hot-kernel map bound: one entry is a compiled callable plus a shape
#: tuple, so a few hundred of them are cheap; beyond that, least
#: recently served entries fall back to the regular cache path.
HOT_MAX_ENTRIES = 1024

_LOCK = threading.Lock()
_SERVE_ROOT: Optional[str] = None
_TENANTS: Dict[Tuple[Optional[str], str], "TenantCaches"] = {}
_HOT: "OrderedDict[Tuple[Optional[str], str, str], tuple]" = OrderedDict()


class BadRequest(ValueError):
    """Request validation failure (maps to the ``bad-request`` code)."""


class TenantCaches:
    """One tenant's cache namespace: kernel + module + schedule tiers."""

    def __init__(self, root: Optional[str], tenant: str):
        from ..execution.engine.cache import KernelCache
        from ..ir import PassResultCache

        self.tenant = tenant
        self.kernel_cache = KernelCache()
        self.module_cache = None
        self.schedule_cache = None
        # Function-granular pass results: a cold compile of a unit that
        # shares functions with an already-served one only runs passes
        # on the genuinely new functions.  Tenant-namespaced like every
        # other tier (cached results splice printed IR back in).
        self.pass_cache = PassResultCache()
        if root:
            base = tenant_dir(root, tenant)
            self.kernel_cache.attach_disk(os.path.join(base, "kernels"))
            self.pass_cache.attach_disk(base)
            from ..execution.engine.disk_cache import DiskKernelCache
            from ..scheduling.autotune import ScheduleCache

            self.module_cache = DiskKernelCache(
                os.path.join(base, "modules")
            )
            # Best-schedule records for opt_mode="tuned": populate with
            # ``mlt-tune --cache-dir <root>/tenants/<tenant>``.
            self.schedule_cache = ScheduleCache(base)


def tenant_dir(root: str, tenant: str) -> str:
    """The on-disk namespace for one tenant under one cache root."""
    return os.path.join(root, "tenants", tenant)


def validate_tenant(tenant: str) -> str:
    if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
        raise BadRequest(
            "tenant must match [A-Za-z0-9_][A-Za-z0-9_.-]{0,63}"
        )
    return tenant


def configure_serving(root: Optional[str]) -> None:
    """Pin the cache root for this process (pool-worker initializer)."""
    global _SERVE_ROOT
    with _LOCK:
        _SERVE_ROOT = root


def reset_serving_state() -> None:
    """Drop every tenant cache and hot kernel (tests)."""
    global _SERVE_ROOT
    with _LOCK:
        _SERVE_ROOT = None
        _TENANTS.clear()
        _HOT.clear()


def _tenant_caches(tenant: str) -> TenantCaches:
    with _LOCK:
        root = _SERVE_ROOT
        key = (root, tenant)
        caches = _TENANTS.get(key)
        if caches is None:
            caches = TenantCaches(root, tenant)
            _TENANTS[key] = caches
        return caches


def _hot_get(tenant: str, mkey: str):
    with _LOCK:
        entry = _HOT.get((_SERVE_ROOT, tenant, mkey))
        if entry is not None:
            _HOT.move_to_end((_SERVE_ROOT, tenant, mkey))
        return entry


def is_hot(spec: dict) -> bool:
    """True when :func:`serve_unit` would take the hot-map fast path —
    no parse, no hashing, just the pinned compiled call.  The server
    uses this to run hot units directly on the event loop instead of
    paying an executor round-trip."""
    entry = _hot_get(spec["tenant"], spec["mkey"])
    if entry is None:
        return False
    if not spec["execute"]:
        return True
    return spec.get("func") == entry[3]


def _hot_put(tenant: str, mkey: str, entry: tuple) -> None:
    with _LOCK:
        _HOT[(_SERVE_ROOT, tenant, mkey)] = entry
        _HOT.move_to_end((_SERVE_ROOT, tenant, mkey))
        while len(_HOT) > HOT_MAX_ENTRIES:
            _HOT.popitem(last=False)


def serving_cache_snapshots() -> Dict[str, dict]:
    """Per-tenant cache statistics for this process (inline mode)."""
    with _LOCK:
        tenants = dict(_TENANTS)
        hot_total = len(_HOT)
    report = {}
    for (_, tenant), caches in tenants.items():
        report[tenant] = {
            "kernel_cache": caches.kernel_cache.snapshot(),
            "module_cache": caches.module_cache.stats.snapshot()
            if caches.module_cache is not None
            else None,
            "pass_cache": caches.pass_cache.snapshot(),
        }
    report["_hot_kernels"] = hot_total
    return report


# ----------------------------------------------------------------------
# Request normalization (runs server-side, before any queueing)
# ----------------------------------------------------------------------


def normalize_request(
    request: dict,
    default_tenant: str = "default",
    default_tile: int = 32,
    allow_debug: bool = False,
) -> dict:
    """Validate one compile/execute/prewarm-item request into a plain,
    picklable unit spec.

    The spec carries the *resolved* source text (corpus kernels are
    expanded here), so the coalescing key and the worker-side work are
    derived from identical bytes.
    """
    op = request.get("op")
    execute = op == "execute"
    tenant = validate_tenant(request.get("tenant", default_tenant))
    seed = request.get("seed", 0)
    if not isinstance(seed, int):
        raise BadRequest("seed must be an integer")
    tile = request.get("tile", default_tile)
    if not isinstance(tile, int) or tile <= 0:
        raise BadRequest("tile must be a positive integer")
    opt_mode = request.get("opt_mode", "full")
    from ..execution.engine.optimizer import OPT_MODES

    # "tuned" replays the persisted best schedule for the payload (if
    # the tenant's schedules/ namespace holds one) and falls back to
    # the canned full pipeline otherwise.
    if opt_mode not in OPT_MODES and opt_mode != "tuned":
        raise BadRequest(
            f"opt_mode must be one of {'|'.join(OPT_MODES)}|tuned"
        )

    spec = {
        "tenant": tenant,
        "execute": execute,
        "seed": seed,
        "tile": tile,
        "opt_mode": opt_mode,
        "warm_hot": bool(request.get("warm_hot", execute)),
    }

    if "kernel" in request:
        from ..evaluation import get_kernel

        name = request["kernel"]
        try:
            kernel = get_kernel(name)
        except (KeyError, ValueError) as exc:
            raise BadRequest(f"unknown kernel {name!r}") from exc
        pipeline = request.get("pipeline", "baseline")
        from ..evaluation.pipelines import MODULE_BUILDERS

        if pipeline not in MODULE_BUILDERS:
            raise BadRequest(
                f"unknown pipeline {pipeline!r}; "
                f"known: {sorted(MODULE_BUILDERS)}"
            )
        heavy = bool(request.get("heavy", False))
        spec.update(
            mode="corpus",
            kernel=name,
            source=kernel.large() if heavy else kernel.small(),
            pipeline=pipeline,
            func=request.get("func", kernel.func_name),
            # Heavy units run ~ms-scale kernels; the server keeps them
            # off the event loop even when hot.
            heavy=heavy,
        )
    elif "source" in request:
        source = request["source"]
        if not isinstance(source, str) or not source.strip():
            raise BadRequest("source must be non-empty text")
        passes = request.get("passes", [])
        if not isinstance(passes, list) or not all(
            isinstance(p, str) for p in passes
        ):
            raise BadRequest("passes must be a list of pass names")
        from ..tool import _pass_registry

        registry = _pass_registry()
        unknown = [p for p in passes if p not in registry]
        if unknown:
            raise BadRequest(
                f"unknown passes {unknown}; known: {sorted(registry)}"
            )
        kind = request.get("source_kind", "auto")
        if kind not in ("auto", "c", "ir"):
            raise BadRequest("source_kind must be auto|c|ir")
        func = request.get("func")
        if execute and not isinstance(func, str):
            raise BadRequest("execute of raw source needs a func name")
        spec.update(
            mode="source",
            source=source,
            passes=list(passes),
            source_kind=kind,
            func=func,
        )
    else:
        raise BadRequest(
            "request needs either a corpus kernel ('kernel' + "
            "'pipeline') or raw 'source' (+ 'passes')"
        )

    for debug_field in ("debug_delay_s", "debug_crash"):
        if request.get(debug_field):
            if not allow_debug:
                raise BadRequest(
                    f"{debug_field} requires a server started with "
                    "allow_debug"
                )
            spec[debug_field] = request[debug_field]

    spec["mkey"] = spec_module_key(spec)
    return spec


def spec_module_key(spec: dict) -> str:
    """Content identity of one unit — the coalescing and hot-map key.

    Mirrors the batch/bench keying so a served corpus kernel and a
    ``benchmarks.harness`` run of the same kernel agree on identity.
    """
    from ..runtime.batch import module_cache_key

    opt = spec.get("opt_mode", "full")
    if spec["mode"] == "corpus":
        return module_cache_key(
            spec["source"],
            [spec["pipeline"]],
            f"tile={spec['tile']}|opt={opt}",
        )
    return module_cache_key(
        spec["source"],
        spec["passes"],
        f"serve:{spec['source_kind']}|opt={opt}",
    )


# ----------------------------------------------------------------------
# The unit itself (runs inline on executor threads, or in pool workers)
# ----------------------------------------------------------------------


def _build_module(spec: dict, pass_cache=None):
    if spec["mode"] == "corpus":
        from ..evaluation.pipelines import build_module

        return build_module(
            spec["source"], spec["pipeline"], tile=spec["tile"]
        )
    from ..ir import verify
    from ..ir.parser import parse_module
    from ..tool import build_pipeline

    kind = spec["source_kind"]
    text = spec["source"]
    if kind == "auto":
        kind = "c" if "{" in text and "void" in text else "ir"
    if kind == "c":
        from ..met import compile_c

        module = compile_c(text)
    else:
        module = parse_module(text)
    pm = build_pipeline(spec["passes"])
    pm.pass_cache = pass_cache
    pm.run(module)
    verify(module, pm.context)
    return module


def _kernel_tag(spec: dict) -> str:
    from ..execution.engine.codegen import CODEGEN_VERSION

    if spec["mode"] == "corpus":
        pipeline = f"{spec['pipeline']}|tile={spec['tile']}"
    else:
        pipeline = ",".join(spec["passes"])
    opt = spec.get("opt_mode", "full")
    return f"serve:{pipeline}#cg={CODEGEN_VERSION}#opt={opt}"


def serve_unit(spec: dict) -> dict:
    """Compile (and optionally execute) one normalized unit spec.

    Pure function of (spec, cache contents): identical specs produce
    identical kernels and checksums whether they run inline, on any
    pool worker, serially, or cache-warm — the serving determinism
    tests assert exactly this.
    """
    start = time.perf_counter()
    if spec.get("debug_crash"):  # test seam: gated by allow_debug
        os._exit(3)
    if spec.get("debug_delay_s"):  # test seam: gated by allow_debug
        time.sleep(float(spec["debug_delay_s"]))

    tenant = spec["tenant"]
    mkey = spec["mkey"]
    func = spec.get("func")

    hot = _hot_get(tenant, mkey)
    if hot is not None:
        key, functions, shapes, hot_func = hot
        if not spec["execute"]:
            return _result(spec, key, "hot", None, start)
        if func == hot_func:
            checksums = _run(functions[hot_func], shapes, spec["seed"])
            return _result(spec, key, "hot", checksums, start)

    caches = _tenant_caches(tenant)
    module_cache = caches.module_cache
    opt_mode = spec.get("opt_mode", "full")
    schedule_tag = ""
    module = None
    if opt_mode == "tuned":
        # Tuned units key the transformation off the *pristine* payload
        # fingerprint, so they always rebuild the frontend module; the
        # expensive tier (codegen) still hits the per-tenant kernel
        # cache — keyed by the scheduled text — and warm traffic rides
        # the hot map, so only the first request per process pays.
        from ..execution.engine.cache import fingerprint_module
        from ..ir import print_module

        module = _build_module(spec, pass_cache=caches.pass_cache)
        record = (
            caches.schedule_cache.load(fingerprint_module(module))
            if caches.schedule_cache is not None
            else None
        )
        if record is not None and isinstance(record.get("schedule"), str):
            from ..ir.parser import parse_module
            from ..scheduling import apply_schedule

            apply_schedule(
                parse_module(record["schedule"]),
                module,
                pass_cache=caches.pass_cache,
            )
            schedule_tag = hashlib.sha256(
                record["schedule"].encode("utf-8")
            ).hexdigest()[:16]
        else:
            from ..execution.engine.optimizer import run_optimizer

            run_optimizer(module, "full", pass_cache=caches.pass_cache)
            schedule_tag = "default"
        text = print_module(module)
    else:
        text = (
            module_cache.load_text(mkey)
            if module_cache is not None
            else None
        )
        if text is None:
            from ..ir import print_module

            module = _build_module(spec, pass_cache=caches.pass_cache)
            # Optimize before printing so persisted module text — and
            # every kernel (cold or warm) derived from it — reflects
            # the mid-level optimizer's output.
            if opt_mode != "none":
                from ..execution.engine.optimizer import run_optimizer

                run_optimizer(
                    module, opt_mode, pass_cache=caches.pass_cache
                )
            text = print_module(module)
            if module_cache is not None:
                module_cache.store_text(mkey, text)

    from ..execution.engine.cache import KernelCache

    tag = _kernel_tag(spec)
    if schedule_tag:
        tag += f"#sched={schedule_tag}"
    key = KernelCache.key_for_text(
        hashlib.sha256(text.encode("utf-8")).hexdigest(), tag
    )
    built = {}

    def build_kernel(k: str):
        from ..execution.engine.codegen import compile_module
        from ..ir.parser import parse_module

        built["codegen"] = True
        return compile_module(
            parse_module(text) if module is None else module, k
        )

    compiled = caches.kernel_cache.get_or_compile_key(key, build_kernel)
    cached = "codegen" if built else "cache"
    if schedule_tag:
        spec = dict(spec, schedule_tag=schedule_tag)

    checksums = None
    if spec["execute"] or spec["warm_hot"]:
        from ..fuzzing.oracle import module_arg_shapes

        if module is None:
            from ..ir.parser import parse_module

            module = parse_module(text)
        run_func = func or module.functions[0].sym_name
        if module.lookup(run_func) is None:
            raise BadRequest(f"module has no function @{run_func}")
        shapes = module_arg_shapes(module, run_func)
        _hot_put(
            tenant, mkey, (key, compiled.functions, shapes, run_func)
        )
        if spec["execute"]:
            checksums = _run(
                compiled.functions[run_func], shapes, spec["seed"]
            )
    return _result(spec, key, cached, checksums, start)


def _run(kernel_fn, shapes, seed: int):
    from ..fuzzing.oracle import make_args

    args = make_args(shapes, seed)
    kernel_fn(*args)
    return [float(buf.sum()) for buf in args]


def _result(spec, key, cached, checksums, start) -> dict:
    result = {
        "key": key,
        "tenant": spec["tenant"],
        "cached": cached,
        "seconds": time.perf_counter() - start,
    }
    if spec.get("kernel"):
        result["kernel"] = spec["kernel"]
    if spec.get("schedule_tag"):
        # "default" = canned-full fallback; otherwise the first 16 hex
        # chars of the persisted schedule's text hash.
        result["schedule"] = spec["schedule_tag"]
    if checksums is not None:
        result["checksums"] = checksums
    return result
