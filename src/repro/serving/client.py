"""Asyncio client for the compile service.

One :class:`ServeClient` owns one connection and pipelines any number
of concurrent requests on it: every request gets an auto-assigned
``id``, a background reader task matches responses back to the awaiting
futures, so ``await asyncio.gather(*[client.execute(...) ...])`` is the
natural way to issue a burst.

Responses are returned as plain dicts (``ok``/``code``/result fields);
:meth:`ServeClient.check` converts an error response into a
:class:`ServeError` for callers that prefer exceptions.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, Optional

from . import protocol


class ServeError(RuntimeError):
    """An error response, as an exception (see ``code`` and ``response``)."""

    def __init__(self, response: dict):
        super().__init__(
            f"[{response.get('code')}] {response.get('error')}"
        )
        self.code = response.get("code")
        self.response = response


class ServeClient:
    """One pipelined NDJSON connection to a compile server."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ):
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._waiting: Dict[int, asyncio.Future] = {}
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )
        self._closed = False

    # -- connecting -----------------------------------------------------

    @classmethod
    async def connect_unix(cls, path: str) -> "ServeClient":
        reader, writer = await asyncio.open_unix_connection(
            path, limit=protocol.MAX_MESSAGE_BYTES
        )
        return cls(reader, writer)

    @classmethod
    async def connect_tcp(cls, host: str, port: int) -> "ServeClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_MESSAGE_BYTES
        )
        return cls(reader, writer)

    # -- plumbing -------------------------------------------------------

    async def _read_loop(self) -> None:
        error: Optional[BaseException] = None
        try:
            while True:
                response = await protocol.read_message(self._reader)
                if response is None:
                    break
                future = self._waiting.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (protocol.ProtocolError, ConnectionError, OSError) as exc:
            error = exc
        finally:
            failure = error or ConnectionError(
                "server closed the connection"
            )
            for future in self._waiting.values():
                if not future.done():
                    future.set_exception(failure)
            self._waiting.clear()

    async def request(self, message: dict) -> dict:
        """Send one request and await its matched response."""
        if self._closed:
            raise ConnectionError("client is closed")
        message = dict(message)
        message["id"] = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        self._waiting[message["id"]] = future
        await protocol.write_message(self._writer, message)
        return await future

    @staticmethod
    def check(response: dict) -> dict:
        if not response.get("ok"):
            raise ServeError(response)
        return response

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        await self._reader_task

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- convenience ops ------------------------------------------------

    async def ping(self) -> dict:
        return self.check(await self.request({"op": "ping"}))

    async def compile(self, **fields) -> dict:
        return await self.request({"op": "compile", **fields})

    async def execute(self, **fields) -> dict:
        return await self.request({"op": "execute", **fields})

    async def prewarm(self, kernels, **fields) -> dict:
        return await self.request(
            {"op": "prewarm", "kernels": list(kernels), **fields}
        )

    async def stats(self) -> dict:
        return self.check(await self.request({"op": "stats"}))["stats"]

    async def shutdown(self) -> dict:
        return self.check(await self.request({"op": "shutdown"}))
