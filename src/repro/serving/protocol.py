"""Wire protocol for the compile service: newline-delimited JSON.

One request per line, one response per line, over any byte stream
(asyncio TCP or unix-domain streams).  Requests are JSON objects with
an ``op`` field and an optional client-chosen ``id`` that the matching
response echoes, so a client may pipeline any number of requests on
one connection and match responses out of order.

Request ops
-----------

``ping``
    Liveness probe; counted in server stats but never queued.
``compile``
    Build one kernel through a pipeline into the tenant's cache.
    Either a *corpus* form (``kernel`` + ``pipeline`` [+ ``tile``,
    ``heavy``]) naming a paper benchmark, or a *source* form
    (``source`` + ``passes`` [+ ``source_kind``]) carrying raw C or
    textual IR through an ``mlt-opt``-style pass list.
``execute``
    ``compile`` plus one run of the compiled function on deterministic
    inputs derived from ``seed``; responds with per-argument checksums.
``prewarm``
    Batch-compile a list of corpus kernels into the tenant's cache and
    pin their parsed metadata hot, so later ``execute`` requests skip
    IR parsing entirely.
``stats``
    Server counters, per-tenant cache snapshots, pool statistics.
``shutdown``
    Graceful drain: queued and in-flight requests finish, new work is
    refused, then the server exits.

Responses carry ``ok`` (bool) and either result fields or ``error``
(human-readable) plus ``code`` (stable machine-readable string from
:data:`ERROR_CODES`).
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

#: Upper bound on one serialized message; a line longer than this is a
#: protocol error, not an allocation storm.
MAX_MESSAGE_BYTES = 8 * 1024 * 1024

PROTOCOL_VERSION = 1

REQUEST_OPS = (
    "ping",
    "compile",
    "execute",
    "prewarm",
    "stats",
    "shutdown",
)

#: Stable error codes clients may branch on.
ERROR_CODES = (
    "bad-request",    # malformed JSON, unknown op, invalid fields
    "overloaded",     # admission control shed the request
    "shutting-down",  # server is draining; no new work accepted
    "compile-error",  # frontend/pipeline/codegen raised
    "worker-crash",   # a pool worker died running this request
    "internal",       # unexpected server-side failure
)


class ProtocolError(ValueError):
    """Malformed frame: oversized line, bad JSON, or a non-object."""


def encode_message(message: dict) -> bytes:
    """Serialize one message to a single NDJSON line."""
    return json.dumps(message, sort_keys=True).encode("utf-8") + b"\n"


def decode_message(raw: bytes) -> dict:
    try:
        message = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad message frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(message).__name__}"
        )
    return message


async def read_message(reader: asyncio.StreamReader) -> Optional[dict]:
    """Read one message; ``None`` on a clean EOF.

    Raises :class:`ProtocolError` for oversized or malformed frames —
    the connection is poisoned at that point and should be closed.
    """
    try:
        raw = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-message") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("message exceeds MAX_MESSAGE_BYTES") from exc
    if len(raw) > MAX_MESSAGE_BYTES:
        raise ProtocolError("message exceeds MAX_MESSAGE_BYTES")
    return decode_message(raw)


async def write_message(
    writer: asyncio.StreamWriter, message: dict
) -> None:
    writer.write(encode_message(message))
    await writer.drain()


def ok_response(request: dict, **fields) -> dict:
    response = {"ok": True, "op": request.get("op")}
    if "id" in request:
        response["id"] = request["id"]
    response.update(fields)
    return response


def error_response(request: dict, code: str, message: str, **fields) -> dict:
    assert code in ERROR_CODES, code
    response = {
        "ok": False,
        "op": request.get("op"),
        "code": code,
        "error": message,
    }
    if "id" in request:
        response["id"] = request["id"]
    response.update(fields)
    return response
