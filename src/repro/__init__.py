"""Progressive Raising in Multi-level IR - Multi-Level Tactics.

A from-scratch Python reproduction of *Progressive Raising in
Multi-level IR* (Chelini, Drebes, Zinenko, Cohen, Vasilache, Grosser,
Corporaal - CGO 2021): a multi-level IR with progressive lowering *and*
declarative progressive raising from affine loop nests to linear-algebra
abstractions.

High-level entry points::

    from repro import met, tactics, transforms
    module = met.compile_c(source)                    # C -> Affine
    tactics.raise_affine_to_linalg(module)            # Affine -> Linalg
    transforms.lower_to_llvm(module)                  # Linalg -> ... -> LLVM
"""

__version__ = "1.0.0"

from . import ir  # noqa: F401
from . import dialects  # noqa: F401
