"""mlt-opt: the command-line driver (an ``mlir-opt`` lookalike).

Reads C or textual IR, runs a ``-``-flag pass pipeline, prints IR::

    python -m repro.tool kernel.c -raise-affine-to-linalg
    python -m repro.tool kernel.c -raise-affine-to-affine -emit-ir
    python -m repro.tool module.mlir -convert-linalg-to-blas -lower-to-llvm
    python -m repro.tool kernel.c -raise-affine-to-linalg -estimate=amd

The flag names match the paper (§V: ``-raise-affine-to-affine``,
``-raise-affine-to-linalg``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from .ir import Context, ModuleOp, Pass, PassManager, print_module, verify
from .ir.parser import ParseError, parse_module
from .met import CSyntaxError
from .met.c_lexer import CLexError


def _generic_raising_pass():
    from .tactics.generic_raising import GenericRaisingPass

    return GenericRaisingPass()


def _pass_registry(
    raise_mode: str = "tdl", tile_sizes: List[int] = None
) -> Dict[str, Callable[[], Pass]]:
    from .ir import LambdaPass
    from .raising import SynthRaisingPass
    from .tactics.chain import MatrixChainReorderPass
    from .tactics.raising import (
        RaiseAffineToAffinePass,
        RaiseAffineToLinalgPass,
    )
    from .transforms import (
        AffineToSCFPass,
        CanonicalizePass,
        CopyEliminationPass,
        DelinearizationPass,
        ExpandAffineMatmulPass,
        LinalgToAffinePass,
        LinalgToBlasPass,
        LoopDistributionPass,
        LoopFusionPass,
        LowerBlasToLLVMPass,
        SCFToAffinePass,
        SCFToLLVMPass,
        TileLoopNestPass,
    )

    return {
        "affine-loop-fusion": LoopFusionPass,
        "affine-copy-elimination": CopyEliminationPass,
        "affine-loop-distribution": LoopDistributionPass,
        "affine-delinearize": DelinearizationPass,
        "raise-scf-to-affine": SCFToAffinePass,
        "raise-affine-to-affine": RaiseAffineToAffinePass,
        "raise-affine-to-linalg": lambda: RaiseAffineToLinalgPass(
            raise_mode=raise_mode
        ),
        "raise-affine-synth": SynthRaisingPass,
        "raise-affine-to-generic": _generic_raising_pass,
        "linalg-matrix-chain-reorder": MatrixChainReorderPass,
        "convert-linalg-to-blas": LinalgToBlasPass,
        "convert-linalg-to-affine-loops": LinalgToAffinePass,
        "affine-expand-matmul": ExpandAffineMatmulPass,
        "affine-loop-tile": lambda: TileLoopNestPass(
            tile_sizes if tile_sizes else 32
        ),
        "canonicalize": CanonicalizePass,
        "lower-affine": AffineToSCFPass,
        "convert-scf-to-llvm": SCFToLLVMPass,
        "convert-blas-to-llvm": LowerBlasToLLVMPass,
    }


def load_input(path_or_dash: str, source_kind: str = "auto") -> ModuleOp:
    """Load a module from a .c file, a .mlir file, or stdin."""
    if path_or_dash == "-":
        text = sys.stdin.read()
        name = "<stdin>"
    else:
        with open(path_or_dash) as handle:
            text = handle.read()
        name = path_or_dash
    kind = source_kind
    if kind == "auto":
        if name.endswith(".c"):
            kind = "c"
        elif name.endswith((".mlir", ".ir")):
            kind = "ir"
        else:
            kind = "c" if "{" in text and "void" in text else "ir"
    if kind == "c":
        from .met import compile_c

        return compile_c(text)
    return parse_module(text)


def build_pipeline(
    pass_names: List[str],
    raise_mode: str = "tdl",
    tile_sizes: List[int] = None,
) -> PassManager:
    registry = _pass_registry(raise_mode, tile_sizes=tile_sizes)
    pm = PassManager(Context(), verify_each=False)
    for name in pass_names:
        if name not in registry:
            known = ", ".join(sorted(registry))
            raise SystemExit(
                f"mlt-opt: unknown pass '-{name}'; available: {known}"
            )
        pm.add(registry[name]())
    return pm


def main(argv: List[str] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)

    # Split off the -pass-name flags (anything except recognized options).
    pass_names: List[str] = []
    rest: List[str] = []
    registry = _pass_registry()
    for arg in argv:
        stripped = arg.lstrip("-")
        if arg.startswith("-") and stripped in registry:
            pass_names.append(stripped)
        else:
            rest.append(arg)

    parser = argparse.ArgumentParser(
        prog="mlt-opt",
        description="Multi-Level Tactics optimizer driver",
    )
    parser.add_argument(
        "input",
        nargs="+",
        help="input file(s) (.c or .mlir), or -; more than one input "
        "switches to batch mode (see --jobs/--out-dir)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="batch mode: worker processes (0 = one per CPU)",
    )
    parser.add_argument(
        "--out-dir",
        help="batch mode: write each result as <stem>.mlir here "
        "(default: print nothing, just compile)",
    )
    parser.add_argument(
        "--cache-dir",
        help="persistent compilation cache directory shared across "
        "processes and sessions (kernel + module artifacts)",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print kernel-cache statistics (memory + disk tiers) to "
        "stderr after the run",
    )
    parser.add_argument(
        "--compile",
        action="store_true",
        help="batch mode: also codegen each module through the shared "
        "kernel cache (warms --cache-dir for later --execute runs)",
    )
    parser.add_argument(
        "--pass-cache",
        nargs="?",
        const="",
        metavar="DIR",
        help="function-granular pass-result cache: skip passes whose "
        "result for an unchanged function is already cached.  DIR is "
        "the persistent root (defaults to --cache-dir when given "
        "bare); batch mode enables this automatically under "
        "--cache-dir",
    )
    parser.add_argument(
        "--no-pass-cache",
        action="store_true",
        help="batch mode: disable the function-granular pass cache",
    )
    parser.add_argument(
        "--pass-cache-stats",
        action="store_true",
        help="print pass-cache counters (hits/misses/spliced/"
        "executions, memory + disk tiers) to stderr after the run",
    )
    parser.add_argument(
        "--source",
        choices=["auto", "c", "ir"],
        default="auto",
        help="input kind (default: by file extension)",
    )
    parser.add_argument(
        "--no-verify", action="store_true", help="skip final verification"
    )
    parser.add_argument(
        "--timing",
        action="store_true",
        help="print per-pass timing (with a nested per-pattern breakdown "
        "for pattern-driver passes)",
    )
    parser.add_argument(
        "--driver",
        choices=["worklist", "snapshot"],
        default="worklist",
        help="greedy pattern driver (default: worklist; snapshot is the "
        "reference full-sweep driver)",
    )
    parser.add_argument(
        "--estimate",
        choices=["intel", "amd"],
        help="print a machine-model performance estimate",
    )
    parser.add_argument(
        "--execute",
        metavar="FUNC",
        help="run FUNC on random inputs after the pipeline and print "
        "output checksums",
    )
    parser.add_argument(
        "--engine",
        choices=["interpret", "compiled"],
        default="interpret",
        help="execution backend for --execute (default: interpret)",
    )
    parser.add_argument(
        "--exec-seed",
        type=int,
        default=0,
        help="RNG seed for --execute input buffers",
    )
    parser.add_argument(
        "--engine-stats",
        action="store_true",
        help="with --execute --engine compiled: print the vectorizer's "
        "codegen decisions (collapsed/partial/bailed nests, recognized "
        "contractions, LICM hoists, bail reasons) to stderr",
    )
    parser.add_argument(
        "--opt-mode",
        choices=["none", "fuse", "full"],
        default="none",
        help="with --execute --engine compiled: mid-level loop-optimizer "
        "pipeline run before codegen (fusion, copy-elim/DCE, "
        "distribution, cache-blocking tiling; default: none)",
    )
    parser.add_argument(
        "--opt-stats",
        action="store_true",
        help="with --execute --engine compiled: print the optimizer's "
        "per-stage OptStats taxonomy to stderr",
    )
    parser.add_argument(
        "--tile-sizes",
        help="comma-separated tile edges: drives -affine-loop-tile "
        "(per-depth, last repeats) and the --opt-mode tiling stage "
        "(first value; default: 32)",
    )
    parser.add_argument(
        "--raise-mode",
        choices=["tdl", "synth", "tdl+synth"],
        default="tdl",
        help="raising tier for -raise-affine-to-linalg: structural TDL "
        "matchers, enumerative synthesis, or TDL with synthesis as "
        "fallback (default: tdl)",
    )
    parser.add_argument(
        "--raise-stats",
        action="store_true",
        help="print the RaiseStats taxonomy (per-TDL-pattern "
        "attempted/matched/bailed + synthesis nest/candidate counters) "
        "to stderr after the pipeline",
    )
    parser.add_argument(
        "-o", "--output", default="-", help="output file (default stdout)"
    )
    args = parser.parse_args(rest)

    tile_sizes = None
    if args.tile_sizes:
        try:
            tile_sizes = [
                int(part) for part in args.tile_sizes.split(",") if part
            ]
        except ValueError:
            parser.error(f"--tile-sizes: not integers: {args.tile_sizes!r}")
        if not tile_sizes or any(size < 1 for size in tile_sizes):
            parser.error("--tile-sizes needs positive integers")

    if len(args.input) > 1:
        return _batch_main(args, pass_names)

    if args.cache_dir:
        from .execution import KERNEL_CACHE

        KERNEL_CACHE.attach_disk(args.cache_dir)

    try:
        module = load_input(args.input[0], args.source)
    except (CSyntaxError, CLexError, ParseError, OSError) as exc:
        sys.stderr.write(f"mlt-opt: {args.input[0]}: {exc}\n")
        return 1
    from .ir import set_default_driver

    set_default_driver(args.driver)
    pass_cache = _make_pass_cache(args, parser)
    pm = build_pipeline(
        pass_names, raise_mode=args.raise_mode, tile_sizes=tile_sizes
    )
    pm.pass_cache = pass_cache
    timing = pm.run(module)
    if not args.no_verify:
        verify(module, pm.context)
    if args.raise_stats:
        _print_raise_stats(pm)

    text = print_module(module)
    if args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w") as handle:
            handle.write(text)

    if args.timing:
        sys.stderr.write(timing.report() + "\n")
    if args.estimate:
        from .execution import AMD_2920X, INTEL_I9_9900K, CostModel

        machine = AMD_2920X if args.estimate == "amd" else INTEL_I9_9900K
        model = CostModel(machine)
        for func in module.functions:
            report = model.cost_function(func)
            sys.stderr.write(
                f"@{func.sym_name}: {report.seconds * 1e3:.3f} ms, "
                f"{report.gflops:.2f} GFLOP/s on {machine.name}\n"
            )
    if args.execute:
        try:
            _execute_module(
                module,
                args.execute,
                args.engine,
                args.exec_seed,
                engine_stats=args.engine_stats,
                opt_mode=args.opt_mode,
                opt_stats=args.opt_stats,
                tile_size=tile_sizes[0] if tile_sizes else None,
                pass_cache=pass_cache,
            )
        except Exception as exc:
            sys.stderr.write(f"mlt-opt: --execute: {exc}\n")
            return 1
    elif args.engine_stats or args.opt_stats:
        sys.stderr.write(
            "mlt-opt: --engine-stats/--opt-stats need --execute FUNC "
            "--engine compiled\n"
        )
    if args.cache_stats:
        _print_cache_stats()
    if args.pass_cache_stats:
        _print_pass_cache_stats(pass_cache)
    return 0


def _make_pass_cache(args, parser):
    """Build the pass-result cache requested by --pass-cache, if any."""
    if args.pass_cache is None:
        return None
    from .ir import PassResultCache

    cache = PassResultCache()
    root = args.pass_cache or args.cache_dir
    if args.pass_cache == "" and not args.cache_dir:
        parser.error("--pass-cache without DIR needs --cache-dir")
    cache.attach_disk(root)
    return cache


def _print_pass_cache_stats(pass_cache) -> None:
    import json

    if pass_cache is None:
        sys.stderr.write(
            "mlt-opt: --pass-cache-stats: no pass cache active "
            "(use --pass-cache [DIR])\n"
        )
        return
    sys.stderr.write(
        "mlt-opt: pass cache: "
        + json.dumps(pass_cache.snapshot(), sort_keys=True)
        + "\n"
    )


def _print_raise_stats(pm: PassManager) -> None:
    """Merge the RaiseStats of every raising pass in the pipeline and
    print the snapshot to stderr."""
    import json

    from .raising.stats import RaiseStats

    merged = RaiseStats()
    found = False
    for pass_ in pm.passes:
        stats = getattr(pass_, "raise_stats", None)
        if isinstance(stats, RaiseStats):
            merged.merge(stats)
            found = True
    if not found:
        sys.stderr.write(
            "mlt-opt: --raise-stats: no raising pass in the pipeline "
            "(use -raise-affine-to-linalg or -raise-affine-synth)\n"
        )
        return
    sys.stderr.write(
        "mlt-opt: raise stats: "
        + json.dumps(merged.snapshot(), sort_keys=True)
        + "\n"
    )


def _print_cache_stats() -> None:
    import json

    from .execution import KERNEL_CACHE

    sys.stderr.write(
        "mlt-opt: kernel cache: "
        + json.dumps(KERNEL_CACHE.snapshot(), sort_keys=True)
        + "\n"
    )


def _batch_main(args, pass_names: List[str]) -> int:
    """Batch mode: many inputs, one shared pool and persistent cache."""
    if args.execute or args.estimate:
        sys.stderr.write(
            "mlt-opt: --execute/--estimate are single-input options\n"
        )
        return 2
    from .runtime.batch import run_batch

    results = run_batch(
        args.input,
        pass_names,
        out_dir=args.out_dir,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        driver=args.driver,
        source_kind=args.source,
        verify=not args.no_verify,
        compile_kernels=args.compile or bool(args.cache_dir),
        pass_cache=not args.no_pass_cache,
    )
    failed = 0
    for result in results:
        status = "ok" if result.ok else "FAIL"
        detail = result.detail
        sys.stderr.write(
            f"mlt-opt: {result.input_path}: {status} "
            f"({result.seconds * 1e3:.1f} ms, {detail})\n"
        )
        failed += 0 if result.ok else 1
    if args.cache_stats:
        merged = {"memory": None, "disk": None}
        snapshots = [r.cache_snapshot for r in results if r.cache_snapshot]
        for tier in ("memory", "disk"):
            tiers = [s[tier] for s in snapshots if s.get(tier)]
            if tiers:
                merged[tier] = {
                    key: sum(t[key] for t in tiers) for key in tiers[0]
                }
        import json

        sys.stderr.write(
            "mlt-opt: kernel cache (batch, summed over units): "
            + json.dumps(merged, sort_keys=True)
            + "\n"
        )
    return 1 if failed else 0


def _execute_module(
    module: ModuleOp,
    func_name: str,
    engine: str,
    seed: int,
    engine_stats: bool = False,
    opt_mode: str = "none",
    opt_stats: bool = False,
    tile_size: int = None,
    pass_cache=None,
) -> None:
    """Run one function on deterministic random inputs and report a
    checksum per output buffer (the two --engine backends must print
    identical lines up to float tolerance)."""
    from .fuzzing.oracle import make_args, module_arg_shapes

    shapes = module_arg_shapes(module, func_name)
    args = make_args(shapes, seed)
    if engine == "compiled":
        from .execution import ExecutionEngine

        compiled = ExecutionEngine(
            module,
            pipeline="mlt-opt",
            opt_mode=opt_mode,
            tile_size=tile_size,
            pass_cache=pass_cache,
        )
        compiled.run(func_name, *args)
        if engine_stats:
            import json

            stats = compiled.vectorize_stats
            sys.stderr.write(
                "mlt-opt: vectorize stats: "
                + (
                    json.dumps(stats, sort_keys=True)
                    if stats is not None
                    else "unavailable (kernel from a pre-stats artifact)"
                )
                + "\n"
            )
        if opt_stats:
            import json

            stats = compiled.opt_stats
            sys.stderr.write(
                "mlt-opt: opt stats: "
                + (
                    json.dumps(stats, sort_keys=True)
                    if stats is not None
                    else "unavailable (opt-mode none or pre-optimizer "
                    "artifact)"
                )
                + "\n"
            )
    else:
        from .execution import Interpreter

        Interpreter(module).run(func_name, *args)
        if engine_stats or opt_stats:
            sys.stderr.write(
                "mlt-opt: --engine-stats/--opt-stats: interpreter backend "
                "has no vectorizer/optimizer; use --engine compiled\n"
            )
    for pos, buf in enumerate(args):
        sys.stderr.write(
            f"@{func_name} arg {pos}: shape={tuple(buf.shape)} "
            f"checksum={float(buf.sum()):.6f} [{engine}]\n"
        )


def fuzz_main(argv: List[str] = None) -> int:
    """``mlt-fuzz``: the differential fuzzing driver.

    Budgeted runs (``--seeds``/``--time-limit``), a fast ``--smoke``
    mode for CI, and single-seed replay (``--seed N``) for reproducing
    an artifact from ``fuzz-failures/``.
    """
    from .fuzzing import FuzzCampaign

    parser = argparse.ArgumentParser(
        prog="mlt-fuzz",
        description=(
            "Differential fuzzer: random kernels through the Figure-9 "
            "pipelines, interpreted after every stage; failures are "
            "bisected to a pass and reduced to a minimal reproducer."
        ),
    )
    parser.add_argument(
        "--seeds", type=int, default=50, help="number of seeds to run"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the seed range (0 = one per CPU); "
        "per-seed verdicts and artifacts are byte-identical to a "
        "serial run",
    )
    parser.add_argument(
        "--start-seed", type=int, default=0, help="first seed of the range"
    )
    parser.add_argument(
        "--seed",
        type=int,
        help="replay a single seed verbosely (overrides --seeds)",
    )
    parser.add_argument(
        "--time-limit",
        type=float,
        help="stop starting new seeds after this many seconds",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI budget: 30 seeds under a 60 second limit",
    )
    parser.add_argument(
        "--pipelines",
        help="comma-separated pipeline subset (default: all Figure-9 flows)",
    )
    parser.add_argument(
        "--out",
        default="fuzz-failures",
        help="artifact directory for failures (default: fuzz-failures)",
    )
    parser.add_argument(
        "--rtol",
        type=float,
        default=2e-3,
        help="relative tolerance for the differential comparison",
    )
    parser.add_argument(
        "--no-modules",
        action="store_true",
        help="skip the builder-API affine-module generator",
    )
    parser.add_argument(
        "--no-artifacts",
        action="store_true",
        help="report failures without writing fuzz-failures/",
    )
    parser.add_argument(
        "--no-engine-diff",
        action="store_true",
        help="skip the compiled-engine cross-check at every stage",
    )
    parser.add_argument(
        "--no-driver-diff",
        action="store_true",
        help="skip the worklist-vs-snapshot pattern-driver IR diff",
    )
    parser.add_argument(
        "--no-vectorize-diff",
        action="store_true",
        help="skip the whole-nest-vectorized vs scalar engine cross-check",
    )
    parser.add_argument(
        "--no-synth-diff",
        action="store_true",
        help="skip the synthesis-raising expectation oracle",
    )
    parser.add_argument(
        "--no-opt-diff",
        action="store_true",
        help="skip the mid-level-optimizer (opt-mode none vs full) "
        "engine cross-check",
    )
    parser.add_argument(
        "--no-schedule-diff",
        action="store_true",
        help="skip the random-schedule (transform-dialect interpreter) "
        "payload cross-check",
    )
    parser.add_argument(
        "--no-incremental-diff",
        action="store_true",
        help="skip the incremental-vs-scratch (pass-result cache) "
        "per-pass IR diff",
    )
    args = parser.parse_args(list(sys.argv[1:] if argv is None else argv))

    pipelines = args.pipelines.split(",") if args.pipelines else None
    campaign_config = dict(
        out_dir=args.out,
        pipelines=pipelines,
        rtol=args.rtol,
        check_modules=not args.no_modules,
        write_artifacts=not args.no_artifacts,
        check_engine=not args.no_engine_diff,
        check_drivers=not args.no_driver_diff,
        check_vectorize=not args.no_vectorize_diff,
        check_synth=not args.no_synth_diff,
        check_opt=not args.no_opt_diff,
        check_schedule=not args.no_schedule_diff,
        check_incremental=not args.no_incremental_diff,
    )
    try:
        campaign = FuzzCampaign(**campaign_config)
    except ValueError as exc:
        parser.error(str(exc))

    if args.seed is not None:
        from .fuzzing import generate_kernel

        kernel = generate_kernel(args.seed)
        sys.stderr.write(
            f"seed {args.seed}: family={kernel.family} "
            f"expect_raise={kernel.expect_raise} "
            f"expect_synth_raise={kernel.expect_synth_raise}\n"
            f"{kernel.source}\n"
        )
        failures = campaign.run_seed(args.seed)
        if not failures:
            sys.stderr.write(f"seed {args.seed}: all pipelines agree\n")
            return 0
        for failure in failures:
            sys.stderr.write(failure.summary() + "\n")
        return 1

    num_seeds, time_limit = args.seeds, args.time_limit
    if args.smoke:
        num_seeds = min(num_seeds, 30)
        time_limit = 60.0 if time_limit is None else min(time_limit, 60.0)
    if args.jobs != 1:
        from .runtime.fuzz import run_campaign_parallel

        stats = run_campaign_parallel(
            campaign_config,
            num_seeds,
            start_seed=args.start_seed,
            jobs=args.jobs,
            time_limit=time_limit,
        )
    else:
        stats = campaign.run(
            num_seeds, start_seed=args.start_seed, time_limit=time_limit
        )
    if not args.no_artifacts:
        from .runtime.fuzz import write_campaign_metadata
        from .runtime.pool import resolve_jobs

        write_campaign_metadata(
            args.out,
            resolve_jobs(args.jobs),
            num_seeds,
            args.start_seed,
            stats,
        )
    sys.stderr.write(stats.summary() + "\n")
    return 0 if stats.ok else 1


def tune_main(argv: List[str] = None) -> int:
    """``mlt-tune``: parallel schedule autotuning (see docs/scheduling.md).

    Searches the transform-dialect schedule space per kernel, measures
    candidates on real inputs across the worker pool, persists each
    winner in the ``schedules/`` cache namespace, and writes a
    ``BENCH_autotune`` report.
    """
    import json
    import os

    parser = argparse.ArgumentParser(
        prog="mlt-tune",
        description="Schedule autotuner: enumerate transform-dialect "
        "schedules per kernel, time them in parallel on real inputs, "
        "and persist the best schedule keyed by payload fingerprint "
        "so warm compiles replay it with zero search cost.",
    )
    parser.add_argument(
        "--kernels",
        default="gemm,2mm,doitgen,atax",
        help="comma-separated corpus kernels "
        "(default: gemm,2mm,doitgen,atax)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=24,
        help="max schedule evaluations per kernel (the opt-mode=full "
        "equivalent is always candidate 0; default: 24)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for candidate evaluation (0 = one per CPU)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed runs per candidate; best-of wall-clock (default: 3)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="input RNG seed"
    )
    parser.add_argument(
        "--cache-dir",
        help="cache root: winners persist under <cache-dir>/schedules/ "
        "(no caching without it — every run searches from scratch)",
    )
    parser.add_argument(
        "--heavy",
        action="store_true",
        help="tune on the LARGE-size kernel sources instead of the "
        "small ones",
    )
    parser.add_argument(
        "--no-pass-cache",
        action="store_true",
        help="disable the per-worker function-granular pass cache "
        "(candidates re-apply the shared schedule prefix from scratch)",
    )
    parser.add_argument(
        "--pipeline",
        default="mlt-linalg",
        help="payload pipeline the schedules are tuned against "
        "(default: mlt-linalg; 'baseline' keeps the payload at the "
        "affine level, where every schedule step is pass-cacheable)",
    )
    parser.add_argument(
        "--out",
        default="benchmarks/results/BENCH_autotune.json",
        help="JSON report path "
        "(default: benchmarks/results/BENCH_autotune.json)",
    )
    args = parser.parse_args(list(sys.argv[1:] if argv is None else argv))

    from .scheduling.autotune import autotune

    kernels = [k for k in args.kernels.split(",") if k]
    payload = autotune(
        kernels,
        budget=args.budget,
        jobs=args.jobs,
        repeats=args.repeats,
        seed=args.seed,
        cache_dir=args.cache_dir,
        pipeline=args.pipeline,
        heavy=args.heavy,
        pass_cache=not args.no_pass_cache,
    )
    out_dir = os.path.dirname(args.out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for row in payload["rows"]:
        source = "cache" if row["cached"] else f"{row['evaluations']} evals"
        sys.stderr.write(
            f"mlt-tune: {row['kernel']}: default "
            f"{row['default_wall_s'] * 1e6:.1f}us -> tuned "
            f"{row['tuned_wall_s'] * 1e6:.1f}us "
            f"({row['speedup']:.2f}x, {source})\n"
        )
    summary = payload["summary"]
    sys.stderr.write(
        f"mlt-tune: {summary['evaluations']} evaluations, "
        f"{summary['cached']} kernels replayed from cache, best speedup "
        f"{summary['best_speedup']:.2f}x; wrote {args.out}\n"
    )
    return 0


def serve_main(argv: List[str] = None) -> int:
    """``mlt-serve``: run the compile service (see docs/serving.md)."""
    parser = argparse.ArgumentParser(
        prog="mlt-serve",
        description="Long-lived compile/execute server over the kernel "
        "caches: per-tenant namespaces, request coalescing, batching "
        "onto a persistent worker pool, and admission control.",
    )
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--socket", help="serve on a unix-domain socket at this path"
    )
    group.add_argument(
        "--port",
        type=int,
        default=None,
        help="serve on TCP at this port (0 = ephemeral; default)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="TCP bind host"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache root; tenants namespace under "
        "<cache-dir>/tenants/<tenant>/ (default: in-memory only)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="0 serves inline on executor threads; N>0 batches onto a "
        "persistent N-worker pool (N=0 with --jobs -1 means one per "
        "CPU)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=256,
        help="admission bound: shed requests beyond this many "
        "queued+running units",
    )
    parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        help="pool mode: gather admitted units this long per batch",
    )
    parser.add_argument(
        "--prewarm",
        default="",
        help="comma-separated corpus kernels to compile and pin hot "
        "before accepting traffic (pipeline fixed to baseline unless "
        "given as kernel:pipeline)",
    )
    parser.add_argument(
        "--allow-debug",
        action="store_true",
        help="honor debug_delay_s/debug_crash request fields "
        "(test seams; never in production)",
    )
    args = parser.parse_args(argv)

    import asyncio

    from .runtime.pool import resolve_jobs
    from .serving import ServerConfig, run_server

    jobs = args.jobs if args.jobs >= 0 else resolve_jobs(0)
    config = ServerConfig(
        cache_dir=args.cache_dir,
        jobs=jobs,
        max_pending=args.max_pending,
        batch_window_s=args.batch_window_ms / 1000.0,
        allow_debug=args.allow_debug,
    )

    prewarm = []
    for item in filter(None, args.prewarm.split(",")):
        name, _, pipeline = item.strip().partition(":")
        prewarm.append(
            {"kernel": name, "pipeline": pipeline or "baseline"}
        )

    def _on_ready(server, endpoint):
        if prewarm:
            sys.stderr.write(
                f"mlt-serve: prewarmed {len(prewarm)} kernels\n"
            )
        sys.stderr.write(f"mlt-serve: listening on {endpoint}\n")
        sys.stderr.flush()

    try:
        asyncio.run(
            run_server(
                config,
                socket_path=args.socket,
                host=args.host,
                port=args.port or 0,
                prewarm=prewarm,
                ready_callback=_on_ready,
            )
        )
    except KeyboardInterrupt:
        sys.stderr.write("mlt-serve: interrupted\n")
        return 130
    return 0


if __name__ == "__main__":
    sys.exit(main())
