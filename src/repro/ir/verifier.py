"""Structural IR verification."""

from __future__ import annotations

from typing import Optional

from .core import Block, IRError, Operation
from .values import BlockArgument, OpResult


class VerificationError(IRError):
    """Raised when the IR violates a structural invariant."""


def verify(op: Operation, context=None) -> None:
    """Verify ``op`` and everything nested under it.

    Checks performed:
      * registered dialects only (when a context is given),
      * terminators appear only in terminal position,
      * use-def consistency (operands reference this op in their use list),
      * SSA visibility: each operand is defined before use in the same
        block, or in a (lexically) enclosing block,
      * op-specific invariants via ``Operation.verify_``.
    """
    for nested in op.walk():
        _verify_single(nested, context)


def _verify_single(op: Operation, context) -> None:
    if context is not None and not context.is_loaded(op.dialect):
        raise VerificationError(
            f"op {op.name} belongs to unloaded dialect '{op.dialect}'"
        )

    block = op.parent_block
    if block is not None:
        is_last = block.operations[-1] is op
        if op.IS_TERMINATOR and not is_last:
            raise VerificationError(
                f"terminator {op.name} is not last in its block"
            )

    for i, operand in enumerate(op.operands):
        if not any(use.owner is op for use in operand.uses):
            raise VerificationError(
                f"use-def inconsistency: {op.name} operand #{i}"
            )
        _check_visibility(op, operand, i)

    for region in op.regions:
        for inner_block in region.blocks:
            if inner_block.operations and not _has_terminator_rule_exempt(op):
                last = inner_block.operations[-1]
                if not last.IS_TERMINATOR:
                    raise VerificationError(
                        f"block inside {op.name} does not end with a terminator"
                    )

    try:
        op.verify_()
    except VerificationError:
        raise
    except IRError as exc:
        raise VerificationError(str(exc)) from exc


def _has_terminator_rule_exempt(op: Operation) -> bool:
    return op.name in ("builtin.module",)


def _enclosing_blocks(op: Operation):
    block = op.parent_block
    while block is not None:
        yield block
        parent = block.parent_op
        block = parent.parent_block if parent is not None else None


def _check_visibility(op: Operation, operand, index: int) -> None:
    if isinstance(operand, BlockArgument):
        owner: Optional[Block] = operand.owner
        for enclosing in _enclosing_blocks(op):
            if enclosing is owner:
                return
            # CFG region: accept args of sibling blocks (a dominance
            # analysis would be needed for a precise check).
            if (
                len(_siblings(enclosing)) > 1
                and owner.parent_region is enclosing.parent_region
            ):
                return
        raise VerificationError(
            f"{op.name} operand #{index}: block argument not visible here"
        )
    if isinstance(operand, OpResult):
        def_op = operand.owner
        def_block = def_op.parent_block
        if def_block is None:
            raise VerificationError(
                f"{op.name} operand #{index}: defined by a detached op"
            )
        for enclosing in _enclosing_blocks(op):
            if enclosing is def_block:
                # Same or enclosing block: the def must come first unless
                # the use is nested inside a region of a later op (then the
                # enclosing-position op is what matters).
                user = op
                while user.parent_block is not def_block:
                    user = user.parent_op  # climb to def's block level
                if def_op is user or not def_op.is_before_in_block(user):
                    raise VerificationError(
                        f"{op.name} operand #{index}: used before definition"
                    )
                return
            if len(_siblings(enclosing)) > 1:
                # Multi-block (CFG) region: a dominance analysis would be
                # needed; accept defs from any block of the same region.
                if def_block.parent_region is enclosing.parent_region:
                    return
        raise VerificationError(
            f"{op.name} operand #{index}: value not visible from this scope"
        )


def _siblings(block: Block):
    if block.parent_region is None:
        return [block]
    return block.parent_region.blocks
