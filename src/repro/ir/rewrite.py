"""Pattern rewriting infrastructure.

Raisings and lowerings are expressed as :class:`RewritePattern`
subclasses and applied by the greedy driver until a fixpoint — the same
machinery MLIR uses for progressive lowering, here reused in the
opposite, raising direction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .builder import Builder, InsertionPoint
from .core import IRError, Operation
from .values import Value


class PatternRewriter(Builder):
    """Builder handed to patterns; records structural notifications."""

    def __init__(self):
        super().__init__()
        self.erased: List[Operation] = []
        self.created: List[Operation] = []

    def insert(self, op: Operation) -> Operation:
        self.created.append(op)
        return super().insert(op)

    def erase_op(self, op: Operation) -> None:
        op.erase()
        self.erased.append(op)

    def replace_op(self, op: Operation, new_values: Sequence[Value]) -> None:
        op.replace_all_uses_with(list(new_values))
        self.erase_op(op)

    def replace_op_with_new(
        self, op: Operation, new_op: Operation
    ) -> Operation:
        """Insert ``new_op`` before ``op``, transfer uses, erase ``op``."""
        self.set_insertion_point_before(op)
        self.insert(new_op)
        self.replace_op(op, new_op.results)
        return new_op


class RewritePattern:
    """A single rewrite; higher benefit patterns are tried first."""

    benefit: int = 1
    #: Optionally restrict to one op name for faster dispatch.
    root_op_name: Optional[str] = None

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        raise NotImplementedError

    @property
    def pattern_name(self) -> str:
        return type(self).__name__


class RewriteResult:
    def __init__(self):
        self.num_rewrites = 0
        self.iterations = 0
        self.pattern_hits: dict = {}

    def record(self, pattern: RewritePattern) -> None:
        self.num_rewrites += 1
        name = pattern.pattern_name
        self.pattern_hits[name] = self.pattern_hits.get(name, 0) + 1

    @property
    def changed(self) -> bool:
        return self.num_rewrites > 0


def _is_attached(op: Operation, root: Operation) -> bool:
    """True when ``op`` is still reachable from ``root``."""
    node: Optional[Operation] = op
    while node is not None:
        if node is root:
            return True
        node = node.parent_op
    return False


def apply_patterns_greedily(
    root: Operation,
    patterns: Sequence[RewritePattern],
    max_iterations: int = 64,
) -> RewriteResult:
    """Apply patterns to all ops under ``root`` until fixpoint.

    Each sweep walks a snapshot of the IR; patterns are tried in
    descending benefit order on every still-attached op.  Sweeps repeat
    until none fires (or the iteration cap is hit, which signals a
    non-converging pattern set).
    """
    ordered = sorted(patterns, key=lambda p: -p.benefit)
    result = RewriteResult()
    for _ in range(max_iterations):
        result.iterations += 1
        changed = False
        # Materialize the walk first: patterns mutate the tree.
        for op in list(root.walk()):
            if op is not root and not _is_attached(op, root):
                continue  # erased/detached by an earlier rewrite this sweep
            for pattern in ordered:
                if (
                    pattern.root_op_name is not None
                    and op.name != pattern.root_op_name
                ):
                    continue
                rewriter = PatternRewriter()
                if pattern.match_and_rewrite(op, rewriter):
                    result.record(pattern)
                    changed = True
                    break
        if not changed:
            return result
    raise IRError(
        f"pattern application did not converge after {max_iterations} sweeps"
    )
