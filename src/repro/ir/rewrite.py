"""Pattern rewriting infrastructure.

Raisings and lowerings are expressed as :class:`RewritePattern`
subclasses and applied by a greedy driver until a fixpoint — the same
machinery MLIR uses for progressive lowering, here reused in the
opposite, raising direction.

Two drivers implement the same fixpoint contract:

* :func:`apply_patterns_worklist` (the default) — a worklist-driven
  driver modelled on MLIR's ``GreedyPatternRewriteDriver``.  Patterns
  are pre-indexed by ``root_op_name`` in a :class:`FrozenPatternSet`,
  the worklist is seeded from a single initial walk, and after a
  pattern fires only the ops whose match status could have changed go
  back on the worklist: the created ops (and everything nested in
  them), the users of replaced results, the defining ops of erased
  operands, and the parents/neighbors of erased ops.  Ops that no
  pattern can ever match (empty ``root_op_name`` bucket) are never
  enqueued at all, and erasures are absorbed in O(1) per erased op.
* :func:`apply_patterns_snapshot` — the original driver: every sweep
  re-walks a full IR snapshot and tries every applicable pattern on
  every still-attached op.  It is kept as the reference oracle; the
  fuzzer continuously diffs printed IR between the two drivers.

Patterns MUST perform all structural mutation through the
:class:`PatternRewriter` they are handed (``insert``/``erase_op``/
``erase_nest``/``replace_op``); the worklist driver replays those
notifications to maintain its worklist and its erased-op set.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .builder import Builder, InsertionPoint
from .core import IRError, Operation
from .values import Value


class PatternRewriter(Builder):
    """Builder handed to patterns; records structural notifications.

    Beyond op creation, the rewriter captures everything the worklist
    driver needs for change-driven re-enqueueing: which ops were
    erased (and from where), which ops had operands redirected by a
    replacement, and which defining ops lost a use when an op was
    erased (dead-code candidates).
    """

    def __init__(self):
        super().__init__()
        self.erased: List[Operation] = []
        self.created: List[Operation] = []
        #: Ops whose operands were redirected by :meth:`replace_op`.
        self.replaced_users: List[Operation] = []
        #: Defining ops of values an erased op used (they may be dead now).
        self.touched_defs: List[Operation] = []
        #: ``(parent_op, prev_sibling, next_sibling)`` per erasure site.
        self.erase_sites: List[
            Tuple[Optional[Operation], Optional[Operation], Optional[Operation]]
        ] = []

    def insert(self, op: Operation) -> Operation:
        self.created.append(op)
        super().insert(op)
        self._invalidate_fingerprints(op)
        return op

    @staticmethod
    def _invalidate_fingerprints(op: Operation) -> None:
        """Bump the enclosing module's mutation counter.

        Every structural mutation through a rewriter invalidates the
        module's memoized printed-IR fingerprint (kernel cache, pass
        cache) — so IR mutated through a :class:`PatternRewriter` can
        never re-serve a stale digest, even without an explicit
        ``bump_version()`` by the caller.
        """
        top: Optional[Operation] = op
        while top is not None and top.parent_op is not None:
            top = top.parent_op
        bump = getattr(top, "bump_version", None)
        if bump is not None:
            bump()

    def reset(self) -> None:
        """Clear all notifications (the drivers reuse one rewriter)."""
        self.erased.clear()
        self.created.clear()
        self.replaced_users.clear()
        self.touched_defs.clear()
        self.erase_sites.clear()

    # -- erasure notifications ------------------------------------------

    def _note_erase_site(self, op: Operation) -> None:
        block = op.parent_block
        if block is None:
            self.erase_sites.append((None, None, None))
            return
        ops = block.operations
        index = ops.index(op)
        prev_op = ops[index - 1] if index > 0 else None
        next_op = ops[index + 1] if index + 1 < len(ops) else None
        self.erase_sites.append((op.parent_op, prev_op, next_op))

    def erase_op(self, op: Operation) -> None:
        for value in op.operands:
            def_op = value.defining_op
            if def_op is not None:
                self.touched_defs.append(def_op)
        self._note_erase_site(op)
        self._invalidate_fingerprints(op)
        op.erase()
        self.erased.append(op)

    def erase_nest(self, root: Operation) -> None:
        """Erase ``root`` and everything nested under it.

        Unlike :meth:`erase_op` this tolerates uses *internal* to the
        nest (a loop band's IVs and intermediate values); any external
        uses of the nest's results must already be gone.
        """
        subtree = list(root.walk())
        subtree_ids = {id(op) for op in subtree}
        for op in subtree:
            for value in op.operands:
                def_op = value.defining_op
                if def_op is not None and id(def_op) not in subtree_ids:
                    self.touched_defs.append(def_op)
        self._note_erase_site(root)
        self._invalidate_fingerprints(root)
        root.drop_all_references()
        if root.parent_block is not None:
            root.parent_block.remove(root)
        self.erased.append(root)

    def replace_op(self, op: Operation, new_values: Sequence[Value]) -> None:
        users: List[Operation] = []
        for res in op.results:
            for use in res.uses:
                users.append(use.owner)
        op.replace_all_uses_with(list(new_values))
        self.replaced_users.extend(users)
        self.erase_op(op)

    def replace_op_with_new(
        self, op: Operation, new_op: Operation
    ) -> Operation:
        """Insert ``new_op`` before ``op``, transfer uses, erase ``op``."""
        self.set_insertion_point_before(op)
        self.insert(new_op)
        self.replace_op(op, new_op.results)
        return new_op


class RewritePattern:
    """A single rewrite; higher benefit patterns are tried first."""

    benefit: int = 1
    #: Optionally restrict to one op name for faster dispatch.  The
    #: worklist driver's :class:`FrozenPatternSet` indexes on this name:
    #: a pattern declaring a root is only ever *tried* on ops with that
    #: name, so declaring it prunes the match space.
    root_op_name: Optional[str] = None

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        raise NotImplementedError

    @property
    def pattern_name(self) -> str:
        return type(self).__name__


class FrozenPatternSet:
    """An immutable pattern set pre-indexed by ``root_op_name``.

    Mirrors MLIR's ``FrozenRewritePatternSet``: the benefit sort and
    the per-root bucketing happen once at freeze time, not once per
    driver invocation (let alone per op visit).  Each bucket holds the
    root-specific patterns merged with the any-op patterns, in the
    exact global benefit order the snapshot driver would try them.
    """

    def __init__(self, patterns: Sequence[RewritePattern]):
        # Stable sort: equal-benefit patterns keep registration order,
        # matching the snapshot driver's global ordering exactly.
        self._ordered: Tuple[RewritePattern, ...] = tuple(
            sorted(patterns, key=lambda p: -p.benefit)
        )
        self._generic: Tuple[RewritePattern, ...] = tuple(
            p for p in self._ordered if p.root_op_name is None
        )
        self._buckets: Dict[str, Tuple[RewritePattern, ...]] = {}
        for name in {
            p.root_op_name for p in self._ordered if p.root_op_name is not None
        }:
            self._buckets[name] = tuple(
                p
                for p in self._ordered
                if p.root_op_name is None or p.root_op_name == name
            )

    @property
    def patterns(self) -> Tuple[RewritePattern, ...]:
        return self._ordered

    def patterns_for(self, op_name: str) -> Tuple[RewritePattern, ...]:
        """Benefit-ordered patterns applicable to ops named ``op_name``."""
        return self._buckets.get(op_name, self._generic)

    def __len__(self) -> int:
        return len(self._ordered)


PatternsArg = Union[Sequence[RewritePattern], FrozenPatternSet]


def _freeze(patterns: PatternsArg) -> FrozenPatternSet:
    if isinstance(patterns, FrozenPatternSet):
        return patterns
    return FrozenPatternSet(patterns)


class RewriteResult:
    """Statistics of one driver invocation.

    ``pattern_hits`` counts successful rewrites per pattern;
    ``pattern_attempts`` counts every ``match_and_rewrite`` *trial*
    (hits plus misses) and ``pattern_seconds`` the time spent in them,
    so benchmarks can compare how much matching work each driver does.
    """

    def __init__(self):
        self.num_rewrites = 0
        self.iterations = 0
        self.pattern_hits: Dict[str, int] = {}
        self.pattern_attempts: Dict[str, int] = {}
        self.pattern_seconds: Dict[str, float] = {}

    def record(self, pattern: RewritePattern) -> None:
        self.num_rewrites += 1
        name = pattern.pattern_name
        self.pattern_hits[name] = self.pattern_hits.get(name, 0) + 1

    def record_attempt(
        self, pattern: RewritePattern, elapsed: float = 0.0
    ) -> None:
        name = pattern.pattern_name
        self.pattern_attempts[name] = self.pattern_attempts.get(name, 0) + 1
        self.pattern_seconds[name] = (
            self.pattern_seconds.get(name, 0.0) + elapsed
        )

    @property
    def trials(self) -> int:
        """Total ``match_and_rewrite`` invocations (hits + misses)."""
        return sum(self.pattern_attempts.values())

    @property
    def changed(self) -> bool:
        return self.num_rewrites > 0

    def merge(self, other: "RewriteResult") -> "RewriteResult":
        """Fold ``other``'s counters into this result (for per-function
        drivers aggregated to pass level)."""
        self.num_rewrites += other.num_rewrites
        self.iterations += other.iterations
        for name, count in other.pattern_hits.items():
            self.pattern_hits[name] = self.pattern_hits.get(name, 0) + count
        for name, count in other.pattern_attempts.items():
            self.pattern_attempts[name] = (
                self.pattern_attempts.get(name, 0) + count
            )
        for name, secs in other.pattern_seconds.items():
            self.pattern_seconds[name] = (
                self.pattern_seconds.get(name, 0.0) + secs
            )
        return self


# ----------------------------------------------------------------------
# Driver selection
# ----------------------------------------------------------------------

DRIVERS = ("worklist", "snapshot")

_default_driver = "worklist"


def get_default_driver() -> str:
    return _default_driver


def set_default_driver(name: str) -> None:
    global _default_driver
    if name not in DRIVERS:
        raise ValueError(f"unknown pattern driver {name!r}; known: {DRIVERS}")
    _default_driver = name


@contextmanager
def pattern_driver(name: str):
    """Temporarily switch the process-default pattern driver."""
    global _default_driver
    if name not in DRIVERS:
        raise ValueError(f"unknown pattern driver {name!r}; known: {DRIVERS}")
    previous = _default_driver
    _default_driver = name
    try:
        yield
    finally:
        _default_driver = previous


# ----------------------------------------------------------------------
# Snapshot driver (reference oracle)
# ----------------------------------------------------------------------


def _is_attached(op: Operation, root: Operation) -> bool:
    """True when ``op`` is still reachable from ``root``."""
    node: Optional[Operation] = op
    while node is not None:
        if node is root:
            return True
        node = node.parent_op
    return False


def apply_patterns_snapshot(
    root: Operation,
    patterns: PatternsArg,
    max_iterations: int = 64,
) -> RewriteResult:
    """Apply patterns to all ops under ``root`` until fixpoint.

    Each sweep walks a snapshot of the IR; patterns are tried in
    descending benefit order on every still-attached op.  Sweeps repeat
    until none fires (or the iteration cap is hit, which signals a
    non-converging pattern set).  This is the original O(sweeps × ops ×
    patterns) driver, kept as the reference the worklist driver is
    continuously diffed against.
    """
    frozen = _freeze(patterns)
    result = RewriteResult()
    rewriter = PatternRewriter()
    for _ in range(max_iterations):
        result.iterations += 1
        changed = False
        # Materialize the walk first: patterns mutate the tree.
        for op in list(root.walk()):
            if op is not root and not _is_attached(op, root):
                continue  # erased/detached by an earlier rewrite this sweep
            for pattern in frozen.patterns_for(op.name):
                started = time.perf_counter()
                matched = pattern.match_and_rewrite(op, rewriter)
                result.record_attempt(
                    pattern, time.perf_counter() - started
                )
                if matched:
                    result.record(pattern)
                    rewriter.reset()
                    changed = True
                    break
        if not changed:
            return result
    raise IRError(
        f"pattern application did not converge after {max_iterations} sweeps"
    )


# ----------------------------------------------------------------------
# Worklist driver (the default)
# ----------------------------------------------------------------------


def apply_patterns_worklist(
    root: Operation,
    patterns: PatternsArg,
    max_iterations: int = 64,
) -> RewriteResult:
    """Worklist-driven greedy rewriting.

    The worklist is seeded once, from a single pre-order walk.  Rounds
    mirror the snapshot driver's sweeps — ops re-enqueued by a rewrite
    are processed in the *next* round, exactly when a fresh snapshot
    sweep would revisit them — but a round only revisits the ops a
    rewrite could actually have affected, instead of the whole module:

    * the created ops and everything nested in them (plus their
      ancestor chain — an insertion changes the parents' structure),
    * the users of replaced results,
    * the defining ops of values an erased op used (now possibly dead),
    * the parents, ancestor chain, and block neighbors of erased ops.

    Erasures are absorbed in O(1) per erased op: only the erased root's
    id is recorded, and a popped op is recognized as stale by climbing
    its parent chain (the same check a snapshot sweep performs per op)
    until it reaches ``root``, an erased ancestor, or detachment.
    """
    frozen = _freeze(patterns)
    result = RewriteResult()
    rewriter = PatternRewriter()
    erased_ids: set = set()
    #: Keeps erased subtrees alive so their ids stay unique for the run.
    keepalive: List[Operation] = []
    buckets_get = frozen._buckets.get
    generic = frozen._generic
    record_attempt = result.record_attempt
    perf_counter = time.perf_counter
    # Ops whose bucket is empty can never match: never enqueue them.
    # (Op names are immutable — rewrites create new ops instead.)
    current: deque = deque(
        op for op in root.walk() if buckets_get(op.name, generic)
    )
    queued: set = set(map(id, current))
    next_round: deque = deque()

    def push(op: Optional[Operation]) -> None:
        if op is None or op is root:
            return
        if id(op) in queued or id(op) in erased_ids:
            return
        if not buckets_get(op.name, generic):
            return
        next_round.append(op)
        queued.add(id(op))

    def absorb(rewriter: PatternRewriter) -> None:
        # Gather every op a rewrite could have affected, then filter
        # and enqueue in one flat pass (this runs once per fired
        # rewrite, with ~20 candidates each — avoid per-candidate
        # function calls).
        candidates: List[Optional[Operation]] = []
        extend = candidates.extend
        append = candidates.append
        for erased in rewriter.erased:
            erased_ids.add(id(erased))
            queued.discard(id(erased))
            keepalive.append(erased)
        for created in rewriter.created:
            if id(created) in erased_ids:
                continue  # created then erased within the same rewrite
            if created.regions:
                extend(created.walk())
            else:
                append(created)
            node = created.parent_op
            while node is not None and node is not root:
                append(node)
                node = node.parent_op
        for parent, prev_op, next_op in rewriter.erase_sites:
            append(prev_op)
            append(next_op)
            node = parent
            while node is not None and node is not root:
                append(node)
                node = node.parent_op
        extend(rewriter.replaced_users)
        extend(rewriter.touched_defs)
        for op in candidates:
            if op is None or op is root:
                continue
            op_id = id(op)
            if op_id in queued or op_id in erased_ids:
                continue
            if not buckets_get(op.name, generic):
                continue
            next_round.append(op)
            queued.add(op_id)

    while current:
        result.iterations += 1
        if result.iterations > max_iterations:
            raise IRError(
                f"pattern application did not converge after "
                f"{max_iterations} sweeps"
            )
        while current:
            op = current.popleft()
            queued.discard(id(op))
            if id(op) in erased_ids:
                continue  # erased through a rewriter notification
            if op is not root:
                # Stale if any ancestor was erased or the op is detached.
                node = op.parent_op
                while (
                    node is not None
                    and node is not root
                    and id(node) not in erased_ids
                ):
                    node = node.parent_op
                if node is not root:
                    continue
            for pattern in buckets_get(op.name, generic):
                started = perf_counter()
                matched = pattern.match_and_rewrite(op, rewriter)
                record_attempt(pattern, perf_counter() - started)
                if not matched:
                    continue
                result.record(pattern)
                absorb(rewriter)
                rewriter.reset()
                if id(op) not in erased_ids:
                    # In-place change: the root op may match again.
                    push(op)
                break
        current, next_round = next_round, current
    return result


def apply_patterns_greedily(
    root: Operation,
    patterns: PatternsArg,
    max_iterations: int = 64,
    driver: Optional[str] = None,
) -> RewriteResult:
    """Apply patterns under ``root`` until fixpoint with the selected
    driver (process default when ``driver`` is None)."""
    chosen = driver if driver is not None else _default_driver
    if chosen == "worklist":
        return apply_patterns_worklist(root, patterns, max_iterations)
    if chosen == "snapshot":
        return apply_patterns_snapshot(root, patterns, max_iterations)
    raise ValueError(f"unknown pattern driver {chosen!r}; known: {DRIVERS}")
