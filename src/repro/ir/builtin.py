"""Built-in structural operations: module, func, return, call."""

from __future__ import annotations

from typing import List, Optional, Sequence

from .attributes import StringAttr, SymbolRefAttr, TypeAttr
from .core import Block, IRError, Operation, register_op
from .types import FunctionType, Type
from .values import BlockArgument, Value


@register_op
class ModuleOp(Operation):
    """Top-level container holding a single block of functions."""

    OP_NAME = "builtin.module"

    @staticmethod
    def create(name: str = "") -> "ModuleOp":
        op = ModuleOp(num_regions=1)
        op.regions[0].add_block()
        if name:
            op.attributes["sym_name"] = StringAttr(name)
        return op

    @property
    def functions(self) -> List["FuncOp"]:
        return [op for op in self.body.operations if isinstance(op, FuncOp)]

    def lookup(self, symbol_name: str) -> Optional["FuncOp"]:
        for func in self.functions:
            if func.sym_name == symbol_name:
                return func
        return None

    def append_function(self, func: "FuncOp") -> "FuncOp":
        self.body.append(func)
        return func

    def bump_version(self) -> int:
        """Advance the module's mutation counter.

        The PassManager stamps this after every pass that (may have)
        changed the module; the kernel cache memoizes the module's
        printed-IR fingerprint on it so unchanged modules never
        re-print to hash.  Code that mutates the IR directly — outside
        any PassManager — must call this to invalidate the memo.
        """
        self.version = getattr(self, "version", 0) + 1
        return self.version

    def verify_(self) -> None:
        if len(self.regions) != 1 or len(self.regions[0].blocks) != 1:
            raise IRError("builtin.module must have exactly one block")
        seen = set()
        for func in self.functions:
            if func.sym_name in seen:
                raise IRError(f"duplicate symbol @{func.sym_name}")
            seen.add(func.sym_name)

    def __str__(self) -> str:
        from .printer import print_module

        return print_module(self)


@register_op
class FuncOp(Operation):
    """A named function with a single-block body."""

    OP_NAME = "func.func"

    @staticmethod
    def create(
        name: str,
        arg_types: Sequence[Type],
        result_types: Sequence[Type] = (),
    ) -> "FuncOp":
        func = FuncOp(
            attributes={
                "sym_name": StringAttr(name),
                "function_type": TypeAttr(FunctionType(arg_types, result_types)),
            },
            num_regions=1,
        )
        func.regions[0].add_block(Block(arg_types))
        return func

    @property
    def sym_name(self) -> str:
        return self.attributes["sym_name"].value

    @property
    def function_type(self) -> FunctionType:
        return self.attributes["function_type"].value

    @property
    def entry_block(self) -> Block:
        return self.regions[0].entry_block

    @property
    def arguments(self) -> List[BlockArgument]:
        return list(self.entry_block.arguments)

    def verify_(self) -> None:
        if "sym_name" not in self.attributes:
            raise IRError("func.func requires a sym_name")
        block = self.entry_block
        arg_types = tuple(a.type for a in block.arguments)
        if arg_types != self.function_type.inputs:
            raise IRError(
                f"@{self.sym_name}: entry block arguments {arg_types} do not "
                f"match function type {self.function_type.inputs}"
            )
        term = block.terminator
        if term is None:
            raise IRError(f"@{self.sym_name}: missing terminator")

    def __str__(self) -> str:
        from .printer import print_module

        return print_module(self)


@register_op
class ReturnOp(Operation):
    OP_NAME = "func.return"
    IS_TERMINATOR = True

    @staticmethod
    def create(values: Sequence[Value] = ()) -> "ReturnOp":
        return ReturnOp(operands=values)


@register_op
class CallOp(Operation):
    """Direct call to a named function."""

    OP_NAME = "func.call"

    @staticmethod
    def create(
        callee: str, operands: Sequence[Value], result_types: Sequence[Type] = ()
    ) -> "CallOp":
        return CallOp(
            operands=operands,
            result_types=result_types,
            attributes={"callee": SymbolRefAttr(callee)},
        )

    @property
    def callee(self) -> str:
        return self.attributes["callee"].name
