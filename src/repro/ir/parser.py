"""Textual IR parser.

Parses the syntax produced by :mod:`repro.ir.printer`, enabling
round-trip tests and concise IR literals in tests and examples::

    module = parse_module('''
      func @axpy(%arg0: memref<128xf32>, %arg1: memref<128xf32>) {
        affine.for %i = 0 to 128 {
          ...
        }
        return
      }
    ''')
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .affine_map import AffineMap
from .attributes import (
    AffineMapAttr,
    ArrayAttr,
    Attribute,
    BoolAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
)
from .builtin import FuncOp, ModuleOp, ReturnOp
from .core import Block, IRError, Operation, Region, create_operation
from .types import (
    DYNAMIC,
    F32Type,
    F64Type,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    NoneType,
    TensorType,
    Type,
    VectorType,
)
from .values import Value
from ..ir import affine_expr


class ParseError(IRError):
    def __init__(self, message: str, line: Optional[int] = None):
        suffix = f" (line {line})" if line is not None else ""
        super().__init__(message + suffix)


_TOKEN_SPEC = [
    ("WS", r"[ \t\r]+"),
    ("NEWLINE", r"\n"),
    ("COMMENT", r"//[^\n]*"),
    ("ARROW", r"->"),
    ("SSA", r"%[A-Za-z0-9_\.\#]+"),
    ("SYMBOL", r"@[A-Za-z0-9_\.\$]+"),
    ("BLOCKREF", r"\^[A-Za-z0-9_]+"),
    ("STRING", r'"(?:[^"\\]|\\.)*"'),
    ("FLOAT", r"-?\d+\.\d*(?:[eE][-+]?\d+)?|-?\d+[eE][-+]?\d+"),
    ("INT", r"-?\d+"),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_\.\$]*"),
    ("PUNCT", r"[(){}\[\]<>,:=*+\-?]"),
]

_MASTER_RE = re.compile("|".join(f"(?P<{n}>{p})" for n, p in _TOKEN_SPEC))


class Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def _tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    line = 1
    pos = 0
    while pos < len(source):
        match = _MASTER_RE.match(source, pos)
        if match is None:
            raise ParseError(f"unexpected character {source[pos]!r}", line)
        kind = match.lastgroup
        text = match.group()
        if kind == "NEWLINE":
            line += 1
        elif kind not in ("WS", "COMMENT"):
            tokens.append(Token(kind, text, line))
        pos = match.end()
    tokens.append(Token("EOF", "", line))
    return tokens


class Parser:
    def __init__(self, source: str):
        self.tokens = _tokenize(source)
        self.pos = 0
        self.values: Dict[str, Value] = {}
        #: per-region block label environments (for CFG functions)
        self.blocks: Dict[str, Block] = {}

    # -- token helpers -----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.peek()
        self.pos += 1
        return tok

    def at(self, text: str) -> bool:
        return self.peek().text == text

    def accept(self, text: str) -> bool:
        if self.at(text):
            self.pos += 1
            return True
        return False

    def expect(self, text: str) -> Token:
        tok = self.next()
        if tok.text != text:
            raise ParseError(f"expected {text!r}, got {tok.text!r}", tok.line)
        return tok

    def expect_kind(self, kind: str) -> Token:
        tok = self.next()
        if tok.kind != kind:
            raise ParseError(f"expected {kind}, got {tok.text!r}", tok.line)
        return tok

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.peek().line)

    # -- values -------------------------------------------------------------

    def define_value(self, name: str, value: Value) -> None:
        self.values[name] = value

    def use_value(self, name: str) -> Value:
        if name not in self.values:
            raise self.error(f"use of undefined value {name}")
        return self.values[name]

    def parse_ssa_use(self) -> Value:
        return self.use_value(self.expect_kind("SSA").text)

    def parse_ssa_use_list(self) -> List[Value]:
        uses = [self.parse_ssa_use()]
        while self.accept(","):
            uses.append(self.parse_ssa_use())
        return uses

    # -- types ----------------------------------------------------------------

    def parse_type(self) -> Type:
        tok = self.next()
        text = tok.text
        if text == "f32":
            return F32Type()
        if text == "f64":
            return F64Type()
        if text == "index":
            return IndexType()
        if text == "none":
            return NoneType()
        if re.fullmatch(r"i\d+", text):
            return IntegerType(int(text[1:]))
        if text in ("memref", "tensor", "vector"):
            self.expect("<")
            shape, elem = self.parse_shape_and_element()
            self.expect(">")
            cls = {"memref": MemRefType, "tensor": TensorType, "vector": VectorType}
            return cls[text](shape, elem)
        raise ParseError(f"unknown type {text!r}", tok.line)

    def parse_shape_and_element(self) -> Tuple[List[int], Type]:
        # Shapes lex as IDENT/INT runs: 64x64xf32 may arrive as
        # INT(64) IDENT(x64xf32) etc.  Re-lex from raw text pieces.
        pieces: List[str] = []
        while not self.at(">"):
            pieces.append(self.next().text)
        flat = "".join(pieces)
        parts = flat.split("x")
        dims: List[int] = []
        for part in parts[:-1]:
            if part == "?":
                dims.append(DYNAMIC)
            else:
                dims.append(int(part))
        elem_text = parts[-1]
        elem = _scalar_type_from_text(elem_text)
        return dims, elem

    def parse_type_list_parens(self) -> List[Type]:
        self.expect("(")
        types: List[Type] = []
        if not self.at(")"):
            types.append(self.parse_type())
            while self.accept(","):
                types.append(self.parse_type())
        self.expect(")")
        return types

    # -- attributes --------------------------------------------------------------

    def parse_attr_dict(self) -> Dict[str, Attribute]:
        attrs: Dict[str, Attribute] = {}
        if not self.accept("{"):
            return attrs
        while not self.accept("}"):
            key = self.expect_kind("IDENT").text
            self.expect("=")
            attrs[key] = self.parse_attribute()
            self.accept(",")
        return attrs

    def parse_attribute(self) -> Attribute:
        tok = self.peek()
        if tok.kind == "INT":
            return IntegerAttr(int(self.next().text))
        if tok.kind == "FLOAT":
            return FloatAttr(float(self.next().text))
        if tok.kind == "STRING":
            return StringAttr(_unquote(self.next().text))
        if tok.kind == "SYMBOL":
            return SymbolRefAttr(self.next().text[1:])
        if tok.text in ("true", "false"):
            return BoolAttr(self.next().text == "true")
        if tok.text == "[":
            self.next()
            elements: List[Attribute] = []
            while not self.accept("]"):
                elements.append(self.parse_attribute())
                self.accept(",")
            return ArrayAttr(elements)
        if tok.text == "affine_map":
            return AffineMapAttr(self.parse_affine_map_literal())
        if tok.text in ("f32", "f64", "index", "memref", "tensor", "vector") or re.fullmatch(
            r"i\d+", tok.text
        ):
            return TypeAttr(self.parse_type())
        raise ParseError(f"cannot parse attribute at {tok.text!r}", tok.line)

    def parse_affine_map_literal(self) -> AffineMap:
        self.expect("affine_map")
        self.expect("<")
        pieces: List[str] = []
        depth = 1
        while True:
            tok = self.next()
            if tok.text == "<":
                depth += 1
            elif tok.text == ">":
                depth -= 1
                if depth == 0:
                    break
            pieces.append(tok.text)
        return AffineMap.parse(" ".join(pieces))

    # -- top level ------------------------------------------------------------

    def parse_module(self) -> ModuleOp:
        module = ModuleOp.create()
        if self.accept("module"):
            self.expect("{")
            while not self.accept("}"):
                module.body.append(self._parse_module_item(module))
        else:
            while self.peek().kind != "EOF":
                module.body.append(self._parse_module_item(module))
        if self.peek().kind != "EOF":
            raise self.error("trailing input after module")
        return module

    def _parse_module_item(self, module: ModuleOp):
        """A top-level item: a function or a transform schedule."""
        if self.peek().text == "transform.sequence":
            return self.parse_operation(module.regions[0])
        return self.parse_func()

    def parse_func(self) -> FuncOp:
        self.expect("func")
        name = self.expect_kind("SYMBOL").text[1:]
        self.expect("(")
        arg_names: List[str] = []
        arg_types: List[Type] = []
        while not self.at(")"):
            arg_names.append(self.expect_kind("SSA").text)
            self.expect(":")
            arg_types.append(self.parse_type())
            self.accept(",")
        self.expect(")")
        result_types: List[Type] = []
        if self.accept("->"):
            result_types = self.parse_type_list_parens()
        func = FuncOp.create(name, arg_types, result_types)
        # The default entry block carries a placeholder terminator-less body.
        entry = func.entry_block
        entry.operations.clear()
        for arg_name, arg in zip(arg_names, entry.arguments):
            self.define_value(arg_name, arg)
        self.expect("{")
        self.parse_region_body(func.regions[0], entry)
        return func

    def parse_region_body(self, region, entry: Block) -> None:
        """Parse ops (and optional labeled blocks) until '}'."""
        current = entry
        saved_blocks = self.blocks
        self.blocks = {}
        try:
            while True:
                if self.accept("}"):
                    return
                if self.peek().kind == "BLOCKREF":
                    label = self.next().text
                    block = self._block_for_label(region, label)
                    # A forward branch reference may have created the
                    # block early; re-anchor it at its *definition*
                    # position so block order (and thus the printed
                    # form) round-trips exactly.
                    region.blocks.remove(block)
                    region.blocks.append(block)
                    if self.accept("("):
                        while not self.accept(")"):
                            arg_name = self.expect_kind("SSA").text
                            self.expect(":")
                            ty = self.parse_type()
                            self.define_value(arg_name, block.add_argument(ty))
                            self.accept(",")
                    self.expect(":")
                    current = block
                    continue
                op = self.parse_operation(region)
                current.append(op)
        finally:
            self.blocks = saved_blocks

    def _block_for_label(self, region, label: str) -> Block:
        if label not in self.blocks:
            block = Block()
            region.add_block(block)
            self.blocks[label] = block
        return self.blocks[label]

    # -- operations ---------------------------------------------------------------

    def parse_operation(self, region) -> Operation:
        result_names: List[str] = []
        if self.peek().kind == "SSA":
            result_names.append(self.next().text)
            while self.accept(","):
                result_names.append(self.expect_kind("SSA").text)
            self.expect("=")

        tok = self.peek()
        if tok.kind == "STRING":
            op = self.parse_generic_op(region)
        else:
            handler = _CUSTOM_PARSERS.get(tok.text)
            if handler is None:
                raise ParseError(f"unknown operation {tok.text!r}", tok.line)
            op = handler(self, region)

        if len(result_names) != len(op.results):
            raise ParseError(
                f"{op.name}: {len(result_names)} result names for "
                f"{len(op.results)} results",
                tok.line,
            )
        for name, result in zip(result_names, op.results):
            self.define_value(name, result)
        return op

    def parse_generic_op(self, region) -> Operation:
        name = _unquote(self.expect_kind("STRING").text)
        self.expect("(")
        operands: List[Value] = []
        while not self.at(")"):
            operands.append(self.parse_ssa_use())
            self.accept(",")
        self.expect(")")
        successors: List[Block] = []
        if self.accept("["):
            while not self.accept("]"):
                successors.append(
                    self._block_for_label(region, self.expect_kind("BLOCKREF").text)
                )
                self.accept(",")
        attrs = self.parse_attr_dict()
        self.expect(":")
        self.parse_type_list_parens()  # operand types (checked implicitly)
        self.expect("->")
        result_types = self.parse_type_list_parens()
        return create_operation(
            name,
            operands=operands,
            result_types=result_types,
            attributes=attrs,
            successors=successors,
        )

    # -- affine access forms ---------------------------------------------------

    def parse_access(self) -> Tuple[List[Value], AffineMap]:
        """Parse ``[%i * 2 + 1, %j]`` into (operands, access map)."""
        self.expect("[")
        operand_names: List[str] = []

        def dim_for(ssa_name: str) -> affine_expr.AffineExpr:
            if ssa_name not in operand_names:
                operand_names.append(ssa_name)
            return affine_expr.dim(operand_names.index(ssa_name))

        exprs: List[affine_expr.AffineExpr] = []
        if not self.at("]"):
            exprs.append(self._parse_access_expr(dim_for))
            while self.accept(","):
                exprs.append(self._parse_access_expr(dim_for))
        self.expect("]")
        operands = [self.use_value(n) for n in operand_names]
        return operands, AffineMap(len(operand_names), 0, exprs)

    def _parse_access_expr(self, dim_for) -> affine_expr.AffineExpr:
        expr = self._parse_access_term(dim_for)
        while self.peek().text in ("+", "-"):
            op = self.next().text
            rhs = self._parse_access_term(dim_for)
            expr = expr + rhs if op == "+" else expr - rhs
        return expr

    def _parse_access_term(self, dim_for) -> affine_expr.AffineExpr:
        expr = self._parse_access_factor(dim_for)
        while self.peek().text in ("*", "mod", "floordiv", "ceildiv"):
            op = self.next().text
            rhs = self._parse_access_factor(dim_for)
            if op == "*":
                expr = expr * rhs
            elif op == "mod":
                expr = expr % rhs
            elif op == "floordiv":
                expr = expr.floordiv(rhs)
            else:
                expr = expr.ceildiv(rhs)
        return expr

    def _parse_access_factor(self, dim_for) -> affine_expr.AffineExpr:
        tok = self.next()
        if tok.text == "(":
            expr = self._parse_access_expr(dim_for)
            self.expect(")")
            return expr
        if tok.kind == "SSA":
            return dim_for(tok.text)
        if tok.kind in ("INT", "FLOAT"):
            return affine_expr.constant(int(tok.text))
        if tok.text == "-":
            return -self._parse_access_factor(dim_for)
        raise ParseError(f"bad access expression at {tok.text!r}", tok.line)


def _scalar_type_from_text(text: str) -> Type:
    if text == "f32":
        return F32Type()
    if text == "f64":
        return F64Type()
    if text == "index":
        return IndexType()
    if re.fullmatch(r"i\d+", text):
        return IntegerType(int(text[1:]))
    raise IRError(f"unknown element type {text!r}")


def _unquote(text: str) -> str:
    return text[1:-1].encode().decode("unicode_escape")


# ----------------------------------------------------------------------
# Custom op parsers (mirror printer forms)
# ----------------------------------------------------------------------


def _parse_return(p: Parser, region) -> Operation:
    p.expect("return")
    operands: List[Value] = []
    if p.peek().kind == "SSA":
        operands = p.parse_ssa_use_list()
        p.expect(":")
        for _ in operands:
            p.parse_type()
            p.accept(",")
    return ReturnOp.create(operands)


def _parse_constant(p: Parser, region) -> Operation:
    from ..dialects.std import ConstantOp

    p.expect("std.constant")
    tok = p.next()
    if tok.kind == "INT":
        value: float = int(tok.text)
    elif tok.kind == "FLOAT":
        value = float(tok.text)
    else:
        raise ParseError(f"bad constant literal {tok.text!r}", tok.line)
    p.expect(":")
    ty = p.parse_type()
    return ConstantOp.create(value, ty)


def _parse_binary_arith(p: Parser, region) -> Operation:
    name = p.next().text
    lhs = p.parse_ssa_use()
    p.expect(",")
    rhs = p.parse_ssa_use()
    p.expect(":")
    ty = p.parse_type()
    return create_operation(name, operands=[lhs, rhs], result_types=[ty])


def _parse_cmpi(p: Parser, region) -> Operation:
    from ..dialects.std import CmpFOp, CmpIOp

    cls = CmpFOp if p.peek().text == "std.cmpf" else CmpIOp
    p.expect(cls.OP_NAME)
    pred = _unquote(p.expect_kind("STRING").text)
    p.expect(",")
    lhs = p.parse_ssa_use()
    p.expect(",")
    rhs = p.parse_ssa_use()
    p.expect(":")
    p.parse_type()
    return cls.create(pred, lhs, rhs)


def _parse_negf(p: Parser, region) -> Operation:
    from ..dialects.std import NegFOp

    p.expect("std.negf")
    value = p.parse_ssa_use()
    p.expect(":")
    p.parse_type()
    return NegFOp.create(value)


def _parse_affine_bound(p: Parser) -> Tuple:
    """Returns (map, operands)."""
    tok = p.peek()
    if tok.kind == "INT":
        return AffineMap.constant_map([int(p.next().text)]), []
    if tok.kind == "SSA":
        return AffineMap.identity(1), [p.parse_ssa_use()]
    if tok.text in ("min", "max"):
        p.next()
        tok = p.peek()
    if tok.text == "affine_map":
        map_ = p.parse_affine_map_literal()
        operands: List[Value] = []
        p.expect("(")
        while not p.accept(")"):
            operands.append(p.parse_ssa_use())
            p.accept(",")
        return map_, operands
    raise ParseError(f"bad affine bound at {tok.text!r}", tok.line)


def _parse_affine_for(p: Parser, region) -> Operation:
    from ..dialects.affine import AffineForOp

    p.expect("affine.for")
    iv_name = p.expect_kind("SSA").text
    p.expect("=")
    lb_map, lb_ops = _parse_affine_bound(p)
    p.expect("to")
    ub_map, ub_ops = _parse_affine_bound(p)
    step = 1
    if p.accept("step"):
        step = int(p.expect_kind("INT").text)
    op = AffineForOp.create(lb_map, ub_map, step, lb_ops, ub_ops)
    p.define_value(iv_name, op.induction_var)
    p.expect("{")
    body = op.body
    term = body.operations.pop()  # re-append after body ops
    term.parent_block = None
    p.parse_region_body(op.regions[0], body)
    if body.terminator is None:
        body.append(term)
    return op


def _parse_affine_load(p: Parser, region) -> Operation:
    from ..dialects.affine import AffineLoadOp

    p.expect("affine.load")
    memref = p.parse_ssa_use()
    operands, map_ = p.parse_access()
    p.expect(":")
    p.parse_type()
    return AffineLoadOp.create(memref, operands, map_)


def _parse_affine_store(p: Parser, region) -> Operation:
    from ..dialects.affine import AffineStoreOp

    p.expect("affine.store")
    value = p.parse_ssa_use()
    p.expect(",")
    memref = p.parse_ssa_use()
    operands, map_ = p.parse_access()
    p.expect(":")
    p.parse_type()
    return AffineStoreOp.create(value, memref, operands, map_)


def _parse_affine_apply(p: Parser, region) -> Operation:
    from ..dialects.affine import AffineApplyOp

    p.expect("affine.apply")
    map_ = p.parse_affine_map_literal()
    operands: List[Value] = []
    p.expect("(")
    while not p.accept(")"):
        operands.append(p.parse_ssa_use())
        p.accept(",")
    return AffineApplyOp.create(map_, operands)


def _parse_triple_form(p: Parser, region) -> Operation:
    """``name(%a, %b, %c) {attrs} : (types)``."""
    name = p.next().text
    p.expect("(")
    operands: List[Value] = []
    while not p.at(")"):
        operands.append(p.parse_ssa_use())
        p.accept(",")
    p.expect(")")
    attrs = p.parse_attr_dict()
    if p.accept(":"):
        p.parse_type_list_parens()
    return create_operation(name, operands=operands, attributes=attrs)


def _parse_scf_for(p: Parser, region) -> Operation:
    from ..dialects.scf import ForOp

    p.expect("scf.for")
    iv_name = p.expect_kind("SSA").text
    p.expect("=")
    lb = p.parse_ssa_use()
    p.expect("to")
    ub = p.parse_ssa_use()
    p.expect("step")
    step = p.parse_ssa_use()
    op = ForOp.create(lb, ub, step)
    p.define_value(iv_name, op.induction_var)
    p.expect("{")
    body = op.body
    term = body.operations.pop()
    term.parent_block = None
    p.parse_region_body(op.regions[0], body)
    if body.terminator is None:
        body.append(term)
    return op


def _parse_scf_if(p: Parser, region) -> Operation:
    from ..dialects.scf import IfOp, YieldOp

    p.expect("scf.if")
    cond = p.parse_ssa_use()
    op = IfOp.create(cond)
    p.expect("{")
    then = op.then_block
    term = then.operations.pop()
    term.parent_block = None
    p.parse_region_body(op.regions[0], then)
    if then.terminator is None:
        then.append(term)
    if p.accept("else"):
        else_region = Region(op)
        op.regions.append(else_region)
        els = else_region.add_block()
        p.expect("{")
        p.parse_region_body(else_region, els)
        if els.terminator is None:
            els.append(YieldOp.create())
    return op


def _parse_linalg_generic(p: Parser, region) -> Operation:
    from ..dialects.linalg import GenericOp, LinalgYieldOp

    p.expect("linalg.generic")
    attrs = p.parse_attr_dict()
    maps = [a.map for a in attrs["indexing_maps"]]
    iters = [a.value for a in attrs["iterator_types"]]
    p.expect("ins")
    p.expect("(")
    inputs: List[Value] = []
    while not p.accept(")"):
        inputs.append(p.parse_ssa_use())
        p.accept(",")
    p.expect("outs")
    p.expect("(")
    outputs: List[Value] = []
    while not p.accept(")"):
        outputs.append(p.parse_ssa_use())
        p.accept(",")
    op = GenericOp.create(inputs, outputs, maps, iters)
    p.expect("{")
    body = op.body
    # re-bind body block arguments by their printed names
    p.expect_kind("BLOCKREF")
    p.expect("(")
    idx = 0
    while not p.accept(")"):
        arg_name = p.expect_kind("SSA").text
        p.expect(":")
        p.parse_type()
        p.define_value(arg_name, body.arguments[idx])
        idx += 1
        p.accept(",")
    p.expect(":")
    while not p.accept("}"):
        body.append(p.parse_operation(op.regions[0]))
    return op


def _parse_linalg_yield(p: Parser, region) -> Operation:
    from ..dialects.linalg import LinalgYieldOp

    p.expect("linalg.yield")
    operands = p.parse_ssa_use_list()
    p.expect(":")
    for _ in operands:
        p.parse_type()
        p.accept(",")
    return LinalgYieldOp.create(operands)


def _parse_branch(p: Parser, region) -> Operation:
    from ..dialects.llvm import BrOp

    p.expect("llvm.br")
    dest = p._block_for_label(region, p.expect_kind("BLOCKREF").text)
    args: List[Value] = []
    if p.accept("("):
        while not p.accept(")"):
            args.append(p.parse_ssa_use())
            p.accept(",")
    return BrOp.create(dest, args)


def _parse_cond_branch(p: Parser, region) -> Operation:
    from ..dialects.llvm import CondBrOp

    p.expect("llvm.cond_br")
    cond = p.parse_ssa_use()
    p.expect(",")
    true_dest = p._block_for_label(region, p.expect_kind("BLOCKREF").text)
    p.expect(",")
    false_dest = p._block_for_label(region, p.expect_kind("BLOCKREF").text)
    return CondBrOp.create(cond, true_dest, false_dest)


def _parse_call(p: Parser, region) -> Operation:
    name = p.next().text  # func.call or llvm.call
    callee = p.expect_kind("SYMBOL").text[1:]
    p.expect("(")
    operands: List[Value] = []
    while not p.at(")"):
        operands.append(p.parse_ssa_use())
        p.accept(",")
    p.expect(")")
    p.expect(":")
    p.parse_type_list_parens()
    p.expect("->")
    result_types = p.parse_type_list_parens()
    if name == "func.call":
        from .builtin import CallOp

        return CallOp.create(callee, operands, result_types)
    from ..dialects.llvm import CallOp as LLVMCallOp

    return LLVMCallOp.create(callee, operands, result_types)


def _parse_transform_sequence(p: Parser, region) -> Operation:
    from ..dialects.transform import SequenceOp

    p.expect("transform.sequence")
    p.expect("{")
    op = SequenceOp.create()
    # Steps go before the implicit transform.yield terminator.
    while not p.accept("}"):
        op.append_step(p.parse_operation(op.regions[0]))
    return op


def _parse_transform_match(p: Parser, region) -> Operation:
    from ..dialects.transform import MatchOp

    p.expect("transform.match")
    target = None
    if p.peek().kind == "SYMBOL":
        target = p.next().text[1:]
    return MatchOp.create(target)


def _parse_transform_step(p: Parser, region) -> Operation:
    from .core import create_operation
    from ..dialects.transform import TransformHandleType

    name = p.next().text
    handle = p.parse_ssa_use()
    attrs = p.parse_attr_dict()
    return create_operation(
        name,
        operands=[handle],
        result_types=[TransformHandleType()],
        attributes=attrs,
    )


_TRANSFORM_STEP_OPS = [
    "transform.fuse",
    "transform.copy_elim",
    "transform.dead_loops",
    "transform.canonicalize",
    "transform.distribute",
    "transform.tile",
    "transform.unroll_jam",
    "transform.vectorize",
    "transform.raise",
]


_TRIPLE_OPS = [
    "affine.matmul",
    "linalg.matmul",
    "linalg.matvec",
    "linalg.conv2d_nchw",
    "linalg.transpose",
    "linalg.reshape",
    "linalg.fill",
    "linalg.copy",
    "blas.sgemm",
    "blas.sgemv",
    "blas.transpose",
    "blas.reshape",
    "blas.conv2d",
]

_BINARY_OPS = [
    "std.addf",
    "std.subf",
    "std.mulf",
    "std.divf",
    "std.maxf",
    "std.addi",
    "std.subi",
    "std.muli",
    "std.divi",
    "std.remi",
]

_CUSTOM_PARSERS = {
    "return": _parse_return,
    "std.constant": _parse_constant,
    "std.cmpi": _parse_cmpi,
    "std.cmpf": _parse_cmpi,
    "std.negf": _parse_negf,
    "affine.for": _parse_affine_for,
    "affine.load": _parse_affine_load,
    "affine.store": _parse_affine_store,
    "affine.apply": _parse_affine_apply,
    "scf.for": _parse_scf_for,
    "scf.if": _parse_scf_if,
    "linalg.generic": _parse_linalg_generic,
    "linalg.yield": _parse_linalg_yield,
    "llvm.br": _parse_branch,
    "llvm.cond_br": _parse_cond_branch,
    "func.call": _parse_call,
    "llvm.call": _parse_call,
    "transform.sequence": _parse_transform_sequence,
    "transform.match": _parse_transform_match,
}
for _name in _TRANSFORM_STEP_OPS:
    _CUSTOM_PARSERS[_name] = _parse_transform_step
for _name in _TRIPLE_OPS:
    _CUSTOM_PARSERS[_name] = _parse_triple_form
for _name in _BINARY_OPS:
    _CUSTOM_PARSERS[_name] = _parse_binary_arith


def parse_module(source: str) -> ModuleOp:
    """Parse textual IR into a module."""
    return Parser(source).parse_module()


def parse_func(source: str) -> FuncOp:
    """Parse a single function (without a module wrapper)."""
    module = parse_module(source)
    funcs = module.functions
    if len(funcs) != 1:
        raise IRError(f"expected exactly one function, got {len(funcs)}")
    return funcs[0]
