"""Insertion-point-based IR construction."""

from __future__ import annotations

from typing import Optional, Sequence

from .attributes import Attribute
from .core import Block, IRError, Operation, create_operation
from .types import Type
from .values import Value


class InsertionPoint:
    """A position inside a block where new ops are inserted."""

    def __init__(self, block: Block, index: Optional[int] = None):
        self.block = block
        #: ``None`` means "always append at the end".
        self.index = index

    @staticmethod
    def at_end(block: Block) -> "InsertionPoint":
        return InsertionPoint(block, None)

    @staticmethod
    def at_start(block: Block) -> "InsertionPoint":
        return InsertionPoint(block, 0)

    @staticmethod
    def before(op: Operation) -> "InsertionPoint":
        if op.parent_block is None:
            raise IRError("op is not in a block")
        return InsertionPoint(op.parent_block, op.parent_block.operations.index(op))

    @staticmethod
    def after(op: Operation) -> "InsertionPoint":
        if op.parent_block is None:
            raise IRError("op is not in a block")
        return InsertionPoint(
            op.parent_block, op.parent_block.operations.index(op) + 1
        )


class Builder:
    """Creates operations at a movable insertion point."""

    def __init__(self, insertion_point: Optional[InsertionPoint] = None):
        self._ip = insertion_point

    # -- insertion point management --------------------------------------

    @property
    def insertion_block(self) -> Block:
        if self._ip is None:
            raise IRError("builder has no insertion point")
        return self._ip.block

    def set_insertion_point_to_end(self, block: Block) -> None:
        self._ip = InsertionPoint.at_end(block)

    def set_insertion_point_to_start(self, block: Block) -> None:
        self._ip = InsertionPoint.at_start(block)

    def set_insertion_point_before(self, op: Operation) -> None:
        self._ip = InsertionPoint.before(op)

    def set_insertion_point_after(self, op: Operation) -> None:
        self._ip = InsertionPoint.after(op)

    # -- op creation -------------------------------------------------------

    def insert(self, op: Operation) -> Operation:
        if self._ip is None:
            raise IRError("builder has no insertion point")
        if self._ip.index is None:
            self._ip.block.append(op)
        else:
            self._ip.block.insert(self._ip.index, op)
            self._ip.index += 1
        return op

    def create(
        self,
        name: str,
        operands: Sequence[Value] = (),
        result_types: Sequence[Type] = (),
        attributes: Optional[dict] = None,
        num_regions: int = 0,
    ) -> Operation:
        op = create_operation(
            name,
            operands=operands,
            result_types=result_types,
            attributes=attributes,
            num_regions=num_regions,
        )
        return self.insert(op)
