"""Core IR structures: operations, blocks, and regions.

The design mirrors MLIR: an :class:`Operation` is the atomic IR unit;
it uses SSA values as operands, produces new values as results, carries
attributes, and may hold nested :class:`Region` instances, each of which
contains :class:`Block` instances, which in turn contain operations.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Type as PyType

from .attributes import Attribute, attr_from_python
from .types import Type
from .values import BlockArgument, OpOperand, OpResult, Value


class IRError(Exception):
    """Raised on structurally invalid IR manipulation."""


#: Global registry mapping fully-qualified op names ("affine.for") to the
#: Python class implementing them.  Populated by dialect modules at import
#: time; :func:`create_operation` dispatches through it so that parsed or
#: generically-built ops get the right Python class.
OP_REGISTRY: Dict[str, PyType["Operation"]] = {}


def register_op(cls: PyType["Operation"]) -> PyType["Operation"]:
    """Class decorator registering an operation class by its OP_NAME."""
    name = getattr(cls, "OP_NAME", None)
    if not name:
        raise IRError(f"{cls.__name__} lacks an OP_NAME")
    OP_REGISTRY[name] = cls
    return cls


class Operation:
    """A single IR operation.

    Subclasses set ``OP_NAME`` ("dialect.mnemonic") and may add accessor
    properties, a :meth:`verify_` hook, and custom print/parse methods.
    """

    OP_NAME = "builtin.unregistered"
    #: Ops marked as terminators must appear last in their block.
    IS_TERMINATOR = False
    #: Interpreter handler memoized per instance on first dispatch
    #: (class-level default keeps the cold read a plain attribute miss).
    _interp_handler = None

    def __init__(
        self,
        operands: Sequence[Value] = (),
        result_types: Sequence[Type] = (),
        attributes: Optional[Dict[str, Attribute]] = None,
        num_regions: int = 0,
        name: Optional[str] = None,
        successors: Sequence["Block"] = (),
    ):
        self._name = name or self.OP_NAME
        #: Successor blocks for branch-like terminators (CFG dialects).
        self.successors: List[Block] = list(successors)
        self._operands: List[OpOperand] = []
        for i, value in enumerate(operands):
            if not isinstance(value, Value):
                raise IRError(
                    f"operand {i} of {self._name} is not a Value: {value!r}"
                )
            self._operands.append(OpOperand(self, i, value))
        self.results: List[OpResult] = [
            OpResult(self, i, ty) for i, ty in enumerate(result_types)
        ]
        self.attributes: Dict[str, Attribute] = dict(attributes or {})
        self.regions: List[Region] = [Region(self) for _ in range(num_regions)]
        self.parent_block: Optional[Block] = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def dialect(self) -> str:
        return self._name.split(".", 1)[0]

    @property
    def operands(self) -> List[Value]:
        return [operand.value for operand in self._operands]

    @property
    def num_operands(self) -> int:
        return len(self._operands)

    def operand(self, index: int) -> Value:
        return self._operands[index].value

    def set_operand(self, index: int, value: Value) -> None:
        self._operands[index].set(value)

    def append_operand(self, value: Value) -> None:
        self._operands.append(OpOperand(self, len(self._operands), value))

    @property
    def result(self) -> OpResult:
        if len(self.results) != 1:
            raise IRError(f"{self._name} has {len(self.results)} results")
        return self.results[0]

    @property
    def num_results(self) -> int:
        return len(self.results)

    def attr(self, key: str, default=None):
        return self.attributes.get(key, default)

    def set_attr(self, key: str, value) -> None:
        self.attributes[key] = attr_from_python(value)

    @property
    def parent_op(self) -> Optional["Operation"]:
        if self.parent_block is None or self.parent_block.parent_region is None:
            return None
        return self.parent_block.parent_region.parent_op

    @property
    def parent_region(self) -> Optional["Region"]:
        return self.parent_block.parent_region if self.parent_block else None

    def region(self, index: int = 0) -> "Region":
        return self.regions[index]

    @property
    def body(self) -> "Block":
        """Entry block of the first region (loops, functions, modules)."""
        return self.regions[0].entry_block

    # ------------------------------------------------------------------
    # Structural manipulation
    # ------------------------------------------------------------------

    def drop_all_references(self) -> None:
        """Drop all operand uses, recursively through nested regions."""
        for operand in self._operands:
            operand.drop()
        self._operands = []
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.operations):
                    op.drop_all_references()

    def erase(self) -> None:
        """Remove this op from its block and sever all use-def edges.

        The op's results must be unused.
        """
        for res in self.results:
            if res.is_used():
                raise IRError(
                    f"cannot erase {self._name}: result #{res.index} still used"
                )
        self.drop_all_references()
        if self.parent_block is not None:
            self.parent_block.remove(self)

    def replace_all_uses_with(self, new_values: Sequence[Value]) -> None:
        if len(new_values) != len(self.results):
            raise IRError("replacement value count mismatch")
        for res, new in zip(self.results, new_values):
            res.replace_all_uses_with(new)

    def move_before(self, other: "Operation") -> None:
        if other.parent_block is None:
            raise IRError("target op is not in a block")
        if self.parent_block is not None:
            self.parent_block.remove(self)
        block = other.parent_block
        block.insert(block.operations.index(other), self)

    def move_after(self, other: "Operation") -> None:
        if other.parent_block is None:
            raise IRError("target op is not in a block")
        if self.parent_block is not None:
            self.parent_block.remove(self)
        block = other.parent_block
        block.insert(block.operations.index(other) + 1, self)

    def is_before_in_block(self, other: "Operation") -> bool:
        if self.parent_block is not other.parent_block or self.parent_block is None:
            raise IRError("ops are not in the same block")
        ops = self.parent_block.operations
        return ops.index(self) < ops.index(other)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def walk(self) -> Iterator["Operation"]:
        """Pre-order traversal: this op, then all nested ops."""
        yield self
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.operations):
                    yield from op.walk()

    def walk_inner(self) -> Iterator["Operation"]:
        """All nested ops, excluding this op itself."""
        walker = self.walk()
        next(walker)
        return walker

    def is_ancestor_of(self, other: "Operation") -> bool:
        node = other
        while node is not None:
            if node is self:
                return True
            node = node.parent_op
        return False

    # ------------------------------------------------------------------
    # Cloning
    # ------------------------------------------------------------------

    def clone(self, value_map: Optional[Dict[Value, Value]] = None) -> "Operation":
        """Deep-copy this operation (and nested regions).

        ``value_map`` maps original values to replacements; operands found
        in the map are remapped, results and block arguments of the clone
        are recorded in it.
        """
        if value_map is None:
            value_map = {}
        new_operands = [value_map.get(v, v) for v in self.operands]
        new_op = create_operation(
            self._name,
            operands=new_operands,
            result_types=[r.type for r in self.results],
            attributes=dict(self.attributes),
            num_regions=len(self.regions),
            successors=[value_map.get(b, b) for b in self.successors],
        )
        for old_res, new_res in zip(self.results, new_op.results):
            value_map[old_res] = new_res
        for old_region, new_region in zip(self.regions, new_op.regions):
            old_region.clone_into(new_region, value_map)
        return new_op

    # ------------------------------------------------------------------
    # Verification and display
    # ------------------------------------------------------------------

    def verify_(self) -> None:
        """Op-specific structural checks; overridden by subclasses."""

    def __repr__(self) -> str:
        from .printer import print_op_signature

        return f"<{print_op_signature(self)}>"


class Block:
    """An ordered list of operations with entry arguments."""

    def __init__(self, arg_types: Sequence[Type] = ()):
        self.arguments: List[BlockArgument] = []
        self.operations: List[Operation] = []
        self.parent_region: Optional[Region] = None
        for ty in arg_types:
            self.add_argument(ty)

    def add_argument(self, ty: Type) -> BlockArgument:
        arg = BlockArgument(self, len(self.arguments), ty)
        self.arguments.append(arg)
        return arg

    def append(self, op: Operation) -> Operation:
        return self.insert(len(self.operations), op)

    def insert(self, index: int, op: Operation) -> Operation:
        if op.parent_block is not None:
            raise IRError(f"{op.name} is already in a block")
        self.operations.insert(index, op)
        op.parent_block = self
        return op

    def remove(self, op: Operation) -> None:
        self.operations.remove(op)
        op.parent_block = None

    @property
    def parent_op(self) -> Optional[Operation]:
        return self.parent_region.parent_op if self.parent_region else None

    @property
    def terminator(self) -> Optional[Operation]:
        if self.operations and self.operations[-1].IS_TERMINATOR:
            return self.operations[-1]
        return None

    def ops_without_terminator(self) -> List[Operation]:
        term = self.terminator
        if term is None:
            return list(self.operations)
        return self.operations[:-1]

    def walk(self) -> Iterator[Operation]:
        for op in list(self.operations):
            yield from op.walk()

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def __len__(self) -> int:
        return len(self.operations)


class Region:
    """A list of blocks owned by an operation."""

    def __init__(self, parent_op: Optional[Operation] = None):
        self.blocks: List[Block] = []
        self.parent_op = parent_op

    @property
    def entry_block(self) -> Block:
        if not self.blocks:
            raise IRError("region has no blocks")
        return self.blocks[0]

    def add_block(self, block: Optional[Block] = None) -> Block:
        if block is None:  # note: an empty Block is falsy (len == 0)
            block = Block()
        if block.parent_region is not None:
            raise IRError("block is already in a region")
        self.blocks.append(block)
        block.parent_region = self
        return block

    def is_empty(self) -> bool:
        return not self.blocks

    def clone_into(self, dest: "Region", value_map: Dict[Value, Value]) -> None:
        for block in self.blocks:
            new_block = dest.add_block()
            value_map[block] = new_block  # lets branches remap successors
            for arg in block.arguments:
                new_arg = new_block.add_argument(arg.type)
                value_map[arg] = new_arg
        for block, new_block in zip(self.blocks, dest.blocks[-len(self.blocks):]):
            for op in block.operations:
                new_block.append(op.clone(value_map))

    def walk(self) -> Iterator[Operation]:
        for block in self.blocks:
            yield from block.walk()


def create_operation(
    name: str,
    operands: Sequence[Value] = (),
    result_types: Sequence[Type] = (),
    attributes: Optional[Dict[str, Attribute]] = None,
    num_regions: int = 0,
    successors: Sequence[Block] = (),
) -> Operation:
    """Instantiate an op, dispatching to its registered class if any."""
    cls = OP_REGISTRY.get(name, Operation)
    op = cls.__new__(cls)
    Operation.__init__(
        op,
        operands=operands,
        result_types=result_types,
        attributes=attributes,
        num_regions=num_regions,
        name=name,
        successors=successors,
    )
    return op
