"""Textual IR printer (MLIR-flavored syntax).

Custom assembly forms are provided for the structural and frequently
read ops (functions, loops, memory access, arithmetic); everything else
falls back to the quoted generic form:

    %0 = "dialect.op"(%a, %b) {attr = value} : (t0, t1) -> (r0)
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .affine_expr import AffineExpr
from .affine_map import AffineMap, _pretty_expr
from .attributes import Attribute
from .core import Block, Operation
from .values import Value


class _Namer:
    """Assigns stable textual names to SSA values and blocks."""

    def __init__(self):
        self._value_names: Dict[int, str] = {}
        self._block_names: Dict[int, str] = {}
        self._next_value = 0
        self._next_block = 0

    def name_value(self, value: Value, preferred: Optional[str] = None) -> str:
        key = id(value)
        if key not in self._value_names:
            if preferred is not None:
                self._value_names[key] = f"%{preferred}"
            else:
                self._value_names[key] = f"%{self._next_value}"
                self._next_value += 1
        return self._value_names[key]

    def name_block(self, block: Block) -> str:
        key = id(block)
        if key not in self._block_names:
            self._block_names[key] = f"^bb{self._next_block}"
            self._next_block += 1
        return self._block_names[key]

    def __call__(self, value: Value) -> str:
        return self.name_value(value)


def render_access_exprs(
    map_: AffineMap, operand_names: List[str]
) -> str:
    """Render map results with dims replaced by operand names:
    ``[%i * 2 + 1, %j]``."""
    rendered = []
    for expr in map_.results:
        text = _pretty_expr(expr)
        # Replace longest dim names first so d10 is not clobbered by d1.
        for pos in sorted(range(map_.num_dims), reverse=True):
            text = text.replace(f"d{pos}", operand_names[pos])
        rendered.append(text)
    return "[" + ", ".join(rendered) + "]"


def _attr_text(attr: Attribute) -> str:
    return str(attr)


def _attr_dict_text(op: Operation, skip: tuple = ()) -> str:
    items = {k: v for k, v in sorted(op.attributes.items()) if k not in skip}
    if not items:
        return ""
    body = ", ".join(f"{k} = {_attr_text(v)}" for k, v in items.items())
    return " {" + body + "}"


class Printer:
    def __init__(self, elide_empty_terminators: bool = True):
        self.lines: List[str] = []
        self.indent = 0
        self.namer = _Namer()
        self.elide_empty_terminators = elide_empty_terminators

    def emit(self, text: str) -> None:
        self.lines.append("  " * self.indent + text)

    def result(self) -> str:
        return "\n".join(self.lines) + "\n"

    # ------------------------------------------------------------------

    def print_operation(self, op: Operation) -> None:
        handler = _CUSTOM_PRINTERS.get(op.name)
        if handler is not None:
            handler(self, op)
        else:
            self._print_generic(op)

    def _results_prefix(self, op: Operation) -> str:
        if not op.results:
            return ""
        names = ", ".join(self.namer(r) for r in op.results)
        return f"{names} = "

    def _print_generic(self, op: Operation) -> None:
        operands = ", ".join(self.namer(v) for v in op.operands)
        succ = ""
        if op.successors:
            succ = "[" + ", ".join(
                self.namer.name_block(b) for b in op.successors
            ) + "]"
        attrs = _attr_dict_text(op)
        in_types = ", ".join(str(v.type) for v in op.operands)
        out_types = ", ".join(str(r.type) for r in op.results)
        sig = f" : ({in_types}) -> ({out_types})"
        head = f'{self._results_prefix(op)}"{op.name}"({operands}){succ}{attrs}{sig}'
        if not op.regions:
            self.emit(head)
            return
        self.emit(head + " (")
        for region in op.regions:
            self._print_region_blocks(region.blocks)
        self.emit(")")

    def _print_region_blocks(self, blocks, skip_first_label: bool = False) -> None:
        self.indent += 1
        for i, block in enumerate(blocks):
            if i == 0 and skip_first_label:
                self._print_block_body(block)
                continue
            if i > 0 or block.arguments:
                args = ", ".join(
                    f"{self.namer(a)}: {a.type}" for a in block.arguments
                )
                label = self.namer.name_block(block)
                self.emit(f"{label}({args}):" if args else f"{label}:")
            self._print_block_body(block)
        self.indent -= 1

    def _print_block_body(self, block: Block) -> None:
        for op in block.operations:
            if (
                self.elide_empty_terminators
                and op.IS_TERMINATOR
                and op.name in ("affine.yield", "scf.yield")
                and op.num_operands == 0
            ):
                continue
            self.print_operation(op)

    def print_single_block_region(self, block: Block) -> None:
        self.indent += 1
        self._print_block_body(block)
        self.indent -= 1


# ----------------------------------------------------------------------
# Custom assembly forms
# ----------------------------------------------------------------------


def _print_module(printer: Printer, op: Operation) -> None:
    printer.emit("module {")
    printer.print_single_block_region(op.body)
    printer.emit("}")


def _print_func(printer: Printer, op: Operation) -> None:
    name = op.attributes["sym_name"].value
    args = ", ".join(
        f"{printer.namer.name_value(a, preferred=f'arg{i}')}: {a.type}"
        for i, a in enumerate(op.entry_block.arguments)
    )
    results = op.attributes["function_type"].value.results
    res = ""
    if results:
        res = " -> (" + ", ".join(str(t) for t in results) + ")"
    printer.emit(f"func @{name}({args}){res} {{")
    blocks = op.regions[0].blocks
    if len(blocks) == 1:
        printer.print_single_block_region(blocks[0])
    else:
        printer._print_region_blocks(blocks, skip_first_label=True)
    printer.emit("}")


def _print_return(printer: Printer, op: Operation) -> None:
    if op.num_operands == 0:
        printer.emit("return")
    else:
        names = ", ".join(printer.namer(v) for v in op.operands)
        types = ", ".join(str(v.type) for v in op.operands)
        printer.emit(f"return {names} : {types}")


def _print_constant(printer: Printer, op: Operation) -> None:
    value = op.attributes["value"]
    printer.emit(
        f"{printer._results_prefix(op)}std.constant {value} : "
        f"{op.results[0].type}"
    )


def _print_binary_arith(printer: Printer, op: Operation) -> None:
    lhs, rhs = op.operands
    printer.emit(
        f"{printer._results_prefix(op)}{op.name} "
        f"{printer.namer(lhs)}, {printer.namer(rhs)} : {op.results[0].type}"
    )


def _print_cmpi(printer: Printer, op: Operation) -> None:
    lhs, rhs = op.operands
    pred = op.attributes["predicate"].value
    printer.emit(
        f"{printer._results_prefix(op)}{op.name} \"{pred}\", "
        f"{printer.namer(lhs)}, {printer.namer(rhs)} : {lhs.type}"
    )


def _print_negf(printer: Printer, op: Operation) -> None:
    printer.emit(
        f"{printer._results_prefix(op)}std.negf "
        f"{printer.namer(op.operand(0))} : {op.results[0].type}"
    )


def _bound_text(
    printer: Printer, map_: AffineMap, operands: List[Value], kind: str = ""
) -> str:
    if map_.num_results == 1 and map_.results[0].is_constant():
        return str(map_.results[0].evaluate((), ()))
    if (
        map_.num_results == 1
        and map_.num_dims == 1
        and map_.is_identity()
        and len(operands) == 1
    ):
        return printer.namer(operands[0])
    names = [printer.namer(v) for v in operands]
    prefix = f"{kind} " if kind and map_.num_results > 1 else ""
    return f"{prefix}affine_map<{map_}>({', '.join(names)})"


def _print_affine_for(printer: Printer, op) -> None:
    iv = printer.namer(op.induction_var)
    lb = _bound_text(printer, op.lower_bound_map, op.lb_operands, "max")
    ub = _bound_text(printer, op.upper_bound_map, op.ub_operands, "min")
    step = f" step {op.step}" if op.step != 1 else ""
    printer.emit(f"affine.for {iv} = {lb} to {ub}{step} {{")
    printer.print_single_block_region(op.body)
    printer.emit("}")


def _print_affine_load(printer: Printer, op) -> None:
    names = [printer.namer(v) for v in op.indices]
    access = render_access_exprs(op.map, names)
    printer.emit(
        f"{printer._results_prefix(op)}affine.load "
        f"{printer.namer(op.memref)}{access} : {op.memref.type}"
    )


def _print_affine_store(printer: Printer, op) -> None:
    names = [printer.namer(v) for v in op.indices]
    access = render_access_exprs(op.map, names)
    printer.emit(
        f"affine.store {printer.namer(op.value)}, "
        f"{printer.namer(op.memref)}{access} : {op.memref.type}"
    )


def _print_affine_apply(printer: Printer, op) -> None:
    names = ", ".join(printer.namer(v) for v in op.operands)
    printer.emit(
        f"{printer._results_prefix(op)}affine.apply "
        f"affine_map<{op.map}>({names})"
    )


def _print_triple(printer: Printer, op: Operation) -> None:
    names = ", ".join(printer.namer(v) for v in op.operands)
    attrs = _attr_dict_text(op)
    types = ", ".join(str(v.type) for v in op.operands)
    printer.emit(f"{op.name}({names}){attrs} : ({types})")


def _print_scf_for(printer: Printer, op) -> None:
    iv = printer.namer(op.induction_var)
    printer.emit(
        f"scf.for {iv} = {printer.namer(op.lower_bound)} to "
        f"{printer.namer(op.upper_bound)} step {printer.namer(op.step)} {{"
    )
    printer.print_single_block_region(op.body)
    printer.emit("}")


def _print_scf_if(printer: Printer, op) -> None:
    printer.emit(f"scf.if {printer.namer(op.condition)} {{")
    printer.print_single_block_region(op.then_block)
    if len(op.regions) > 1:
        printer.emit("} else {")
        printer.print_single_block_region(op.else_block)
    printer.emit("}")


def _print_generic_linalg(printer: Printer, op) -> None:
    ins = ", ".join(printer.namer(v) for v in op.inputs)
    outs = ", ".join(printer.namer(v) for v in op.outputs)
    maps = ", ".join(f"affine_map<{m}>" for m in op.indexing_maps)
    iters = ", ".join(f'"{t}"' for t in op.iterator_types)
    printer.emit(
        f"linalg.generic {{indexing_maps = [{maps}], "
        f"iterator_types = [{iters}]}} ins({ins}) outs({outs}) {{"
    )
    printer.indent += 1
    args = ", ".join(
        f"{printer.namer(a)}: {a.type}" for a in op.body.arguments
    )
    printer.emit(f"^bb0({args}):")
    printer._print_block_body(op.body)
    printer.indent -= 1
    printer.emit("}")


def _print_linalg_yield(printer: Printer, op: Operation) -> None:
    names = ", ".join(printer.namer(v) for v in op.operands)
    types = ", ".join(str(v.type) for v in op.operands)
    printer.emit(f"linalg.yield {names} : {types}")


def _print_branch(printer: Printer, op) -> None:
    dest = printer.namer.name_block(op.successors[0])
    if op.num_operands:
        args = ", ".join(printer.namer(v) for v in op.operands)
        printer.emit(f"llvm.br {dest}({args})")
    else:
        printer.emit(f"llvm.br {dest}")


def _print_cond_branch(printer: Printer, op) -> None:
    printer.emit(
        f"llvm.cond_br {printer.namer(op.condition)}, "
        f"{printer.namer.name_block(op.true_dest)}, "
        f"{printer.namer.name_block(op.false_dest)}"
    )


def _print_call_like(printer: Printer, op, callee: str) -> None:
    names = ", ".join(printer.namer(v) for v in op.operands)
    in_types = ", ".join(str(v.type) for v in op.operands)
    out_types = ", ".join(str(r.type) for r in op.results)
    printer.emit(
        f"{printer._results_prefix(op)}{op.name} @{callee}({names}) : "
        f"({in_types}) -> ({out_types})"
    )


def _print_transform_sequence(printer: Printer, op) -> None:
    printer.emit("transform.sequence {")
    printer.indent += 1
    for step in op.body.operations:
        if step.name == "transform.yield":
            continue  # implicit terminator, re-added by the parser
        printer.print_operation(step)
    printer.indent -= 1
    printer.emit("}")


def _print_transform_match(printer: Printer, op) -> None:
    target = op.attributes.get("target")
    suffix = f" @{target.value}" if target is not None else ""
    printer.emit(f"{printer._results_prefix(op)}transform.match{suffix}")


def _print_transform_step(printer: Printer, op) -> None:
    printer.emit(
        f"{printer._results_prefix(op)}{op.name} "
        f"{printer.namer(op.operand(0))}{_attr_dict_text(op)}"
    )


_CUSTOM_PRINTERS = {
    "builtin.module": _print_module,
    "func.func": _print_func,
    "func.return": _print_return,
    "func.call": lambda p, op: _print_call_like(p, op, op.callee),
    "llvm.call": lambda p, op: _print_call_like(p, op, op.callee),
    "std.constant": _print_constant,
    "std.addf": _print_binary_arith,
    "std.subf": _print_binary_arith,
    "std.mulf": _print_binary_arith,
    "std.divf": _print_binary_arith,
    "std.maxf": _print_binary_arith,
    "std.addi": _print_binary_arith,
    "std.subi": _print_binary_arith,
    "std.muli": _print_binary_arith,
    "std.divi": _print_binary_arith,
    "std.remi": _print_binary_arith,
    "std.cmpi": _print_cmpi,
    "std.cmpf": _print_cmpi,
    "std.negf": _print_negf,
    "affine.for": _print_affine_for,
    "affine.load": _print_affine_load,
    "affine.store": _print_affine_store,
    "affine.apply": _print_affine_apply,
    "affine.matmul": _print_triple,
    "scf.for": _print_scf_for,
    "scf.if": _print_scf_if,
    "linalg.matmul": _print_triple,
    "linalg.matvec": _print_triple,
    "linalg.conv2d_nchw": _print_triple,
    "linalg.transpose": _print_triple,
    "linalg.reshape": _print_triple,
    "linalg.fill": _print_triple,
    "linalg.copy": _print_triple,
    "linalg.generic": _print_generic_linalg,
    "linalg.yield": _print_linalg_yield,
    "blas.sgemm": _print_triple,
    "blas.sgemv": _print_triple,
    "blas.transpose": _print_triple,
    "blas.reshape": _print_triple,
    "blas.conv2d": _print_triple,
    "llvm.br": _print_branch,
    "llvm.cond_br": _print_cond_branch,
    "transform.sequence": _print_transform_sequence,
    "transform.match": _print_transform_match,
    "transform.fuse": _print_transform_step,
    "transform.copy_elim": _print_transform_step,
    "transform.dead_loops": _print_transform_step,
    "transform.canonicalize": _print_transform_step,
    "transform.distribute": _print_transform_step,
    "transform.tile": _print_transform_step,
    "transform.unroll_jam": _print_transform_step,
    "transform.vectorize": _print_transform_step,
    "transform.raise": _print_transform_step,
}


def print_module(op: Operation) -> str:
    """Print any operation (module, function, or single op) to text."""
    printer = Printer()
    printer.print_operation(op)
    return printer.result()


def print_op_signature(op: Operation) -> str:
    """One-line summary used in reprs and diagnostics."""
    operand_types = ", ".join(str(v.type) for v in op.operands)
    result_types = ", ".join(str(r.type) for r in op.results)
    return f"{op.name}({operand_types}) -> ({result_types})"
