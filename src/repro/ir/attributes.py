"""Attributes attach compile-time constant information to operations."""

from __future__ import annotations

from typing import Sequence, Tuple

from .types import Type


class Attribute:
    """Base class for all attributes.  Immutable, structurally compared."""

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        return ()

    def __repr__(self) -> str:
        return str(self)


class IntegerAttr(Attribute):
    def __init__(self, value: int):
        self.value = int(value)

    def _key(self) -> tuple:
        return (self.value,)

    def __str__(self) -> str:
        return str(self.value)


class FloatAttr(Attribute):
    def __init__(self, value: float):
        self.value = float(value)

    def _key(self) -> tuple:
        return (self.value,)

    def __str__(self) -> str:
        text = repr(self.value)
        return text if ("." in text or "e" in text) else text + ".0"


class BoolAttr(Attribute):
    def __init__(self, value: bool):
        self.value = bool(value)

    def _key(self) -> tuple:
        return (self.value,)

    def __str__(self) -> str:
        return "true" if self.value else "false"


class StringAttr(Attribute):
    def __init__(self, value: str):
        self.value = value

    def _key(self) -> tuple:
        return (self.value,)

    def __str__(self) -> str:
        return f'"{self.value}"'


class TypeAttr(Attribute):
    def __init__(self, value: Type):
        self.value = value

    def _key(self) -> tuple:
        return (self.value,)

    def __str__(self) -> str:
        return str(self.value)


class ArrayAttr(Attribute):
    def __init__(self, elements: Sequence[Attribute]):
        self.elements: Tuple[Attribute, ...] = tuple(elements)

    def _key(self) -> tuple:
        return (self.elements,)

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self):
        return iter(self.elements)

    def __getitem__(self, i: int) -> Attribute:
        return self.elements[i]

    def __str__(self) -> str:
        return "[" + ", ".join(str(e) for e in self.elements) + "]"


class SymbolRefAttr(Attribute):
    """Reference to a named symbol (e.g. a function)."""

    def __init__(self, name: str):
        self.name = name

    def _key(self) -> tuple:
        return (self.name,)

    def __str__(self) -> str:
        return f"@{self.name}"


class AffineMapAttr(Attribute):
    """Wraps an :class:`repro.ir.affine_map.AffineMap`."""

    def __init__(self, map_):
        self.map = map_

    def _key(self) -> tuple:
        return (self.map,)

    def __str__(self) -> str:
        return str(self.map)


def int_array_attr(values: Sequence[int]) -> ArrayAttr:
    return ArrayAttr([IntegerAttr(v) for v in values])


def attr_from_python(value) -> Attribute:
    """Wrap a plain Python value in the matching attribute class."""
    if isinstance(value, Attribute):
        return value
    if isinstance(value, bool):
        return BoolAttr(value)
    if isinstance(value, int):
        return IntegerAttr(value)
    if isinstance(value, float):
        return FloatAttr(value)
    if isinstance(value, str):
        return StringAttr(value)
    if isinstance(value, Type):
        return TypeAttr(value)
    if isinstance(value, (list, tuple)):
        return ArrayAttr([attr_from_python(v) for v in value])
    raise TypeError(f"cannot convert {value!r} to an attribute")
