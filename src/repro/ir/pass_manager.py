"""Pass infrastructure with per-pass (and per-pattern) timing.

Timing matters here: §V-B of the paper reports the compile-time overhead
of raising (+12% over the plain lowering pipeline), which
``benchmarks/bench_sec5b_compile_time.py`` re-measures through this
module's instrumentation.

Two compile-time optimizations live here:

* **Nested timing** — passes that run the pattern driver expose their
  :class:`~repro.ir.rewrite.RewriteResult` objects via a
  ``rewrite_results`` attribute; :class:`PassTiming` folds them into a
  pass→pattern tree (trials/rewrites/misses/time per pattern) printed
  by ``mlt-opt --timing``, in the spirit of MLIR's ``-mlir-timing``.
* **Incremental verification** — with ``verify_each``, a
  :class:`FunctionPass` reports which functions it actually changed
  (``run_on_function``'s return value) and only those are re-verified;
  module passes (or a ``None`` report) still trigger a full module
  verify.
"""

from __future__ import annotations

import hashlib
import time
from typing import Callable, Dict, List, Optional, Sequence

from .builtin import ModuleOp
from .context import Context
from .verifier import verify


class Pass:
    """A module-level transformation."""

    #: Short pipeline name, e.g. "raise-affine-to-linalg".
    name = "unnamed-pass"

    #: Pattern-driver statistics from the most recent :meth:`run`.
    #: Passes built on ``apply_patterns_greedily`` append their
    #: ``RewriteResult`` objects here so PassTiming can report a nested
    #: pass→pattern tree.
    rewrite_results: Sequence = ()

    #: Whether results may be memoized per function by the pass cache.
    #: Only meaningful for :class:`FunctionPass` subclasses, whose
    #: ``run_on_function`` must then be a *deterministic, function-
    #: local* transform (no cross-function or ambient state beyond what
    #: :meth:`cache_config` captures).  Module-level passes are never
    #: cacheable.
    cacheable = False

    def cache_config(self) -> str:
        """Configuration folded into the pass-cache key.

        Passes whose behavior depends on constructor parameters (tile
        sizes, raise mode, target library...) must return a string that
        distinguishes every observable configuration; the default
        (``""``) is correct only for parameterless passes.
        """
        return ""

    def run(self, module: ModuleOp, context: Context) -> None:
        raise NotImplementedError

    def touched_functions(self, module: ModuleOp):
        """Functions the last :meth:`run` may have modified.

        ``None`` (the default) means "unknown — assume the whole module
        is dirty"; the PassManager then falls back to a full verify.
        :class:`FunctionPass` tracks this per function.
        """
        return None

    def __repr__(self) -> str:
        return f"<Pass {self.name}>"


class FunctionPass(Pass):
    """Convenience base running once per function in the module.

    ``run_on_function`` may return a change indicator (bool or count).
    A falsy return marks the function clean — ``verify_each`` skips
    re-verifying it.  Returning ``None`` (legacy) conservatively marks
    the function dirty.

    Subclasses needing per-run setup (building a pattern set, resolving
    default tactics) override :meth:`prepare` instead of :meth:`run`:
    the pass-cache execution path calls ``prepare`` once and then
    drives ``run_on_function`` per function itself, skipping functions
    whose result is already cached.
    """

    cacheable = True

    def prepare(self, module: ModuleOp, context: Context) -> None:
        """One-time setup before a batch of ``run_on_function`` calls."""

    def run(self, module: ModuleOp, context: Context) -> None:
        self.rewrite_results = []
        self._touched = []
        self.prepare(module, context)
        for func in module.functions:
            changed = self.run_on_function(func, context)
            if changed is None or changed:
                self._touched.append(func)

    def touched_functions(self, module: ModuleOp):
        return list(getattr(self, "_touched", []))

    def run_on_function(self, func, context: Context):
        raise NotImplementedError


class LambdaPass(Pass):
    """Wraps a plain callable as a pass."""

    def __init__(self, name: str, fn: Callable[[ModuleOp, Context], None]):
        self.name = name
        self._fn = fn

    def run(self, module: ModuleOp, context: Context) -> None:
        self._fn(module, context)


class PassTiming:
    """Per-pass wall-clock, plus a nested per-pattern breakdown."""

    def __init__(self):
        self.seconds: Dict[str, float] = {}
        self.order: List[str] = []
        #: pass name -> pattern name -> {seconds, trials, rewrites}.
        self.pattern_stats: Dict[str, Dict[str, Dict[str, float]]] = {}
        #: pass name -> pass-cache counter deltas (hits/misses/...),
        #: populated only when the owning PassManager runs with a
        #: :class:`~repro.ir.pass_cache.PassResultCache` attached.
        self.pass_cache: Dict[str, Dict[str, int]] = {}

    def record(self, name: str, elapsed: float) -> None:
        if name not in self.seconds:
            self.order.append(name)
            self.seconds[name] = 0.0
        self.seconds[name] += elapsed

    def record_patterns(self, pass_name: str, rewrite_results) -> None:
        """Fold a pass's ``RewriteResult`` list into the nested stats."""
        if not rewrite_results:
            return
        stats = self.pattern_stats.setdefault(pass_name, {})
        for result in rewrite_results:
            for pattern, trials in result.pattern_attempts.items():
                entry = stats.setdefault(
                    pattern, {"seconds": 0.0, "trials": 0, "rewrites": 0}
                )
                entry["trials"] += trials
                entry["seconds"] += result.pattern_seconds.get(pattern, 0.0)
                entry["rewrites"] += result.pattern_hits.get(pattern, 0)

    def record_pass_cache(self, pass_name: str, deltas: Dict[str, int]) -> None:
        """Fold one pass's cache-counter deltas into the timing tree."""
        deltas = {key: value for key, value in deltas.items() if value}
        if not deltas:
            return
        entry = self.pass_cache.setdefault(pass_name, {})
        for key, value in deltas.items():
            entry[key] = entry.get(key, 0) + value

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def report(self) -> str:
        lines = ["===- Pass execution timing -==="]
        for name in self.order:
            cache_note = ""
            cached = self.pass_cache.get(name)
            if cached:
                cache_note = (
                    f"  [cache hits={cached.get('hits', 0)} "
                    f"misses={cached.get('misses', 0)} "
                    f"spliced={cached.get('spliced', 0)}]"
                )
            lines.append(
                f"  {self.seconds[name] * 1e3:9.3f} ms  {name}{cache_note}"
            )
            patterns = self.pattern_stats.get(name, {})
            for pattern, entry in sorted(
                patterns.items(),
                key=lambda item: (-item[1]["seconds"], item[0]),
            ):
                misses = entry["trials"] - entry["rewrites"]
                lines.append(
                    f"  {entry['seconds'] * 1e3:9.3f} ms    "
                    f"`- {pattern} (trials={entry['trials']}, "
                    f"rewrites={entry['rewrites']}, misses={misses})"
                )
        lines.append(f"  {self.total * 1e3:9.3f} ms  TOTAL")
        return "\n".join(lines)


class PassManager:
    """Runs a linear pipeline of passes over a module."""

    def __init__(
        self,
        context: Optional[Context] = None,
        verify_each: bool = True,
        pass_cache=None,
    ):
        self.context = context or Context()
        self.passes: List[Pass] = []
        self.verify_each = verify_each
        #: Optional :class:`~repro.ir.pass_cache.PassResultCache`.
        #: When set, cacheable :class:`FunctionPass` results are
        #: memoized per (function fingerprint, pass name, pass config)
        #: and unchanged functions skip ``run_on_function`` entirely;
        #: with a disk tier attached, whole pipeline prefixes are
        #: restored across processes.
        self.pass_cache = pass_cache
        self.timing = PassTiming()
        #: Bumped whenever a pass reports (or may have made) changes.
        self.module_version = 0
        #: Incremental-verification counters: full module verifies,
        #: individual function verifies, and function verifies *saved*
        #: by the dirty tracking.
        self.verify_stats = {
            "full_verifies": 0,
            "function_verifies": 0,
            "skipped_functions": 0,
        }

    def add(self, *passes: Pass) -> "PassManager":
        self.passes.extend(passes)
        return self

    def _verify_after(self, pass_, module: ModuleOp) -> None:
        touched = pass_.touched_functions(module)
        if touched is None:
            verify(module, self.context)
            self.verify_stats["full_verifies"] += 1
            self.module_version += 1
            module.bump_version()
            return
        for func in touched:
            verify(func, self.context)
        self.verify_stats["function_verifies"] += len(touched)
        self.verify_stats["skipped_functions"] += max(
            0, len(module.functions) - len(touched)
        )
        if touched:
            self.module_version += 1
            module.bump_version()

    def run(self, module: ModuleOp) -> PassTiming:
        if self.pass_cache is not None:
            return self._run_cached(module)
        if self.verify_each:
            verify(module, self.context)
            self.verify_stats["full_verifies"] += 1
        for pass_ in self.passes:
            start = time.perf_counter()
            pass_.run(module, self.context)
            self.timing.record(pass_.name, time.perf_counter() - start)
            self.timing.record_patterns(
                pass_.name, getattr(pass_, "rewrite_results", ())
            )
            if self.verify_each:
                self._verify_after(pass_, module)
            else:
                self.module_version += 1
                module.bump_version()
        return self.timing

    # ------------------------------------------------------------------
    # Incremental (pass-cache) execution path
    # ------------------------------------------------------------------

    def _prefix_hashes(self) -> List[Optional[str]]:
        """Chained hash of (pass name, pass config) per pipeline prefix.

        ``None`` past the first non-cacheable pass: a module pass can
        rewrite anything, so function-granular prefix artifacts are
        only sound for the leading all-cacheable prefix.
        """
        digest = hashlib.sha256()
        hashes: List[Optional[str]] = []
        sound = True
        for pass_ in self.passes:
            if sound and isinstance(pass_, FunctionPass) and pass_.cacheable:
                digest.update(
                    f"{pass_.name}\x00{pass_.cache_config()}\x01".encode(
                        "utf-8"
                    )
                )
                hashes.append(digest.hexdigest())
            else:
                sound = False
                hashes.append(None)
        return hashes

    def _run_cached(self, module: ModuleOp) -> PassTiming:
        from .pass_cache import fingerprint_function, splice_function

        cache = self.pass_cache
        if self.verify_each:
            verify(module, self.context)
            self.verify_stats["full_verifies"] += 1

        #: Current fingerprint per function (keyed by symbol name —
        #: splices replace the op object but keep the symbol), dropped
        #: whenever a pass may have changed the function.
        fps: Dict[str, str] = {}

        def fp_of(func) -> str:
            name = func.sym_name
            got = fps.get(name)
            if got is None:
                got = fingerprint_function(func)
                fps[name] = got
            return got

        prefix_hashes = self._prefix_hashes()
        last_prefix = -1
        for index, prefix in enumerate(prefix_hashes):
            if prefix is not None:
                last_prefix = index

        #: Per function symbol: index of the first pass still to run
        #: (everything before it was restored from a disk prefix).
        resume: Dict[str, int] = {}
        entry_fps: Dict[str, str] = {}
        if cache.disk is not None and last_prefix >= 0:
            for func in list(module.functions):
                entry_fps[func.sym_name] = fp_of(func)
            for func in list(module.functions):
                name = func.sym_name
                for index in range(last_prefix, -1, -1):
                    prefix = prefix_hashes[index]
                    if prefix is None:
                        continue
                    entry = cache.get(
                        cache.prefix_key(entry_fps[name], prefix)
                    )
                    if entry is None:
                        continue
                    if entry["kind"] == "rewrite":
                        splice_function(module, func, entry["text"])
                        fps[name] = entry["fp"]
                        self.module_version += 1
                        cache.stats.bump(spliced=1)
                    resume[name] = index + 1
                    cache.stats.bump(prefix_restores=1)
                    break

        for index, pass_ in enumerate(self.passes):
            start = time.perf_counter()
            stats_before = cache.stats.snapshot()
            if isinstance(pass_, FunctionPass) and pass_.cacheable:
                changed_any, changed_names = self._run_function_pass_cached(
                    pass_, module, index, fps, resume, fp_of
                )
                if self.verify_each:
                    touched = list(getattr(pass_, "_touched", []))
                    for func in touched:
                        verify(func, self.context)
                    self.verify_stats["function_verifies"] += len(touched)
                    self.verify_stats["skipped_functions"] += max(
                        0, len(module.functions) - len(touched)
                    )
                if changed_any:
                    self.module_version += 1
                    module.bump_version()
                # Functions that changed at this prefix depth get an
                # intermediate prefix artifact, so pipelines sharing
                # this prefix restore from here even when their
                # suffixes differ.
                if (
                    cache.disk is not None
                    and prefix_hashes[index] is not None
                    and changed_names
                ):
                    self._store_prefix(
                        module,
                        prefix_hashes[index],
                        {
                            name: fp
                            for name, fp in entry_fps.items()
                            if name in changed_names
                        },
                        fp_of,
                    )
            else:
                pass_.run(module, self.context)
                # A module pass can rewrite anything: every memoized
                # fingerprint is stale, and prefix bookkeeping stops
                # here by construction (prefix hash is None).
                fps.clear()
                if self.verify_each:
                    self._verify_after(pass_, module)
                else:
                    self.module_version += 1
                    module.bump_version()
            self.timing.record(pass_.name, time.perf_counter() - start)
            self.timing.record_patterns(
                pass_.name, getattr(pass_, "rewrite_results", ())
            )
            stats_after = cache.stats.snapshot()
            self.timing.record_pass_cache(
                pass_.name,
                {
                    key: stats_after[key] - stats_before[key]
                    for key in stats_after
                },
            )
            if (
                cache.disk is not None
                and index == last_prefix
                and prefix_hashes[index] is not None
            ):
                self._store_prefix(
                    module, prefix_hashes[index], entry_fps, fp_of
                )
        return self.timing

    def _store_prefix(self, module, prefix_hash, entry_fps, fp_of) -> None:
        """Persist every function's post-prefix state to the disk tier."""
        from .printer import print_module

        cache = self.pass_cache
        for func in list(module.functions):
            name = func.sym_name
            entry_fp = entry_fps.get(name)
            if entry_fp is None:
                continue
            key = cache.prefix_key(entry_fp, prefix_hash)
            if cache.contains(key):
                continue
            current = fp_of(func)
            if current == entry_fp:
                cache.put(key, {"kind": "clean", "fp": current})
            else:
                cache.put(
                    key,
                    {
                        "kind": "rewrite",
                        "text": print_module(func),
                        "fp": current,
                    },
                )

    def _run_function_pass_cached(
        self, pass_, module, index, fps, resume, fp_of
    ) -> bool:
        from .pass_cache import splice_function
        from .printer import print_module

        cache = self.pass_cache
        pass_.rewrite_results = []
        pass_._touched = []
        config = pass_.cache_config()
        prepared = False
        changed_any = False
        changed_names = set()
        for func in list(module.functions):
            name = func.sym_name
            if resume.get(name, 0) > index:
                continue  # a disk prefix already covers this pass
            fp = fp_of(func)
            key = cache.key(fp, pass_.name, config)
            entry = cache.get(key)
            if entry is not None:
                if entry["kind"] == "rewrite":
                    splice_function(module, func, entry["text"])
                    fps[name] = entry["fp"]
                    changed_any = True
                    changed_names.add(name)
                    cache.stats.bump(spliced=1)
                if self.verify_each:
                    cache.stats.bump(skipped_verifies=1)
                continue
            if not prepared:
                pass_.prepare(module, self.context)
                prepared = True
            version_before = getattr(module, "version", 0)
            changed = pass_.run_on_function(func, self.context)
            cache.stats.bump(executions=1)
            if changed is None:
                changed = True
            # Belt and braces: PatternRewriter mutations bump the
            # module version, so a pass under-reporting its changes
            # still invalidates correctly.
            if getattr(module, "version", 0) != version_before:
                changed = True
            if changed:
                fps.pop(name, None)
                new_fp = fp_of(func)
                changed = new_fp != fp
            if changed:
                pass_._touched.append(func)
                changed_any = True
                changed_names.add(name)
                cache.put(
                    key,
                    {
                        "kind": "rewrite",
                        "text": print_module(func),
                        "fp": new_fp,
                    },
                )
            else:
                fps[name] = fp
                cache.put(key, {"kind": "clean", "fp": fp})
        return changed_any, changed_names

    def pipeline_string(self) -> str:
        return ",".join(p.name for p in self.passes)
