"""Pass infrastructure with per-pass timing.

Timing matters here: §V-B of the paper reports the compile-time overhead
of raising (+12% over the plain lowering pipeline), which
``benchmarks/bench_sec5b_compile_time.py`` re-measures through this
module's instrumentation.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from .builtin import ModuleOp
from .context import Context
from .verifier import verify


class Pass:
    """A module-level transformation."""

    #: Short pipeline name, e.g. "raise-affine-to-linalg".
    name = "unnamed-pass"

    def run(self, module: ModuleOp, context: Context) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Pass {self.name}>"


class FunctionPass(Pass):
    """Convenience base running once per function in the module."""

    def run(self, module: ModuleOp, context: Context) -> None:
        for func in module.functions:
            self.run_on_function(func, context)

    def run_on_function(self, func, context: Context) -> None:
        raise NotImplementedError


class LambdaPass(Pass):
    """Wraps a plain callable as a pass."""

    def __init__(self, name: str, fn: Callable[[ModuleOp, Context], None]):
        self.name = name
        self._fn = fn

    def run(self, module: ModuleOp, context: Context) -> None:
        self._fn(module, context)


class PassTiming:
    def __init__(self):
        self.seconds: Dict[str, float] = {}
        self.order: List[str] = []

    def record(self, name: str, elapsed: float) -> None:
        if name not in self.seconds:
            self.order.append(name)
            self.seconds[name] = 0.0
        self.seconds[name] += elapsed

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def report(self) -> str:
        lines = ["===- Pass execution timing -==="]
        for name in self.order:
            lines.append(f"  {self.seconds[name] * 1e3:9.3f} ms  {name}")
        lines.append(f"  {self.total * 1e3:9.3f} ms  TOTAL")
        return "\n".join(lines)


class PassManager:
    """Runs a linear pipeline of passes over a module."""

    def __init__(
        self,
        context: Optional[Context] = None,
        verify_each: bool = True,
    ):
        self.context = context or Context()
        self.passes: List[Pass] = []
        self.verify_each = verify_each
        self.timing = PassTiming()

    def add(self, *passes: Pass) -> "PassManager":
        self.passes.extend(passes)
        return self

    def run(self, module: ModuleOp) -> PassTiming:
        if self.verify_each:
            verify(module, self.context)
        for pass_ in self.passes:
            start = time.perf_counter()
            pass_.run(module, self.context)
            self.timing.record(pass_.name, time.perf_counter() - start)
            if self.verify_each:
                verify(module, self.context)
        return self.timing

    def pipeline_string(self) -> str:
        return ",".join(p.name for p in self.passes)
