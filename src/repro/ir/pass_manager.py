"""Pass infrastructure with per-pass (and per-pattern) timing.

Timing matters here: §V-B of the paper reports the compile-time overhead
of raising (+12% over the plain lowering pipeline), which
``benchmarks/bench_sec5b_compile_time.py`` re-measures through this
module's instrumentation.

Two compile-time optimizations live here:

* **Nested timing** — passes that run the pattern driver expose their
  :class:`~repro.ir.rewrite.RewriteResult` objects via a
  ``rewrite_results`` attribute; :class:`PassTiming` folds them into a
  pass→pattern tree (trials/rewrites/misses/time per pattern) printed
  by ``mlt-opt --timing``, in the spirit of MLIR's ``-mlir-timing``.
* **Incremental verification** — with ``verify_each``, a
  :class:`FunctionPass` reports which functions it actually changed
  (``run_on_function``'s return value) and only those are re-verified;
  module passes (or a ``None`` report) still trigger a full module
  verify.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from .builtin import ModuleOp
from .context import Context
from .verifier import verify


class Pass:
    """A module-level transformation."""

    #: Short pipeline name, e.g. "raise-affine-to-linalg".
    name = "unnamed-pass"

    #: Pattern-driver statistics from the most recent :meth:`run`.
    #: Passes built on ``apply_patterns_greedily`` append their
    #: ``RewriteResult`` objects here so PassTiming can report a nested
    #: pass→pattern tree.
    rewrite_results: Sequence = ()

    def run(self, module: ModuleOp, context: Context) -> None:
        raise NotImplementedError

    def touched_functions(self, module: ModuleOp):
        """Functions the last :meth:`run` may have modified.

        ``None`` (the default) means "unknown — assume the whole module
        is dirty"; the PassManager then falls back to a full verify.
        :class:`FunctionPass` tracks this per function.
        """
        return None

    def __repr__(self) -> str:
        return f"<Pass {self.name}>"


class FunctionPass(Pass):
    """Convenience base running once per function in the module.

    ``run_on_function`` may return a change indicator (bool or count).
    A falsy return marks the function clean — ``verify_each`` skips
    re-verifying it.  Returning ``None`` (legacy) conservatively marks
    the function dirty.
    """

    def run(self, module: ModuleOp, context: Context) -> None:
        self.rewrite_results = []
        self._touched = []
        for func in module.functions:
            changed = self.run_on_function(func, context)
            if changed is None or changed:
                self._touched.append(func)

    def touched_functions(self, module: ModuleOp):
        return list(getattr(self, "_touched", []))

    def run_on_function(self, func, context: Context):
        raise NotImplementedError


class LambdaPass(Pass):
    """Wraps a plain callable as a pass."""

    def __init__(self, name: str, fn: Callable[[ModuleOp, Context], None]):
        self.name = name
        self._fn = fn

    def run(self, module: ModuleOp, context: Context) -> None:
        self._fn(module, context)


class PassTiming:
    """Per-pass wall-clock, plus a nested per-pattern breakdown."""

    def __init__(self):
        self.seconds: Dict[str, float] = {}
        self.order: List[str] = []
        #: pass name -> pattern name -> {seconds, trials, rewrites}.
        self.pattern_stats: Dict[str, Dict[str, Dict[str, float]]] = {}

    def record(self, name: str, elapsed: float) -> None:
        if name not in self.seconds:
            self.order.append(name)
            self.seconds[name] = 0.0
        self.seconds[name] += elapsed

    def record_patterns(self, pass_name: str, rewrite_results) -> None:
        """Fold a pass's ``RewriteResult`` list into the nested stats."""
        if not rewrite_results:
            return
        stats = self.pattern_stats.setdefault(pass_name, {})
        for result in rewrite_results:
            for pattern, trials in result.pattern_attempts.items():
                entry = stats.setdefault(
                    pattern, {"seconds": 0.0, "trials": 0, "rewrites": 0}
                )
                entry["trials"] += trials
                entry["seconds"] += result.pattern_seconds.get(pattern, 0.0)
                entry["rewrites"] += result.pattern_hits.get(pattern, 0)

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def report(self) -> str:
        lines = ["===- Pass execution timing -==="]
        for name in self.order:
            lines.append(f"  {self.seconds[name] * 1e3:9.3f} ms  {name}")
            patterns = self.pattern_stats.get(name, {})
            for pattern, entry in sorted(
                patterns.items(),
                key=lambda item: (-item[1]["seconds"], item[0]),
            ):
                misses = entry["trials"] - entry["rewrites"]
                lines.append(
                    f"  {entry['seconds'] * 1e3:9.3f} ms    "
                    f"`- {pattern} (trials={entry['trials']}, "
                    f"rewrites={entry['rewrites']}, misses={misses})"
                )
        lines.append(f"  {self.total * 1e3:9.3f} ms  TOTAL")
        return "\n".join(lines)


class PassManager:
    """Runs a linear pipeline of passes over a module."""

    def __init__(
        self,
        context: Optional[Context] = None,
        verify_each: bool = True,
    ):
        self.context = context or Context()
        self.passes: List[Pass] = []
        self.verify_each = verify_each
        self.timing = PassTiming()
        #: Bumped whenever a pass reports (or may have made) changes.
        self.module_version = 0
        #: Incremental-verification counters: full module verifies,
        #: individual function verifies, and function verifies *saved*
        #: by the dirty tracking.
        self.verify_stats = {
            "full_verifies": 0,
            "function_verifies": 0,
            "skipped_functions": 0,
        }

    def add(self, *passes: Pass) -> "PassManager":
        self.passes.extend(passes)
        return self

    def _verify_after(self, pass_, module: ModuleOp) -> None:
        touched = pass_.touched_functions(module)
        if touched is None:
            verify(module, self.context)
            self.verify_stats["full_verifies"] += 1
            self.module_version += 1
            module.bump_version()
            return
        for func in touched:
            verify(func, self.context)
        self.verify_stats["function_verifies"] += len(touched)
        self.verify_stats["skipped_functions"] += max(
            0, len(module.functions) - len(touched)
        )
        if touched:
            self.module_version += 1
            module.bump_version()

    def run(self, module: ModuleOp) -> PassTiming:
        if self.verify_each:
            verify(module, self.context)
            self.verify_stats["full_verifies"] += 1
        for pass_ in self.passes:
            start = time.perf_counter()
            pass_.run(module, self.context)
            self.timing.record(pass_.name, time.perf_counter() - start)
            self.timing.record_patterns(
                pass_.name, getattr(pass_, "rewrite_results", ())
            )
            if self.verify_each:
                self._verify_after(pass_, module)
            else:
                self.module_version += 1
                module.bump_version()
        return self.timing

    def pipeline_string(self) -> str:
        return ",".join(p.name for p in self.passes)
