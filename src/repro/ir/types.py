"""Type system for the multi-level IR.

Types model compile-time information about runtime values.  They are
immutable and interned by structural equality, mirroring MLIR's type
uniquing: two ``MemRefType`` instances with the same shape and element
type compare (and hash) equal.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

#: Marker for a dynamic dimension in a shaped type (MLIR prints it as ``?``).
DYNAMIC = -1


class Type:
    """Base class for all IR types."""

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        return ()

    def __repr__(self) -> str:
        return str(self)


class F32Type(Type):
    """32-bit IEEE-754 floating point."""

    def __str__(self) -> str:
        return "f32"


class F64Type(Type):
    """64-bit IEEE-754 floating point."""

    def __str__(self) -> str:
        return "f64"


class IndexType(Type):
    """Platform-sized integer used for loop induction variables and
    memory indexing."""

    def __str__(self) -> str:
        return "index"


class IntegerType(Type):
    """Fixed-width signless integer (``i1``, ``i32``, ...)."""

    def __init__(self, width: int):
        if width <= 0:
            raise ValueError(f"integer width must be positive, got {width}")
        self.width = width

    def _key(self) -> tuple:
        return (self.width,)

    def __str__(self) -> str:
        return f"i{self.width}"


class NoneType(Type):
    """Unit type for ops that produce no meaningful value."""

    def __str__(self) -> str:
        return "none"


class ShapedType(Type):
    """Common base for types that carry a shape and an element type."""

    def __init__(self, shape: Sequence[int], element_type: Type):
        for dim in shape:
            if dim < 0 and dim != DYNAMIC:
                raise ValueError(f"invalid dimension size {dim}")
        self.shape: Tuple[int, ...] = tuple(shape)
        self.element_type = element_type

    @property
    def rank(self) -> int:
        return len(self.shape)

    def has_static_shape(self) -> bool:
        return all(dim != DYNAMIC for dim in self.shape)

    def num_elements(self) -> Optional[int]:
        """Total element count, or ``None`` if any dimension is dynamic."""
        if not self.has_static_shape():
            return None
        total = 1
        for dim in self.shape:
            total *= dim
        return total

    def _key(self) -> tuple:
        return (self.shape, self.element_type)

    def _shape_str(self) -> str:
        dims = ["?" if dim == DYNAMIC else str(dim) for dim in self.shape]
        return "x".join(dims + [str(self.element_type)])


class MemRefType(ShapedType):
    """A reference to a (multi-dimensional) memory buffer."""

    def __str__(self) -> str:
        return f"memref<{self._shape_str()}>"


class TensorType(ShapedType):
    """An immutable multi-dimensional value (SSA tensor)."""

    def __str__(self) -> str:
        return f"tensor<{self._shape_str()}>"


class VectorType(ShapedType):
    """A fixed-length SIMD vector."""

    def __str__(self) -> str:
        return f"vector<{self._shape_str()}>"


class FunctionType(Type):
    """The type of a function: inputs and results."""

    def __init__(self, inputs: Sequence[Type], results: Sequence[Type]):
        self.inputs: Tuple[Type, ...] = tuple(inputs)
        self.results: Tuple[Type, ...] = tuple(results)

    def _key(self) -> tuple:
        return (self.inputs, self.results)

    def __str__(self) -> str:
        ins = ", ".join(str(t) for t in self.inputs)
        outs = ", ".join(str(t) for t in self.results)
        if len(self.results) == 1:
            return f"({ins}) -> {outs}"
        return f"({ins}) -> ({outs})"


# Interned singletons for the common scalar types.
f32 = F32Type()
f64 = F64Type()
index = IndexType()
i1 = IntegerType(1)
i32 = IntegerType(32)
i64 = IntegerType(64)
none = NoneType()


def memref(*shape_then_element) -> MemRefType:
    """Convenience constructor: ``memref(256, 256, f32)``."""
    *shape, element_type = shape_then_element
    if not isinstance(element_type, Type):
        raise TypeError("last argument must be the element type")
    return MemRefType(shape, element_type)


def is_float(ty: Type) -> bool:
    return isinstance(ty, (F32Type, F64Type))
