"""The multi-level IR substrate (MLIR-like)."""

from .affine_expr import (  # noqa: F401
    AffineBinaryExpr,
    AffineConstantExpr,
    AffineDimExpr,
    AffineExpr,
    AffineExprKind,
    AffineSymbolExpr,
    LinearForm,
    constant,
    dim,
    from_linear_form,
    symbol,
)
from .affine_map import AffineMap  # noqa: F401
from .attributes import (  # noqa: F401
    AffineMapAttr,
    ArrayAttr,
    Attribute,
    BoolAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    attr_from_python,
    int_array_attr,
)
from .builder import Builder, InsertionPoint  # noqa: F401
from .builtin import CallOp, FuncOp, ModuleOp, ReturnOp  # noqa: F401
from .context import Context, Dialect  # noqa: F401
from .core import (  # noqa: F401
    Block,
    IRError,
    OP_REGISTRY,
    Operation,
    Region,
    create_operation,
    register_op,
)
from .pass_cache import (  # noqa: F401
    PASS_CACHE_VERSION,
    PassCacheStats,
    PassResultCache,
    cached_stage,
    fingerprint_function,
    splice_function,
)
from .pass_manager import (  # noqa: F401
    FunctionPass,
    LambdaPass,
    Pass,
    PassManager,
    PassTiming,
)
from .printer import print_module  # noqa: F401
from .rewrite import (  # noqa: F401
    DRIVERS,
    FrozenPatternSet,
    PatternRewriter,
    RewritePattern,
    RewriteResult,
    apply_patterns_greedily,
    apply_patterns_snapshot,
    apply_patterns_worklist,
    get_default_driver,
    pattern_driver,
    set_default_driver,
)
from .types import (  # noqa: F401
    DYNAMIC,
    F32Type,
    F64Type,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    TensorType,
    Type,
    VectorType,
    f32,
    f64,
    i1,
    i32,
    i64,
    index,
    is_float,
    memref,
)
from .values import BlockArgument, OpOperand, OpResult, Value  # noqa: F401
from .verifier import VerificationError, verify  # noqa: F401
