"""Compilation context: dialect registry and shared state."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .core import OP_REGISTRY


class Dialect:
    """A namespace of operations, types and attributes."""

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description

    @property
    def operations(self) -> List[str]:
        prefix = self.name + "."
        return sorted(op for op in OP_REGISTRY if op.startswith(prefix))

    def __repr__(self) -> str:
        return f"<Dialect {self.name}>"


class Context:
    """Owns dialect registrations for one compilation.

    The op registry itself is process-global (op classes are Python
    classes); the context tracks which dialects a pipeline has loaded so
    verification can reject ops from unloaded dialects.
    """

    def __init__(self, load_all: bool = True):
        self._dialects: Dict[str, Dialect] = {}
        if load_all:
            self.load_all_available_dialects()

    def load_dialect(self, dialect: Dialect) -> Dialect:
        self._dialects[dialect.name] = dialect
        return dialect

    def load_all_available_dialects(self) -> None:
        from .. import dialects as dialect_package

        for dialect in dialect_package.all_dialects():
            self.load_dialect(dialect)
        self.load_dialect(Dialect("builtin", "built-in module/function ops"))
        self.load_dialect(Dialect("func", "function abstraction"))

    def get_dialect(self, name: str) -> Optional[Dialect]:
        return self._dialects.get(name)

    def is_loaded(self, dialect_name: str) -> bool:
        return dialect_name in self._dialects

    @property
    def loaded_dialects(self) -> List[str]:
        return sorted(self._dialects)
