"""Affine expression algebra.

Affine expressions are built over dimension identifiers (``d0``, ``d1``,
...), symbol identifiers (``s0``, ...), and integer constants, combined
with ``+``, ``*`` (by constants), ``mod``, ``floordiv`` and ``ceildiv``.
Construction performs light canonicalization (constant folding, identity
elimination, moving constants to the right of ``+``/``*``).
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Optional, Sequence, Tuple


class AffineExprKind(Enum):
    CONSTANT = "constant"
    DIM = "dim"
    SYMBOL = "symbol"
    ADD = "+"
    MUL = "*"
    MOD = "mod"
    FLOORDIV = "floordiv"
    CEILDIV = "ceildiv"


_BINARY_KINDS = {
    AffineExprKind.ADD,
    AffineExprKind.MUL,
    AffineExprKind.MOD,
    AffineExprKind.FLOORDIV,
    AffineExprKind.CEILDIV,
}


class AffineExpr:
    """Base class; use the module-level constructors or operators."""

    kind: AffineExprKind

    # -- operator sugar -------------------------------------------------

    def __add__(self, other) -> "AffineExpr":
        return _make_add(self, _coerce(other))

    def __radd__(self, other) -> "AffineExpr":
        return _make_add(_coerce(other), self)

    def __sub__(self, other) -> "AffineExpr":
        return _make_add(self, _make_mul(_coerce(other), AffineConstantExpr(-1)))

    def __rsub__(self, other) -> "AffineExpr":
        return _coerce(other) - self

    def __mul__(self, other) -> "AffineExpr":
        return _make_mul(self, _coerce(other))

    def __rmul__(self, other) -> "AffineExpr":
        return _make_mul(_coerce(other), self)

    def __neg__(self) -> "AffineExpr":
        return self * -1

    def __mod__(self, other) -> "AffineExpr":
        return _make_binary(AffineExprKind.MOD, self, _coerce(other))

    def floordiv(self, other) -> "AffineExpr":
        return _make_binary(AffineExprKind.FLOORDIV, self, _coerce(other))

    def ceildiv(self, other) -> "AffineExpr":
        return _make_binary(AffineExprKind.CEILDIV, self, _coerce(other))

    # -- structural equality --------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AffineExpr) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def _key(self) -> tuple:
        raise NotImplementedError

    def __repr__(self) -> str:
        return str(self)

    # -- queries ---------------------------------------------------------

    def evaluate(self, dims: Sequence[int], symbols: Sequence[int] = ()) -> int:
        raise NotImplementedError

    def is_constant(self) -> bool:
        return self.kind is AffineExprKind.CONSTANT

    def is_pure_affine(self) -> bool:
        """True if the expression is linear in dims/symbols (no mod/div
        by non-constants, and multiplication only by constants)."""
        return self.as_linear() is not None

    def as_linear(self) -> Optional["LinearForm"]:
        """Decompose into ``sum(coeff_i * d_i) + sum(coeff_j * s_j) + c``.

        Returns ``None`` if the expression contains mod/floordiv/ceildiv
        or non-constant multiplication.
        """
        try:
            return self._linear()
        except _NotLinear:
            return None

    def _linear(self) -> "LinearForm":
        raise NotImplementedError

    def dims_used(self) -> set:
        """Positions of dimensions occurring in this expression."""
        out: set = set()
        self._collect_dims(out)
        return out

    def _collect_dims(self, out: set) -> None:
        raise NotImplementedError

    def substitute_dims(self, mapping: Dict[int, "AffineExpr"]) -> "AffineExpr":
        """Replace dim positions per ``mapping`` (missing dims unchanged)."""
        raise NotImplementedError

    def shift_dims(self, offset: int) -> "AffineExpr":
        """Renumber every dim ``d_i`` to ``d_{i+offset}``."""
        raise NotImplementedError


class _NotLinear(Exception):
    pass


class LinearForm:
    """A linear affine expression: dim/symbol coefficients + constant."""

    __slots__ = ("dim_coeffs", "symbol_coeffs", "constant")

    def __init__(
        self,
        dim_coeffs: Optional[Dict[int, int]] = None,
        symbol_coeffs: Optional[Dict[int, int]] = None,
        constant: int = 0,
    ):
        self.dim_coeffs = {p: c for p, c in (dim_coeffs or {}).items() if c != 0}
        self.symbol_coeffs = {
            p: c for p, c in (symbol_coeffs or {}).items() if c != 0
        }
        self.constant = constant

    def __add__(self, other: "LinearForm") -> "LinearForm":
        dims = dict(self.dim_coeffs)
        for p, c in other.dim_coeffs.items():
            dims[p] = dims.get(p, 0) + c
        syms = dict(self.symbol_coeffs)
        for p, c in other.symbol_coeffs.items():
            syms[p] = syms.get(p, 0) + c
        return LinearForm(dims, syms, self.constant + other.constant)

    def scale(self, factor: int) -> "LinearForm":
        return LinearForm(
            {p: c * factor for p, c in self.dim_coeffs.items()},
            {p: c * factor for p, c in self.symbol_coeffs.items()},
            self.constant * factor,
        )

    def is_constant(self) -> bool:
        return not self.dim_coeffs and not self.symbol_coeffs

    def single_dim(self) -> Optional[Tuple[int, int, int]]:
        """If of the form ``k * d_p + c``, return ``(p, k, c)``."""
        if self.symbol_coeffs or len(self.dim_coeffs) != 1:
            return None
        ((pos, coeff),) = self.dim_coeffs.items()
        return (pos, coeff, self.constant)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LinearForm)
            and self.dim_coeffs == other.dim_coeffs
            and self.symbol_coeffs == other.symbol_coeffs
            and self.constant == other.constant
        )

    def __repr__(self) -> str:
        terms = [f"{c}*d{p}" for p, c in sorted(self.dim_coeffs.items())]
        terms += [f"{c}*s{p}" for p, c in sorted(self.symbol_coeffs.items())]
        terms.append(str(self.constant))
        return " + ".join(terms)


class AffineConstantExpr(AffineExpr):
    kind = AffineExprKind.CONSTANT

    def __init__(self, value: int):
        self.value = int(value)

    def _key(self) -> tuple:
        return (self.kind, self.value)

    def evaluate(self, dims, symbols=()) -> int:
        return self.value

    def _linear(self) -> LinearForm:
        return LinearForm(constant=self.value)

    def _collect_dims(self, out: set) -> None:
        pass

    def substitute_dims(self, mapping) -> AffineExpr:
        return self

    def shift_dims(self, offset: int) -> AffineExpr:
        return self

    def __str__(self) -> str:
        return str(self.value)


class AffineDimExpr(AffineExpr):
    kind = AffineExprKind.DIM

    def __init__(self, position: int):
        if position < 0:
            raise ValueError("dim position must be non-negative")
        self.position = position

    def _key(self) -> tuple:
        return (self.kind, self.position)

    def evaluate(self, dims, symbols=()) -> int:
        return dims[self.position]

    def _linear(self) -> LinearForm:
        return LinearForm(dim_coeffs={self.position: 1})

    def _collect_dims(self, out: set) -> None:
        out.add(self.position)

    def substitute_dims(self, mapping) -> AffineExpr:
        return mapping.get(self.position, self)

    def shift_dims(self, offset: int) -> AffineExpr:
        return AffineDimExpr(self.position + offset)

    def __str__(self) -> str:
        return f"d{self.position}"


class AffineSymbolExpr(AffineExpr):
    kind = AffineExprKind.SYMBOL

    def __init__(self, position: int):
        if position < 0:
            raise ValueError("symbol position must be non-negative")
        self.position = position

    def _key(self) -> tuple:
        return (self.kind, self.position)

    def evaluate(self, dims, symbols=()) -> int:
        return symbols[self.position]

    def _linear(self) -> LinearForm:
        return LinearForm(symbol_coeffs={self.position: 1})

    def _collect_dims(self, out: set) -> None:
        pass

    def substitute_dims(self, mapping) -> AffineExpr:
        return self

    def shift_dims(self, offset: int) -> AffineExpr:
        return self

    def __str__(self) -> str:
        return f"s{self.position}"


class AffineBinaryExpr(AffineExpr):
    def __init__(self, kind: AffineExprKind, lhs: AffineExpr, rhs: AffineExpr):
        if kind not in _BINARY_KINDS:
            raise ValueError(f"not a binary affine kind: {kind}")
        self.kind = kind
        self.lhs = lhs
        self.rhs = rhs

    def _key(self) -> tuple:
        return (self.kind, self.lhs._key(), self.rhs._key())

    def evaluate(self, dims, symbols=()) -> int:
        left = self.lhs.evaluate(dims, symbols)
        right = self.rhs.evaluate(dims, symbols)
        if self.kind is AffineExprKind.ADD:
            return left + right
        if self.kind is AffineExprKind.MUL:
            return left * right
        if self.kind is AffineExprKind.MOD:
            if right <= 0:
                raise ZeroDivisionError("affine mod by non-positive value")
            return left % right
        if self.kind is AffineExprKind.FLOORDIV:
            if right <= 0:
                raise ZeroDivisionError("affine floordiv by non-positive value")
            return left // right
        if right <= 0:
            raise ZeroDivisionError("affine ceildiv by non-positive value")
        return -((-left) // right)

    def _linear(self) -> LinearForm:
        if self.kind is AffineExprKind.ADD:
            return self.lhs._linear() + self.rhs._linear()
        if self.kind is AffineExprKind.MUL:
            left = self.lhs._linear()
            right = self.rhs._linear()
            if right.is_constant():
                return left.scale(right.constant)
            if left.is_constant():
                return right.scale(left.constant)
            raise _NotLinear()
        raise _NotLinear()

    def _collect_dims(self, out: set) -> None:
        self.lhs._collect_dims(out)
        self.rhs._collect_dims(out)

    def substitute_dims(self, mapping) -> AffineExpr:
        return _make_binary(
            self.kind,
            self.lhs.substitute_dims(mapping),
            self.rhs.substitute_dims(mapping),
        )

    def shift_dims(self, offset: int) -> AffineExpr:
        return _make_binary(
            self.kind, self.lhs.shift_dims(offset), self.rhs.shift_dims(offset)
        )

    def __str__(self) -> str:
        op = {
            AffineExprKind.ADD: "+",
            AffineExprKind.MUL: "*",
            AffineExprKind.MOD: "mod",
            AffineExprKind.FLOORDIV: "floordiv",
            AffineExprKind.CEILDIV: "ceildiv",
        }[self.kind]
        return f"({self.lhs} {op} {self.rhs})"


# ----------------------------------------------------------------------
# Smart constructors with canonicalization
# ----------------------------------------------------------------------


def _coerce(value) -> AffineExpr:
    if isinstance(value, AffineExpr):
        return value
    if isinstance(value, int):
        return AffineConstantExpr(value)
    raise TypeError(f"cannot use {value!r} in an affine expression")


def _make_add(lhs: AffineExpr, rhs: AffineExpr) -> AffineExpr:
    if isinstance(lhs, AffineConstantExpr) and isinstance(rhs, AffineConstantExpr):
        return AffineConstantExpr(lhs.value + rhs.value)
    if isinstance(lhs, AffineConstantExpr):
        lhs, rhs = rhs, lhs  # constants to the right
    if isinstance(rhs, AffineConstantExpr) and rhs.value == 0:
        return lhs
    return AffineBinaryExpr(AffineExprKind.ADD, lhs, rhs)


def _make_mul(lhs: AffineExpr, rhs: AffineExpr) -> AffineExpr:
    if isinstance(lhs, AffineConstantExpr) and isinstance(rhs, AffineConstantExpr):
        return AffineConstantExpr(lhs.value * rhs.value)
    if isinstance(lhs, AffineConstantExpr):
        lhs, rhs = rhs, lhs
    if isinstance(rhs, AffineConstantExpr):
        if rhs.value == 0:
            return AffineConstantExpr(0)
        if rhs.value == 1:
            return lhs
    return AffineBinaryExpr(AffineExprKind.MUL, lhs, rhs)


def _make_binary(kind: AffineExprKind, lhs: AffineExpr, rhs: AffineExpr) -> AffineExpr:
    if kind is AffineExprKind.ADD:
        return _make_add(lhs, rhs)
    if kind is AffineExprKind.MUL:
        return _make_mul(lhs, rhs)
    if isinstance(lhs, AffineConstantExpr) and isinstance(rhs, AffineConstantExpr):
        return AffineConstantExpr(
            AffineBinaryExpr(kind, lhs, rhs).evaluate((), ())
        )
    if kind in (AffineExprKind.FLOORDIV, AffineExprKind.CEILDIV):
        if isinstance(rhs, AffineConstantExpr) and rhs.value == 1:
            return lhs
    return AffineBinaryExpr(kind, lhs, rhs)


def dim(position: int) -> AffineDimExpr:
    return AffineDimExpr(position)


def symbol(position: int) -> AffineSymbolExpr:
    return AffineSymbolExpr(position)


def constant(value: int) -> AffineConstantExpr:
    return AffineConstantExpr(value)


def from_linear_form(form: LinearForm) -> AffineExpr:
    """Rebuild a canonical expression from a linear decomposition."""
    expr: AffineExpr = AffineConstantExpr(form.constant)
    for pos in sorted(form.dim_coeffs):
        expr = dim(pos) * form.dim_coeffs[pos] + expr
    for pos in sorted(form.symbol_coeffs):
        expr = symbol(pos) * form.symbol_coeffs[pos] + expr
    return expr
