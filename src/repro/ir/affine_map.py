"""Affine maps: multi-result affine functions over dims and symbols."""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple

from .affine_expr import (
    AffineConstantExpr,
    AffineDimExpr,
    AffineExpr,
    AffineExprKind,
    constant,
    dim,
    symbol,
)


class AffineMap:
    """``(d0, ..., dn)[s0, ..., sm] -> (e0, ..., ek)``."""

    def __init__(
        self,
        num_dims: int,
        num_symbols: int,
        results: Sequence[AffineExpr],
    ):
        self.num_dims = num_dims
        self.num_symbols = num_symbols
        self.results: Tuple[AffineExpr, ...] = tuple(results)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def identity(rank: int) -> "AffineMap":
        return AffineMap(rank, 0, [dim(i) for i in range(rank)])

    @staticmethod
    def constant_map(values: Sequence[int]) -> "AffineMap":
        return AffineMap(0, 0, [constant(v) for v in values])

    @staticmethod
    def permutation(perm: Sequence[int]) -> "AffineMap":
        if sorted(perm) != list(range(len(perm))):
            raise ValueError(f"not a permutation: {perm}")
        return AffineMap(len(perm), 0, [dim(p) for p in perm])

    @staticmethod
    def from_exprs(num_dims: int, exprs: Sequence[AffineExpr]) -> "AffineMap":
        return AffineMap(num_dims, 0, exprs)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_results(self) -> int:
        return len(self.results)

    def is_identity(self) -> bool:
        if self.num_results != self.num_dims:
            return False
        return all(
            isinstance(e, AffineDimExpr) and e.position == i
            for i, e in enumerate(self.results)
        )

    def is_permutation(self) -> bool:
        if self.num_results != self.num_dims:
            return False
        positions = []
        for e in self.results:
            if not isinstance(e, AffineDimExpr):
                return False
            positions.append(e.position)
        return sorted(positions) == list(range(self.num_dims))

    def permutation_vector(self) -> Optional[List[int]]:
        if not self.is_permutation():
            return None
        return [e.position for e in self.results]  # type: ignore[union-attr]

    def evaluate(
        self, dims: Sequence[int], symbols: Sequence[int] = ()
    ) -> List[int]:
        if len(dims) != self.num_dims:
            raise ValueError(
                f"map expects {self.num_dims} dims, got {len(dims)}"
            )
        if len(symbols) != self.num_symbols:
            raise ValueError(
                f"map expects {self.num_symbols} symbols, got {len(symbols)}"
            )
        return [e.evaluate(dims, symbols) for e in self.results]

    def compose(self, other: "AffineMap") -> "AffineMap":
        """``self.compose(other)`` applies ``other`` first: d -> self(other(d))."""
        if other.num_results != self.num_dims:
            raise ValueError(
                "composition mismatch: "
                f"{self.num_dims} dims vs {other.num_results} results"
            )
        if self.num_symbols or other.num_symbols:
            raise ValueError("symbolic map composition is not supported")
        mapping = {i: expr for i, expr in enumerate(other.results)}
        new_results = [e.substitute_dims(mapping) for e in self.results]
        return AffineMap(other.num_dims, 0, new_results)

    def sub_map(self, result_positions: Sequence[int]) -> "AffineMap":
        return AffineMap(
            self.num_dims,
            self.num_symbols,
            [self.results[i] for i in result_positions],
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AffineMap)
            and self.num_dims == other.num_dims
            and self.num_symbols == other.num_symbols
            and self.results == other.results
        )

    def __hash__(self) -> int:
        return hash((self.num_dims, self.num_symbols, self.results))

    # ------------------------------------------------------------------
    # Text form
    # ------------------------------------------------------------------

    def __str__(self) -> str:
        dims = ", ".join(f"d{i}" for i in range(self.num_dims))
        syms = ", ".join(f"s{i}" for i in range(self.num_symbols))
        sym_part = f"[{syms}]" if self.num_symbols else ""
        body = ", ".join(_pretty_expr(e) for e in self.results)
        return f"({dims}){sym_part} -> ({body})"

    def __repr__(self) -> str:
        return f"affine_map<{self}>"

    @staticmethod
    def parse(text: str) -> "AffineMap":
        return _parse_affine_map(text)


def _pretty_expr(expr: AffineExpr) -> str:
    """Print without redundant outer parentheses."""
    text = str(expr)
    if text.startswith("(") and text.endswith(")"):
        # Strip only if the parens wrap the whole expression.
        depth = 0
        for i, ch in enumerate(text):
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0 and i != len(text) - 1:
                    return text
        return text[1:-1]
    return text


# ----------------------------------------------------------------------
# A small recursive-descent parser for the textual affine map form.
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<id>[a-zA-Z_][a-zA-Z_0-9]*)|(?P<num>-?\d+)|(?P<sym>[()\[\],+*-]))"
)


def _tokenize_map(text: str) -> List[str]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            if text[pos:].strip() == "":
                break
            raise ValueError(f"bad affine map syntax near {text[pos:]!r}")
        tokens.append(match.group(match.lastgroup))
        pos = match.end()
    return tokens


class _MapParser:
    def __init__(self, tokens: List[str], dims: dict, syms: dict):
        self.tokens = tokens
        self.pos = 0
        self.dims = dims
        self.syms = syms

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise ValueError("unexpected end of affine map")
        self.pos += 1
        return tok

    def expect(self, tok: str) -> None:
        got = self.next()
        if got != tok:
            raise ValueError(f"expected {tok!r} in affine map, got {got!r}")

    def parse_expr(self) -> AffineExpr:
        expr = self.parse_term()
        while self.peek() in ("+", "-"):
            op = self.next()
            rhs = self.parse_term()
            expr = expr + rhs if op == "+" else expr - rhs
        return expr

    def parse_term(self) -> AffineExpr:
        expr = self.parse_factor()
        while self.peek() in ("*", "mod", "floordiv", "ceildiv"):
            op = self.next()
            rhs = self.parse_factor()
            if op == "*":
                expr = expr * rhs
            elif op == "mod":
                expr = expr % rhs
            elif op == "floordiv":
                expr = expr.floordiv(rhs)
            else:
                expr = expr.ceildiv(rhs)
        return expr

    def parse_factor(self) -> AffineExpr:
        tok = self.next()
        if tok == "(":
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if tok == "-":
            return -self.parse_factor()
        if re.fullmatch(r"-?\d+", tok):
            return constant(int(tok))
        if tok in self.dims:
            return dim(self.dims[tok])
        if tok in self.syms:
            return symbol(self.syms[tok])
        raise ValueError(f"unknown identifier {tok!r} in affine map")


def _parse_affine_map(text: str) -> AffineMap:
    text = text.strip()
    if text.startswith("affine_map<") and text.endswith(">"):
        text = text[len("affine_map<"):-1]
    head, _, body = text.partition("->")
    if not body:
        raise ValueError(f"affine map missing '->': {text!r}")
    head = head.strip()
    dims: dict = {}
    syms: dict = {}
    dim_part, sym_part = head, ""
    if "[" in head:
        dim_part, _, rest = head.partition("[")
        sym_part = rest.rstrip("]").rstrip()
    dim_part = dim_part.strip()
    if not (dim_part.startswith("(") and dim_part.endswith(")")):
        raise ValueError(f"bad affine map dim list: {dim_part!r}")
    for name in filter(None, (s.strip() for s in dim_part[1:-1].split(","))):
        dims[name] = len(dims)
    for name in filter(None, (s.strip() for s in sym_part.split(","))):
        syms[name] = len(syms)

    body = body.strip()
    if not (body.startswith("(") and body.endswith(")")):
        raise ValueError(f"bad affine map result list: {body!r}")
    parser = _MapParser(_tokenize_map(body[1:-1]), dims, syms)
    results = []
    if parser.peek() is not None:
        results.append(parser.parse_expr())
        while parser.peek() == ",":
            parser.next()
            results.append(parser.parse_expr())
    if parser.peek() is not None:
        raise ValueError("trailing tokens in affine map")
    return AffineMap(len(dims), len(syms), results)
