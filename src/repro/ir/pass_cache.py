"""Function-granular pass-result cache (the "compilation firewall").

Progressive raising re-runs the same passes over mostly-unchanged IR:
the serve and batch cold paths pay full pipeline cost per unit, and
schedule search re-lowers one payload dozens of times with only the
schedule suffix varying.  This module memoizes *pass results at
function granularity* so unchanged functions skip ``run_on_function``
entirely — in-process through an LRU memo, and across processes
through a ``passes/`` namespace in the shared disk cache.

Key anatomy (all SHA-256 hex):

* **Per-pass entry** — ``(function fingerprint, pass name, pass
  config, pattern driver, PASS_CACHE_VERSION)``.  The value records
  whether the pass left the function byte-identical (``clean``) or
  rewrote it (``rewrite`` + the printed result IR and its
  fingerprint), plus an optional ``meta`` dict of counter deltas so
  observability survives a hit.
* **Prefix entry** — ``(function fingerprint at module entry,
  pipeline-prefix hash, driver, PASS_CACHE_VERSION)`` where the prefix
  hash chains every ``(pass name, pass config)`` pair of the pipeline
  prefix.  A cold process looks up the *longest* matching prefix,
  splices the cached post-prefix function into the module, and runs
  only the residual passes — multi-function units compile only their
  genuinely new functions.

Invalidation is purely content-addressed: any IR change produces a new
function fingerprint, any pass-config or driver change a new key, and
``PASS_CACHE_VERSION`` is bumped whenever pass semantics change.
Correctness is enforced (not assumed) by the ``incremental-diff`` fuzz
oracle stage, which byte-diffs incremental-vs-scratch printed IR at
every pipeline snapshot.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

from .builtin import FuncOp, ModuleOp
from .core import Operation
from .printer import print_module
from .rewrite import get_default_driver

#: Folded into every key: bump whenever any pass's semantics change in
#: a way its ``cache_config()`` does not capture.
PASS_CACHE_VERSION = "pass-cache-v1"

#: Default in-memory memo bound (entries, not bytes).
DEFAULT_MEMO_ENTRIES = 4096


class PassCacheStats:
    """Counters for one :class:`PassResultCache`.

    Serving executor threads and the engine may share one instance per
    tenant, so mutation goes through :meth:`bump` under a lock.

    * ``hits`` / ``misses`` — per-pass memo lookups.
    * ``disk_hits`` — memo misses satisfied by the disk tier.
    * ``executions`` — ``run_on_function`` (or stage-runner) calls that
      actually ran; a fully warm recompile has zero.
    * ``spliced`` — cached *rewrite* results parsed back into the
      module in place of running the pass.
    * ``skipped_verifies`` — per-function re-verifies skipped because
      the result came from the cache.
    * ``prefix_restores`` — functions fast-forwarded past a whole
      pipeline prefix from the disk tier.
    * ``stores`` — new entries written (memory, and disk when attached).
    """

    _COUNTERS = (
        "hits",
        "misses",
        "disk_hits",
        "executions",
        "spliced",
        "skipped_verifies",
        "prefix_restores",
        "stores",
    )

    def __init__(self):
        self._lock = threading.Lock()
        for name in self._COUNTERS:
            setattr(self, name, 0)

    def bump(self, **deltas: int) -> None:
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {name: getattr(self, name) for name in self._COUNTERS}


def fingerprint_function(func: Operation) -> str:
    """SHA-256 hex digest of the function's printed form."""
    return hashlib.sha256(print_module(func).encode("utf-8")).hexdigest()


def enclosing_module(op: Operation) -> Optional[ModuleOp]:
    """The ModuleOp ``op`` lives under, if attached to one."""
    node: Optional[Operation] = op
    while node is not None:
        if isinstance(node, ModuleOp):
            return node
        node = node.parent_op
    return None


def splice_function(module: ModuleOp, old_func: FuncOp, text: str) -> FuncOp:
    """Replace ``old_func`` with the function parsed from ``text``,
    preserving its position in the module body (printed-module output
    must be byte-identical to a from-scratch run)."""
    from .parser import parse_func

    new_func = parse_func(text)
    if new_func.parent_block is not None:
        new_func.parent_block.remove(new_func)
    block = module.body
    index = block.operations.index(old_func)
    block.remove(old_func)
    block.insert(index, new_func)
    module.bump_version()
    return new_func


class PassResultCache:
    """Two-tier (memory LRU + optional disk) pass-result store.

    The disk tier reuses :class:`~repro.execution.engine.disk_cache.
    DiskKernelCache` text payloads under a ``passes/`` namespace beside
    ``kernels/`` / ``modules/`` / ``schedules/`` — same atomic-write,
    corrupt-tolerant, size-pruned artifact store, shared without
    coordination by the persistent worker pool.
    """

    def __init__(self, disk=None, max_entries: int = DEFAULT_MEMO_ENTRIES):
        if max_entries <= 0:
            raise ValueError("pass cache needs at least one memo slot")
        self.max_entries = max_entries
        self._memo: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.RLock()
        self.stats = PassCacheStats()
        self.disk = disk

    def attach_disk(self, root: str, max_bytes: Optional[int] = None):
        """Attach the persistent tier at ``<root>/passes``."""
        import os

        from ..execution.engine.disk_cache import (
            DEFAULT_MAX_BYTES,
            DiskKernelCache,
        )

        self.disk = DiskKernelCache(
            os.path.join(root, "passes"),
            DEFAULT_MAX_BYTES if max_bytes is None else max_bytes,
        )
        return self.disk

    # -- keys -----------------------------------------------------------

    @staticmethod
    def _digest(*parts: str) -> str:
        digest = hashlib.sha256()
        for part in parts:
            digest.update(part.encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()

    def key(self, func_fp: str, pass_name: str, config: str = "") -> str:
        """Per-pass entry key; the pattern driver is folded in so the
        worklist/snapshot oracle pair never share entries."""
        return self._digest(
            "pass", PASS_CACHE_VERSION, get_default_driver(),
            func_fp, pass_name, config,
        )

    def prefix_key(self, entry_fp: str, prefix_hash: str) -> str:
        """Pipeline-prefix entry key (see module docstring)."""
        return self._digest(
            "prefix", PASS_CACHE_VERSION, get_default_driver(),
            entry_fp, prefix_hash,
        )

    # -- lookup / store -------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """Memo-then-disk lookup; a disk hit repopulates the memo."""
        with self._lock:
            entry = self._memo.get(key)
            if entry is not None:
                self._memo.move_to_end(key)
        if entry is not None:
            self.stats.bump(hits=1)
            return entry
        if self.disk is not None:
            text = self.disk.load_text(key)
            if text is not None:
                try:
                    entry = json.loads(text)
                except ValueError:
                    entry = None
                if isinstance(entry, dict) and entry.get("kind") in (
                    "clean",
                    "rewrite",
                ):
                    self._remember(key, entry)
                    self.stats.bump(hits=1, disk_hits=1)
                    return entry
        self.stats.bump(misses=1)
        return None

    def _remember(self, key: str, entry: dict) -> None:
        with self._lock:
            self._memo[key] = entry
            self._memo.move_to_end(key)
            while len(self._memo) > self.max_entries:
                self._memo.popitem(last=False)

    def contains(self, key: str) -> bool:
        with self._lock:
            return key in self._memo

    def put(self, key: str, entry: dict, to_disk: bool = True) -> None:
        self._remember(key, entry)
        self.stats.bump(stores=1)
        if to_disk and self.disk is not None:
            self.disk.store_text(key, json.dumps(entry, sort_keys=True))

    def clear(self) -> None:
        with self._lock:
            self._memo.clear()
        self.stats = PassCacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._memo)

    def snapshot(self) -> dict:
        """Combined statistics for both tiers."""
        return {
            "memory": self.stats.snapshot(),
            "entries": len(self),
            "disk": self.disk.stats.snapshot()
            if self.disk is not None
            else None,
        }


def cached_stage(
    cache: Optional[PassResultCache],
    func: FuncOp,
    stage_name: str,
    config: str,
    runner: Callable[[FuncOp], Optional[dict]],
    fp: Optional[str] = None,
) -> Tuple[FuncOp, dict, Optional[str]]:
    """Memoize an arbitrary function-local transform through ``cache``.

    ``runner(func)`` mutates ``func`` in place and returns a JSON-safe
    ``meta`` dict of counter deltas (or None).  On a hit the runner is
    skipped: a ``rewrite`` entry splices the cached result text into
    the enclosing module, and the stored ``meta`` is replayed so
    stats-based observability (``OptStats`` stages, schedule reports)
    stays identical to an uncached run.

    ``fp``, when given, is the caller-known fingerprint of ``func`` —
    stage drivers thread the returned fingerprint into the next stage
    so a chain of cache hits prints each function once, not once per
    stage.  Pass it only when nothing can have mutated ``func`` since
    the fingerprint was taken.

    Returns ``(func, meta, fp)`` — ``func`` may be a fresh op after a
    splice, and ``fp`` is the post-stage fingerprint (``None`` when the
    stage bypassed the cache, i.e. the result is unknown).
    """
    if cache is None:
        return func, dict(runner(func) or {}), None
    if fp is None:
        fp = fingerprint_function(func)
    key = cache.key(fp, stage_name, config)
    entry = cache.get(key)
    if entry is not None:
        if entry["kind"] == "rewrite":
            module = enclosing_module(func)
            if module is not None:
                func = splice_function(module, func, entry["text"])
                cache.stats.bump(spliced=1)
        return func, dict(entry.get("meta") or {}), entry["fp"]
    meta = dict(runner(func) or {})
    cache.stats.bump(executions=1)
    new_fp = fingerprint_function(func)
    if new_fp != fp:
        cache.put(
            key,
            {
                "kind": "rewrite",
                "text": print_module(func),
                "fp": new_fp,
                "meta": meta,
            },
        )
        module = enclosing_module(func)
        if module is not None:
            module.bump_version()
    else:
        cache.put(key, {"kind": "clean", "fp": fp, "meta": meta})
    return func, meta, new_fp
