"""SSA values and use-def chains."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

from .types import Type

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .core import Block, Operation


class OpOperand:
    """A single use of a :class:`Value` by an operation.

    Tracking uses through explicit operand objects keeps use-def chains
    consistent when operands are replaced.
    """

    __slots__ = ("owner", "index", "value")

    def __init__(self, owner: "Operation", index: int, value: "Value"):
        self.owner = owner
        self.index = index
        self.value = value
        value._uses.append(self)

    def set(self, new_value: "Value") -> None:
        """Point this operand at ``new_value``, updating use lists."""
        self.value._uses.remove(self)
        self.value = new_value
        new_value._uses.append(self)

    def drop(self) -> None:
        self.value._uses.remove(self)


class Value:
    """Base class for SSA values (op results and block arguments)."""

    def __init__(self, type: Type):
        self.type = type
        self._uses: List[OpOperand] = []

    @property
    def uses(self) -> List[OpOperand]:
        return list(self._uses)

    @property
    def users(self) -> List["Operation"]:
        """Operations that use this value (with duplicates removed,
        preserving order)."""
        seen = []
        for use in self._uses:
            if use.owner not in seen:
                seen.append(use.owner)
        return seen

    def has_one_use(self) -> bool:
        return len(self._uses) == 1

    def is_used(self) -> bool:
        return bool(self._uses)

    def replace_all_uses_with(self, new_value: "Value") -> None:
        if new_value is self:
            return
        for use in list(self._uses):
            use.set(new_value)

    @property
    def defining_op(self) -> Optional["Operation"]:
        """The operation producing this value, or ``None`` for block
        arguments."""
        return None

    def walk_uses(self) -> Iterator[OpOperand]:
        return iter(list(self._uses))


class OpResult(Value):
    """A value produced by an operation."""

    def __init__(self, owner: "Operation", index: int, type: Type):
        super().__init__(type)
        self.owner = owner
        self.index = index

    @property
    def defining_op(self) -> Optional["Operation"]:
        return self.owner

    def __repr__(self) -> str:
        return f"<OpResult #{self.index} of {self.owner.name} : {self.type}>"


class BlockArgument(Value):
    """A value bound on entry to a block (e.g. a loop induction
    variable or function parameter)."""

    def __init__(self, owner: "Block", index: int, type: Type):
        super().__init__(type)
        self.owner = owner
        self.index = index

    def __repr__(self) -> str:
        return f"<BlockArgument #{self.index} : {self.type}>"
