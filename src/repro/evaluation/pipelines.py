"""The five evaluation configurations of Figure 9.

Each pipeline takes a kernel's C source, pushes it through the real
compilation flow (MET -> Affine -> transforms), and prices the result
with the machine model:

  * ``Clang -O3``      — the MET output as-is (a general-purpose
    compiler's naive schedule; the model still vectorizes stride-1
    innermost loops, as clang does).
  * ``Pluto-default``  — tiling 32 + smartfuse.
  * ``Pluto-best``     — the autotuning sweep.
  * ``MLT-Linalg``     — Multi-Level Tactics raising to Linalg, then
    the default Linalg lowering (tiled loops).
  * ``MLT-BLAS``       — raising to Linalg, then the BLAS substitution
    (library calls with dispatch overhead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..dialects import linalg as linalg_d
from ..dialects.affine import outermost_loops, perfect_nest
from ..execution.cost_model import CostModel, CostReport
from ..execution.machines import Machine
from ..ir import Context, ModuleOp
from ..met import compile_c
from ..polyhedral.pluto import PlutoOptions, pluto_best, pluto_optimize
from ..tactics.raising import raise_affine_to_linalg
from ..transforms.lowering import LinalgToBlasPass, lower_linalg_op_to_affine
from ..transforms.tiling import TilingError, tile_perfect_nest


@dataclass
class PipelineResult:
    config: str
    seconds: float
    flops: int
    detail: str = ""

    @property
    def gflops(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.flops / self.seconds / 1e9


def _cost(module: ModuleOp, machine: Machine) -> CostReport:
    model = CostModel(machine)
    report = CostReport()
    for func in module.functions:
        report.merge(model.cost_function(func))
    return report


def run_clang(source: str, machine: Machine) -> PipelineResult:
    module = compile_c(source)
    report = _cost(module, machine)
    return PipelineResult("Clang -O3", report.seconds, report.flops)


def run_pluto_default(source: str, machine: Machine) -> PipelineResult:
    module = pluto_optimize(compile_c(source), PlutoOptions())
    report = _cost(module, machine)
    return PipelineResult("Pluto-default", report.seconds, report.flops)


def run_pluto_best(source: str, machine: Machine) -> PipelineResult:
    options, seconds = pluto_best(lambda: compile_c(source), machine)
    module = pluto_optimize(compile_c(source), options)
    report = _cost(module, machine)
    return PipelineResult(
        "Pluto-best", report.seconds, report.flops, options.describe()
    )


def _default_linalg_lowering(module: ModuleOp, tile: int = 32) -> None:
    """The default Linalg codegen path: named contraction-like ops
    become tiled loop nests; data-movement ops stay (priced as views /
    memory passes by the model)."""
    for func in module.functions:
        for op in list(func.walk()):
            if isinstance(
                op,
                (linalg_d.MatmulOp, linalg_d.MatvecOp, linalg_d.Conv2DNchwOp),
            ):
                block = op.parent_block
                before = list(block.operations)
                lower_linalg_op_to_affine(op)
                new_roots = [
                    o for o in block.operations if o not in before
                ]
                for root in new_roots:
                    band = perfect_nest(root)
                    if len(band) < 2:
                        continue
                    try:
                        tile_perfect_nest(root, [tile] * len(band))
                    except TilingError:
                        pass


def run_mlt_linalg(source: str, machine: Machine) -> PipelineResult:
    module = compile_c(source)
    stats = raise_affine_to_linalg(module)
    _default_linalg_lowering(module)
    report = _cost(module, machine)
    return PipelineResult(
        "MLT-Linalg", report.seconds, report.flops, f"raised={stats.total}"
    )


def run_mlt_blas(
    source: str, machine: Machine, library: str = "mkl-dnn"
) -> PipelineResult:
    module = compile_c(source)
    stats = raise_affine_to_linalg(module)
    LinalgToBlasPass(library).run(module, Context())
    report = _cost(module, machine)
    return PipelineResult(
        "MLT-BLAS", report.seconds, report.flops, f"raised={stats.total}"
    )


ALL_PIPELINES: Dict[str, Callable] = {
    "Clang -O3": run_clang,
    "Pluto-default": run_pluto_default,
    "Pluto-best": run_pluto_best,
    "MLT-Linalg": run_mlt_linalg,
    "MLT-BLAS": run_mlt_blas,
}


def run_all_pipelines(
    source: str, machine: Machine, configs: Optional[List[str]] = None
) -> List[PipelineResult]:
    names = configs or list(ALL_PIPELINES)
    return [ALL_PIPELINES[name](source, machine) for name in names]


# ----------------------------------------------------------------------
# Module builders (measured execution)
#
# The pipelines above price transformed modules with the machine model;
# these builders return the transformed *module itself*, so the
# benchmark harness can execute it — interpreted or compiled — and
# measure wall-clock time instead.
# ----------------------------------------------------------------------


def build_baseline(source: str, tile: int = 32) -> ModuleOp:
    """The MET output as-is: naive affine loop nests (no raising)."""
    return compile_c(source)


def build_mlt_linalg(source: str, tile: int = 32) -> ModuleOp:
    """Raise to Linalg, then the default tiled-loop lowering."""
    module = compile_c(source)
    raise_affine_to_linalg(module)
    _default_linalg_lowering(module, tile=tile)
    return module


def build_mlt_blas(
    source: str, tile: int = 32, library: str = "mkl-dnn"
) -> ModuleOp:
    """Raise to Linalg, then substitute BLAS library calls."""
    module = compile_c(source)
    raise_affine_to_linalg(module)
    LinalgToBlasPass(library).run(module, Context())
    return module


MODULE_BUILDERS: Dict[str, Callable[..., ModuleOp]] = {
    "baseline": build_baseline,
    "mlt-linalg": build_mlt_linalg,
    "mlt-blas": build_mlt_blas,
}


def build_module(source: str, pipeline: str, tile: int = 32) -> ModuleOp:
    """Build the executable module for one named pipeline."""
    try:
        builder = MODULE_BUILDERS[pipeline]
    except KeyError:
        raise ValueError(
            f"unknown pipeline {pipeline!r}; known: {sorted(MODULE_BUILDERS)}"
        )
    return builder(source, tile=tile)
