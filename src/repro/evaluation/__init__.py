"""Benchmark corpus and evaluation pipelines for the paper's studies."""

from .kernels import (  # noqa: F401
    CONTRACTION_SIZES,
    KernelSpec,
    LEVEL2_KERNELS,
    LEVEL3_KERNELS,
    PAPER_BENCHMARKS,
    get_kernel,
)
from .pipelines import (  # noqa: F401
    PipelineResult,
    run_clang,
    run_mlt_blas,
    run_mlt_linalg,
    run_pluto_best,
    run_pluto_default,
    run_all_pipelines,
)
