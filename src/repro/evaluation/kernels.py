"""The benchmark kernel corpus (§V).

Linear-algebra kernels from Polybench 4.2 (written with multi-
dimensional array references), the Darknet-style GEMM (linearized
references), a conv2d, and the tensor contractions from previous
studies on coupled-cluster methods and chemistry kernels.

Every kernel is a C-source *generator* parameterized by problem sizes,
so the same corpus serves the LARGE-size analytical studies and the
small-size execution/correctness tests.  Polybench's alpha/beta scalar
factors are folded to 1 so the kernels stay inside the patterns the
stock tactics express (documented substitution; the paper's tactics
have the same restriction — their GEMM tactic is plain
``C(i,j) += A(i,k) * B(k,j)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..tactics.contraction import PAPER_CONTRACTIONS, parse_contraction_spec

# ----------------------------------------------------------------------
# Source generators
# ----------------------------------------------------------------------


def _loop(iv: str, ub: int) -> str:
    return f"for (int {iv} = 0; {iv} < {ub}; {iv}++)"


def gemm_source(ni: int, nj: int, nk: int, init: bool = True) -> str:
    init_part = (
        f"  {_loop('i', ni)}\n    {_loop('j', nj)}\n"
        "      C[i][j] = 0.0f;\n"
        if init
        else ""
    )
    return (
        f"void gemm(float A[{ni}][{nk}], float B[{nk}][{nj}], "
        f"float C[{ni}][{nj}]) {{\n"
        f"{init_part}"
        f"  {_loop('i', ni)}\n    {_loop('j', nj)}\n      {_loop('k', nk)}\n"
        "        C[i][j] += A[i][k] * B[k][j];\n"
        "}\n"
    )


def mm_source(ni: int, nj: int, nk: int) -> str:
    """Polybench 'mm': a single GEMM kernel."""
    return gemm_source(ni, nj, nk)


def two_mm_source(ni: int, nj: int, nk: int, nl: int) -> str:
    """2mm: D = (A*B) * C  via a temporary."""
    return (
        f"void two_mm(float A[{ni}][{nk}], float B[{nk}][{nj}], "
        f"float C[{nj}][{nl}], float D[{ni}][{nl}]) {{\n"
        f"  float tmp[{ni}][{nj}];\n"
        f"  {_loop('i', ni)}\n    {_loop('j', nj)}\n      tmp[i][j] = 0.0f;\n"
        f"  {_loop('i', ni)}\n    {_loop('j', nj)}\n      {_loop('k', nk)}\n"
        "        tmp[i][j] += A[i][k] * B[k][j];\n"
        f"  {_loop('i', ni)}\n    {_loop('j', nl)}\n      D[i][j] = 0.0f;\n"
        f"  {_loop('i', ni)}\n    {_loop('j', nl)}\n      {_loop('k', nj)}\n"
        "        D[i][j] += tmp[i][k] * C[k][j];\n"
        "}\n"
    )


def three_mm_source(ni: int, nj: int, nk: int, nl: int, nm: int) -> str:
    """3mm: G = (A*B) * (C*D)."""
    return (
        f"void three_mm(float A[{ni}][{nk}], float B[{nk}][{nj}], "
        f"float C[{nj}][{nm}], float D[{nm}][{nl}], float G[{ni}][{nl}]) {{\n"
        f"  float E[{ni}][{nj}];\n  float F[{nj}][{nl}];\n"
        f"  {_loop('i', ni)}\n    {_loop('j', nj)}\n      E[i][j] = 0.0f;\n"
        f"  {_loop('i', ni)}\n    {_loop('j', nj)}\n      {_loop('k', nk)}\n"
        "        E[i][j] += A[i][k] * B[k][j];\n"
        f"  {_loop('i', nj)}\n    {_loop('j', nl)}\n      F[i][j] = 0.0f;\n"
        f"  {_loop('i', nj)}\n    {_loop('j', nl)}\n      {_loop('k', nm)}\n"
        "        F[i][j] += C[i][k] * D[k][j];\n"
        f"  {_loop('i', ni)}\n    {_loop('j', nl)}\n      G[i][j] = 0.0f;\n"
        f"  {_loop('i', ni)}\n    {_loop('j', nl)}\n      {_loop('k', nj)}\n"
        "        G[i][j] += E[i][k] * F[k][j];\n"
        "}\n"
    )


def doitgen_source(nr: int, nq: int, np: int) -> str:
    """Polybench doitgen as a batched contraction: the multiresolution
    kernel's innermost product, written to a fresh ``sum`` buffer so
    every reference stays affine and alias-free."""
    return (
        f"void doitgen(float A[{nr}][{nq}][{np}], float C4[{np}][{np}], "
        f"float sum[{nr}][{nq}][{np}]) {{\n"
        f"  {_loop('r', nr)}\n    {_loop('q', nq)}\n      {_loop('p', np)}\n"
        "        sum[r][q][p] = 0.0f;\n"
        f"  {_loop('r', nr)}\n    {_loop('q', nq)}\n      {_loop('p', np)}\n"
        f"        {_loop('s', np)}\n"
        "          sum[r][q][p] += A[r][q][s] * C4[s][p];\n"
        "}\n"
    )


def atax_source(m: int, n: int) -> str:
    """y = A^T (A x)."""
    return (
        f"void atax(float A[{m}][{n}], float x[{n}], float y[{n}], "
        f"float tmp[{m}]) {{\n"
        f"  {_loop('i', m)}\n    tmp[i] = 0.0f;\n"
        f"  {_loop('i', m)}\n    {_loop('j', n)}\n"
        "      tmp[i] += A[i][j] * x[j];\n"
        f"  {_loop('j', n)}\n    y[j] = 0.0f;\n"
        f"  {_loop('i', m)}\n    {_loop('j', n)}\n"
        "      y[j] += A[i][j] * tmp[i];\n"
        "}\n"
    )


def bicg_source(n: int, m: int) -> str:
    """s = A^T r ; q = A p."""
    return (
        f"void bicg(float A[{n}][{m}], float s[{m}], float q[{n}], "
        f"float p[{m}], float r[{n}]) {{\n"
        f"  {_loop('j', m)}\n    s[j] = 0.0f;\n"
        f"  {_loop('i', n)}\n    {_loop('j', m)}\n"
        "      s[j] += A[i][j] * r[i];\n"
        f"  {_loop('i', n)}\n    q[i] = 0.0f;\n"
        f"  {_loop('i', n)}\n    {_loop('j', m)}\n"
        "      q[i] += A[i][j] * p[j];\n"
        "}\n"
    )


def mvt_source(n: int) -> str:
    """x1 += A y1 ; x2 += A^T y2."""
    return (
        f"void mvt(float A[{n}][{n}], float x1[{n}], float x2[{n}], "
        f"float y1[{n}], float y2[{n}]) {{\n"
        f"  {_loop('i', n)}\n    {_loop('j', n)}\n"
        "      x1[i] += A[i][j] * y1[j];\n"
        f"  {_loop('i', n)}\n    {_loop('j', n)}\n"
        "      x2[j] += A[i][j] * y2[i];\n"
        "}\n"
    )


def gemver_source(n: int) -> str:
    """B = A + u1 v1^T + u2 v2^T ; x += B^T y ; w += B x (factors folded)."""
    return (
        f"void gemver(float A[{n}][{n}], float u1[{n}], float v1[{n}], "
        f"float u2[{n}], float v2[{n}], float w[{n}], float x[{n}], "
        f"float y[{n}]) {{\n"
        f"  {_loop('i', n)}\n    {_loop('j', n)}\n"
        "      A[i][j] += u1[i] * v1[j] + u2[i] * v2[j];\n"
        f"  {_loop('i', n)}\n    {_loop('j', n)}\n"
        "      x[j] += A[i][j] * y[i];\n"
        f"  {_loop('i', n)}\n    {_loop('j', n)}\n"
        "      w[i] += A[i][j] * x[j];\n"
        "}\n"
    )


def gesummv_source(n: int) -> str:
    """y = A x + B x (alpha/beta folded to 1)."""
    return (
        f"void gesummv(float A[{n}][{n}], float B[{n}][{n}], "
        f"float x[{n}], float y[{n}]) {{\n"
        f"  {_loop('i', n)}\n    y[i] = 0.0f;\n"
        f"  {_loop('i', n)}\n    {_loop('j', n)}\n"
        "      y[i] += A[i][j] * x[j];\n"
        f"  {_loop('i', n)}\n    {_loop('j', n)}\n"
        "      y[i] += B[i][j] * x[j];\n"
        "}\n"
    )


def conv2d_nchw_source(
    n: int, c: int, h: int, w: int, f: int, kh: int, kw: int
) -> str:
    oh, ow = h - kh + 1, w - kw + 1
    return (
        f"void conv2d(float I[{n}][{c}][{h}][{w}], "
        f"float K[{f}][{c}][{kh}][{kw}], "
        f"float O[{n}][{f}][{oh}][{ow}]) {{\n"
        f"  {_loop('b', n)}\n    {_loop('o', f)}\n      {_loop('y', oh)}\n"
        f"        {_loop('x', ow)}\n          O[b][o][y][x] = 0.0f;\n"
        f"  {_loop('b', n)}\n    {_loop('o', f)}\n      {_loop('y', oh)}\n"
        f"        {_loop('x', ow)}\n          {_loop('ci', c)}\n"
        f"            {_loop('p', kh)}\n              {_loop('q', kw)}\n"
        "                O[b][o][y][x] += I[b][ci][y + p][x + q] * "
        "K[o][ci][p][q];\n"
        "}\n"
    )


def darknet_gemm_source(m: int, n: int, k: int) -> str:
    """Darknet's gemm_nn: linearized 1-d array references.

    The stock 2-d GEMM tactic misses this callsite (Figure 8); the
    delinearization pass recovers it (our ablation).
    """
    return (
        f"void gemm_nn(float *A, float *B, float *C) {{\n"
        f"  {_loop('i', m)}\n    {_loop('k', k)}\n      {_loop('j', n)}\n"
        f"        C[i * {n} + j] += A[i * {k} + k] * B[k * {n} + j];\n"
        "}\n"
    )


def contraction_source(spec: str, extents: Dict[str, int]) -> str:
    """Loop-nest C source for a tensor contraction spec."""
    out_idx, a_idx, b_idx = parse_contraction_spec(spec)
    loop_order: List[str] = []
    for var in out_idx + a_idx + b_idx:
        if var not in loop_order:
            loop_order.append(var)

    def decl(name: str, idx: List[str]) -> str:
        dims = "".join(f"[{extents[v]}]" for v in idx)
        return f"float {name}{dims}"

    def ref(name: str, idx: List[str]) -> str:
        return name + "".join(f"[{v}]" for v in idx)

    loops = "\n".join(
        "  " * (d + 1) + _loop(v, extents[v])
        for d, v in enumerate(loop_order)
    )
    body_indent = "  " * (len(loop_order) + 1)
    return (
        f"void contraction({decl('A', a_idx)}, {decl('B', b_idx)}, "
        f"{decl('C', out_idx)}) {{\n"
        f"{loops}\n"
        f"{body_indent}{ref('C', out_idx)} += "
        f"{ref('A', a_idx)} * {ref('B', b_idx)};\n"
        "}\n"
    )


def matrix_chain_source(dims: Sequence[int]) -> str:
    """Left-associative matrix chain (((A1*A2)*A3)...*An) -> R."""
    n = len(dims) - 1
    params = ", ".join(
        f"float A{i + 1}[{dims[i]}][{dims[i + 1]}]" for i in range(n)
    )
    lines = [f"void chain({params}, float R[{dims[0]}][{dims[n]}]) {{"]
    for t in range(1, n - 1):
        lines.append(f"  float T{t}[{dims[0]}][{dims[t + 1]}];")
    prev = "A1"
    prev_cols = dims[1]
    for t in range(1, n):
        out = f"T{t}" if t < n - 1 else "R"
        rows, inner, cols = dims[0], dims[t], dims[t + 1]
        lines.append(f"  {_loop('i', rows)}")
        lines.append(f"    {_loop('j', cols)}")
        lines.append(f"      {out}[i][j] = 0.0f;")
        lines.append(f"  {_loop('i', rows)}")
        lines.append(f"    {_loop('j', cols)}")
        lines.append(f"      {_loop('k', inner)}")
        lines.append(f"        {out}[i][j] += {prev}[i][k] * A{t + 1}[k][j];")
        prev = out
    lines.append("}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


@dataclass
class KernelSpec:
    name: str
    func_name: str
    #: generates the LARGE-size source for the performance studies
    large_source: Callable[[], str]
    #: generates a small version for interpreter-based correctness tests
    small_source: Callable[[], str]
    #: BLAS level the paper groups the kernel under (2 or 3)
    level: int
    #: Figure-8 oracle: callsites a perfect matcher would raise
    oracle_callsites: int = 1

    def large(self) -> str:
        return self.large_source()

    def small(self) -> str:
        return self.small_source()


#: extents for the seven contraction specs (chosen so every benchmark
#: runs in the level-3 regime the paper's figure shows)
CONTRACTION_SIZES: Dict[str, Dict[str, int]] = {}
for _spec in PAPER_CONTRACTIONS:
    _vars = sorted({v for part in parse_contraction_spec(_spec) for v in part})
    _extent = {4: 256, 5: 96, 6: 40}.get(len(_vars), 64)
    CONTRACTION_SIZES[_spec] = {v: _extent for v in _vars}


def _contraction_spec_sizes_small(spec: str) -> Dict[str, int]:
    sizes = {}
    for i, v in enumerate(sorted(CONTRACTION_SIZES[spec])):
        sizes[v] = 5 + i  # distinct small extents shake out index bugs
    return sizes


PAPER_BENCHMARKS: Dict[str, KernelSpec] = {}


def _register(spec: KernelSpec) -> KernelSpec:
    PAPER_BENCHMARKS[spec.name] = spec
    return spec


_register(KernelSpec(
    "atax", "atax",
    lambda: atax_source(1900, 2100),
    lambda: atax_source(13, 17),
    level=2, oracle_callsites=2,
))
_register(KernelSpec(
    "bicg", "bicg",
    lambda: bicg_source(2100, 1900),
    lambda: bicg_source(13, 17),
    level=2, oracle_callsites=2,
))
_register(KernelSpec(
    "gemver", "gemver",
    lambda: gemver_source(2000),
    lambda: gemver_source(14),
    level=2, oracle_callsites=2,
))
_register(KernelSpec(
    "gesummv", "gesummv",
    lambda: gesummv_source(1300),
    lambda: gesummv_source(15),
    level=2, oracle_callsites=2,
))
_register(KernelSpec(
    "mvt", "mvt",
    lambda: mvt_source(2000),
    lambda: mvt_source(13),
    level=2, oracle_callsites=2,
))
_register(KernelSpec(
    "2mm", "two_mm",
    lambda: two_mm_source(800, 900, 1100, 1200),
    lambda: two_mm_source(8, 9, 11, 12),
    level=3, oracle_callsites=2,
))
_register(KernelSpec(
    "3mm", "three_mm",
    lambda: three_mm_source(800, 900, 1000, 1100, 1200),
    lambda: three_mm_source(8, 9, 10, 11, 12),
    level=3, oracle_callsites=3,
))
_register(KernelSpec(
    "gemm", "gemm",
    lambda: gemm_source(1000, 1100, 1200),
    lambda: gemm_source(10, 11, 12),
    level=3, oracle_callsites=1,
))
_register(KernelSpec(
    "conv2d-nchw", "conv2d",
    lambda: conv2d_nchw_source(1, 64, 130, 130, 64, 3, 3),
    lambda: conv2d_nchw_source(1, 3, 8, 8, 4, 3, 3),
    level=3, oracle_callsites=1,
))
for _spec in PAPER_CONTRACTIONS:
    _register(KernelSpec(
        _spec, "contraction",
        (lambda s=_spec: contraction_source(s, CONTRACTION_SIZES[s])),
        (lambda s=_spec: contraction_source(
            s, _contraction_spec_sizes_small(s))),
        level=3, oracle_callsites=1,
    ))

#: the Figure-8 corpus: GEMM callsite detection
FIG8_BENCHMARKS: Dict[str, KernelSpec] = {
    "mm": KernelSpec(
        "mm", "gemm",
        lambda: mm_source(1000, 1100, 1200),
        lambda: mm_source(10, 11, 12),
        level=3, oracle_callsites=1,
    ),
    "2mm": PAPER_BENCHMARKS["2mm"],
    "3mm": PAPER_BENCHMARKS["3mm"],
    "darknet": KernelSpec(
        "darknet", "gemm_nn",
        lambda: darknet_gemm_source(512, 512, 512),
        lambda: darknet_gemm_source(9, 10, 11),
        level=3, oracle_callsites=1,
    ),
}

LEVEL2_KERNELS = [k for k, s in PAPER_BENCHMARKS.items() if s.level == 2]
LEVEL3_KERNELS = [k for k, s in PAPER_BENCHMARKS.items() if s.level == 3]

#: Kernels outside the paper's Figure-9 corpus, used by the schedule
#: autotuner's benchmark set (``mlt-tune``).
EXTRA_BENCHMARKS: Dict[str, KernelSpec] = {
    "doitgen": KernelSpec(
        "doitgen", "doitgen",
        lambda: doitgen_source(150, 140, 160),
        lambda: doitgen_source(5, 6, 7),
        level=3, oracle_callsites=1,
    ),
}

#: Table II matrix chains: (dims, expected IP/OP parenthesizations)
TABLE2_CHAINS: List[Tuple[List[int], str, str]] = [
    (
        [800, 1100, 900, 1200, 100],
        "(((A1xA2)xA3)xA4)",
        "(A1x(A2x(A3xA4)))",
    ),
    (
        [1000, 2000, 900, 1500, 600, 800],
        "((((A1xA2)xA3)xA4)xA5)",
        "((A1x(A2x(A3xA4)))xA5)",
    ),
    (
        [1500, 400, 2000, 2200, 600, 1400, 1000],
        "(((((A1xA2)xA3)xA4)xA5)xA6)",
        "(A1x((((A2xA3)xA4)xA5)xA6))",
    ),
]


def get_kernel(name: str) -> KernelSpec:
    if name in PAPER_BENCHMARKS:
        return PAPER_BENCHMARKS[name]
    if name in FIG8_BENCHMARKS:
        return FIG8_BENCHMARKS[name]
    if name in EXTRA_BENCHMARKS:
        return EXTRA_BENCHMARKS[name]
    raise KeyError(f"unknown benchmark {name!r}")
