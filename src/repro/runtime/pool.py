"""The worker-pool driver: deterministic parallel map.

Design constraints, in order:

1. **Determinism** — results come back in input order regardless of
   worker scheduling (``Pool.map`` preserves order; the serial path is
   a plain comprehension), so a parallel run is byte-identical to a
   serial run for any pure per-unit function.
2. **Serial equivalence** — ``jobs=1`` never touches
   ``multiprocessing``: the unit function (and initializer) run in the
   calling process, so single-job runs behave exactly like the code
   did before the parallel driver existed — same globals, same caches,
   trivially debuggable.
3. **Cheap start-up** — the ``fork`` start method is preferred when
   the platform offers it (workers inherit the warm parent process
   instead of re-importing the world); ``spawn``-only platforms still
   work because work units and unit functions are always picklable
   module-level objects.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def _start_method() -> Optional[str]:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else None


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/0/negative mean "one per
    CPU"."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def seed_for_unit(campaign_seed: int, unit_index: int) -> int:
    """Deterministic per-unit RNG seed.

    Unit ``i`` of a campaign starting at ``campaign_seed`` gets the
    same seed no matter which worker runs it or how many workers
    exist — this is what makes ``--jobs N`` reproduce the exact
    failures (and artifacts) of a serial run.
    """
    return campaign_seed + unit_index


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int = 1,
    initializer: Optional[Callable] = None,
    initargs: Sequence = (),
    chunksize: int = 1,
) -> List[R]:
    """Apply ``fn`` to every item, in-order results, optional pool.

    ``fn``, ``initializer`` and the items must be picklable
    (module-level functions, plain-data arguments) when ``jobs > 1``.
    """
    work = list(items)
    jobs = min(resolve_jobs(jobs), max(len(work), 1))
    if jobs <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in work]
    ctx = (
        multiprocessing.get_context(_start_method())
        if _start_method()
        else multiprocessing.get_context()
    )
    with ctx.Pool(
        processes=jobs, initializer=initializer, initargs=tuple(initargs)
    ) as pool:
        return pool.map(fn, work, chunksize=chunksize)
