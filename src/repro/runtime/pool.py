"""The worker-pool driver: deterministic parallel map over a
**persistent** pool.

Up through PR 4 every ``parallel_map`` call built a fresh
``multiprocessing.Pool`` and tore it down again — fork, import, feed,
join, for every wave of a fuzz campaign and every run of the scale
study.  On the tiny units this project compiles (a few milliseconds
each) that start-up tax dominated: ``BENCH_scale.json`` measured
``jobs=4`` at 0.77x of *serial*.  This module replaces the per-run
pools with a process-global pool that forks its workers **once** and
feeds them batched unit schedules for the rest of the process
lifetime — the same amortization a long-lived compilation service
performs, and the same pool the serving front-end
(:mod:`repro.serving`) submits request batches to.

Design constraints, in order:

1. **Determinism** — results merge in input order regardless of which
   worker ran which batch (batches are tagged with their submission
   index), so a parallel run is byte-identical to a serial run for any
   pure per-unit function.
2. **Serial equivalence** — ``jobs=1`` never touches
   ``multiprocessing``: the unit function (and initializer) run in the
   calling process, so single-job runs behave exactly like the code
   did before the parallel driver existed — same globals, same caches,
   trivially debuggable.
3. **Work-stealing** — all workers pull batches from one shared task
   queue, so a worker that finishes early immediately takes the next
   pending batch instead of idling behind a static shard assignment.
4. **Crash containment** — a worker that dies mid-batch (segfault,
   ``os._exit``, OOM-kill) is detected via its process sentinel; the
   affected call fails *cleanly* with :class:`WorkerCrashError`
   instead of hanging, and the pool respawns a replacement worker so
   subsequent calls keep working.

Initializers run once per worker per ``map`` call (a *generation*),
matching the semantics of the old per-run ``Pool(initializer=...)``:
per-run state such as cache directories is re-applied even though the
worker process itself lives on.
"""

from __future__ import annotations

import atexit
import contextlib
import itertools
import multiprocessing
import os
import pickle
import threading
import time
from multiprocessing import connection
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

T = TypeVar("T")
R = TypeVar("R")

#: Default batches per worker for one ``map`` call: small enough to
#: amortize IPC, large enough that work-stealing can still rebalance a
#: skewed schedule.
BATCHES_PER_WORKER = 4


class WorkerCrashError(RuntimeError):
    """A pool worker died while running a batch.

    The units of the lost batch are reported in ``items``; the pool has
    already respawned a replacement worker by the time this propagates,
    so the *next* ``map`` call runs at full width again.
    """

    def __init__(self, message: str, items: Sequence = ()):
        super().__init__(message)
        self.items = list(items)


def _start_method() -> Optional[str]:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else None


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/0/negative mean "one per
    CPU"."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def effective_cpus() -> int:
    """CPUs actually available to this process (affinity-aware) — the
    upper bound on honest parallel speedup, recorded in scale reports."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def seed_for_unit(campaign_seed: int, unit_index: int) -> int:
    """Deterministic per-unit RNG seed.

    Unit ``i`` of a campaign starting at ``campaign_seed`` gets the
    same seed no matter which worker runs it or how many workers
    exist — this is what makes ``--jobs N`` reproduce the exact
    failures (and artifacts) of a serial run.
    """
    return campaign_seed + unit_index


def plan_batches(
    count: int, jobs: int, batch_size: Optional[int] = None
) -> List[Tuple[int, int]]:
    """Split ``count`` units into contiguous ``(lo, hi)`` batches.

    The batching scheduler is pure so it can be property-tested: the
    returned slices are non-empty, in order, disjoint, and cover
    ``range(count)`` exactly — no unit is dropped or duplicated
    whatever the worker count or batch size.
    """
    if count <= 0:
        return []
    jobs = max(1, jobs)
    if batch_size is None:
        batch_size = -(-count // (jobs * BATCHES_PER_WORKER))
    batch_size = max(1, batch_size)
    return [
        (lo, min(lo + batch_size, count))
        for lo in range(0, count, batch_size)
    ]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _worker_main(worker_id: int, task_queue, result_queue) -> None:
    """Long-lived worker loop: pull a batch, run it, post the result.

    The initializer of a *generation* (one ``map`` call) is applied by
    the first batch of that generation the worker happens to steal;
    later batches of the same generation skip it.
    """
    applied_generation = None
    while True:
        task = task_queue.get()
        if task is None:
            return
        generation, task_id, blob = task
        # Acknowledge *before* any work (including unpickling), so the
        # parent can attribute a crash to this batch.
        result_queue.put(("begin", generation, task_id, worker_id))
        try:
            fn, initializer, initargs, items = pickle.loads(blob)
            if generation != applied_generation:
                if initializer is not None:
                    initializer(*initargs)
                applied_generation = generation
            results = [fn(item) for item in items]
            result_queue.put(("done", generation, task_id, results))
        except BaseException as exc:  # report, never kill the worker
            try:
                payload = pickle.dumps(exc)
            except Exception:
                payload = pickle.dumps(
                    RuntimeError(f"{type(exc).__name__}: {exc}")
                )
            result_queue.put(("error", generation, task_id, payload))


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class _ResultChannel:
    """Multi-producer result stream whose read end the pool owns.

    ``SimpleQueue`` has the right semantics, but waiting for *either* a
    result or a worker-death sentinel requires ``connection.wait`` on
    the queue's read end, which ``SimpleQueue`` only exposes as the
    undocumented ``_reader`` attribute.  This is the same
    pipe-plus-writer-lock construction with the reader public: workers
    serialize their ``put`` calls on a shared process lock, and the
    parent (one ``map`` at a time, under the pool lock) reads
    unlocked.
    """

    def __init__(self, ctx):
        self.reader, self._writer = ctx.Pipe(duplex=False)
        self._write_lock = ctx.Lock()

    def put(self, obj) -> None:
        blob = pickle.dumps(obj)
        with self._write_lock:
            self._writer.send_bytes(blob)

    def get(self):
        return pickle.loads(self.reader.recv_bytes())

    def empty(self) -> bool:
        return not self.reader.poll()


class PersistentPool:
    """A pool of worker processes forked once and reused across calls.

    ``map`` is thread-safe (one call at a time — the serving bridge
    submits batches from executor threads) and merges results in input
    order.  Workers share a single task queue, which is what provides
    work-stealing: whichever worker is free takes the next batch.
    """

    def __init__(self, jobs: int, start_method: Optional[str] = None):
        if jobs < 1:
            raise ValueError("persistent pool needs at least one worker")
        self.jobs = jobs
        self._ctx = multiprocessing.get_context(
            start_method or _start_method()
        )
        self._tasks = self._ctx.SimpleQueue()
        self._results = _ResultChannel(self._ctx)
        self._lock = threading.Lock()
        self._generation = itertools.count(1)
        self._closed = False
        self.stats = {
            "jobs": jobs,
            "maps": 0,
            "batches": 0,
            "units": 0,
            "respawns": 0,
            "crashes": 0,
        }
        self._workers: Dict[int, multiprocessing.process.BaseProcess] = {}
        for wid in range(jobs):
            self._workers[wid] = self._spawn(wid)

    def _spawn(self, worker_id: int):
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, self._tasks, self._results),
            daemon=True,
            name=f"mlt-pool-{id(self) & 0xFFFF:x}-w{worker_id}",
        )
        proc.start()
        return proc

    def alive_workers(self) -> int:
        return sum(1 for p in self._workers.values() if p.is_alive())

    # -- the map protocol ----------------------------------------------

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        initializer: Optional[Callable] = None,
        initargs: Sequence = (),
        batch_size: Optional[int] = None,
    ) -> List[R]:
        work = list(items)
        if not work:
            return []
        with self._lock:
            if self._closed:
                raise RuntimeError("persistent pool is shut down")
            return self._map_locked(fn, work, initializer, initargs, batch_size)

    def _map_locked(self, fn, work, initializer, initargs, batch_size):
        generation = next(self._generation)
        batches = plan_batches(len(work), self.jobs, batch_size)
        pending: Dict[int, Tuple[int, int]] = {}
        for task_id, (lo, hi) in enumerate(batches):
            blob = pickle.dumps(
                (fn, initializer, tuple(initargs), work[lo:hi])
            )
            self._tasks.put((generation, task_id, blob))
            pending[task_id] = (lo, hi)
        self.stats["maps"] += 1
        self.stats["batches"] += len(batches)
        self.stats["units"] += len(work)

        done: Dict[int, List] = {}
        running: Dict[int, int] = {}  # task_id -> worker_id
        failure: Optional[BaseException] = None
        crash_seen = False
        last_progress = time.monotonic()
        while len(done) < len(batches) and failure is None:
            ready = connection.wait(
                [self._results.reader]
                + [p.sentinel for p in self._workers.values() if p.is_alive()],
                timeout=1.0,
            )
            drained = False
            while not self._results.empty():
                drained = True
                last_progress = time.monotonic()
                kind, gen, task_id, payload = self._results.get()
                if gen != generation:
                    continue  # stale batch from an aborted earlier call
                if kind == "begin":
                    running[task_id] = payload
                elif kind == "done":
                    done[task_id] = payload
                    running.pop(task_id, None)
                elif kind == "error":
                    failure = pickle.loads(payload)
                    running.pop(task_id, None)
                    break
            if failure is not None:
                break
            crashed = self._reap_dead_workers()
            if crashed:
                lost = [
                    task_id
                    for task_id, wid in running.items()
                    if wid in crashed and task_id not in done
                ]
                if lost:
                    lost_items = [
                        item
                        for task_id in lost
                        for item in work[slice(*pending[task_id])]
                    ]
                    failure = WorkerCrashError(
                        f"worker crashed while running batch(es) "
                        f"{sorted(lost)} ({len(lost_items)} unit(s)); "
                        "pool respawned a replacement worker",
                        items=lost_items,
                    )
                    break
            if crashed:
                crash_seen = True
            if not ready and not drained and self.alive_workers() == 0:
                failure = WorkerCrashError(
                    "all pool workers died; pool respawned replacements"
                )
                break
            # Watchdog for the (tiny) window where a worker dies after
            # dequeuing a batch but before acknowledging it: a crash
            # was observed, the queue has drained, and nothing has made
            # progress since — fail the call instead of spinning.
            if (
                crash_seen
                and not running
                and self._tasks.empty()
                and time.monotonic() - last_progress > 5.0
            ):
                failure = WorkerCrashError(
                    "worker crashed and a dispatched batch was lost "
                    "before acknowledgement; pool respawned a "
                    "replacement worker"
                )
                break
        if failure is not None:
            self._reap_dead_workers()
            raise failure
        return [r for task_id in sorted(done) for r in done[task_id]]

    def _reap_dead_workers(self) -> List[int]:
        """Respawn any dead worker; return the worker ids that died."""
        crashed = []
        for wid, proc in list(self._workers.items()):
            if proc.is_alive():
                continue
            proc.join(timeout=0)
            crashed.append(wid)
            self.stats["crashes"] += 1
            if not self._closed:
                self._workers[wid] = self._spawn(wid)
                self.stats["respawns"] += 1
        return crashed

    # -- lifecycle -----------------------------------------------------

    def shutdown(self, timeout: float = 5.0) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for _ in range(len(self._workers)):
                try:
                    self._tasks.put(None)
                except (OSError, ValueError):
                    break
            deadline = time.monotonic() + timeout
            for proc in self._workers.values():
                proc.join(timeout=max(0.0, deadline - time.monotonic()))
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=1.0)
            self._workers.clear()

    def __del__(self):  # pragma: no cover - interpreter teardown
        try:
            self.shutdown(timeout=0.1)
        except Exception:
            pass


# ----------------------------------------------------------------------
# Process-global pool registry
# ----------------------------------------------------------------------

_POOLS: Dict[int, PersistentPool] = {}
_POOLS_LOCK = threading.Lock()


def get_pool(jobs: int) -> PersistentPool:
    """The process-global persistent pool with ``jobs`` workers.

    Created on first use (forking the workers once) and reused by every
    later ``parallel_map``/serving batch with the same width; pools of
    different widths coexist so a ``--jobs 2`` fuzz run and a
    ``--jobs 4`` scale study never reshape each other's pool.
    """
    jobs = resolve_jobs(jobs)
    with _POOLS_LOCK:
        pool = _POOLS.get(jobs)
        if pool is None or pool._closed:
            pool = PersistentPool(jobs)
            _POOLS[jobs] = pool
        return pool


def shutdown_pools() -> None:
    """Shut down every process-global pool (tests, atexit)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown()


def pool_stats() -> Dict[str, dict]:
    """Dispatch statistics for every live process-global pool.

    Keyed by the worker count as a *string* so the mapping looks the
    same in-process and after a JSON round-trip through the serving
    protocol."""
    with _POOLS_LOCK:
        return {
            str(jobs): dict(pool.stats, alive=pool.alive_workers())
            for jobs, pool in _POOLS.items()
            if not pool._closed
        }


atexit.register(shutdown_pools)


@contextlib.contextmanager
def fresh_pools():
    """Force freshly-forked workers inside the ``with`` block.

    Persistent workers snapshot the parent process at fork time; code
    that mutates parent state workers must observe (tests monkeypatching
    classes, for instance) runs inside this context so the pools used in
    the block fork *after* the mutation — and are torn down again on
    exit so the mutated workers never leak into later calls.
    """
    shutdown_pools()
    try:
        yield
    finally:
        shutdown_pools()


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int = 1,
    initializer: Optional[Callable] = None,
    initargs: Sequence = (),
    chunksize: Optional[int] = None,
) -> List[R]:
    """Apply ``fn`` to every item, in-order results, persistent pool.

    ``fn``, ``initializer`` and the items must be picklable
    (module-level functions, plain-data arguments) when ``jobs > 1``.
    ``chunksize`` overrides the automatic batch size (the scheduler
    defaults to :data:`BATCHES_PER_WORKER` batches per worker).
    """
    work = list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(work) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in work]
    return get_pool(jobs).map(
        fn,
        work,
        initializer=initializer,
        initargs=initargs,
        batch_size=chunksize,
    )
