"""Multi-file batch compilation: ``mlt-opt`` with many inputs.

Each input file is one work unit: load (C or textual IR), run the
requested pass pipeline, print the result, and optionally codegen the
module into the shared kernel cache.  Units run across the worker
pool; outputs land in ``--out-dir`` named after the input stem, and
results merge back in input order so batch reports are deterministic.

Two persistent caches amortize repeated batches:

* the **module cache** keys the *printed post-pipeline IR* by
  SHA-256 of (input text, pipeline, driver) — a warm unit skips the
  frontend and every pass;
* the **kernel cache** (the same tiered cache the execution engine
  uses) keys compiled kernels by the printed module — a warm unit
  skips engine codegen.

Both default to subdirectories of ``--cache-dir`` and are shared by
every worker process via lock-free content-addressed artifact files.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from .pool import parallel_map

#: Per-worker state installed by the initializer.
_WORKER_STATE: Optional[dict] = None


@dataclass
class BatchResult:
    """Outcome of one batch unit (picklable)."""

    input_path: str
    output_path: Optional[str]
    ok: bool
    seconds: float
    #: "module-cache" | "compiled" for successes; error text otherwise.
    detail: str = ""
    cache_snapshot: Optional[dict] = None


def module_cache_key(text: str, pass_names: Sequence[str], driver: str) -> str:
    digest = hashlib.sha256()
    digest.update(text.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(",".join(pass_names).encode("utf-8"))
    digest.update(b"\x00")
    digest.update(driver.encode("utf-8"))
    return digest.hexdigest()


def _init_worker(config: dict) -> None:
    global _WORKER_STATE
    from ..execution.engine.disk_cache import DiskKernelCache
    from ..ir import PassResultCache, set_default_driver

    state = dict(config)
    set_default_driver(config["driver"])
    cache_dir = config.get("cache_dir")
    if cache_dir:
        state["module_cache"] = DiskKernelCache(
            os.path.join(cache_dir, "modules")
        )
        state["kernel_cache_dir"] = os.path.join(cache_dir, "kernels")
    else:
        state["module_cache"] = None
        state["kernel_cache_dir"] = None
    if config.get("pass_cache", True):
        # Function-granular tier below the whole-module cache: when an
        # edited input misses the module cache, unchanged functions
        # still skip their passes.  All workers share one ``passes/``
        # namespace beside ``modules/`` and ``kernels/``.
        cache = PassResultCache()
        if cache_dir:
            cache.attach_disk(cache_dir)
        state["pass_cache_obj"] = cache
    else:
        state["pass_cache_obj"] = None
    _WORKER_STATE = state


def _run_unit(input_path: str) -> BatchResult:
    state = _WORKER_STATE
    start = time.perf_counter()
    try:
        result = _process_file(input_path, state)
    except Exception as exc:  # one bad file must not sink the batch
        return BatchResult(
            input_path=input_path,
            output_path=None,
            ok=False,
            seconds=time.perf_counter() - start,
            detail=f"{type(exc).__name__}: {exc}",
        )
    result.seconds = time.perf_counter() - start
    return result


def _process_file(input_path: str, state: dict) -> BatchResult:
    from ..execution.engine.cache import KernelCache
    from ..ir import print_module, verify
    from ..ir.parser import parse_module
    from ..tool import build_pipeline, load_input

    pass_names = state["pass_names"]
    out_dir = state["out_dir"]
    with open(input_path) as handle:
        raw_text = handle.read()

    module_cache = state["module_cache"]
    mkey = module_cache_key(raw_text, pass_names, state["driver"])
    text = module_cache.load_text(mkey) if module_cache is not None else None
    from_cache = text is not None
    module = None
    if text is None:
        module = load_input(input_path, state["source_kind"])
        pm = build_pipeline(pass_names)
        pm.pass_cache = state.get("pass_cache_obj")
        pm.run(module)
        if state["verify"]:
            verify(module, pm.context)
        text = print_module(module)
        if module_cache is not None:
            module_cache.store_text(mkey, text)

    cache_snapshot = None
    if state["compile_kernels"]:
        from ..execution.engine.codegen import compile_module

        cache = KernelCache()
        if state["kernel_cache_dir"]:
            cache.attach_disk(state["kernel_cache_dir"])
        # Key straight off the printed text: a fully warm unit needs
        # neither a reparse nor a reprint of the module.
        key = KernelCache.key_for_text(
            hashlib.sha256(text.encode("utf-8")).hexdigest(),
            "mlt-opt:" + ",".join(pass_names),
        )

        def build_kernel(k: str):
            built = parse_module(text) if module is None else module
            return compile_module(built, k)

        cache.get_or_compile_key(key, build_kernel)
        cache_snapshot = cache.snapshot()

    output_path = None
    if out_dir:
        stem = os.path.splitext(os.path.basename(input_path))[0]
        output_path = os.path.join(out_dir, stem + ".mlir")
        with open(output_path, "w") as handle:
            handle.write(text)
    return BatchResult(
        input_path=input_path,
        output_path=output_path,
        ok=True,
        seconds=0.0,
        detail="module-cache" if from_cache else "compiled",
        cache_snapshot=cache_snapshot,
    )


def run_batch(
    inputs: Sequence[str],
    pass_names: Sequence[str],
    out_dir: Optional[str],
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    driver: str = "worklist",
    source_kind: str = "auto",
    verify: bool = True,
    compile_kernels: bool = False,
    pass_cache: bool = True,
) -> List[BatchResult]:
    """Compile many input files through one shared pool and cache."""
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    config = {
        "pass_names": list(pass_names),
        "out_dir": out_dir,
        "cache_dir": cache_dir,
        "driver": driver,
        "source_kind": source_kind,
        "verify": verify,
        "compile_kernels": compile_kernels,
        "pass_cache": pass_cache,
    }
    return parallel_map(
        _run_unit,
        list(inputs),
        jobs=jobs,
        initializer=_init_worker,
        initargs=(config,),
    )
