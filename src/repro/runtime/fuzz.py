"""Seed-sharded fuzz campaigns: ``mlt-fuzz --jobs N``.

A campaign's seed range is a list of independent work units — seed
``i`` deterministically generates its own kernels and input buffers
(see :func:`repro.runtime.pool.seed_for_unit`), so units can run on
any worker in any order.  Results are merged back **in seed order**,
which makes a parallel campaign's per-seed verdicts, failure ordering,
and ``fuzz-failures/`` artifacts byte-identical to a serial run's.

Workers build their own :class:`~repro.fuzzing.campaign.FuzzCampaign`
from a plain config dict (the campaign object itself holds unpicklable
pass factories) — once per worker process, via the pool initializer.
"""

from __future__ import annotations

import json
import os
import time
from typing import List, Optional, Tuple

from .pool import parallel_map, resolve_jobs, seed_for_unit

#: Per-worker campaign, installed by :func:`_init_worker`.
_WORKER_CAMPAIGN = None

#: Seeds dispatched per pool wave, as a multiple of the worker count.
#: Waves give the driver a chance to enforce ``--time-limit`` between
#: batches without sacrificing in-order merging inside a batch.
WAVE_FACTOR = 4


def _init_worker(config: dict) -> None:
    global _WORKER_CAMPAIGN
    from ..fuzzing import FuzzCampaign

    _WORKER_CAMPAIGN = FuzzCampaign(**config)


def _run_unit(seed: int) -> Tuple[int, int, int, list, dict, dict]:
    """Run one seed on this worker's campaign.

    Returns ``(seed, checks, stages_checked, failures, bail_none,
    bail_full)`` — all plain picklable data (failure reports are
    string/int dataclasses, bail taxonomies are str->int dicts).
    """
    from ..fuzzing.campaign import CampaignStats

    local = CampaignStats()
    failures = _WORKER_CAMPAIGN.run_seed(seed, local)
    return (
        seed,
        local.checks,
        local.stages_checked,
        failures,
        local.bail_none,
        local.bail_full,
    )


def run_campaign_parallel(
    config: dict,
    num_seeds: int,
    start_seed: int = 0,
    jobs: int = 1,
    time_limit: Optional[float] = None,
):
    """Parallel counterpart of ``FuzzCampaign.run``.

    ``config`` is the keyword dict a worker passes to
    ``FuzzCampaign(...)``.  Failures come back merged in ascending
    seed order; stats are summed across workers.
    """
    from ..fuzzing.campaign import CampaignStats

    jobs = resolve_jobs(jobs)
    stats = CampaignStats()
    started = time.perf_counter()
    seeds: List[int] = [
        seed_for_unit(start_seed, index) for index in range(num_seeds)
    ]
    wave = max(jobs * WAVE_FACTOR, 1)
    for offset in range(0, len(seeds), wave):
        if (
            time_limit is not None
            and time.perf_counter() - started > time_limit
        ):
            stats.hit_time_limit = True
            break
        batch = seeds[offset : offset + wave]
        results = parallel_map(
            _run_unit,
            batch,
            jobs=jobs,
            initializer=_init_worker,
            initargs=(config,),
        )
        for seed, checks, stages_checked, failures, bail_none, bail_full in (
            results
        ):
            stats.seeds_run += 1
            stats.checks += checks
            stats.stages_checked += stages_checked
            stats.failures.extend(failures)
            stats.merge_bails({"none": bail_none, "full": bail_full})
    stats.elapsed = time.perf_counter() - started
    return stats


def write_campaign_metadata(
    out_dir: str,
    jobs: int,
    num_seeds: int,
    start_seed: int,
    stats,
) -> Optional[str]:
    """Record campaign-level metadata in ``fuzz-failures/campaign.json``.

    Written only when the artifact directory exists (i.e. at least one
    failure was dumped), so green runs still leave no trace; the
    per-seed artifact directories themselves stay byte-identical across
    ``--jobs`` values — invocation-specific facts (worker count, wall
    clock) live here and only here.
    """
    if not os.path.isdir(out_dir):
        return None
    payload = {
        "jobs": jobs,
        "start_seed": start_seed,
        "num_seeds": num_seeds,
        "seeds_run": stats.seeds_run,
        "checks": stats.checks,
        "stages_checked": stats.stages_checked,
        "elapsed_s": stats.elapsed,
        "hit_time_limit": stats.hit_time_limit,
        "failures": [
            os.path.basename(f.artifact_dir)
            for f in stats.failures
            if f.artifact_dir
        ],
    }
    path = os.path.join(out_dir, "campaign.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path
