"""Benchmark-corpus scale driver: ``benchmarks.harness --jobs N``.

One work unit = one (kernel, pipeline) pair of the paper's 16-kernel
corpus: build the module through the pass pipeline, codegen it through
the tiered kernel cache, and execute it once on deterministic inputs
to record a checksum.  Units shard across the worker pool and merge in
input order; the per-unit checksums make run-to-run determinism
checkable (serial, parallel, cold and warm runs must all agree).

The scale *study* (:func:`run_scale_study`) measures the corpus
wall-clock along both axes this PR ships:

* **worker count** — a cold run at ``--jobs 1`` vs a cold run at
  ``--jobs N`` (fresh cache both times);
* **cache warmth** — the same corpus re-run against the now-populated
  persistent cache, where every unit re-hydrates its compiled kernel
  from disk (zero codegen invocations) and its post-pipeline IR from
  the module cache (no C frontend, no raising pipeline).

Results go to ``benchmarks/results/BENCH_scale.json``.
"""

from __future__ import annotations

import os
import shutil
import time
from typing import Dict, List, Optional, Sequence, Tuple

from .batch import module_cache_key
from .pool import effective_cpus, get_pool, parallel_map, pool_stats

_WORKER_STATE: Optional[dict] = None

#: Pipelines a corpus unit is measured under by default.
DEFAULT_PIPELINES = ("baseline", "mlt-blas")


def _init_worker(config: dict) -> None:
    global _WORKER_STATE
    from ..execution.engine.disk_cache import DiskKernelCache

    state = dict(config)
    cache_dir = config.get("cache_dir")
    if cache_dir:
        state["module_cache"] = DiskKernelCache(
            os.path.join(cache_dir, "modules")
        )
        state["kernel_cache_dir"] = os.path.join(cache_dir, "kernels")
    else:
        state["module_cache"] = None
        state["kernel_cache_dir"] = None
    _WORKER_STATE = state


def _run_unit(unit: Tuple[str, str]) -> Dict:
    import hashlib

    kernel_name, pipeline = unit
    state = _WORKER_STATE
    from ..evaluation import get_kernel
    from ..evaluation.pipelines import build_module
    from ..execution.engine.cache import KernelCache
    from ..execution.engine.codegen import compile_module
    from ..ir import print_module

    start = time.perf_counter()
    spec = get_kernel(kernel_name)
    source = spec.large() if state["heavy"] else spec.small()
    tile = state["tile"]

    # Tier A: the module cache maps (C source, pipeline, tile) to the
    # printed post-pipeline IR.  A hit skips the frontend and every
    # pass; the unit then never materializes IR objects at all unless
    # it also executes.
    module_cache = state["module_cache"]
    mkey = module_cache_key(source, [pipeline], f"tile={tile}")
    text = module_cache.load_text(mkey) if module_cache is not None else None
    module_cache_hit = text is not None
    module = None
    if text is None:
        module = build_module(source, pipeline, tile=tile)
        text = print_module(module)
        if module_cache is not None:
            module_cache.store_text(mkey, text)

    # Tier B: the kernel cache maps the printed IR to the compiled
    # kernel.  The key is hashed straight from the text we already
    # hold — no reprint, and on a warm hit no reparse either.
    cache = KernelCache()
    if state["kernel_cache_dir"]:
        cache.attach_disk(state["kernel_cache_dir"])
    key = KernelCache.key_for_text(
        hashlib.sha256(text.encode("utf-8")).hexdigest(), pipeline
    )

    def build_kernel(k: str):
        from ..ir.parser import parse_module

        built = parse_module(text) if module is None else module
        return compile_module(built, k)

    compiled = cache.get_or_compile_key(key, build_kernel)
    # Compilation determinism digest: cold, warm, serial and parallel
    # runs must produce byte-identical kernel source for each unit.
    checksum = hashlib.sha256(
        compiled.source.encode("utf-8")
    ).hexdigest()

    if state["execute"]:
        from ..fuzzing.oracle import make_args, module_arg_shapes
        from ..ir.parser import parse_module

        if module is None:
            module = parse_module(text)
        args = make_args(
            module_arg_shapes(module, spec.func_name), state["seed"]
        )
        compiled.functions[spec.func_name](*args)
        digest = sum(float(buf.sum()) for buf in args)
        checksum = f"{checksum}:{digest:.6f}"

    snapshot = cache.snapshot()
    return {
        "kernel": kernel_name,
        "pipeline": pipeline,
        "wall_time_s": time.perf_counter() - start,
        "codegen_count": snapshot["memory"]["codegen_count"],
        "module_cache_hit": module_cache_hit,
        "checksum": checksum,
    }


def run_corpus(
    kernel_names: Sequence[str],
    pipelines: Sequence[str] = DEFAULT_PIPELINES,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    tile: int = 32,
    execute: bool = False,
    heavy: bool = False,
    seed: int = 0,
) -> Dict:
    """One sharded pass over the corpus; returns an aggregate row."""
    units = [
        (kernel, pipeline)
        for kernel in kernel_names
        for pipeline in pipelines
    ]
    config = {
        "cache_dir": cache_dir,
        "tile": tile,
        "execute": execute,
        "heavy": heavy,
        "seed": seed,
    }
    start = time.perf_counter()
    unit_rows = parallel_map(
        _run_unit,
        units,
        jobs=jobs,
        initializer=_init_worker,
        initargs=(config,),
    )
    wall = time.perf_counter() - start
    return {
        "jobs": jobs,
        "wall_time_s": wall,
        "units": len(unit_rows),
        "codegen_count": sum(r["codegen_count"] for r in unit_rows),
        "module_cache_hits": sum(
            1 for r in unit_rows if r["module_cache_hit"]
        ),
        "unit_rows": unit_rows,
    }


def run_scale_study(
    jobs: int,
    kernel_names: Sequence[str],
    pipelines: Sequence[str] = DEFAULT_PIPELINES,
    cache_dir: Optional[str] = None,
    tile: int = 32,
    heavy: bool = False,
    execute: bool = False,
    seed: int = 0,
) -> Dict:
    """Measure the corpus across worker counts and cache warmth.

    Sequence (cache wiped before each *cold* run):

    1. cold, ``jobs=1``   — the serial baseline;
    2. cold, ``jobs=N``   — parallel speedup (when N > 1);
    3. warm, ``jobs=1``   — persistent-cache speedup, zero codegen;
    4. warm, ``jobs=N``   — both levers combined (when N > 1).

    Checksums must agree across all runs — a parallel or cache-served
    result that differs from the serial cold run is a hard error.
    """

    def wipe() -> None:
        if cache_dir and os.path.isdir(cache_dir):
            shutil.rmtree(cache_dir)

    if jobs > 1:
        # Fork the persistent pool outside the timed region: the study
        # measures steady-state parallel throughput, and a service
        # reusing the pool across calls pays the fork exactly once.
        get_pool(jobs)

    plan = [("cold", 1)]
    if jobs > 1:
        plan.append(("cold", jobs))
    plan.append(("warm", 1))
    if jobs > 1:
        plan.append(("warm", jobs))

    rows: List[Dict] = []
    reference: Optional[List] = None
    for cache_state, run_jobs in plan:
        if cache_state == "cold":
            wipe()
        row = run_corpus(
            kernel_names,
            pipelines,
            jobs=run_jobs,
            cache_dir=cache_dir,
            tile=tile,
            execute=execute,
            heavy=heavy,
            seed=seed,
        )
        row["cache"] = cache_state
        checksums = [
            (u["kernel"], u["pipeline"], u["checksum"])
            for u in row["unit_rows"]
        ]
        if reference is None:
            reference = checksums
        elif checksums != reference:
            raise AssertionError(
                f"scale study: jobs={run_jobs} {cache_state} run produced "
                "different checksums than the serial cold run"
            )
        rows.append(row)
    by_key = {(r["cache"], r["jobs"]): r["wall_time_s"] for r in rows}
    serial_cold = by_key[("cold", 1)]
    best = min(by_key.values())
    summary = {
        "jobs": jobs,
        "kernels": list(kernel_names),
        "pipelines": list(pipelines),
        "speedup": serial_cold / best if best > 0 else float("inf"),
        "warm_speedup": serial_cold / by_key[("warm", 1)]
        if by_key[("warm", 1)] > 0
        else float("inf"),
        "parallel_speedup": (
            serial_cold / by_key[("cold", jobs)]
            if jobs > 1 and by_key.get(("cold", jobs))
            else None
        ),
        "warm_codegen_count": rows[
            [i for i, r in enumerate(rows) if r["cache"] == "warm"][0]
        ]["codegen_count"],
        # Honesty marker: parallel_speedup > 1 is only achievable when
        # the study actually had more than one CPU to run on.
        "effective_cpus": effective_cpus(),
        "pool": pool_stats().get(str(jobs)),
    }
    if cache_dir and summary["warm_codegen_count"]:
        raise AssertionError(
            "scale study: warm run performed "
            f"{summary['warm_codegen_count']} codegen invocations; "
            "every kernel should have come off the persistent cache"
        )
    return {"rows": rows, "summary": summary}
