"""Parallel compilation runtime.

Shards independent work units — benchmark kernels, fuzz seeds,
per-file pass-pipeline runs — across a ``multiprocessing`` worker pool
with deterministic, input-ordered result merging, and shares compiled
artifacts between workers through the persistent disk tier of the
kernel cache (see :mod:`repro.execution.engine.disk_cache`).

Layout:

* :mod:`.pool` — the generic pool driver (``parallel_map``) and the
  deterministic seed-derivation helper shared by every surface;
* :mod:`.fuzz` — seed-sharded fuzz campaigns (``mlt-fuzz --jobs N``);
* :mod:`.batch` — multi-file ``mlt-opt`` batch compilation;
* :mod:`.bench` — the benchmark-corpus driver behind
  ``benchmarks.harness --jobs N`` and ``BENCH_scale.json``.
"""

from .pool import (  # noqa: F401
    PersistentPool,
    WorkerCrashError,
    effective_cpus,
    get_pool,
    parallel_map,
    plan_batches,
    pool_stats,
    resolve_jobs,
    seed_for_unit,
    shutdown_pools,
)
