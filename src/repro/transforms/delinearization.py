"""Optimistic delinearization of 1-d (linearized) array accesses.

The paper's Figure 8 evaluation misses the Darknet GEMM because its
accesses are linearized (``C[i*ldc + j]``) while the tactic emits 2-d
matchers; the authors point to a delinearization pass (Grosser et al.,
ICS'15) as the fix.  This module implements that future-work item: it
recovers a multi-dimensional view of flat buffers from the stride
structure of their affine accesses, rewriting

    %0 = affine.load %A[%i * 256 + %k] : memref<65536xf32>

into

    %0 = affine.load %A[%i, %k] : memref<256x256xf32>

after which the unchanged 2-d GEMM tactic matches
(`benchmarks/bench_ablation_delinearization.py`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.accesses import AccessFunction, MemoryAccess, collect_accesses
from ..dialects.affine import AffineForOp, AffineLoadOp, AffineStoreOp
from ..ir import (
    AffineMap,
    Builder,
    DYNAMIC,
    FunctionPass,
    FunctionType,
    InsertionPoint,
    MemRefType,
    TypeAttr,
    Value,
)
from ..ir import affine_expr as ae


def _iv_extent(iv: Value) -> Optional[int]:
    """Trip count of the loop defining an induction variable."""
    owner = iv.owner.parent_op if hasattr(iv, "owner") else None
    if isinstance(owner, AffineForOp):
        return owner.constant_trip_count()
    return None


def _stride_chain(accesses: List[MemoryAccess]) -> Optional[List[int]]:
    """Distinct coefficients across all 1-d accesses, as a divisibility
    chain ending at 1 (innermost stride)."""
    strides = set()
    for access in accesses:
        sub = access.subscripts[0]
        for coeff in sub.coeffs.values():
            if coeff <= 0:
                return None
            strides.add(coeff)
    if not strides:
        return None
    chain = sorted(strides, reverse=True)
    if chain[-1] != 1:
        return None
    for outer, inner in zip(chain, chain[1:]):
        if outer % inner != 0:
            return None
    if len(chain) < 2:
        return None
    return chain


def _decompose(
    sub: AccessFunction, chain: List[int], dims: List[int]
) -> Optional[List[Tuple[Dict[Value, int], int]]]:
    """Split one linear subscript into per-level (coeffs, constant)."""
    levels: List[Tuple[Dict[Value, int], int]] = []
    remaining_const = sub.constant
    if remaining_const < 0:
        return None
    for level, stride in enumerate(chain):
        coeffs = {
            iv: coeff // stride
            for iv, coeff in sub.coeffs.items()
            if coeff == stride
        }
        const = remaining_const // stride
        remaining_const -= const * stride
        if level > 0:
            # Optimistic in-bounds check: each level's max value must
            # stay below the recovered dimension size.
            bound = const
            for iv, coeff in coeffs.items():
                extent = _iv_extent(iv)
                if extent is None:
                    return None
                bound += coeff * (extent - 1)
            if bound >= dims[level]:
                return None
        levels.append((coeffs, const))
    covered = set()
    for coeffs, _ in levels:
        covered.update(id(iv) for iv in coeffs)
    if covered != {id(iv) for iv in sub.coeffs}:
        return None  # some IV's coefficient matched no stride level
    return levels


def _recover_shape(
    accesses: List[MemoryAccess], chain: List[int], flat_size: int
) -> Optional[List[int]]:
    dims = [0] * len(chain)
    for level in range(1, len(chain)):
        dims[level] = chain[level - 1] // chain[level]
    if flat_size != DYNAMIC and flat_size > 0:
        leading, rem = divmod(flat_size, chain[0])
        if rem != 0:
            return None
        dims[0] = leading
    else:
        # Derive the leading extent from the loops driving that level.
        best = 0
        for access in accesses:
            sub = access.subscripts[0]
            total = sub.constant // chain[0]
            for iv, coeff in sub.coeffs.items():
                if coeff == chain[0]:
                    extent = _iv_extent(iv)
                    if extent is None:
                        return None
                    total += extent - 1
            best = max(best, total + 1)
        dims[0] = best
    return dims


def delinearize_buffer(buffer: Value, func) -> bool:
    """Try to delinearize every access to a 1-d ``buffer``; rewrites the
    buffer's type and all its accesses on success."""
    if not isinstance(buffer.type, MemRefType) or buffer.type.rank != 1:
        return False
    accesses = [
        a
        for a in collect_accesses(func)
        if a.memref is buffer
    ]
    if not accesses:
        return False
    if any(len(a.subscripts) != 1 for a in accesses):
        return False
    chain = _stride_chain(accesses)
    if chain is None:
        return False
    dims = _recover_shape(accesses, chain, buffer.type.shape[0])
    if dims is None or any(d <= 0 for d in dims):
        return False
    decompositions = []
    for access in accesses:
        levels = _decompose(access.subscripts[0], chain, dims)
        if levels is None:
            return False
        decompositions.append(levels)

    # Commit: retype the buffer and rewrite each access.
    buffer.type = MemRefType(dims, buffer.type.element_type)
    _refresh_function_type(func)
    for access, levels in zip(accesses, decompositions):
        _rewrite_access(access, levels)
    return True


def _refresh_function_type(func) -> None:
    arg_types = [a.type for a in func.entry_block.arguments]
    results = func.function_type.results
    func.attributes["function_type"] = TypeAttr(
        FunctionType(arg_types, results)
    )


def _rewrite_access(access: MemoryAccess, levels) -> None:
    op = access.op
    operands: List[Value] = []
    exprs: List[ae.AffineExpr] = []
    for coeffs, const in levels:
        expr: ae.AffineExpr = ae.constant(const)
        for iv, coeff in coeffs.items():
            if iv not in operands:
                operands.append(iv)
            expr = ae.dim(operands.index(iv)) * coeff + expr
        exprs.append(expr)
    map_ = AffineMap(len(operands), 0, exprs)
    builder = Builder(InsertionPoint.before(op))
    if isinstance(op, AffineLoadOp):
        new_op = builder.insert(
            AffineLoadOp.create(op.memref, operands, map_)
        )
        op.replace_all_uses_with([new_op.result])
        op.erase()
    else:
        assert isinstance(op, AffineStoreOp)
        builder.insert(
            AffineStoreOp.create(op.value, op.memref, operands, map_)
        )
        op.erase()


def delinearize_accesses(func) -> int:
    """Delinearize all eligible flat buffers in a function."""
    count = 0
    for arg in list(func.entry_block.arguments):
        if delinearize_buffer(arg, func):
            count += 1
    for op in list(func.walk()):
        if op.name == "std.alloc" and delinearize_buffer(op.results[0], func):
            count += 1
    return count


class DelinearizationPass(FunctionPass):
    name = "affine-delinearize"

    def run_on_function(self, func, context):
        return delinearize_accesses(func)
