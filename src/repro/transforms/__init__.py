"""IR transformations: canonicalization, lowering, tiling, fusion."""

from .canonicalize import CanonicalizePass, canonicalize  # noqa: F401
from .distribution import LoopDistributionPass, distribute_loops  # noqa: F401
from .lowering import (  # noqa: F401
    AffineToSCFPass,
    ExpandAffineMatmulPass,
    LinalgToAffinePass,
    LinalgToBlasPass,
    LowerBlasToLLVMPass,
    SCFToLLVMPass,
    expand_affine_expr,
    lower_affine_to_scf,
    lower_linalg_to_affine,
    lower_scf_to_llvm,
    lower_to_llvm,
    lowering_pipeline,
)
from .tiling import TileLoopNestPass, TilingError, tile_perfect_nest  # noqa: F401
from .fusion import (  # noqa: F401
    LoopFusionPass,
    can_fuse,
    fuse_sibling_loops,
    greedy_fuse,
)
from .copy_elimination import (  # noqa: F401
    CopyEliminationPass,
    CopyElimResult,
    copy_eliminate,
)
from .delinearization import (  # noqa: F401
    DelinearizationPass,
    delinearize_accesses,
)
from .promotion import SCFToAffinePass, promote_scf_to_affine  # noqa: F401
from .unroll import unroll_jam_loop, unroll_jam_loops  # noqa: F401
