"""Copy elimination and dead-code cleanup on lowered affine IR.

The Parakeet pipeline runs ``CopyElimination`` + ``DCE`` between
lowering stages; this is the same idea specialized to the affine level:

1. **Store-to-load forwarding** — within a straight-line block, a load
   whose access function matches the most recent store to the same
   buffer is replaced by the stored SSA value.
2. **Dead-store elimination** — a store overwritten by a later store
   with the identical access function, with no intervening read of the
   buffer, is deleted.
3. **Dead-temporary removal** — a ``std.alloc`` whose only users are
   stores (and its dealloc) is a write-only temporary; all its stores,
   the dealloc, and the alloc itself are deleted.

Everything here is conservative: a block containing an op we cannot
enumerate effects for invalidates all forwarding state, and accesses
with non-linear maps are never forwarded or killed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.accesses import access_function
from ..dialects.affine import AffineForOp, AffineLoadOp, AffineStoreOp
from ..ir import FunctionPass, Operation

#: Side-effect-free scalar ops we can step over without invalidating
#: forwarding state.
_PURE_OPS = frozenset(
    {
        "std.constant",
        "std.addf",
        "std.subf",
        "std.mulf",
        "std.divf",
        "std.maxf",
        "std.negf",
        "std.cmpf",
        "std.select",
        "std.addi",
        "std.subi",
        "std.muli",
        "std.index_cast",
        "affine.apply",
    }
)


@dataclass
class CopyElimResult:
    stores_forwarded: int = 0
    dead_stores_removed: int = 0
    dead_allocs_removed: int = 0

    @property
    def changed(self) -> bool:
        return bool(
            self.stores_forwarded
            or self.dead_stores_removed
            or self.dead_allocs_removed
        )


def _signature(op: Operation) -> Optional[Tuple]:
    """Hashable (buffer, access-function) key, or None when the access
    map is not linear."""
    access = access_function(op)
    if access is None:
        return None
    return (id(access.memref), tuple(access.subscripts))


def _loop_reads(loop: AffineForOp, memref_id: int) -> bool:
    for nested in loop.walk():
        if isinstance(nested, AffineLoadOp) and id(nested.memref) == memref_id:
            return True
    return False


def _loop_writes(loop: AffineForOp, memref_id: int) -> bool:
    for nested in loop.walk():
        if isinstance(nested, AffineStoreOp) and id(nested.memref) == memref_id:
            return True
    return False


def _forward_block(block, result: CopyElimResult) -> None:
    """Store-to-load forwarding over one block's op list."""
    last_store: Dict[Tuple, AffineStoreOp] = {}
    for op in list(block.operations):
        if isinstance(op, AffineLoadOp):
            sig = _signature(op)
            if sig is not None and sig in last_store:
                op.results[0].replace_all_uses_with(last_store[sig].value)
                op.erase()
                result.stores_forwarded += 1
            continue
        if isinstance(op, AffineStoreOp):
            sig = _signature(op)
            # Any store to a buffer may alias entries for that buffer
            # recorded under a different access function.
            memref_id = id(op.memref)
            for key in [k for k in last_store if k[0] == memref_id]:
                del last_store[key]
            if sig is not None:
                last_store[sig] = op
            continue
        if isinstance(op, AffineForOp):
            for key in [
                k for k in last_store if _loop_writes(op, k[0])
            ]:
                del last_store[key]
            continue
        if op.name in _PURE_OPS or op.name in (
            "std.alloc",
            "affine.yield",
            "func.return",
        ):
            continue
        if op.name == "std.dealloc":
            dead_id = id(op.operands[0])
            for key in [k for k in last_store if k[0] == dead_id]:
                del last_store[key]
            continue
        # Unknown effects: drop everything.
        last_store.clear()


def _dse_block(block, result: CopyElimResult) -> None:
    """Backward dead-store elimination over one block's op list."""
    later_store: Dict[Tuple, AffineStoreOp] = {}
    for op in reversed(list(block.operations)):
        if isinstance(op, AffineStoreOp):
            sig = _signature(op)
            if sig is not None and sig in later_store:
                # A later identical store with no intervening read.
                op.erase()
                result.dead_stores_removed += 1
                continue
            if sig is not None:
                later_store[sig] = op
            continue
        if isinstance(op, AffineLoadOp):
            memref_id = id(op.memref)
            for key in [k for k in later_store if k[0] == memref_id]:
                del later_store[key]
            continue
        if isinstance(op, AffineForOp):
            for key in [
                k for k in later_store if _loop_reads(op, k[0])
            ]:
                del later_store[key]
            continue
        if op.name in _PURE_OPS or op.name in (
            "std.alloc",
            "std.dealloc",
            "affine.yield",
            "func.return",
        ):
            continue
        later_store.clear()


def _remove_dead_temporaries(func: Operation, result: CopyElimResult) -> None:
    """Delete write-only local buffers (alloc + stores + dealloc)."""
    for op in list(func.walk()):
        if op.name != "std.alloc" or op.parent_block is None:
            continue
        buffer = op.results[0]
        users, seen = [], set()
        for use in buffer.uses:
            if id(use.owner) not in seen:
                seen.add(id(use.owner))
                users.append(use.owner)
        removable = True
        for user in users:
            if isinstance(user, AffineStoreOp) and user.memref is buffer:
                continue
            if user.name == "std.dealloc":
                continue
            removable = False
            break
        if not removable:
            continue
        for user in users:
            if isinstance(user, AffineStoreOp):
                result.dead_stores_removed += 1
            user.erase()
        op.erase()
        result.dead_allocs_removed += 1


def _all_blocks(func: Operation):
    """The function entry block plus every affine.for body block."""
    for region in func.regions:
        for block in region.blocks:
            yield block
    for op in func.walk():
        if isinstance(op, AffineForOp):
            yield op.body


def copy_eliminate(func: Operation) -> CopyElimResult:
    """Run forwarding, DSE, and dead-temporary removal to fixpoint."""
    result = CopyElimResult()
    changed = True
    while changed:
        before = (
            result.stores_forwarded,
            result.dead_stores_removed,
            result.dead_allocs_removed,
        )
        for block in list(_all_blocks(func)):
            _forward_block(block, result)
            _dse_block(block, result)
        _remove_dead_temporaries(func, result)
        changed = before != (
            result.stores_forwarded,
            result.dead_stores_removed,
            result.dead_allocs_removed,
        )
    return result


class CopyEliminationPass(FunctionPass):
    name = "affine-copy-elimination"

    def run_on_function(self, func, context):
        return copy_eliminate(func).changed
