"""SCF -> Affine promotion.

Footnote 1 of the paper: "Multi-Level Tactics can also lift from SCF."
The mechanism is this pass: ``scf.for`` loops whose bounds and steps are
compile-time constants — and whose memory accesses use affine index
arithmetic — are promoted into the Affine dialect, after which the
ordinary tactics apply.  This raises the *entry point* for frontends
that produce unstructured SCF instead of affine loops.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..dialects import scf as scf_d
from ..dialects import std
from ..dialects.affine import AffineForOp, AffineLoadOp, AffineStoreOp
from ..ir import (
    AffineMap,
    FunctionPass,
    Operation,
    Value,
)
from ..ir import affine_expr as ae


#: Total change count of the most recent ``promote_scf_to_affine`` call
#: (loops + accesses + cleanups); the public return value stays "loops
#: promoted" for API compatibility.
_LAST_RUN_CHANGES = [0]


def _constant_value(value: Value) -> Optional[int]:
    def_op = value.defining_op
    if isinstance(def_op, std.ConstantOp):
        return int(def_op.value)
    return None


def _as_affine_index(
    value: Value, iv_env: Dict[int, int], operands: List[Value]
) -> Optional[ae.AffineExpr]:
    """Rebuild an affine expression from std arithmetic over IVs."""
    constant = _constant_value(value)
    if constant is not None:
        return ae.constant(constant)
    if id(value) in iv_env or not value.defining_op:
        if value not in operands:
            operands.append(value)
        return ae.dim(operands.index(value))
    def_op = value.defining_op
    if isinstance(def_op, (std.AddIOp, std.SubIOp, std.MulIOp)):
        lhs = _as_affine_index(def_op.operand(0), iv_env, operands)
        rhs = _as_affine_index(def_op.operand(1), iv_env, operands)
        if lhs is None or rhs is None:
            return None
        if isinstance(def_op, std.AddIOp):
            return lhs + rhs
        if isinstance(def_op, std.SubIOp):
            return lhs - rhs
        result = lhs * rhs if (lhs.is_constant() or rhs.is_constant()) else None
        return result
    return None


def promote_scf_to_affine(func) -> int:
    """Promote every eligible scf.for (innermost-out) to affine.for.

    Returns the number of promoted loops.
    """
    promoted = 0
    changed = True
    while changed:
        changed = False
        for op in list(func.walk()):
            if isinstance(op, scf_d.ForOp) and _promote_one(op):
                promoted += 1
                changed = True
                break
    # Promote std-level accesses that now sit inside affine loops.
    accesses = 0
    for op in list(func.walk()):
        if isinstance(op, (std.LoadOp, std.StoreOp)):
            accesses += 1 if _promote_access(op) else 0
    from .canonicalize import canonicalize

    cleaned = canonicalize(func)
    # The return value stays "number of promoted loops" for callers,
    # but SCFToAffinePass separately needs a dirty indicator covering
    # access promotion and cleanup too (see run_on_function).
    _LAST_RUN_CHANGES[0] = promoted + accesses + cleaned
    return promoted


def _promote_one(loop: scf_d.ForOp) -> bool:
    lb = _constant_value(loop.lower_bound)
    ub = _constant_value(loop.upper_bound)
    step = _constant_value(loop.step)
    if lb is None or ub is None or step is None or step <= 0:
        return False
    affine_loop = AffineForOp.create(lb, ub, step)
    block = loop.parent_block
    block.insert(block.operations.index(loop), affine_loop)
    target = affine_loop.body
    insert_at = len(target.operations) - 1
    for body_op in loop.ops_in_body():
        loop.body.remove(body_op)
        target.insert(insert_at, body_op)
        insert_at += 1
    loop.induction_var.replace_all_uses_with(affine_loop.induction_var)
    loop.erase()
    return True


def _promote_access(op) -> bool:
    """std.load/store with affine indices -> affine.load/store."""
    from ..analysis.accesses import enclosing_loops
    from ..ir import Builder, InsertionPoint

    iv_env = {
        id(loop.induction_var): i
        for i, loop in enumerate(enclosing_loops(op))
    }
    operands: List[Value] = []
    exprs: List[ae.AffineExpr] = []
    for index_value in op.indices:
        expr = _as_affine_index(index_value, iv_env, operands)
        if expr is None or expr.as_linear() is None:
            return False
        exprs.append(expr)
    map_ = AffineMap(len(operands), 0, exprs)
    builder = Builder(InsertionPoint.before(op))
    if isinstance(op, std.LoadOp):
        new_op = builder.insert(
            AffineLoadOp.create(op.memref, operands, map_)
        )
        op.replace_all_uses_with([new_op.result])
        op.erase()
    else:
        builder.insert(
            AffineStoreOp.create(op.value, op.memref, operands, map_)
        )
        op.erase()
    return True


class SCFToAffinePass(FunctionPass):
    name = "raise-scf-to-affine"

    def run_on_function(self, func, context):
        promote_scf_to_affine(func)
        return _LAST_RUN_CHANGES[0]
