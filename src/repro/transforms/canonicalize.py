"""Canonicalization: constant folding, dead-code elimination, and
removal of empty or zero-trip loops."""

from __future__ import annotations

from typing import Optional, Union

from ..dialects import std
from ..dialects.affine import AffineApplyOp, AffineForOp
from ..ir import FunctionPass, Operation

#: Ops with no side effects whose unused results can be deleted.
_PURE_OPS = {
    "std.constant",
    "std.addf",
    "std.subf",
    "std.mulf",
    "std.divf",
    "std.maxf",
    "std.addi",
    "std.subi",
    "std.muli",
    "std.cmpi",
    "std.index_cast",
    "affine.load",
    "affine.apply",
}


def _is_dead(op: Operation) -> bool:
    if op.name not in _PURE_OPS:
        return False
    return all(not r.is_used() for r in op.results)


def _fold(op: Operation) -> Optional[Union[int, float]]:
    """Return the constant value of ``op`` if all operands are constants."""
    if isinstance(op, std.BinaryArithOp):
        values = []
        for operand in op.operands:
            def_op = operand.defining_op
            if not isinstance(def_op, std.ConstantOp):
                return None
            values.append(def_op.value)
        return type(op).PYTHON_FUNC(*values)
    if isinstance(op, AffineApplyOp):
        dims = []
        for operand in op.operands:
            def_op = operand.defining_op
            if not isinstance(def_op, std.ConstantOp):
                return None
            dims.append(int(def_op.value))
        return op.map.evaluate(dims)[0]
    return None


def _is_empty_loop(op: Operation) -> bool:
    if not isinstance(op, AffineForOp):
        return False
    trip = op.constant_trip_count()
    if trip == 0:
        return True
    return not op.ops_in_body()


def canonicalize(root: Operation) -> int:
    """Fold constants and strip dead code until fixpoint.

    Returns the number of simplifications applied.
    """
    total = 0
    changed = True
    while changed:
        changed = False
        for op in list(root.walk()):
            if op is root or op.parent_block is None:
                continue
            node = op
            while node is not None and node is not root:
                node = node.parent_op
            if node is None:
                continue  # already detached this sweep
            if _is_dead(op) or _is_empty_loop(op):
                op.erase()
                total += 1
                changed = True
                continue
            folded = _fold(op)
            if folded is not None:
                const = std.ConstantOp.create(folded, op.results[0].type)
                block = op.parent_block
                block.insert(block.operations.index(op), const)
                op.replace_all_uses_with([const.result])
                op.erase()
                total += 1
                changed = True
    return total


class CanonicalizePass(FunctionPass):
    name = "canonicalize"

    def run_on_function(self, func, context) -> None:
        canonicalize(func)
