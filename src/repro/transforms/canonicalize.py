"""Canonicalization: constant folding, dead-code elimination, and
removal of empty or zero-trip loops.

Implemented as root-indexed rewrite patterns on the greedy driver: one
DCE pattern per pure op name, one fold pattern per foldable op name,
and an empty-loop pattern rooted at ``affine.for`` — so the worklist
driver's ``FrozenPatternSet`` prunes the match space to exactly the ops
each simplification can apply to.
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..dialects import std
from ..dialects.affine import AffineApplyOp, AffineForOp
from ..ir import (
    FrozenPatternSet,
    FunctionPass,
    Operation,
    PatternRewriter,
    RewritePattern,
    apply_patterns_greedily,
)

#: Ops with no side effects whose unused results can be deleted.
_PURE_OPS = {
    "std.constant",
    "std.addf",
    "std.subf",
    "std.mulf",
    "std.divf",
    "std.maxf",
    "std.addi",
    "std.subi",
    "std.muli",
    "std.cmpi",
    "std.index_cast",
    "affine.load",
    "affine.apply",
}

def _foldable_op_names():
    """Every registered op ``_fold`` can evaluate: binary std
    arithmetic plus affine.apply."""
    from ..ir import OP_REGISTRY

    names = sorted(
        name
        for name, cls in OP_REGISTRY.items()
        if isinstance(cls, type) and issubclass(cls, std.BinaryArithOp)
    )
    names.append("affine.apply")
    return tuple(names)

#: Long dead-def chains retire one link per round; allow deep chains.
_MAX_ITERATIONS = 10_000


def _is_dead(op: Operation) -> bool:
    if op.name not in _PURE_OPS:
        return False
    return all(not r.is_used() for r in op.results)


def _fold(op: Operation) -> Optional[Union[int, float]]:
    """Return the constant value of ``op`` if all operands are constants."""
    if isinstance(op, std.BinaryArithOp):
        values = []
        for operand in op.operands:
            def_op = operand.defining_op
            if not isinstance(def_op, std.ConstantOp):
                return None
            values.append(def_op.value)
        return type(op).PYTHON_FUNC(*values)
    if isinstance(op, AffineApplyOp):
        dims = []
        for operand in op.operands:
            def_op = operand.defining_op
            if not isinstance(def_op, std.ConstantOp):
                return None
            dims.append(int(def_op.value))
        return op.map.evaluate(dims)[0]
    return None


def _is_empty_loop(op: Operation) -> bool:
    if not isinstance(op, AffineForOp):
        return False
    trip = op.constant_trip_count()
    if trip == 0:
        return True
    return not op.ops_in_body()


class DeadOpElimination(RewritePattern):
    """Erase a pure op whose results are all unused."""

    benefit = 2  # erasure wins over folding the same op

    def __init__(self, root_op_name: str):
        self.root_op_name = root_op_name

    @property
    def pattern_name(self) -> str:
        return f"dce<{self.root_op_name}>"

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if not _is_dead(op):
            return False
        rewriter.erase_op(op)
        return True


class EmptyLoopElimination(RewritePattern):
    """Erase ``affine.for`` loops with no body or zero trip count."""

    root_op_name = "affine.for"
    benefit = 2

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if not _is_empty_loop(op):
            return False
        rewriter.erase_op(op)
        return True


class ConstantFolding(RewritePattern):
    """Replace an op over constant operands with a constant."""

    benefit = 1

    def __init__(self, root_op_name: str):
        self.root_op_name = root_op_name

    @property
    def pattern_name(self) -> str:
        return f"fold<{self.root_op_name}>"

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        folded = _fold(op)
        if folded is None:
            return False
        rewriter.set_insertion_point_before(op)
        const = rewriter.insert(
            std.ConstantOp.create(folded, op.results[0].type)
        )
        rewriter.replace_op(op, [const.result])
        return True


def canonicalization_patterns() -> List[RewritePattern]:
    patterns: List[RewritePattern] = [
        DeadOpElimination(name) for name in sorted(_PURE_OPS)
    ]
    patterns.append(EmptyLoopElimination())
    patterns.extend(ConstantFolding(name) for name in _foldable_op_names())
    return patterns


_FROZEN_CACHE: Optional[FrozenPatternSet] = None


def _frozen_canonicalization_set() -> FrozenPatternSet:
    global _FROZEN_CACHE
    if _FROZEN_CACHE is None:
        _FROZEN_CACHE = FrozenPatternSet(canonicalization_patterns())
    return _FROZEN_CACHE


def canonicalize(root: Operation) -> int:
    """Fold constants and strip dead code until fixpoint.

    Returns the number of simplifications applied.
    """
    result = apply_patterns_greedily(
        root, _frozen_canonicalization_set(), max_iterations=_MAX_ITERATIONS
    )
    return result.num_rewrites


class CanonicalizePass(FunctionPass):
    name = "canonicalize"

    def run_on_function(self, func, context):
        result = apply_patterns_greedily(
            func, _frozen_canonicalization_set(), max_iterations=_MAX_ITERATIONS
        )
        self.rewrite_results.append(result)
        return result.changed
