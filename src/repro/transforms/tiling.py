"""Rectangular loop tiling of perfect affine loop bands.

Tiling ``for i in [0, N)`` by ``T`` produces::

    affine.for %it = 0 to N step T
      affine.for %i = %it to min(%it + T, N)

All loops of the band are tiled jointly (strip-mine + interchange), so
a depth-d band becomes 2d loops: d tile loops followed by d point
loops.  This is the core transformation of both the Linalg default
lowering ("Linalg primarily performs tiling", §V-B footnote) and our
Pluto baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..dialects.affine import AffineForOp, perfect_nest
from ..ir import AffineMap, IRError, Operation
from ..ir import affine_expr as ae
from ..ir.pass_manager import FunctionPass


class TilingError(IRError):
    pass


def _check_band(band: Sequence[AffineForOp]) -> None:
    for loop in band:
        if not loop.has_constant_bounds():
            raise TilingError("tiling requires constant loop bounds")
        if loop.step != 1:
            raise TilingError("tiling requires unit-step loops")


def tile_perfect_nest(
    root: AffineForOp, tile_sizes: Sequence[int]
) -> List[AffineForOp]:
    """Tile the perfect band rooted at ``root``.

    ``tile_sizes`` gives one tile size per band loop, outermost first;
    a size of 0 or 1 leaves that loop untiled (but it still moves into
    the point-loop band to keep the tile/point structure).  Returns the
    new loops, tile loops first.
    """
    band = perfect_nest(root)
    if len(tile_sizes) > len(band):
        raise TilingError(
            f"{len(tile_sizes)} tile sizes for a depth-{len(band)} band"
        )
    band = band[: len(tile_sizes)]
    _check_band(band)

    innermost = band[-1]
    payload = innermost.ops_in_body()
    parent_block = root.parent_block
    position = parent_block.operations.index(root)

    sizes = [max(1, int(t)) for t in tile_sizes]
    bounds = [
        (loop.constant_lower_bound(), loop.constant_upper_bound())
        for loop in band
    ]

    # Tile loops.
    new_loops: List[AffineForOp] = []
    for (lb, ub), size in zip(bounds, sizes):
        loop = AffineForOp.create(lb, ub, size if size > 1 else 1)
        new_loops.append(loop)
    # Point loops.
    for i, ((lb, ub), size) in enumerate(zip(bounds, sizes)):
        if size == 1:
            # degenerate: single iteration driven by the tile loop
            tile_iv = new_loops[i].induction_var
            point = AffineForOp.create(
                AffineMap(1, 0, [ae.dim(0)]),
                AffineMap(1, 0, [ae.dim(0) + 1]),
                1,
                [tile_iv],
                [tile_iv],
            )
        else:
            tile_iv = new_loops[i].induction_var
            lb_map = AffineMap(1, 0, [ae.dim(0)])
            if ub % size == 0 and lb % size == 0:
                ub_map = AffineMap(1, 0, [ae.dim(0) + size])
            else:
                ub_map = AffineMap(1, 0, [ae.dim(0) + size, ae.constant(ub)])
            point = AffineForOp.create(lb_map, ub_map, 1, [tile_iv], [tile_iv])
        new_loops.append(point)

    # Nest them.
    for outer, inner in zip(new_loops, new_loops[1:]):
        outer.body.insert(len(outer.body.operations) - 1, inner)

    # Move the payload into the innermost point loop, remapping IVs.
    inner_body = new_loops[-1].body
    insert_at = len(inner_body.operations) - 1
    iv_map: Dict = {
        band[i].induction_var: new_loops[len(band) + i].induction_var
        for i in range(len(band))
    }
    for op in payload:
        innermost.body.remove(op)
        inner_body.insert(insert_at, op)
        insert_at += 1
    for old_iv, new_iv in iv_map.items():
        old_iv.replace_all_uses_with(new_iv)

    parent_block.insert(position, new_loops[0])
    root.drop_all_references()
    for op in list(root.walk_inner()):
        op.drop_all_references()
    parent_block.remove(root)
    return new_loops


class TileLoopNestPass(FunctionPass):
    """Tile every outermost perfect band with a fixed tile size.

    ``tile_size`` is one edge applied at every depth, or a per-depth
    size list (the last entry repeats for deeper bands) — the form
    ``mlt-opt --tile-sizes`` and the schedule autotuner drive.
    """

    name = "affine-loop-tile"

    def __init__(self, tile_size=32):
        self.tile_size = tile_size

    def cache_config(self) -> str:
        if isinstance(self.tile_size, int):
            return f"tile={self.tile_size}"
        return "tile=" + ",".join(str(s) for s in self.tile_size)

    def _sizes_for(self, depth: int) -> List[int]:
        if isinstance(self.tile_size, int):
            return [self.tile_size] * depth
        sizes = list(self.tile_size)
        if not sizes:
            sizes = [32]
        while len(sizes) < depth:
            sizes.append(sizes[-1])
        return sizes[:depth]

    def run_on_function(self, func, context):
        from ..dialects.affine import outermost_loops

        tiled = 0
        for loop in outermost_loops(func):
            band = perfect_nest(loop)
            try:
                tile_perfect_nest(loop, self._sizes_for(len(band)))
            except TilingError:
                continue
            tiled += 1
        return tiled
