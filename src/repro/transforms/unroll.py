"""Unroll-and-jam of affine loops.

Unrolling a unit-cost loop by ``factor`` replicates its body ``factor``
times (each copy's induction variable shifted by ``k * step`` through
an ``affine.apply``) and multiplies the step — a pure reordering-free
flattening of iterations, so it is always legal.  The *jam* half then
fuses the replicated inner nests back together through the fusion
legality machinery (:mod:`.fusion`), which only merges bodies when
every conflicting access pair is distance-0.  When jamming is illegal
the loop is left merely unrolled, which is still correct.

The payoff in this engine is twofold: fewer interpreted loop headers
per point for scalar nests, and — for small reduction trips — a body
the whole-nest vectorizer can sometimes collapse where the rolled loop
could not (the PR-8 follow-on the autotuner searches over).
"""

from __future__ import annotations

from typing import List

from ..dialects.affine import AffineApplyOp, AffineForOp, outermost_loops
from ..ir import AffineMap, Operation
from ..ir import affine_expr as ae
from .fusion import fuse_sibling_loops


def unroll_jam_loop(loop: AffineForOp, factor: int) -> bool:
    """Unroll-and-jam one loop by ``factor`` in place.

    Returns ``False`` (leaving the loop untouched) unless the loop has
    constant bounds, and a constant trip count divisible by ``factor``
    — the remainder-free case keeps the transform a pure body
    replication with no epilogue loop.
    """
    if factor < 2 or loop.parent_block is None:
        return False
    trip = loop.constant_trip_count()
    if trip is None or trip < factor or trip % factor != 0:
        return False
    step = loop.step

    body = loop.body
    original_ops = loop.ops_in_body()
    insert_at = len(body.operations) - 1  # before the terminator
    iv = loop.induction_var
    for copy in range(1, factor):
        shift_map = AffineMap(
            1, 0, [ae.dim(0) + ae.constant(copy * step)]
        )
        shifted = AffineApplyOp.create(shift_map, [iv])
        body.insert(insert_at, shifted)
        insert_at += 1
        value_map = {iv: shifted.result}
        for op in original_ops:
            clone = op.clone(value_map)
            body.insert(insert_at, clone)
            insert_at += 1

    loop.attributes["step"] = type(loop.attributes["step"])(step * factor)

    _jam(loop)
    return True


def _jam(loop: AffineForOp) -> None:
    """Fuse the replicated sibling nests inside ``loop``'s body.

    ``fuse_sibling_loops`` re-checks legality per pair, so an unjammable
    copy simply stays a separate nest.
    """
    changed = True
    while changed:
        changed = False
        for op in list(loop.walk_inner()):
            if not isinstance(op, AffineForOp) or op.parent_block is None:
                continue
            block = op.parent_block
            idx = block.operations.index(op)
            for candidate in block.operations[idx + 1 :]:
                if not isinstance(candidate, AffineForOp):
                    continue
                if fuse_sibling_loops(op, candidate):
                    changed = True
                    break
            if changed:
                break


def unroll_jam_loops(root: Operation, factor: int) -> int:
    """Unroll-and-jam every eligible outermost loop under ``root``.

    Returns the number of loops transformed.
    """
    count = 0
    for loop in list(outermost_loops(root)):
        if loop.parent_block is None:
            continue
        if unroll_jam_loop(loop, factor):
            count += 1
    return count
