"""Loop fusion of sibling loop nests.

The inverse of distribution; used by the Pluto baseline's fusion
heuristics (smartfuse / maxfuse / nofuse) and by the engine's mid-level
optimizer pipeline.  Fusing ``for i {S1}`` with a following
``for i {S2}`` is legal when every pair of conflicting accesses between
the two bodies touches the same element in the same iteration
(dependence distance 0) — the conservative mirror image of the
distribution test.

Fusion is not restricted to adjacent siblings: ``second`` may be
separated from ``first`` by intervening operations, as long as moving
``second``'s iterations up past them is safe (no shared memory with a
write, no SSA def feeding ``second``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.accesses import collect_accesses
from ..dialects.affine import AffineForOp
from ..ir import FunctionPass, Operation

#: Intervening sibling ops ``second`` may be hoisted across (subject to
#: the SSA/memory checks below).  Anything else conservatively blocks
#: non-adjacent fusion: for ops outside this set we cannot enumerate
#: memory effects with ``collect_accesses``.
_CROSSABLE_OPS = frozenset(
    {
        "affine.for",
        "affine.load",
        "affine.store",
        "affine.apply",
        "std.constant",
        "std.addf",
        "std.subf",
        "std.mulf",
        "std.divf",
        "std.maxf",
        "std.negf",
        "std.cmpf",
        "std.select",
        "std.addi",
        "std.subi",
        "std.muli",
        "std.index_cast",
        "std.alloc",
        "std.dealloc",
    }
)


def _bail(bails: Optional[Dict[str, int]], reason: str) -> bool:
    """Record one fusion bail (when a sink is given); returns False so
    legality checks can ``return _bail(...)``."""
    if bails is not None:
        bails[reason] = bails.get(reason, 0) + 1
    return False


def _iteration_space_mismatch(
    a: AffineForOp, b: AffineForOp
) -> Optional[str]:
    """Why two loops' iteration spaces are not identical (None = they
    are).

    Constant bounds compare through their (constant) maps, and bounds
    that are equal non-constant expressions of the same SSA operands
    (symbolic sizes, tile IVs) compare equal too — fusion does not
    require the bounds to fold to literals.  The distinct reasons feed
    ``OptStats.fusion_bails`` so the autotuner's fuse decisions are
    explainable:

    * ``step-mismatch`` — different strides; never alignable.
    * ``bounds-map-mismatch`` — structurally different bound
      expressions (e.g. ``0..N`` vs ``0..M``); not alignable without
      peeling.
    * ``bounds-alignable-operands`` — *identical* bound expressions
      over different SSA operands (same shape, different symbols).
      These are the alignable-but-non-identical spaces a future
      bounds-normalizing fusion could recover.
    """
    if a.step != b.step:
        return "step-mismatch"
    if (
        a.lower_bound_map != b.lower_bound_map
        or a.upper_bound_map != b.upper_bound_map
    ):
        return "bounds-map-mismatch"
    if len(a.lb_operands) != len(b.lb_operands) or len(a.ub_operands) != len(
        b.ub_operands
    ):
        return "bounds-alignable-operands"
    if all(x is y for x, y in zip(a.lb_operands, b.lb_operands)) and all(
        x is y for x, y in zip(a.ub_operands, b.ub_operands)
    ):
        return None
    return "bounds-alignable-operands"


def _same_iteration_space(a: AffineForOp, b: AffineForOp) -> bool:
    return _iteration_space_mismatch(a, b) is None


def can_fuse(
    first: AffineForOp,
    second: AffineForOp,
    bails: Optional[Dict[str, int]] = None,
) -> bool:
    """Conservative legality: identical iteration spaces, matching band
    depths, and only distance-0 conflicts (after the IVs are identified
    with each other).  ``bails`` (reason -> count) records why a pair
    was rejected."""
    mismatch = _iteration_space_mismatch(first, second)
    if mismatch is not None:
        return _bail(bails, mismatch)
    from ..dialects.affine import perfect_nest

    first_band = perfect_nest(first)
    second_band = perfect_nest(second)
    if len(first_band) != len(second_band):
        return _bail(bails, "depth-mismatch")
    for f_loop, s_loop in zip(first_band[1:], second_band[1:]):
        mismatch = _iteration_space_mismatch(f_loop, s_loop)
        if mismatch is not None:
            return _bail(bails, f"inner-{mismatch}")
    first_accesses = collect_accesses(first)
    second_accesses = collect_accesses(second)
    for a in first_accesses:
        for b in second_accesses:
            if a.memref is not b.memref or not (a.is_write or b.is_write):
                continue
            if not _conflict_is_aligned(a, b, first, second):
                return _bail(bails, "conflict-misaligned")
    return True


def has_flow(first: AffineForOp, second: AffineForOp) -> bool:
    """True when the two nests conflict on some buffer (at least one
    side writes it) — i.e. fusing them brings a producer/consumer pair
    into one body.  Nests with no flow gain nothing from fusion (they
    already vectorize independently), and fusing them can *hurt* by
    producing a multi-store body the vectorizer bails on."""
    second_accesses = collect_accesses(second)
    for a in collect_accesses(first):
        for b in second_accesses:
            if a.memref is b.memref and (a.is_write or b.is_write):
                return True
    return False


def _conflict_is_aligned(a, b, first: AffineForOp, second: AffineForOp) -> bool:
    """Check the two access functions agree once ``second``'s IV is
    renamed to ``first``'s (recursively for inner loops this is an
    approximation: inner IVs must match positionally)."""
    if a.rank != b.rank:
        return False
    rename: Dict = {second.induction_var: first.induction_var}
    # positionally align inner perfect-nest IVs as well
    from ..dialects.affine import perfect_nest

    first_band = perfect_nest(first)
    second_band = perfect_nest(second)
    for f_loop, s_loop in zip(first_band, second_band):
        rename[s_loop.induction_var] = f_loop.induction_var
    for sa, sb in zip(a.subscripts, b.subscripts):
        renamed = {rename.get(v, v): c for v, c in sb.coeffs.items()}
        if sa.coeffs != renamed or sa.constant != sb.constant:
            return False
    return True


def _defined_values(op: Operation) -> List:
    return list(op.results)


def _uses_value_of(consumer: Operation, producer: Operation) -> bool:
    produced = set(id(r) for r in producer.results)
    if not produced:
        return False
    for nested in consumer.walk():
        for operand in nested.operands:
            if id(operand) in produced:
                return True
    return False


def _can_cross(second: AffineForOp, between: List[Operation]) -> bool:
    """Is it safe to hoist ``second``'s iterations above every op in
    ``between``?  Requires: no SSA value defined by an intervening op is
    used inside ``second``, and no intervening op shares a buffer with
    ``second`` where at least one side writes."""
    if not between:
        return True
    second_accesses = collect_accesses(second)
    for op in between:
        for nested in op.walk():
            if nested.name not in _CROSSABLE_OPS:
                return False
        if _uses_value_of(second, op):
            return False
        for a in collect_accesses(op):
            for b in second_accesses:
                if a.memref is b.memref and (a.is_write or b.is_write):
                    return False
    return True


def fuse_sibling_loops(
    first: AffineForOp,
    second: AffineForOp,
    bails: Optional[Dict[str, int]] = None,
) -> bool:
    """Fuse ``second`` into ``first`` if legal.  Returns success.

    ``second`` need not be adjacent to ``first``: intervening siblings
    are allowed when hoisting ``second`` past them is provably safe
    (``_can_cross``).
    """
    if first.parent_block is None or first.parent_block is not second.parent_block:
        return False
    ops = first.parent_block.operations
    first_idx = ops.index(first)
    second_idx = ops.index(second)
    if second_idx <= first_idx:
        return False
    if not _can_cross(second, ops[first_idx + 1 : second_idx]):
        return _bail(bails, "cannot-hoist")
    if not can_fuse(first, second, bails=bails):
        return False
    insert_at = len(first.body.operations) - 1
    second.induction_var.replace_all_uses_with(first.induction_var)
    for op in second.ops_in_body():
        second.body.remove(op)
        first.body.insert(insert_at, op)
        insert_at += 1
    second.erase()
    return True


def greedy_fuse(
    root: Operation,
    require_flow: bool = False,
    bails: Optional[Dict[str, int]] = None,
) -> int:
    """Fuse fusable sibling loops under ``root`` across whole sibling
    lists (maxfuse).  With ``require_flow=True`` only producer/consumer
    pairs fuse — the engine optimizer's policy, which avoids gluing
    independent nests into multi-store bodies the vectorizer rejects.

    ``bails`` accumulates a reason -> count taxonomy over every
    rejected candidate pair (pairs re-examined across fixpoint rounds
    count once per attempt).
    """
    fused = 0
    changed = True
    while changed:
        changed = False
        for op in list(root.walk()):
            if not isinstance(op, AffineForOp) or op.parent_block is None:
                continue
            block = op.parent_block
            idx = block.operations.index(op)
            for candidate in block.operations[idx + 1 :]:
                if not isinstance(candidate, AffineForOp):
                    continue
                if require_flow and not has_flow(op, candidate):
                    _bail(bails, "no-flow")
                    continue
                if fuse_sibling_loops(op, candidate, bails=bails):
                    fused += 1
                    changed = True
                    break
            if changed:
                break
    return fused


class LoopFusionPass(FunctionPass):
    name = "affine-loop-fusion"

    def __init__(self, require_flow: bool = False):
        self.require_flow = require_flow

    def cache_config(self) -> str:
        return f"flow={self.require_flow}"

    def run_on_function(self, func, context):
        return greedy_fuse(func, require_flow=self.require_flow)
