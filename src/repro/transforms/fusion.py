"""Loop fusion of sibling loop nests.

The inverse of distribution; used by the Pluto baseline's fusion
heuristics (smartfuse / maxfuse / nofuse).  Fusing ``for i {S1}`` with
a following ``for i {S2}`` is legal when every pair of conflicting
accesses between the two bodies touches the same element in the same
iteration (dependence distance 0) — the conservative mirror image of
the distribution test.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.accesses import collect_accesses
from ..dialects.affine import AffineForOp
from ..ir import Operation


def _same_iteration_space(a: AffineForOp, b: AffineForOp) -> bool:
    return (
        a.constant_lower_bound() is not None
        and a.constant_lower_bound() == b.constant_lower_bound()
        and a.constant_upper_bound() == b.constant_upper_bound()
        and a.step == b.step
    )


def can_fuse(first: AffineForOp, second: AffineForOp) -> bool:
    """Conservative legality: identical iteration spaces, matching band
    depths, and only distance-0 conflicts (after the IVs are identified
    with each other)."""
    if not _same_iteration_space(first, second):
        return False
    from ..dialects.affine import perfect_nest

    if len(perfect_nest(first)) != len(perfect_nest(second)):
        return False
    first_accesses = collect_accesses(first)
    second_accesses = collect_accesses(second)
    for a in first_accesses:
        for b in second_accesses:
            if a.memref is not b.memref or not (a.is_write or b.is_write):
                continue
            if not _conflict_is_aligned(a, b, first, second):
                return False
    return True


def _conflict_is_aligned(a, b, first: AffineForOp, second: AffineForOp) -> bool:
    """Check the two access functions agree once ``second``'s IV is
    renamed to ``first``'s (recursively for inner loops this is an
    approximation: inner IVs must match positionally)."""
    if a.rank != b.rank:
        return False
    rename: Dict = {second.induction_var: first.induction_var}
    # positionally align inner perfect-nest IVs as well
    from ..dialects.affine import perfect_nest

    first_band = perfect_nest(first)
    second_band = perfect_nest(second)
    for f_loop, s_loop in zip(first_band, second_band):
        rename[s_loop.induction_var] = f_loop.induction_var
    for sa, sb in zip(a.subscripts, b.subscripts):
        renamed = {rename.get(v, v): c for v, c in sb.coeffs.items()}
        if sa.coeffs != renamed or sa.constant != sb.constant:
            return False
    return True


def fuse_sibling_loops(first: AffineForOp, second: AffineForOp) -> bool:
    """Fuse ``second`` into ``first`` if legal.  Returns success."""
    if first.parent_block is None or first.parent_block is not second.parent_block:
        return False
    ops = first.parent_block.operations
    if ops.index(second) != ops.index(first) + 1:
        return False
    if not can_fuse(first, second):
        return False
    insert_at = len(first.body.operations) - 1
    clone_map = {second.induction_var: first.induction_var}
    second.induction_var.replace_all_uses_with(first.induction_var)
    for op in second.ops_in_body():
        second.body.remove(op)
        first.body.insert(insert_at, op)
        insert_at += 1
    second.erase()
    return True


def greedy_fuse(root: Operation) -> int:
    """Fuse adjacent fusable sibling loops under ``root`` (maxfuse)."""
    fused = 0
    changed = True
    while changed:
        changed = False
        for op in list(root.walk()):
            if not isinstance(op, AffineForOp) or op.parent_block is None:
                continue
            block = op.parent_block
            idx = block.operations.index(op)
            if idx + 1 < len(block.operations):
                neighbor = block.operations[idx + 1]
                if isinstance(neighbor, AffineForOp) and fuse_sibling_loops(
                    op, neighbor
                ):
                    fused += 1
                    changed = True
                    break
    return fused
