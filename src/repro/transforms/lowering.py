"""Progressive lowering: linalg -> affine -> scf -> llvm.

This is the classic downward direction of the multi-level pipeline the
paper complements with raising.  Every step is a pass:

  * :class:`LinalgToAffinePass`   — structured ops to affine loop nests
  * :class:`ExpandAffineMatmulPass` — ``affine.matmul`` to loops
  * :class:`AffineToSCFPass`      — affine loops/accesses to SCF + std
  * :class:`SCFToLLVMPass`        — structured loops to CFG with
    explicitly linearized memory accesses
  * :class:`LinalgToBlasPass`     — the MLT-BLAS alternative: structured
    ops to vendor library calls
  * :class:`LowerBlasToLLVMPass`  — library ops to ``llvm.call``

Each per-op lowering is exposed as a ``RewritePattern`` with a declared
``root_op_name``, so the greedy driver's ``FrozenPatternSet`` only ever
tries a lowering on ops it can actually apply to.  (The CFG-peeling
half of SCF→LLVM operates on blocks, not single ops, and stays a
structural loop.)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.accesses import enclosing_loops
from ..dialects import blas as blas_d
from ..dialects import linalg as linalg_d
from ..dialects import llvm as llvm_d
from ..dialects import scf as scf_d
from ..dialects import std
from ..dialects.affine import (
    AffineApplyOp,
    AffineForOp,
    AffineLoadOp,
    AffineMatmulOp,
    AffineStoreOp,
    AffineYieldOp,
    build_loop_nest,
)
from ..ir import (
    AffineMap,
    Block,
    Builder,
    Context,
    FrozenPatternSet,
    FunctionPass,
    IRError,
    InsertionPoint,
    ModuleOp,
    Operation,
    PassManager,
    PatternRewriter,
    RewritePattern,
    Value,
    apply_patterns_greedily,
    index,
)
from ..ir import affine_expr as ae
from .canonicalize import CanonicalizePass

# ----------------------------------------------------------------------
# Linalg -> Affine
# ----------------------------------------------------------------------


def _builder_before(op: Operation, rewriter: Optional[PatternRewriter]) -> Builder:
    """An insertion helper before ``op`` — the rewriter itself when the
    lowering runs under the pattern driver (so creations are notified),
    a plain Builder otherwise."""
    if rewriter is not None:
        rewriter.set_insertion_point_before(op)
        return rewriter
    return Builder(InsertionPoint.before(op))


def _erase(op: Operation, rewriter: Optional[PatternRewriter]) -> None:
    if rewriter is not None:
        rewriter.erase_op(op)
    else:
        op.erase()


def _loop_nest_before(op: Operation, bounds, rewriter=None) -> List[Value]:
    """Create a constant-bound loop nest before ``op``; return the IVs.

    The caller fills the innermost body via ``ivs[0].owner`` etc.
    """
    builder = _builder_before(op, rewriter)
    loops, ivs = build_loop_nest(builder, [(0, ub) for ub in bounds])
    return loops, ivs


def _innermost_builder(loops) -> Builder:
    inner = loops[-1].body
    return Builder(InsertionPoint(inner, len(inner.operations) - 1))


def _lower_matmul_like(op, a, b, c, rewriter=None) -> None:
    """Emit the canonical triple loop ``C[i,j] += A[i,k] * B[k,j]``."""
    m, k = a.type.shape
    n = b.type.shape[1]
    loops, (i, j, kk) = _loop_nest_before(op, [m, n, k], rewriter)
    body = _innermost_builder(loops)
    c_val = body.insert(AffineLoadOp.create(c, [i, j])).result
    a_val = body.insert(AffineLoadOp.create(a, [i, kk])).result
    b_val = body.insert(AffineLoadOp.create(b, [kk, j])).result
    mul = body.insert(std.MulFOp.create(a_val, b_val)).result
    add = body.insert(std.AddFOp.create(mul, c_val)).result
    body.insert(AffineStoreOp.create(add, c, [i, j]))
    _erase(op, rewriter)


def lower_linalg_op_to_affine(op: Operation, rewriter=None) -> bool:
    """Lower one linalg op in place; returns False if unrecognized."""
    if isinstance(op, linalg_d.MatmulOp):
        _lower_matmul_like(op, op.a, op.b, op.c, rewriter)
        return True
    if isinstance(op, AffineMatmulOp):
        _lower_matmul_like(op, op.a, op.b, op.c, rewriter)
        return True
    if isinstance(op, linalg_d.MatvecOp):
        a, x, y = op.a, op.x, op.y
        rows, cols = a.type.shape
        if op.trans:
            # y[j] += A[i, j] * x[i]: keep the matrix's contiguous
            # dimension innermost (row-major streaming), reduction outer.
            loops, (i, j) = _loop_nest_before(op, [rows, cols], rewriter)
            body = _innermost_builder(loops)
            y_val = body.insert(AffineLoadOp.create(y, [j])).result
            a_val = body.insert(AffineLoadOp.create(a, [i, j])).result
            x_val = body.insert(AffineLoadOp.create(x, [i])).result
            mul = body.insert(std.MulFOp.create(a_val, x_val)).result
            add = body.insert(std.AddFOp.create(mul, y_val)).result
            body.insert(AffineStoreOp.create(add, y, [j]))
        else:
            loops, (i, j) = _loop_nest_before(op, [rows, cols], rewriter)
            body = _innermost_builder(loops)
            y_val = body.insert(AffineLoadOp.create(y, [i])).result
            a_val = body.insert(AffineLoadOp.create(a, [i, j])).result
            x_val = body.insert(AffineLoadOp.create(x, [j])).result
            mul = body.insert(std.MulFOp.create(a_val, x_val)).result
            add = body.insert(std.AddFOp.create(mul, y_val)).result
            body.insert(AffineStoreOp.create(add, y, [i]))
        _erase(op, rewriter)
        return True
    if isinstance(op, linalg_d.TransposeOp):
        perm = op.permutation
        out_shape = op.output.type.shape
        loops, ivs = _loop_nest_before(op, list(out_shape), rewriter)
        body = _innermost_builder(loops)
        # out[i0..in] = in[i_perm[0]], permuted by the permutation.
        in_ivs = [None] * len(perm)
        for out_dim, in_dim in enumerate(perm):
            in_ivs[in_dim] = ivs[out_dim]
        val = body.insert(AffineLoadOp.create(op.input, in_ivs)).result
        body.insert(AffineStoreOp.create(val, op.output, ivs))
        _erase(op, rewriter)
        return True
    if isinstance(op, linalg_d.ReshapeOp):
        _lower_reshape(op, rewriter)
        return True
    if isinstance(op, linalg_d.Conv2DNchwOp):
        _lower_conv2d(op, rewriter)
        return True
    if isinstance(op, linalg_d.FillOp):
        shape = op.output.type.shape
        loops, ivs = _loop_nest_before(op, list(shape), rewriter)
        body = _innermost_builder(loops)
        body.insert(AffineStoreOp.create(op.fill_value, op.output, ivs))
        _erase(op, rewriter)
        return True
    if isinstance(op, linalg_d.CopyOp):
        shape = op.output.type.shape
        loops, ivs = _loop_nest_before(op, list(shape), rewriter)
        body = _innermost_builder(loops)
        val = body.insert(AffineLoadOp.create(op.input, ivs)).result
        body.insert(AffineStoreOp.create(val, op.output, ivs))
        _erase(op, rewriter)
        return True
    if isinstance(op, linalg_d.GenericOp):
        _lower_generic(op, rewriter)
        return True
    return False


def _lower_reshape(op: linalg_d.ReshapeOp, rewriter=None) -> None:
    groups = op.reassociation
    if op.is_collapse():
        high, low = op.input, op.output
    else:
        high, low = op.output, op.input
    high_shape = high.type.shape
    loops, ivs = _loop_nest_before(op, list(high_shape), rewriter)
    body = _innermost_builder(loops)
    # Each low-rank subscript is the row-major linearization of its group.
    low_exprs: List[ae.AffineExpr] = []
    for group in groups:
        expr: ae.AffineExpr = ae.constant(0)
        for dim_pos in group:
            expr = expr * high_shape[dim_pos] + ae.dim(dim_pos)
        low_exprs.append(expr)
    low_map = AffineMap(len(high_shape), 0, low_exprs)
    if op.is_collapse():
        val = body.insert(AffineLoadOp.create(high, ivs)).result
        body.insert(AffineStoreOp.create(val, low, ivs, low_map))
    else:
        val = body.insert(AffineLoadOp.create(low, ivs, low_map)).result
        body.insert(AffineStoreOp.create(val, high, ivs))
    _erase(op, rewriter)


def _lower_conv2d(op: linalg_d.Conv2DNchwOp, rewriter=None) -> None:
    n, f, oh, ow = op.output.type.shape
    _, c, kh, kw = op.kernel.type.shape
    loops, ivs = _loop_nest_before(op, [n, f, oh, ow, c, kh, kw], rewriter)
    i_n, i_f, i_oh, i_ow, i_c, i_kh, i_kw = ivs
    body = _innermost_builder(loops)
    out_val = body.insert(
        AffineLoadOp.create(op.output, [i_n, i_f, i_oh, i_ow])
    ).result
    in_map = AffineMap(
        4,
        0,
        [ae.dim(0), ae.dim(1), ae.dim(2), ae.dim(3)],
    )
    # input[n, c, oh + kh, ow + kw]
    h_expr = ae.dim(2) + ae.dim(4)
    w_expr = ae.dim(3) + ae.dim(5)
    in_map = AffineMap(6, 0, [ae.dim(0), ae.dim(1), h_expr, w_expr])
    in_val = body.insert(
        AffineLoadOp.create(
            op.input, [i_n, i_c, i_oh, i_ow, i_kh, i_kw], in_map
        )
    ).result
    k_val = body.insert(
        AffineLoadOp.create(op.kernel, [i_f, i_c, i_kh, i_kw])
    ).result
    mul = body.insert(std.MulFOp.create(in_val, k_val)).result
    add = body.insert(std.AddFOp.create(mul, out_val)).result
    body.insert(AffineStoreOp.create(add, op.output, [i_n, i_f, i_oh, i_ow]))
    _erase(op, rewriter)


def _lower_generic(op: linalg_d.GenericOp, rewriter=None) -> None:
    extents = op.iteration_domain()
    loops, ivs = _loop_nest_before(op, extents, rewriter)
    body = _innermost_builder(loops)
    value_map: Dict = {}
    for operand, map_, block_arg in zip(
        op.operands, op.indexing_maps, op.body.arguments
    ):
        load = body.insert(AffineLoadOp.create(operand, ivs, map_))
        value_map[block_arg] = load.result
    yielded: List[Value] = []
    for inner in op.body.ops_without_terminator():
        cloned = inner.clone(value_map)
        body.insert(cloned)
    term = op.body.terminator
    for out_idx, yielded_value in enumerate(term.operands):
        out = op.outputs[out_idx]
        out_map = op.indexing_maps[op.num_inputs + out_idx]
        body.insert(
            AffineStoreOp.create(
                value_map.get(yielded_value, yielded_value), out, ivs, out_map
            )
        )
    _erase(op, rewriter)


#: Op names ``lower_linalg_to_affine`` rewrites (``affine.matmul`` is
#: deliberately excluded — expanding it is ExpandAffineMatmulPass's job).
_LINALG_TO_AFFINE_ROOTS = (
    "linalg.matmul",
    "linalg.matvec",
    "linalg.transpose",
    "linalg.reshape",
    "linalg.conv2d_nchw",
    "linalg.fill",
    "linalg.copy",
    "linalg.generic",
)


class LinalgToAffinePattern(RewritePattern):
    """Lower one linalg op (per root name) to affine loops."""

    def __init__(self, root_op_name: str):
        self.root_op_name = root_op_name

    @property
    def pattern_name(self) -> str:
        return f"to-affine<{self.root_op_name}>"

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        return lower_linalg_op_to_affine(op, rewriter)


_LINALG_TO_AFFINE_CACHE: Optional[FrozenPatternSet] = None


def _linalg_to_affine_set() -> FrozenPatternSet:
    global _LINALG_TO_AFFINE_CACHE
    if _LINALG_TO_AFFINE_CACHE is None:
        _LINALG_TO_AFFINE_CACHE = FrozenPatternSet(
            [LinalgToAffinePattern(name) for name in _LINALG_TO_AFFINE_ROOTS]
        )
    return _LINALG_TO_AFFINE_CACHE


def lower_linalg_to_affine(root: Operation) -> int:
    result = apply_patterns_greedily(root, _linalg_to_affine_set())
    return result.num_rewrites


class LinalgToAffinePass(FunctionPass):
    name = "convert-linalg-to-affine-loops"

    def run_on_function(self, func, context):
        result = apply_patterns_greedily(func, _linalg_to_affine_set())
        self.rewrite_results.append(result)
        return result.changed


class ExpandAffineMatmulPattern(RewritePattern):
    root_op_name = "affine.matmul"

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        _lower_matmul_like(op, op.a, op.b, op.c, rewriter)
        return True


class ExpandAffineMatmulPass(FunctionPass):
    """Lower ``affine.matmul`` back to loops (naive schedule).

    The real system lowers it to OpenBLAS/BLIS-style tiled code; for
    execution semantics the naive loops are equivalent, and the cost
    model prices the op at BLIS efficiency before this pass runs.
    """

    name = "affine-expand-matmul"

    _frozen = FrozenPatternSet([ExpandAffineMatmulPattern()])

    def run_on_function(self, func, context):
        result = apply_patterns_greedily(func, self._frozen)
        self.rewrite_results.append(result)
        return result.changed


# ----------------------------------------------------------------------
# Linalg -> BLAS (the MLT-BLAS path)
# ----------------------------------------------------------------------


def _convert_linalg_to_blas(op: Operation, library: str) -> Optional[Operation]:
    lib = library
    if isinstance(op, linalg_d.MatmulOp):
        return blas_d.SgemmOp.create(op.a, op.b, op.c, library=lib)
    if isinstance(op, linalg_d.MatvecOp):
        return blas_d.SgemvOp.create(
            op.a, op.x, op.y, library=lib, trans=op.trans
        )
    if isinstance(op, linalg_d.TransposeOp):
        return blas_d.TransposeOp.create(
            op.input, op.output, op.permutation, library=lib
        )
    if isinstance(op, linalg_d.ReshapeOp):
        return blas_d.ReshapeOp.create(
            op.input, op.output, op.reassociation, library=lib
        )
    if isinstance(op, linalg_d.Conv2DNchwOp):
        return blas_d.Conv2DOp.create(
            op.input, op.kernel, op.output, library=lib
        )
    return None


_LINALG_TO_BLAS_ROOTS = (
    "linalg.matmul",
    "linalg.matvec",
    "linalg.transpose",
    "linalg.reshape",
    "linalg.conv2d_nchw",
)


class LinalgToBlasPattern(RewritePattern):
    def __init__(self, root_op_name: str, library: str):
        self.root_op_name = root_op_name
        self.library = library

    @property
    def pattern_name(self) -> str:
        return f"to-blas<{self.root_op_name}>"

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        replacement = _convert_linalg_to_blas(op, self.library)
        if replacement is None:
            return False
        rewriter.set_insertion_point_before(op)
        rewriter.insert(replacement)
        rewriter.erase_op(op)
        return True


class LinalgToBlasPass(FunctionPass):
    """Replace linalg ops with vendor library calls (§V-B MLT-Blas)."""

    name = "convert-linalg-to-blas"

    def __init__(self, library: str = "mkl-dnn"):
        self.library = library
        self._frozen = FrozenPatternSet(
            [
                LinalgToBlasPattern(name, library)
                for name in _LINALG_TO_BLAS_ROOTS
            ]
        )

    def cache_config(self) -> str:
        return f"library={self.library}"

    def run_on_function(self, func, context):
        result = apply_patterns_greedily(func, self._frozen)
        self.rewrite_results.append(result)
        return result.changed

    def _convert(self, op: Operation) -> Optional[Operation]:
        return _convert_linalg_to_blas(op, self.library)


# ----------------------------------------------------------------------
# Affine -> SCF
# ----------------------------------------------------------------------


def expand_affine_expr(
    builder: Builder, expr: ae.AffineExpr, operands: Sequence[Value]
) -> Value:
    """Materialize an affine expression as std arithmetic over index
    values."""
    if isinstance(expr, ae.AffineConstantExpr):
        return builder.insert(std.ConstantOp.create(expr.value, index)).result
    if isinstance(expr, ae.AffineDimExpr):
        return operands[expr.position]
    if isinstance(expr, ae.AffineSymbolExpr):
        raise IRError("symbolic affine expressions need bound operands")
    assert isinstance(expr, ae.AffineBinaryExpr)
    lhs = expand_affine_expr(builder, expr.lhs, operands)
    rhs = expand_affine_expr(builder, expr.rhs, operands)
    kind_to_op = {
        ae.AffineExprKind.ADD: std.AddIOp,
        ae.AffineExprKind.MUL: std.MulIOp,
        ae.AffineExprKind.MOD: std.RemIOp,
        ae.AffineExprKind.FLOORDIV: std.DivIOp,
    }
    if expr.kind in kind_to_op:
        return builder.insert(kind_to_op[expr.kind].create(lhs, rhs)).result
    # ceildiv(a, b) = (a + b - 1) floordiv b
    one = builder.insert(std.ConstantOp.create(1, index)).result
    num = builder.insert(std.AddIOp.create(lhs, rhs)).result
    num = builder.insert(std.SubIOp.create(num, one)).result
    return builder.insert(std.DivIOp.create(num, rhs)).result


def _lower_affine_bound(
    builder: Builder,
    map_: AffineMap,
    operands: Sequence[Value],
    minimize: bool,
) -> Value:
    """Materialize a bound; multi-result maps become cmp+select chains
    (min for upper bounds, max for lower bounds)."""
    values = [
        expand_affine_expr(builder, expr, operands) for expr in map_.results
    ]
    result = values[0]
    predicate = "slt" if minimize else "sgt"
    for value in values[1:]:
        cmp = builder.insert(std.CmpIOp.create(predicate, result, value))
        result = builder.insert(
            std.SelectOp.create(cmp.result, result, value)
        ).result
    return result


def _lower_one_affine_for(op: AffineForOp, rewriter=None) -> None:
    builder = _builder_before(op, rewriter)
    lb = _lower_affine_bound(
        builder, op.lower_bound_map, op.lb_operands, minimize=False
    )
    ub = _lower_affine_bound(
        builder, op.upper_bound_map, op.ub_operands, minimize=True
    )
    step = builder.insert(std.ConstantOp.create(op.step, index)).result
    scf_for = builder.insert(scf_d.ForOp.create(lb, ub, step))
    # Move body ops (except the affine terminator) into the scf body.
    target = scf_for.body
    insert_at = len(target.operations) - 1
    value_map = {op.induction_var: scf_for.induction_var}
    for body_op in op.ops_in_body():
        op.body.remove(body_op)
        target.insert(insert_at, body_op)
        insert_at += 1
    if rewriter is not None:
        # IV users were not redirected via replace_op; re-enqueue them.
        rewriter.replaced_users.extend(op.induction_var.users)
    op.induction_var.replace_all_uses_with(scf_for.induction_var)
    _erase(op, rewriter)


def _lower_one_affine_access(op, rewriter=None) -> None:
    builder = _builder_before(op, rewriter)
    indices = [
        expand_affine_expr(builder, expr, op.indices)
        for expr in op.map.results
    ]
    if isinstance(op, AffineLoadOp):
        new_op = builder.insert(std.LoadOp.create(op.memref, indices))
        if rewriter is not None:
            rewriter.replace_op(op, [new_op.result])
        else:
            op.replace_all_uses_with([new_op.result])
            op.erase()
    else:
        builder.insert(std.StoreOp.create(op.value, op.memref, indices))
        _erase(op, rewriter)


class AffineForLoweringPattern(RewritePattern):
    root_op_name = "affine.for"

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        _lower_one_affine_for(op, rewriter)
        return True


class AffineAccessLoweringPattern(RewritePattern):
    def __init__(self, root_op_name: str):
        self.root_op_name = root_op_name

    @property
    def pattern_name(self) -> str:
        return f"lower<{self.root_op_name}>"

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        _lower_one_affine_access(op, rewriter)
        return True


class AffineApplyLoweringPattern(RewritePattern):
    root_op_name = "affine.apply"

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        builder = _builder_before(op, rewriter)
        value = expand_affine_expr(builder, op.map.results[0], op.operands)
        if rewriter is not None:
            rewriter.replace_op(op, [value])
        else:
            op.replace_all_uses_with([value])
            op.erase()
        return True


_AFFINE_TO_SCF_CACHE: Optional[FrozenPatternSet] = None


def _affine_to_scf_set() -> FrozenPatternSet:
    global _AFFINE_TO_SCF_CACHE
    if _AFFINE_TO_SCF_CACHE is None:
        _AFFINE_TO_SCF_CACHE = FrozenPatternSet(
            [
                AffineForLoweringPattern(),
                AffineAccessLoweringPattern("affine.load"),
                AffineAccessLoweringPattern("affine.store"),
                AffineApplyLoweringPattern(),
            ]
        )
    return _AFFINE_TO_SCF_CACHE


def lower_affine_to_scf(func) -> int:
    """Rewrite all affine ops in a function into scf/std form."""
    result = apply_patterns_greedily(func, _affine_to_scf_set())
    return result.num_rewrites


class AffineToSCFPass(FunctionPass):
    name = "lower-affine"

    def run_on_function(self, func, context):
        result = apply_patterns_greedily(func, _affine_to_scf_set())
        self.rewrite_results.append(result)
        return result.changed


# ----------------------------------------------------------------------
# SCF -> LLVM (CFG construction)
# ----------------------------------------------------------------------


def _linearize_indices(
    builder: Builder, memref: Value, indices: Sequence[Value]
) -> Value:
    shape = memref.type.shape
    flat = builder.insert(std.ConstantOp.create(0, index)).result
    for size, idx in zip(shape, indices):
        size_c = builder.insert(std.ConstantOp.create(size, index)).result
        flat = builder.insert(std.MulIOp.create(flat, size_c)).result
        flat = builder.insert(std.AddIOp.create(flat, idx)).result
    return flat


class MemAccessFlatteningPattern(RewritePattern):
    """std.load/std.store -> llvm.load/llvm.store with a linearized
    row-major index."""

    def __init__(self, root_op_name: str):
        self.root_op_name = root_op_name

    @property
    def pattern_name(self) -> str:
        return f"flatten<{self.root_op_name}>"

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        builder = _builder_before(op, rewriter)
        flat = _linearize_indices(builder, op.memref, op.indices)
        if isinstance(op, std.LoadOp):
            new_op = builder.insert(llvm_d.LoadOp.create(op.memref, flat))
            if rewriter is not None:
                rewriter.replace_op(op, [new_op.result])
            else:
                op.replace_all_uses_with([new_op.result])
                op.erase()
        else:
            builder.insert(llvm_d.StoreOp.create(op.value, op.memref, flat))
            _erase(op, rewriter)
        return True


_FLATTEN_CACHE: Optional[FrozenPatternSet] = None


def _flatten_set() -> FrozenPatternSet:
    global _FLATTEN_CACHE
    if _FLATTEN_CACHE is None:
        _FLATTEN_CACHE = FrozenPatternSet(
            [
                MemAccessFlatteningPattern("std.load"),
                MemAccessFlatteningPattern("std.store"),
            ]
        )
    return _FLATTEN_CACHE


def _peel_all_loops(func) -> int:
    """Peel scf.for ops into explicit CFG blocks, outermost-first."""
    count = 0
    region = func.regions[0]
    changed = True
    while changed:
        changed = False
        for block in list(region.blocks):
            loop = next(
                (o for o in block.operations if isinstance(o, scf_d.ForOp)),
                None,
            )
            if loop is None:
                continue
            _peel_loop_into_cfg(region, block, loop)
            count += 1
            changed = True
            break
    return count


def lower_scf_to_llvm(func) -> int:
    """Convert structured loops to explicit CFG and flatten memory ops."""
    result = apply_patterns_greedily(func, _flatten_set())
    return result.num_rewrites + _peel_all_loops(func)


def _peel_loop_into_cfg(region, block: Block, loop) -> None:
    position = block.operations.index(loop)
    tail_ops = block.operations[position + 1:]

    header = region.add_block(Block([index]))
    body_block = region.add_block(Block())
    exit_block = region.add_block(Block())

    # Entry edge.
    lb, ub, step = loop.lower_bound, loop.upper_bound, loop.step
    body_ops = loop.ops_in_body()
    iv = loop.induction_var

    for op in tail_ops:
        block.remove(op)
        exit_block.append(op)
    block.append(llvm_d.BrOp.create(header, [lb]))

    # Header: compare and branch.
    header_iv = header.arguments[0]
    cmp = std.CmpIOp.create("slt", header_iv, ub)
    header.append(cmp)
    header.append(llvm_d.CondBrOp.create(cmp.result, body_block, exit_block))

    # Body: moved loop body, then increment and back edge.
    iv.replace_all_uses_with(header_iv)
    for op in body_ops:
        loop.body.remove(op)
        body_block.append(op)
    next_iv = std.AddIOp.create(header_iv, step)
    body_block.append(next_iv)
    body_block.append(llvm_d.BrOp.create(header, [next_iv.result]))

    loop.erase()


class SCFToLLVMPass(FunctionPass):
    name = "convert-scf-to-llvm"

    def run_on_function(self, func, context):
        result = apply_patterns_greedily(func, _flatten_set())
        self.rewrite_results.append(result)
        peeled = _peel_all_loops(func)
        return result.changed or peeled > 0


class LowerBlasToLLVMPattern(RewritePattern):
    def __init__(self, root_op_name: str, symbol: str):
        self.root_op_name = root_op_name
        self.symbol = symbol

    @property
    def pattern_name(self) -> str:
        return f"to-llvm-call<{self.root_op_name}>"

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        rewriter.set_insertion_point_before(op)
        rewriter.insert(llvm_d.CallOp.create(self.symbol, op.operands))
        rewriter.erase_op(op)
        return True


class LowerBlasToLLVMPass(FunctionPass):
    """Replace blas dialect ops by llvm.call into the library ABI."""

    name = "convert-blas-to-llvm"

    _SYMBOLS = {
        "blas.sgemm": "cblas_sgemm",
        "blas.sgemv": "cblas_sgemv",
        "blas.transpose": "mkl_somatcopy",
        "blas.reshape": "mlt_reshape_view",
        "blas.conv2d": "mkldnn_convolution_forward",
    }

    _frozen = FrozenPatternSet(
        [
            LowerBlasToLLVMPattern(name, symbol)
            for name, symbol in sorted(_SYMBOLS.items())
        ]
    )

    def run_on_function(self, func, context):
        result = apply_patterns_greedily(func, self._frozen)
        self.rewrite_results.append(result)
        return result.changed


# ----------------------------------------------------------------------
# Pipelines
# ----------------------------------------------------------------------


def lowering_pipeline(
    context: Optional[Context] = None, verify_each: bool = False
) -> PassManager:
    """The full progressive-lowering pipeline to the LLVM dialect.

    ``verify_each`` defaults to off, matching a release-mode compiler
    (the compile-time study of §V-B measures the release pipeline).
    """
    pm = PassManager(context or Context(), verify_each=verify_each)
    pm.add(
        LinalgToAffinePass(),
        ExpandAffineMatmulPass(),
        CanonicalizePass(),
        AffineToSCFPass(),
        SCFToLLVMPass(),
        LowerBlasToLLVMPass(),
    )
    return pm


def lower_to_llvm(module: ModuleOp, context: Optional[Context] = None):
    """Lower a module all the way down; returns the pass timing."""
    pm = lowering_pipeline(context)
    return pm.run(module)
