"""Loop distribution (fission).

MET canonicalizes translated code by distributing loops so that each
computational motif sits in its own loop nest — e.g. the
initialization store and the multiply-accumulate reduction of a GEMM
end up in separate nests, which is what the tactic matchers expect.
The engine's mid-level optimizer reuses the same transform to carve
maximal *perfect* sub-bands out of imperfect nests before the
whole-nest vectorizer runs.

Distribution of ``for i { S1; S2 }`` into ``for i { S1 }; for i { S2 }``
is legal when no dependence flows backward (from a later statement
group at iteration k to an earlier group at iteration k' > k).  We use
a conservative test: a pair of accesses to the same buffer from two
groups is harmless if both use the *identical* affine access function
(dependence distance 0); any other may-conflict glues the two groups
together.  Groups that stay glued are merged into a single *contiguous*
segment (preserving statement order) and the remaining segments are
distributed — partial distribution instead of the historical
all-or-nothing test.

Pure scalar ops (constants, index arithmetic, ``affine.apply``) and
loads from buffers the loop body never writes are *rematerializable*:
they do not glue statement groups together and are cloned into each
segment that needs them, so store-forwarded bodies sharing a scalar
subexpression still distribute.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..analysis.accesses import MemoryAccess, collect_accesses
from ..dialects.affine import AffineForOp, AffineLoadOp, AffineStoreOp
from ..ir import FunctionPass, Operation

_CLONABLE = ("std.constant",)

#: Pure scalar ops that may be duplicated into every segment.
_REMAT_OPS = frozenset(
    {
        "std.constant",
        "std.addf",
        "std.subf",
        "std.mulf",
        "std.divf",
        "std.maxf",
        "std.negf",
        "std.cmpf",
        "std.select",
        "std.addi",
        "std.subi",
        "std.muli",
        "std.index_cast",
        "affine.apply",
    }
)

#: Ops whose memory effects we can fully enumerate; a body containing
#: anything else falls back to constants-only rematerialization.
_KNOWN_OPS = _REMAT_OPS | frozenset(
    {
        "affine.for",
        "affine.load",
        "affine.store",
        "affine.yield",
        "std.alloc",
        "std.dealloc",
    }
)


def _written_memref_ids(ops: List[Operation]) -> Set[int]:
    written: Set[int] = set()
    for op in ops:
        for nested in op.walk():
            if isinstance(nested, AffineStoreOp):
                written.add(id(nested.memref))
    return written


def _remat_op_ids(ops: List[Operation]) -> Set[int]:
    """Sibling ops safe to clone per segment instead of gluing groups.

    The set is closed under operand dependencies: an op counts as
    rematerializable only when every sibling-defined operand is itself
    rematerializable — otherwise cloning it would orphan a reference to
    an op that stays anchored in one segment.
    """
    for op in ops:
        for nested in op.walk():
            if nested.name not in _KNOWN_OPS:
                # Unknown effects: only constants are safely clonable.
                return {id(op) for op in ops if op.name in _CLONABLE}
    written = _written_memref_ids(ops)
    sibling_ids = {id(op) for op in ops}
    remat: Set[int] = set()
    for op in ops:  # forward order: defs precede uses within a block
        if op.name in _REMAT_OPS:
            pass
        elif isinstance(op, AffineLoadOp) and id(op.memref) not in written:
            pass
        else:
            continue
        deps_ok = True
        for operand in op.operands:
            def_op = operand.defining_op
            if (
                def_op is not None
                and id(def_op) in sibling_ids
                and id(def_op) not in remat
            ):
                deps_ok = False
                break
        if deps_ok:
            remat.add(id(op))
    return remat


def _statement_groups(ops: List[Operation]) -> List[List[Operation]]:
    """Partition body ops into SSA-connected statement groups.

    Rematerializable ops (constants, pure index/scalar arithmetic,
    loads from read-only buffers) do not glue groups together; they are
    cloned into each segment that uses them.
    """
    remat = _remat_op_ids(ops)
    parent: Dict[int, int] = {}

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        parent[find(i)] = find(j)

    indices = {id(op): i for i, op in enumerate(ops)}
    for i in range(len(ops)):
        parent[i] = i
    for i, op in enumerate(ops):
        if id(op) in remat:
            continue
        for nested in op.walk():
            for result in nested.results:
                for user in result.users:
                    # climb to the sibling at this block level
                    sibling = user
                    while sibling is not None and id(sibling) not in indices:
                        sibling = sibling.parent_op
                    if sibling is not None and id(sibling) not in remat:
                        union(i, indices[id(sibling)])

    groups: Dict[int, List[Operation]] = {}
    order: List[int] = []
    for i, op in enumerate(ops):
        if id(op) in remat:
            continue  # cloned into segments during rewriting
        root = find(i)
        if root not in groups:
            groups[root] = []
            order.append(root)
        groups[root].append(op)
    return [groups[r] for r in order]


def _group_accesses(group: List[Operation]) -> List[MemoryAccess]:
    accesses: List[MemoryAccess] = []
    for op in group:
        accesses.extend(collect_accesses(op))
    return accesses


def _pair_is_safe(a: MemoryAccess, b: MemoryAccess, iv) -> bool:
    """A conflicting pair is safe to distribute across when some
    subscript dimension *pins* the distributed IV: both accesses index
    that dimension by the identical function of ``iv`` alone, so equal
    elements imply equal ``iv`` (dependence distance 0 on this loop).

    A pair that does not use ``iv`` at all on either side conflicts at
    every iteration pair, so it glues the two groups together.
    """
    if a.rank != b.rank:
        return False
    for sa, sb in zip(a.subscripts, b.subscripts):
        coeff = sa.coeff(iv)
        if (
            coeff != 0
            and coeff == sb.coeff(iv)
            and len(sa.coeffs) == 1
            and len(sb.coeffs) == 1
            and sa.constant == sb.constant
        ):
            return True
    return False


def _segments(groups: List[List[Operation]], iv) -> List[List[Operation]]:
    """Merge groups connected by an unsafe conflict into contiguous
    segments (order-preserving partial distribution)."""
    summaries = [_group_accesses(g) for g in groups]
    n = len(groups)
    can_split = [True] * (n - 1)
    for i in range(n):
        for j in range(i + 1, n):
            safe = True
            for a in summaries[i]:
                for b in summaries[j]:
                    if a.memref is not b.memref:
                        continue
                    if not (a.is_write or b.is_write):
                        continue
                    if not _pair_is_safe(a, b, iv):
                        safe = False
                        break
                if not safe:
                    break
            if not safe:
                for k in range(i, j):
                    can_split[k] = False
    segments: List[List[Operation]] = [list(groups[0])]
    for idx in range(1, n):
        if can_split[idx - 1]:
            segments.append([])
        segments[-1].extend(groups[idx])
    return segments


def _remat_closure(
    anchors: List[Operation], body_ops: List[Operation], remat: Set[int]
) -> Set[int]:
    """Rematerializable sibling ops an anchor set depends on
    (transitively)."""
    by_id = {id(op): op for op in body_ops}
    needed: Set[int] = set()
    work = list(anchors)
    while work:
        op = work.pop()
        for nested in op.walk():
            for operand in nested.operands:
                def_op = operand.defining_op
                if (
                    def_op is not None
                    and id(def_op) in remat
                    and id(def_op) in by_id
                    and id(def_op) not in needed
                ):
                    needed.add(id(def_op))
                    work.append(def_op)
    return needed


def _distribute_one(loop: AffineForOp) -> bool:
    """Split ``loop`` into one copy per distributable segment.  Returns
    True if the loop was rewritten."""
    body_ops = loop.ops_in_body()
    groups = _statement_groups(body_ops)
    if len(groups) <= 1:
        return False
    segments = _segments(groups, loop.induction_var)
    if len(segments) <= 1:
        return False
    remat = _remat_op_ids(body_ops)

    parent_block = loop.parent_block
    position = parent_block.operations.index(loop)
    new_loops: List[AffineForOp] = []
    for segment in segments:
        members = {id(op) for op in segment}
        members |= _remat_closure(segment, body_ops, remat)
        clone_map: Dict = {}
        new_loop = AffineForOp.create(
            loop.lower_bound_map,
            loop.upper_bound_map,
            loop.step,
            loop.lb_operands,
            loop.ub_operands,
        )
        clone_map[loop.induction_var] = new_loop.induction_var
        insert_at = len(new_loop.body.operations) - 1  # before the yield
        # Emit in original body order so remat defs precede their users.
        for op in body_ops:
            if id(op) not in members:
                continue
            new_loop.body.insert(insert_at, op.clone(clone_map))
            insert_at += 1
        new_loops.append(new_loop)

    for offset, new_loop in enumerate(new_loops):
        parent_block.insert(position + 1 + offset, new_loop)
    loop.drop_all_references()
    # Detach nested ops' uses then erase the original loop wholesale.
    for op in list(loop.body.operations):
        op.drop_all_references()
    parent_block.remove(loop)
    return True


def distribute_loops(root: Operation) -> int:
    """Recursively distribute every distributable loop under ``root``.

    Returns the number of loops that were split.
    """
    num_split = 0
    changed = True
    while changed:
        changed = False
        for op in list(root.walk()):
            if not isinstance(op, AffineForOp):
                continue
            if op.parent_block is None:
                continue
            attached = op
            while attached is not None and attached is not root:
                attached = attached.parent_op
            if attached is None and op is not root:
                continue
            if _distribute_one(op):
                num_split += 1
                changed = True
                break
    return num_split


class LoopDistributionPass(FunctionPass):
    name = "affine-loop-distribution"

    def run_on_function(self, func, context):
        return distribute_loops(func)
