"""Loop distribution (fission).

MET canonicalizes translated code by distributing loops so that each
computational motif sits in its own loop nest — e.g. the
initialization store and the multiply-accumulate reduction of a GEMM
end up in separate nests, which is what the tactic matchers expect.

Distribution of ``for i { S1; S2 }`` into ``for i { S1 }; for i { S2 }``
is legal when no dependence flows backward (from a later statement
group at iteration k to an earlier group at iteration k' > k).  We use
a conservative test: a pair of accesses to the same buffer from two
groups is harmless if both use the *identical* affine access function
(dependence distance 0); any other may-conflict blocks distribution of
that loop.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.accesses import MemoryAccess, collect_accesses
from ..dialects.affine import AffineForOp
from ..ir import FunctionPass, Operation

_CLONABLE = ("std.constant",)


def _statement_groups(ops: List[Operation]) -> List[List[Operation]]:
    """Partition body ops into SSA-connected statement groups.

    Cheap rematerializable ops (constants) do not glue groups together;
    they are cloned into each group that uses them.
    """
    parent: Dict[int, int] = {}

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        parent[find(i)] = find(j)

    indices = {id(op): i for i, op in enumerate(ops)}
    for i in range(len(ops)):
        parent[i] = i
    for i, op in enumerate(ops):
        if op.name in _CLONABLE:
            continue
        for nested in op.walk():
            for result in nested.results:
                for user in result.users:
                    # climb to the sibling at this block level
                    sibling = user
                    while sibling is not None and id(sibling) not in indices:
                        sibling = sibling.parent_op
                    if sibling is not None and sibling.name not in _CLONABLE:
                        union(i, indices[id(sibling)])

    groups: Dict[int, List[Operation]] = {}
    order: List[int] = []
    for i, op in enumerate(ops):
        if op.name in _CLONABLE and not any(
            use.owner for r in op.results for use in r.uses
        ):
            continue
        root = find(i)
        if op.name in _CLONABLE:
            continue  # constants assigned to groups during cloning
        if root not in groups:
            groups[root] = []
            order.append(root)
        groups[root].append(op)
    return [groups[r] for r in order]


def _group_accesses(group: List[Operation]) -> List[MemoryAccess]:
    accesses: List[MemoryAccess] = []
    for op in group:
        accesses.extend(collect_accesses(op))
    return accesses


def _pair_is_safe(a: MemoryAccess, b: MemoryAccess, iv) -> bool:
    """A conflicting pair is safe to distribute across when some
    subscript dimension *pins* the distributed IV: both accesses index
    that dimension by the identical function of ``iv`` alone, so equal
    elements imply equal ``iv`` (dependence distance 0 on this loop).

    A pair that does not use ``iv`` at all on either side conflicts at
    every iteration pair, so it blocks distribution.
    """
    if a.rank != b.rank:
        return False
    for sa, sb in zip(a.subscripts, b.subscripts):
        coeff = sa.coeff(iv)
        if (
            coeff != 0
            and coeff == sb.coeff(iv)
            and len(sa.coeffs) == 1
            and len(sb.coeffs) == 1
            and sa.constant == sb.constant
        ):
            return True
    return False


def _distribution_is_legal(groups: List[List[Operation]], iv) -> bool:
    summaries = [_group_accesses(g) for g in groups]
    for i in range(len(groups)):
        for j in range(i + 1, len(groups)):
            for a in summaries[i]:
                for b in summaries[j]:
                    if a.memref is not b.memref:
                        continue
                    if not (a.is_write or b.is_write):
                        continue
                    if not _pair_is_safe(a, b, iv):
                        return False
    return True


def _distribute_one(loop: AffineForOp) -> bool:
    """Split ``loop`` into one copy per statement group.  Returns True
    if the loop was rewritten."""
    body_ops = loop.ops_in_body()
    groups = _statement_groups(body_ops)
    if len(groups) <= 1:
        return False
    if not _distribution_is_legal(groups, loop.induction_var):
        return False

    parent_block = loop.parent_block
    position = parent_block.operations.index(loop)
    new_loops: List[AffineForOp] = []
    for group in groups:
        clone_map: Dict = {}
        new_loop = AffineForOp.create(
            loop.lower_bound_map,
            loop.upper_bound_map,
            loop.step,
            loop.lb_operands,
            loop.ub_operands,
        )
        clone_map[loop.induction_var] = new_loop.induction_var
        insert_at = len(new_loop.body.operations) - 1  # before the yield
        for op in group:
            for operand in _external_clonables(op, body_ops):
                if operand not in clone_map:
                    cloned_const = operand.defining_op.clone({})
                    new_loop.body.insert(insert_at, cloned_const)
                    insert_at += 1
                    clone_map[operand] = cloned_const.results[operand.index]
            new_loop.body.insert(insert_at, op.clone(clone_map))
            insert_at += 1
        new_loops.append(new_loop)

    for offset, new_loop in enumerate(new_loops):
        parent_block.insert(position + 1 + offset, new_loop)
    loop.drop_all_references()
    # Detach nested ops' uses then erase the original loop wholesale.
    for op in list(loop.body.operations):
        op.drop_all_references()
    parent_block.remove(loop)
    return True


def _external_clonables(op: Operation, body_ops: List[Operation]) -> List:
    """Constant results defined in this body but belonging to no group."""
    body_ids = {id(b) for b in body_ops}
    found = []
    for nested in op.walk():
        for operand in nested.operands:
            def_op = operand.defining_op
            if (
                def_op is not None
                and def_op.name in _CLONABLE
                and id(def_op) in body_ids
                and operand not in found
            ):
                found.append(operand)
    return found


def distribute_loops(root: Operation) -> int:
    """Recursively distribute every distributable loop under ``root``.

    Returns the number of loops that were split.
    """
    num_split = 0
    changed = True
    while changed:
        changed = False
        for op in list(root.walk()):
            if not isinstance(op, AffineForOp):
                continue
            if op.parent_block is None:
                continue
            attached = op
            while attached is not None and attached is not root:
                attached = attached.parent_op
            if attached is None and op is not root:
                continue
            if _distribute_one(op):
                num_split += 1
                changed = True
                break
    return num_split


class LoopDistributionPass(FunctionPass):
    name = "affine-loop-distribution"

    def run_on_function(self, func, context):
        return distribute_loops(func)
