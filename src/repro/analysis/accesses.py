"""Memory-access analysis for affine IR.

Represents each ``affine.load``/``affine.store`` as an affine function
*of the enclosing induction variables* (by SSA identity, not by map dim
position), which makes accesses from different statements directly
comparable — the basis for dependence tests, matcher access patterns
and the locality model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..dialects.affine import (
    AffineForOp,
    AffineLoadOp,
    AffineStoreOp,
)
from ..ir import Operation, Value


class AccessFunction:
    """One subscript as ``sum(coeff_v * v) + constant`` over IV values."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Dict[Value, int], constant: int):
        self.coeffs = {v: c for v, c in coeffs.items() if c != 0}
        self.constant = constant

    def coeff(self, iv: Value) -> int:
        return self.coeffs.get(iv, 0)

    def is_constant(self) -> bool:
        return not self.coeffs

    def same_function(self, other: "AccessFunction") -> bool:
        return self.coeffs == other.coeffs and self.constant == other.constant

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AccessFunction) and self.same_function(other)

    def __hash__(self) -> int:
        return hash(
            (frozenset((id(v), c) for v, c in self.coeffs.items()), self.constant)
        )

    def __repr__(self) -> str:
        terms = [f"{c}*iv@{id(v) % 1000}" for v, c in self.coeffs.items()]
        terms.append(str(self.constant))
        return "+".join(terms)


class MemoryAccess:
    """An affine load or store, decomposed per subscript."""

    def __init__(
        self,
        op: Operation,
        memref: Value,
        is_write: bool,
        subscripts: List[AccessFunction],
    ):
        self.op = op
        self.memref = memref
        self.is_write = is_write
        self.subscripts = subscripts

    @property
    def rank(self) -> int:
        return len(self.subscripts)

    def same_element(self, other: "MemoryAccess") -> bool:
        """True when both accesses always touch the same element in any
        common iteration (identical access functions)."""
        if self.memref is not other.memref or self.rank != other.rank:
            return False
        return all(
            a.same_function(b) for a, b in zip(self.subscripts, other.subscripts)
        )

    def ivs_used(self) -> List[Value]:
        ivs: List[Value] = []
        for sub in self.subscripts:
            for iv in sub.coeffs:
                if iv not in ivs:
                    ivs.append(iv)
        return ivs

    def __repr__(self) -> str:
        kind = "W" if self.is_write else "R"
        return f"<{kind} {self.subscripts}>"


def access_function(op: Operation) -> Optional[MemoryAccess]:
    """Decompose an affine access op; ``None`` for non-access ops or
    non-linear (mod/div) access maps."""
    if isinstance(op, AffineLoadOp):
        is_write = False
    elif isinstance(op, AffineStoreOp):
        is_write = True
    else:
        return None
    map_ = op.map
    operands = op.indices
    subscripts: List[AccessFunction] = []
    for expr in map_.results:
        linear = expr.as_linear()
        if linear is None:
            return None
        coeffs: Dict[Value, int] = {}
        for pos, coeff in linear.dim_coeffs.items():
            value = operands[pos]
            coeffs[value] = coeffs.get(value, 0) + coeff
        subscripts.append(AccessFunction(coeffs, linear.constant))
    return MemoryAccess(op, op.memref, is_write, subscripts)


def collect_accesses(root: Operation) -> List[MemoryAccess]:
    """All affine accesses under ``root`` (pre-order)."""
    accesses = []
    for op in root.walk():
        access = access_function(op)
        if access is not None:
            accesses.append(access)
    return accesses


def enclosing_loops(op: Operation) -> List[AffineForOp]:
    """Affine loops surrounding ``op``, outermost first."""
    loops: List[AffineForOp] = []
    parent = op.parent_op
    while parent is not None:
        if isinstance(parent, AffineForOp):
            loops.append(parent)
        parent = parent.parent_op
    loops.reverse()
    return loops


def written_memrefs(root: Operation) -> List[Value]:
    out: List[Value] = []
    for access in collect_accesses(root):
        if access.is_write and access.memref not in out:
            out.append(access.memref)
    return out


def read_memrefs(root: Operation) -> List[Value]:
    out: List[Value] = []
    for access in collect_accesses(root):
        if not access.is_write and access.memref not in out:
            out.append(access.memref)
    return out
