"""IR analyses shared by transforms, matchers, and the cost model."""

from .accesses import (  # noqa: F401
    AccessFunction,
    MemoryAccess,
    access_function,
    collect_accesses,
    enclosing_loops,
)
