"""The differential pipeline-stage oracle.

For a given kernel the oracle runs each Figure-9 pipeline *stage by
stage*, and after every stage checks the module snapshot three ways:

1. **verifier** — the IR must still verify;
2. **round-trip** — printing, reparsing, and reprinting must reach a
   fixpoint (printer/parser stay in sync at every abstraction level);
3. **execution** — the interpreter must produce numerically identical
   output buffers to the stage-0 (MET output) reference, up to a small
   float tolerance for reassociated contractions;
4. **engine-diff** — the compiled :class:`ExecutionEngine` must agree
   with the interpreter on the same snapshot (reported as a separate
   ``engine-diff:<stage>`` result; disable with ``check_engine=False``
   or ``mlt-fuzz --no-engine-diff``);
5. **vectorize-diff** — the engine compiled with whole-nest
   vectorization (``vectorize="nest"``) and with vectorization fully
   disabled (``vectorize="none"``, plain scalar loops) must agree with
   each other and with the interpreter on the same snapshot (reported
   as ``vectorize-diff:<stage>``; disable with
   ``check_vectorize=False`` or ``mlt-fuzz --no-vectorize-diff``);
6. **opt-diff** — the engine compiled with the mid-level loop
   optimizer fully enabled (``opt_mode="full"``) and disabled
   (``opt_mode="none"``) must agree with each other and with the
   interpreter on the same snapshot (reported as
   ``opt-diff:<stage>``; disable with ``check_opt=False`` or
   ``mlt-fuzz --no-opt-diff``);
7. **driver-diff** — the worklist and snapshot greedy pattern drivers
   must produce byte-identical printed IR for the whole pipeline
   (:func:`check_driver_equivalence`; disable with
   ``check_drivers=False`` or ``mlt-fuzz --no-driver-diff``);
8. **incremental-diff** — compiling through the function-granular
   pass-result cache (cold, then fully warm) must produce printed IR
   byte-identical to a from-scratch run after *every* pass of the
   pipeline (:func:`check_incremental_equivalence`; disable with
   ``check_incremental=False`` or ``mlt-fuzz --no-incremental-diff``).
   This is the oracle that makes the pass cache's verify-skipping
   sound: correctness is continuously re-earned, not assumed.

A stage that raises, fails verification, breaks the round-trip, or
diverges numerically produces a :class:`StageResult` failure; the
campaign then hands the kernel to the bisector and reducer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir import Context, ModuleOp, Pass, VerificationError, print_module, verify
from ..ir.parser import parse_module
from ..met import compile_c

#: (pass-name, zero-arg factory) — fresh pass instances per replay.
PassSpec = Tuple[str, Callable[[], Pass]]


@dataclass
class PipelineStage:
    name: str
    passes: List[PassSpec] = field(default_factory=list)


@dataclass
class Pipeline:
    name: str
    stages: List[PipelineStage] = field(default_factory=list)

    def flat_passes(self) -> List[Tuple[str, str, Callable[[], Pass]]]:
        """(stage name, pass name, factory) for every pass in order."""
        return [
            (stage.name, pass_name, factory)
            for stage in self.stages
            for pass_name, factory in stage.passes
        ]


def build_pipelines(fuzz_tile_size: int = 3) -> Dict[str, Pipeline]:
    """The Figure-9 flows, staged for differential checking.

    ``fuzz_tile_size`` is deliberately tiny so the tiling pass actually
    fires on the small extents the generators emit (the production
    default of 32 would be a silent no-op).
    """
    from ..tactics.raising import RaiseAffineToAffinePass, RaiseAffineToLinalgPass
    from ..transforms import (
        AffineToSCFPass,
        CanonicalizePass,
        ExpandAffineMatmulPass,
        LinalgToAffinePass,
        LinalgToBlasPass,
        LoopDistributionPass,
        SCFToLLVMPass,
        TileLoopNestPass,
    )

    canonical = PipelineStage(
        "distribute-canonicalize",
        [
            ("affine-loop-distribution", LoopDistributionPass),
            ("canonicalize", CanonicalizePass),
        ],
    )

    def met_stage() -> PipelineStage:
        return PipelineStage("met", [])

    return {
        "mlt-linalg": Pipeline(
            "mlt-linalg",
            [
                met_stage(),
                canonical,
                PipelineStage(
                    "raise-linalg",
                    [("raise-affine-to-linalg", RaiseAffineToLinalgPass)],
                ),
                PipelineStage(
                    "tile-lower",
                    [
                        ("convert-linalg-to-affine-loops", LinalgToAffinePass),
                        (
                            "affine-loop-tile",
                            lambda: TileLoopNestPass(fuzz_tile_size),
                        ),
                    ],
                ),
            ],
        ),
        "mlt-blas": Pipeline(
            "mlt-blas",
            [
                met_stage(),
                canonical,
                PipelineStage(
                    "raise-linalg",
                    [("raise-affine-to-linalg", RaiseAffineToLinalgPass)],
                ),
                PipelineStage(
                    "blas-substitution",
                    [("convert-linalg-to-blas", LinalgToBlasPass)],
                ),
            ],
        ),
        "mlt-synth": Pipeline(
            "mlt-synth",
            [
                met_stage(),
                canonical,
                PipelineStage(
                    "raise-synth",
                    [
                        (
                            "raise-affine-to-linalg",
                            lambda: RaiseAffineToLinalgPass(
                                raise_mode="tdl+synth"
                            ),
                        )
                    ],
                ),
                PipelineStage(
                    "lower-loops",
                    [("convert-linalg-to-affine-loops", LinalgToAffinePass)],
                ),
            ],
        ),
        "mlt-affine": Pipeline(
            "mlt-affine",
            [
                met_stage(),
                canonical,
                PipelineStage(
                    "raise-affine",
                    [("raise-affine-to-affine", RaiseAffineToAffinePass)],
                ),
                PipelineStage(
                    "expand-matmul",
                    [("affine-expand-matmul", ExpandAffineMatmulPass)],
                ),
                PipelineStage(
                    "lower-llvm",
                    [
                        ("lower-affine", AffineToSCFPass),
                        ("convert-scf-to-llvm", SCFToLLVMPass),
                    ],
                ),
            ],
        ),
    }


DEFAULT_PIPELINES: Tuple[str, ...] = (
    "mlt-linalg",
    "mlt-blas",
    "mlt-synth",
    "mlt-affine",
)


# ----------------------------------------------------------------------
# Per-snapshot checks
# ----------------------------------------------------------------------


@dataclass
class StageResult:
    stage: str
    ok: bool
    # ok | crash | verify | roundtrip | execute | diff | engine |
    # engine-diff | vectorize | vectorize-diff | opt | opt-diff |
    # driver-diff
    kind: str = "ok"
    detail: str = ""
    ir_text: str = ""


@dataclass
class OracleReport:
    pipeline: str
    func_name: str
    stages: List[StageResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.stages)

    @property
    def first_failure(self) -> Optional[StageResult]:
        for stage in self.stages:
            if not stage.ok:
                return stage
        return None

    def summary(self) -> str:
        if self.ok:
            return f"{self.pipeline}: ok ({len(self.stages)} stages)"
        failure = self.first_failure
        return (
            f"{self.pipeline}: FAIL at stage '{failure.stage}' "
            f"[{failure.kind}] {failure.detail}"
        )


def make_args(
    shapes: Sequence[Tuple[int, ...]], seed: int
) -> List[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [
        rng.random(shape, dtype=np.float32) * 0.5 for shape in shapes
    ]


def module_arg_shapes(module: ModuleOp, func_name: str) -> List[Tuple[int, ...]]:
    func = module.lookup(func_name)
    if func is None:
        raise ValueError(f"no function @{func_name} in module")
    return [tuple(arg.type.shape) for arg in func.arguments]


def execute_snapshot(
    module: ModuleOp,
    func_name: str,
    base_args: Sequence[np.ndarray],
    max_steps: int = 20_000_000,
) -> List[np.ndarray]:
    from ..execution import Interpreter

    args = [a.copy() for a in base_args]
    Interpreter(module, max_steps=max_steps).run(func_name, *args)
    return args


def _diff_detail(
    reference: Sequence[np.ndarray], actual: Sequence[np.ndarray], rtol: float
) -> str:
    parts = []
    for pos, (ref, act) in enumerate(zip(reference, actual)):
        if not np.allclose(ref, act, rtol=rtol, atol=1e-5):
            err = float(np.max(np.abs(ref - act)))
            bad = int(np.sum(~np.isclose(ref, act, rtol=rtol, atol=1e-5)))
            parts.append(
                f"arg {pos}: {bad}/{ref.size} elements differ, "
                f"max abs error {err:.3e}"
            )
    return "; ".join(parts)


def check_module(
    module: ModuleOp,
    func_name: str,
    base_args: Sequence[np.ndarray],
    reference: Optional[Sequence[np.ndarray]],
    stage_name: str,
    rtol: float = 2e-3,
    max_steps: int = 20_000_000,
) -> Tuple[StageResult, Optional[List[np.ndarray]]]:
    """Verify + round-trip + execute one snapshot.

    Returns the stage result and, on success, the snapshot's output
    buffers (the reference when ``reference`` is None).
    """
    try:
        verify(module, Context())
    except VerificationError as exc:
        return StageResult(stage_name, False, "verify", str(exc)), None
    except Exception as exc:
        return StageResult(stage_name, False, "crash", f"verifier: {exc}"), None
    try:
        text = print_module(module)
    except Exception as exc:
        return StageResult(stage_name, False, "crash", f"printer: {exc}"), None
    try:
        reparsed = parse_module(text)
        verify(reparsed, Context())
        text2 = print_module(reparsed)
        if text2 != text:
            return (
                StageResult(
                    stage_name,
                    False,
                    "roundtrip",
                    "print->parse->print is not a fixpoint",
                    text,
                ),
                None,
            )
    except Exception as exc:
        return (
            StageResult(stage_name, False, "roundtrip", str(exc), text),
            None,
        )
    try:
        outputs = execute_snapshot(module, func_name, base_args, max_steps)
    except Exception as exc:
        return (
            StageResult(stage_name, False, "execute", str(exc), text),
            None,
        )
    if reference is not None:
        detail = _diff_detail(reference, outputs, rtol)
        if detail:
            return (
                StageResult(stage_name, False, "diff", detail, text),
                None,
            )
    return StageResult(stage_name, True, "ok", "", text), outputs


def check_engine_module(
    module: ModuleOp,
    func_name: str,
    base_args: Sequence[np.ndarray],
    interpreter_outputs: Sequence[np.ndarray],
    stage_name: str,
    pipeline_name: str = "",
    rtol: float = 2e-3,
    ir_text: str = "",
) -> StageResult:
    """Cross-check the compiled engine against the interpreter.

    Runs the snapshot through :class:`ExecutionEngine` on a fresh copy
    of ``base_args`` and diffs its output buffers against the
    *interpreter's* outputs for the same snapshot — the backends must
    agree at every pipeline stage, not just at the end.
    """
    from ..execution import ExecutionEngine

    result_name = f"engine-diff:{stage_name}"
    try:
        args = [a.copy() for a in base_args]
        engine = ExecutionEngine(
            module, pipeline=f"{pipeline_name}:{stage_name}"
        )
        engine.run(func_name, *args)
    except Exception as exc:
        return StageResult(result_name, False, "engine", str(exc), ir_text)
    detail = _diff_detail(interpreter_outputs, args, rtol)
    if detail:
        return StageResult(
            result_name, False, "engine-diff", detail, ir_text
        )
    return StageResult(result_name, True, "ok", "", ir_text)


def check_vectorize_module(
    module: ModuleOp,
    func_name: str,
    base_args: Sequence[np.ndarray],
    interpreter_outputs: Sequence[np.ndarray],
    stage_name: str,
    pipeline_name: str = "",
    rtol: float = 2e-3,
    ir_text: str = "",
) -> StageResult:
    """Cross-check the engine's vectorizer against its own scalar mode.

    Compiles the snapshot twice — once with whole-nest vectorization
    (``vectorize="nest"``, the production default) and once with
    vectorization fully disabled (``vectorize="none"``, plain scalar
    Python loops) — and requires both to match the interpreter and each
    other within ``rtol``.  Bit-for-bit equality is deliberately not
    required: collapsing a reduction loop to ``sum``/``einsum``
    reassociates f32 adds, which is the same tolerance the execution
    oracle already grants raised pipelines.
    """
    from ..execution import ExecutionEngine

    result_name = f"vectorize-diff:{stage_name}"
    outputs: Dict[str, List[np.ndarray]] = {}
    for mode in ("none", "nest"):
        try:
            args = [a.copy() for a in base_args]
            engine = ExecutionEngine(
                module,
                pipeline=f"{pipeline_name}:{stage_name}",
                vectorize=mode,
            )
            engine.run(func_name, *args)
        except Exception as exc:
            return StageResult(
                result_name,
                False,
                "vectorize",
                f"mode={mode}: {exc}",
                ir_text,
            )
        outputs[mode] = args
    for mode in ("none", "nest"):
        detail = _diff_detail(interpreter_outputs, outputs[mode], rtol)
        if detail:
            return StageResult(
                result_name,
                False,
                "vectorize-diff",
                f"mode={mode} vs interpreter: {detail}",
                ir_text,
            )
    detail = _diff_detail(outputs["none"], outputs["nest"], rtol)
    if detail:
        return StageResult(
            result_name,
            False,
            "vectorize-diff",
            f"none vs nest: {detail}",
            ir_text,
        )
    return StageResult(result_name, True, "ok", "", ir_text)


def check_opt_module(
    module: ModuleOp,
    func_name: str,
    base_args: Sequence[np.ndarray],
    interpreter_outputs: Sequence[np.ndarray],
    stage_name: str,
    pipeline_name: str = "",
    rtol: float = 2e-3,
    ir_text: str = "",
    bail_sink: Optional[Dict[str, Dict[str, int]]] = None,
) -> StageResult:
    """Cross-check the mid-level optimizer against the plain engine.

    Compiles the snapshot twice — once with the optimizer disabled
    (``opt_mode="none"``) and once with the full pipeline
    (``opt_mode="full"``: fusion, copy-elim/DCE, distribution,
    cache-blocking tiling) — and requires both to match the interpreter
    and each other within ``rtol``.  When ``bail_sink`` is given, each
    engine's ``vectorize_stats["bail_reasons"]`` taxonomy is accumulated
    under its opt mode, so a campaign can report how many vectorizer
    bails the optimizer eliminated across the whole corpus.
    """
    from ..execution import ExecutionEngine

    result_name = f"opt-diff:{stage_name}"
    outputs: Dict[str, List[np.ndarray]] = {}
    for mode in ("none", "full"):
        try:
            args = [a.copy() for a in base_args]
            engine = ExecutionEngine(
                module,
                pipeline=f"{pipeline_name}:{stage_name}",
                opt_mode=mode,
            )
            engine.run(func_name, *args)
        except Exception as exc:
            return StageResult(
                result_name, False, "opt", f"opt={mode}: {exc}", ir_text
            )
        outputs[mode] = args
        if bail_sink is not None:
            stats = engine.vectorize_stats or {}
            sink = bail_sink.setdefault(mode, {})
            for reason, count in (stats.get("bail_reasons") or {}).items():
                sink[reason] = sink.get(reason, 0) + count
    for mode in ("none", "full"):
        detail = _diff_detail(interpreter_outputs, outputs[mode], rtol)
        if detail:
            return StageResult(
                result_name,
                False,
                "opt-diff",
                f"opt={mode} vs interpreter: {detail}",
                ir_text,
            )
    detail = _diff_detail(outputs["none"], outputs["full"], rtol)
    if detail:
        return StageResult(
            result_name,
            False,
            "opt-diff",
            f"none vs full: {detail}",
            ir_text,
        )
    return StageResult(result_name, True, "ok", "", ir_text)


def check_schedule_module(
    module: ModuleOp,
    func_name: str,
    base_args: Sequence[np.ndarray],
    interpreter_outputs: Sequence[np.ndarray],
    stage_name: str,
    pipeline_name: str = "",
    rtol: float = 2e-3,
    ir_text: str = "",
    seed: int = 0,
    max_steps: int = 20_000_000,
    trials: int = 2,
) -> StageResult:
    """Cross-check random transform-dialect schedules against the
    unscheduled payload.

    Draws ``trials`` random legal schedules (deterministic in
    ``seed``/``stage_name``), applies each to a clone of the snapshot
    through the scheduling interpreter, executes the scheduled clone on
    the IR interpreter, and requires the outputs to match the
    unscheduled interpreter run within ``rtol``.  Every schedule step
    re-checks its own legality, so *any* divergence is a transform bug
    — this is the oracle that keeps the autotuner's whole search space
    honest, not just the canned pipelines.
    """
    import random

    from ..execution import Interpreter
    from ..scheduling.interpreter import apply_schedule, random_schedule

    result_name = f"schedule-diff:{stage_name}"
    for trial in range(trials):
        rng = random.Random(f"{seed}:{pipeline_name}:{stage_name}:{trial}")
        schedule = random_schedule(rng)
        schedule_text = print_module(schedule)
        try:
            clone = module.clone()
            apply_schedule(schedule, clone)
            args = [a.copy() for a in base_args]
            Interpreter(clone, max_steps=max_steps).run(func_name, *args)
        except Exception as exc:
            return StageResult(
                result_name,
                False,
                "schedule",
                f"trial={trial}: {exc} | schedule: {schedule_text}",
                ir_text,
            )
        detail = _diff_detail(interpreter_outputs, args, rtol)
        if detail:
            return StageResult(
                result_name,
                False,
                "schedule-diff",
                f"trial={trial} vs unscheduled: {detail} | "
                f"schedule: {schedule_text}",
                ir_text,
            )
    return StageResult(result_name, True, "ok", "", ir_text)


def check_driver_equivalence(
    module: ModuleOp, pipeline: Pipeline
) -> StageResult:
    """Cross-check the two greedy pattern drivers on one pipeline.

    Runs every pass of ``pipeline`` over independent clones of
    ``module``, once under the worklist driver and once under the
    reference snapshot driver, and requires the final printed IR to be
    byte-identical.  A pipeline crash is folded into the comparison
    (both drivers must crash with the same error text), so the check
    also catches a driver that diverges by raising.
    """
    import difflib

    from ..ir import DRIVERS, pattern_driver

    result_name = f"driver-diff:{pipeline.name}"
    texts: Dict[str, str] = {}
    for driver in DRIVERS:
        clone = module.clone()
        try:
            with pattern_driver(driver):
                for _, _, factory in pipeline.flat_passes():
                    factory().run(clone, Context())
            texts[driver] = print_module(clone)
        except Exception as exc:
            texts[driver] = f"<{driver} crashed: {type(exc).__name__}: {exc}>"
    reference_driver, *other_drivers = DRIVERS
    reference_text = texts[reference_driver]
    for driver in other_drivers:
        if texts[driver] == reference_text:
            continue
        diff = list(
            difflib.unified_diff(
                reference_text.splitlines(),
                texts[driver].splitlines(),
                fromfile=reference_driver,
                tofile=driver,
                lineterm="",
                n=2,
            )
        )
        detail = "drivers disagree: " + " | ".join(diff[:12])
        return StageResult(
            result_name, False, "driver-diff", detail, reference_text
        )
    return StageResult(result_name, True, "ok", "", reference_text)


def check_incremental_equivalence(
    module: ModuleOp, pipeline: Pipeline
) -> StageResult:
    """Cross-check incremental (pass-cached) compilation vs scratch.

    Runs every pass of ``pipeline`` three times over independent clones
    of ``module`` — from scratch (no pass cache), cold through a fresh
    :class:`~repro.ir.pass_cache.PassResultCache`, and warm through the
    now-populated cache (every cacheable pass result replays without
    executing) — and requires the printed IR to be byte-identical after
    *every single pass*.  A crash is folded into the comparison like
    ``driver-diff`` does: all three runs must crash at the same pass
    with the same error, so a cache path that diverges by raising (or
    by *not* raising) is caught too.

    Diffing at pass granularity means a failure directly names the
    first pass whose cached replay diverged — the bisection is built
    into the check.
    """
    import difflib

    from ..ir import PassManager, PassResultCache

    result_name = f"incremental-diff:{pipeline.name}"
    passes = pipeline.flat_passes()

    def snapshots(cache) -> List[str]:
        target = module.clone()
        snaps: List[str] = []
        for _, pass_name, factory in passes:
            pm = PassManager(
                Context(), verify_each=False, pass_cache=cache
            )
            pm.add(factory())
            try:
                pm.run(target)
                snaps.append(print_module(target))
            except Exception as exc:
                snaps.append(
                    f"<{pass_name} raised {type(exc).__name__}: {exc}>"
                )
                break
        return snaps

    reference = snapshots(None)
    final_text = reference[-1] if reference else ""
    cache = PassResultCache()
    for label in ("cold", "warm"):
        actual = snapshots(cache)
        for index in range(max(len(reference), len(actual))):
            ref = reference[index] if index < len(reference) else "<missing>"
            act = actual[index] if index < len(actual) else "<missing>"
            if ref == act:
                continue
            _, pass_name, _ = passes[min(index, len(passes) - 1)]
            diff = list(
                difflib.unified_diff(
                    ref.splitlines(),
                    act.splitlines(),
                    fromfile="scratch",
                    tofile=f"incremental-{label}",
                    lineterm="",
                    n=2,
                )
            )
            detail = (
                f"{label} cache run diverges at pass {index + 1}/"
                f"{len(passes)} '{pass_name}': " + " | ".join(diff[:12])
            )
            return StageResult(
                result_name, False, "incremental-diff", detail, final_text
            )
    return StageResult(result_name, True, "ok", "", final_text)


# ----------------------------------------------------------------------
# Oracle drivers
# ----------------------------------------------------------------------


def run_oracle(
    source: str,
    pipeline: Pipeline,
    func_name: str,
    seed: int = 0,
    rtol: float = 2e-3,
    max_steps: int = 20_000_000,
    check_engine: bool = True,
    check_vectorize: bool = True,
    check_opt: bool = True,
    check_schedule: bool = True,
    bail_sink: Optional[Dict[str, Dict[str, int]]] = None,
) -> OracleReport:
    """Differentially test one C kernel against one pipeline."""
    report = OracleReport(pipeline.name, func_name)
    try:
        # Distribution is a checked stage of its own, not a frontend
        # side effect, so enter undistributed.
        module = compile_c(source, distribute=False)
    except Exception as exc:
        report.stages.append(
            StageResult("met", False, "crash", f"frontend: {exc}")
        )
        return report
    return _drive_stages(
        report, module, pipeline, func_name, seed, rtol, max_steps,
        check_engine=check_engine, check_vectorize=check_vectorize,
        check_opt=check_opt, check_schedule=check_schedule,
        bail_sink=bail_sink,
    )


def run_oracle_on_module(
    module: ModuleOp,
    pipeline: Pipeline,
    func_name: str,
    seed: int = 0,
    rtol: float = 2e-3,
    max_steps: int = 20_000_000,
    check_engine: bool = True,
    check_vectorize: bool = True,
    check_opt: bool = True,
    check_schedule: bool = True,
    bail_sink: Optional[Dict[str, Dict[str, int]]] = None,
) -> OracleReport:
    """Differentially test a builder-constructed module (skips MET)."""
    report = OracleReport(pipeline.name, func_name)
    return _drive_stages(
        report, module.clone(), pipeline, func_name, seed, rtol, max_steps,
        check_engine=check_engine, check_vectorize=check_vectorize,
        check_opt=check_opt, check_schedule=check_schedule,
        bail_sink=bail_sink,
    )


def _drive_stages(
    report: OracleReport,
    module: ModuleOp,
    pipeline: Pipeline,
    func_name: str,
    seed: int,
    rtol: float,
    max_steps: int,
    check_engine: bool = True,
    check_vectorize: bool = True,
    check_opt: bool = True,
    check_schedule: bool = True,
    bail_sink: Optional[Dict[str, Dict[str, int]]] = None,
) -> OracleReport:
    shapes = module_arg_shapes(module, func_name)
    base_args = make_args(shapes, seed)
    reference: Optional[List[np.ndarray]] = None
    for stage in pipeline.stages:
        try:
            for _, factory in stage.passes:
                factory().run(module, Context())
        except Exception as exc:
            report.stages.append(
                StageResult(stage.name, False, "crash", str(exc))
            )
            return report
        result, outputs = check_module(
            module,
            func_name,
            base_args,
            reference,
            stage.name,
            rtol=rtol,
            max_steps=max_steps,
        )
        report.stages.append(result)
        if not result.ok:
            return report
        if check_engine:
            engine_result = check_engine_module(
                module,
                func_name,
                base_args,
                outputs,
                stage.name,
                pipeline_name=pipeline.name,
                rtol=rtol,
                ir_text=result.ir_text,
            )
            report.stages.append(engine_result)
            if not engine_result.ok:
                return report
        if check_vectorize:
            vec_result = check_vectorize_module(
                module,
                func_name,
                base_args,
                outputs,
                stage.name,
                pipeline_name=pipeline.name,
                rtol=rtol,
                ir_text=result.ir_text,
            )
            report.stages.append(vec_result)
            if not vec_result.ok:
                return report
        if check_opt:
            opt_result = check_opt_module(
                module,
                func_name,
                base_args,
                outputs,
                stage.name,
                pipeline_name=pipeline.name,
                rtol=rtol,
                ir_text=result.ir_text,
                bail_sink=bail_sink,
            )
            report.stages.append(opt_result)
            if not opt_result.ok:
                return report
        if check_schedule:
            schedule_result = check_schedule_module(
                module,
                func_name,
                base_args,
                outputs,
                stage.name,
                pipeline_name=pipeline.name,
                rtol=rtol,
                ir_text=result.ir_text,
                seed=seed,
                max_steps=max_steps,
            )
            report.stages.append(schedule_result)
            if not schedule_result.ok:
                return report
        if reference is None:
            reference = outputs
    return report
