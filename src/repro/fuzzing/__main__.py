"""``python -m repro.fuzzing`` == ``mlt-fuzz``."""

import sys

from ..tool import fuzz_main

if __name__ == "__main__":
    sys.exit(fuzz_main())
