"""Budgeted fuzzing campaigns and failure artifacts.

A campaign walks a seed range; each seed deterministically produces one
random C kernel (through the real MET frontend) and one random
builder-constructed Affine module, and differentially checks both
against every configured Figure-9 pipeline.  On failure the campaign

1. bisects the pipeline to the first breaking pass,
2. delta-debugs C kernels to a minimal reproducer, and
3. dumps an artifact directory under ``fuzz-failures/``::

       fuzz-failures/seed-000042-mlt-blas/
           kernel.c        original generated kernel
           reduced.c       minimal reproducer (C kernels only)
           report.json     seed, family, stage, culprit pass, diff
           stage-01-met.mlir, stage-02-....mlir   IR snapshots

Replaying is always ``mlt-fuzz --seed 42`` — the artifact just saves
you the trip.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .bisect import BisectionResult, bisect_pipeline
from .generators import (
    NEAR_MISS_FAMILIES,
    GeneratedKernel,
    generate_affine_module,
    generate_kernel,
)
from .oracle import (
    DEFAULT_PIPELINES,
    OracleReport,
    Pipeline,
    build_pipelines,
    check_driver_equivalence,
    check_incremental_equivalence,
    run_oracle,
    run_oracle_on_module,
)
from .reduce import reduce_source


@dataclass
class FuzzFailure:
    seed: int
    pipeline: str
    kind: str  # c-kernel | affine-module
    family: str
    report: OracleReport
    bisection: Optional[BisectionResult] = None
    source: str = ""
    reduced_source: Optional[str] = None
    artifact_dir: Optional[str] = None

    @property
    def reduced(self) -> bool:
        """A failure counts as reduced when it carries a minimal
        reproducer (C kernels) or needs none (module inputs and
        driver-diff failures replay from the seed alone)."""
        return (
            self.kind == "affine-module"
            or self.pipeline.startswith("driver-diff")
            or self.pipeline.startswith("incremental-diff")
            or self.reduced_source is not None
        )

    def summary(self) -> str:
        lines = [
            f"seed {self.seed} [{self.kind}/{self.family}] "
            + self.report.summary()
        ]
        if self.bisection is not None:
            lines.append("  " + self.bisection.summary())
        if self.artifact_dir:
            lines.append(f"  artifact: {self.artifact_dir}")
        return "\n".join(lines)


@dataclass
class CampaignStats:
    seeds_run: int = 0
    checks: int = 0
    stages_checked: int = 0
    elapsed: float = 0.0
    failures: List[FuzzFailure] = field(default_factory=list)
    hit_time_limit: bool = False
    #: Vectorizer bail-reason taxonomies aggregated over every opt-diff
    #: engine compile of the campaign, keyed by reason — one for the
    #: optimizer disabled, one for the full pipeline.  The whole point
    #: of the mid-level optimizer is that ``bail_full`` sums strictly
    #: lower than ``bail_none`` on a mixed corpus.
    bail_none: Dict[str, int] = field(default_factory=dict)
    bail_full: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def unreduced_failures(self) -> List[FuzzFailure]:
        return [f for f in self.failures if not f.reduced]

    def merge_bails(self, sink: Dict[str, Dict[str, int]]) -> None:
        """Fold one seed's per-opt-mode bail taxonomy into the totals."""
        for target, mode in ((self.bail_none, "none"), (self.bail_full, "full")):
            for reason, count in sink.get(mode, {}).items():
                target[reason] = target.get(reason, 0) + count

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.failures)} FAILURES"
        lines = [
            f"mlt-fuzz: {self.seeds_run} seeds, {self.checks} "
            f"kernel/pipeline checks, {self.stages_checked} stage snapshots "
            f"in {self.elapsed:.1f}s: {status}"
            + (" (time limit reached)" if self.hit_time_limit else "")
        ]
        if self.bail_none or self.bail_full:
            total_none = sum(self.bail_none.values())
            total_full = sum(self.bail_full.values())
            lines.append(
                f"mlt-fuzz: vectorizer bails across corpus: "
                f"{total_none} with opt=none -> {total_full} with opt=full"
            )
            reasons = sorted(set(self.bail_none) | set(self.bail_full))
            for reason in reasons:
                lines.append(
                    f"  {reason}: {self.bail_none.get(reason, 0)} -> "
                    f"{self.bail_full.get(reason, 0)}"
                )
        for failure in self.failures:
            lines.append(failure.summary())
        return "\n".join(lines)


class FuzzCampaign:
    def __init__(
        self,
        out_dir: str = "fuzz-failures",
        pipelines: Optional[Sequence[str]] = None,
        rtol: float = 2e-3,
        max_steps: int = 20_000_000,
        fuzz_tile_size: int = 3,
        check_modules: bool = True,
        write_artifacts: bool = True,
        extra_pipelines: Optional[Dict[str, Pipeline]] = None,
        check_engine: bool = True,
        check_drivers: bool = True,
        check_vectorize: bool = True,
        check_synth: bool = True,
        check_opt: bool = True,
        check_schedule: bool = True,
        check_incremental: bool = True,
    ):
        self.out_dir = out_dir
        self.rtol = rtol
        self.max_steps = max_steps
        self.check_modules = check_modules
        self.check_engine = check_engine
        self.check_drivers = check_drivers
        self.check_vectorize = check_vectorize
        self.check_synth = check_synth
        self.check_opt = check_opt
        self.check_schedule = check_schedule
        self.check_incremental = check_incremental
        self.write_artifacts = write_artifacts
        registry = build_pipelines(fuzz_tile_size)
        if extra_pipelines:
            registry.update(extra_pipelines)
        names = list(pipelines) if pipelines else list(DEFAULT_PIPELINES)
        unknown = [n for n in names if n not in registry]
        if unknown:
            raise ValueError(
                f"unknown pipeline(s) {unknown}; known: {sorted(registry)}"
            )
        self.pipelines: Dict[str, Pipeline] = {
            name: registry[name] for name in names
        }

    # ------------------------------------------------------------------

    def run(
        self,
        num_seeds: int,
        start_seed: int = 0,
        time_limit: Optional[float] = None,
    ) -> CampaignStats:
        stats = CampaignStats()
        started = time.perf_counter()
        for seed in range(start_seed, start_seed + num_seeds):
            if (
                time_limit is not None
                and time.perf_counter() - started > time_limit
            ):
                stats.hit_time_limit = True
                break
            stats.failures.extend(self.run_seed(seed, stats))
            stats.seeds_run += 1
        stats.elapsed = time.perf_counter() - started
        return stats

    def run_seed(
        self, seed: int, stats: Optional[CampaignStats] = None
    ) -> List[FuzzFailure]:
        stats = stats if stats is not None else CampaignStats()
        failures: List[FuzzFailure] = []
        bail_sink: Dict[str, Dict[str, int]] = {}
        kernel = generate_kernel(seed)
        expectation = self._check_expectation(seed, kernel)
        stats.checks += 1
        if expectation is not None:
            failures.append(expectation)
        if self.write_artifacts and kernel.family in NEAR_MISS_FAMILIES:
            self._export_near_miss(kernel)
        if self.check_synth:
            synth_expectation = self._check_synth_expectation(seed, kernel)
            stats.checks += 1
            if synth_expectation is not None:
                failures.append(synth_expectation)
        for name, pipeline in self.pipelines.items():
            report = run_oracle(
                kernel.source,
                pipeline,
                kernel.func_name,
                seed=seed,
                rtol=self.rtol,
                max_steps=self.max_steps,
                check_engine=self.check_engine,
                check_vectorize=self.check_vectorize,
                check_opt=self.check_opt,
                check_schedule=self.check_schedule,
                bail_sink=bail_sink,
            )
            stats.checks += 1
            stats.stages_checked += len(report.stages)
            if not report.ok:
                failures.append(
                    self._handle_c_failure(seed, kernel, pipeline, report)
                )
        if self.check_drivers or self.check_incremental:
            try:
                from ..met import compile_c

                module = compile_c(kernel.source, distribute=False)
            except Exception:
                module = None  # frontend crash is reported by run_oracle
            if module is not None:
                if self.check_drivers:
                    failures.extend(
                        self._run_driver_checks(
                            seed,
                            "c-kernel",
                            kernel.family,
                            kernel.source,
                            kernel.func_name,
                            module,
                            stats,
                        )
                    )
                if self.check_incremental:
                    failures.extend(
                        self._run_incremental_checks(
                            seed,
                            "c-kernel",
                            kernel.family,
                            kernel.source,
                            kernel.func_name,
                            module,
                            stats,
                        )
                    )
        if self.check_modules:
            generated = generate_affine_module(seed)
            for name, pipeline in self.pipelines.items():
                report = run_oracle_on_module(
                    generated.module,
                    pipeline,
                    generated.func_name,
                    seed=seed,
                    rtol=self.rtol,
                    max_steps=self.max_steps,
                    check_engine=self.check_engine,
                    check_vectorize=self.check_vectorize,
                    check_opt=self.check_opt,
                    check_schedule=self.check_schedule,
                    bail_sink=bail_sink,
                )
                stats.checks += 1
                stats.stages_checked += len(report.stages)
                if not report.ok:
                    failures.append(
                        self._handle_module_failure(
                            seed, generated, pipeline, report
                        )
                    )
            if self.check_drivers:
                from ..ir import print_module

                failures.extend(
                    self._run_driver_checks(
                        seed,
                        "affine-module",
                        "affine-module",
                        print_module(generated.module),
                        generated.func_name,
                        generated.module,
                        stats,
                    )
                )
            if self.check_incremental:
                from ..ir import print_module

                failures.extend(
                    self._run_incremental_checks(
                        seed,
                        "affine-module",
                        "affine-module",
                        print_module(generated.module),
                        generated.func_name,
                        generated.module,
                        stats,
                    )
                )
        stats.merge_bails(bail_sink)
        return failures

    def _run_driver_checks(
        self,
        seed: int,
        kind: str,
        family: str,
        source: str,
        func_name: str,
        module,
        stats: CampaignStats,
    ) -> List[FuzzFailure]:
        """Worklist-vs-snapshot IR diff for every configured pipeline.

        A mismatch is a rewrite-driver bug, not a pipeline bug, so it
        gets neither bisection nor reduction — the seed plus the diff
        in the report is the reproducer.
        """
        failures: List[FuzzFailure] = []
        for name, pipeline in self.pipelines.items():
            result = check_driver_equivalence(module, pipeline)
            stats.checks += 1
            stats.stages_checked += 1
            if result.ok:
                continue
            report = OracleReport(f"driver-diff:{name}", func_name)
            report.stages.append(result)
            failure = FuzzFailure(
                seed=seed,
                pipeline=f"driver-diff-{name}",
                kind=kind,
                family=family,
                report=report,
                bisection=None,
                source=source,
            )
            if self.write_artifacts:
                failure.artifact_dir = self._dump(failure)
            failures.append(failure)
        return failures

    def _run_incremental_checks(
        self,
        seed: int,
        kind: str,
        family: str,
        source: str,
        func_name: str,
        module,
        stats: CampaignStats,
    ) -> List[FuzzFailure]:
        """Incremental-vs-scratch IR diff for every configured pipeline.

        A mismatch is a pass-cache bug (bad key, lying change report,
        unsound splice), not a pipeline bug, so there is no bisection
        or reduction step: the check itself already names the first
        diverging pass, and the seed replays it.
        """
        failures: List[FuzzFailure] = []
        for name, pipeline in self.pipelines.items():
            result = check_incremental_equivalence(module, pipeline)
            stats.checks += 1
            stats.stages_checked += 1
            if result.ok:
                continue
            report = OracleReport(f"incremental-diff:{name}", func_name)
            report.stages.append(result)
            failure = FuzzFailure(
                seed=seed,
                pipeline=f"incremental-diff-{name}",
                kind=kind,
                family=family,
                report=report,
                bisection=None,
                source=source,
            )
            if self.write_artifacts:
                failure.artifact_dir = self._dump(failure)
            failures.append(failure)
        return failures

    # ------------------------------------------------------------------

    @staticmethod
    def _raises_to_named_op(source: str) -> bool:
        from ..met import compile_c
        from ..tactics.raising import raise_affine_to_linalg

        module = compile_c(source)
        raise_affine_to_linalg(module)
        return any(
            op.name in ("linalg.matmul", "linalg.matvec")
            for func in module.functions
            for op in func.walk()
        )

    def _check_expectation(
        self, seed: int, kernel: GeneratedKernel
    ) -> Optional[FuzzFailure]:
        """Tactic-expectation oracle: positive families must raise to a
        named contraction op, near-miss families must not.  A mismatch
        is a matcher bug (missed pattern or unsound over-match)."""
        from .oracle import StageResult

        try:
            raised = self._raises_to_named_op(kernel.source)
        except Exception as exc:
            raised, detail = None, f"raising crashed: {exc}"
        if raised == kernel.expect_raise:
            return None
        if raised is not None:
            detail = (
                "tactic matched a near-miss kernel"
                if raised
                else "tactic failed to match a positive kernel"
            )
        report = OracleReport("raise-expectation", kernel.func_name)
        report.stages.append(
            StageResult("raise-linalg", False, "expectation", detail)
        )

        def still_mismatching(candidate: str) -> bool:
            return self._raises_to_named_op(candidate) != kernel.expect_raise

        reduced = reduce_source(kernel.source, still_mismatching)
        failure = FuzzFailure(
            seed=seed,
            pipeline="raise-expectation",
            kind="c-kernel",
            family=kernel.family,
            report=report,
            bisection=None,
            source=kernel.source,
            reduced_source=reduced,
        )
        if self.write_artifacts:
            failure.artifact_dir = self._dump(failure)
        return failure

    @staticmethod
    def _synth_raises_all(source: str) -> bool:
        """True when the enumerative tier alone clears every affine
        band the frontend emits for ``source``."""
        from ..dialects.affine import AffineForOp
        from ..met import compile_c
        from ..tactics.raising import raise_affine_to_linalg

        module = compile_c(source)
        raise_affine_to_linalg(module, raise_mode="synth")
        return not any(
            isinstance(op, AffineForOp) for op in module.walk()
        )

    def _check_synth_expectation(
        self, seed: int, kernel: GeneratedKernel
    ) -> Optional[FuzzFailure]:
        """Synth-diff oracle stage: families inside the enumerator's
        candidate space must be fully raised by ``raise_mode="synth"``;
        families outside it (offset accesses, stencils) must leave a
        loop behind.  Either direction of mismatch is a synthesizer
        regression — a lost candidate class or an unsound validation."""
        from .oracle import StageResult

        try:
            raised = self._synth_raises_all(kernel.source)
            detail = ""
        except Exception as exc:
            raised, detail = None, f"synthesis crashed: {exc}"
        if raised == kernel.expect_synth_raise:
            return None
        if raised is not None:
            detail = (
                "synthesis raised a kernel outside its candidate space"
                if raised
                else "synthesis failed to raise an in-space kernel"
            )
        report = OracleReport("synth-expectation", kernel.func_name)
        report.stages.append(
            StageResult("raise-synth", False, "expectation", detail)
        )

        def still_mismatching(candidate: str) -> bool:
            return (
                self._synth_raises_all(candidate)
                != kernel.expect_synth_raise
            )

        reduced = reduce_source(kernel.source, still_mismatching)
        failure = FuzzFailure(
            seed=seed,
            pipeline="synth-expectation",
            kind="c-kernel",
            family=kernel.family,
            report=report,
            bisection=None,
            source=kernel.source,
            reduced_source=reduced,
        )
        if self.write_artifacts:
            failure.artifact_dir = self._dump(failure)
        return failure

    def _export_near_miss(self, kernel: GeneratedKernel) -> str:
        """Persist a near-miss variant as a replayable corpus entry.

        These kernels are the synthesis tier's raison d'être — TDL must
        skip them, and (for in-space families) synth must recover them —
        so every generated one is kept under ``<out_dir>/near-miss/``
        with its raise expectations recorded, whether or not any oracle
        failed.  ``mlt-bench-raise --corpus`` sweeps this directory.
        """
        directory = os.path.join(
            self.out_dir,
            "near-miss",
            f"seed-{kernel.seed:06d}-{kernel.family}",
        )
        os.makedirs(directory, exist_ok=True)
        with open(os.path.join(directory, "kernel.c"), "w") as handle:
            handle.write(kernel.source)
        payload = {
            "seed": kernel.seed,
            "family": kernel.family,
            "func_name": kernel.func_name,
            "replay": f"mlt-fuzz --seed {kernel.seed}",
            "expect_tdl_raise": kernel.expect_raise,
            "expect_synth_raise": kernel.expect_synth_raise,
        }
        with open(
            os.path.join(directory, "expectation.json"), "w"
        ) as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        return directory

    def _handle_c_failure(
        self,
        seed: int,
        kernel: GeneratedKernel,
        pipeline: Pipeline,
        report: OracleReport,
    ) -> FuzzFailure:
        bisection = bisect_pipeline(
            kernel.source,
            pipeline,
            kernel.func_name,
            seed=seed,
            rtol=self.rtol,
            max_steps=self.max_steps,
            check_engine=self.check_engine,
            check_vectorize=self.check_vectorize,
            check_opt=self.check_opt,
            check_schedule=self.check_schedule,
        )

        def still_fails(candidate: str) -> bool:
            candidate_report = run_oracle(
                candidate,
                pipeline,
                kernel.func_name,
                seed=seed,
                rtol=self.rtol,
                max_steps=self.max_steps,
                check_engine=self.check_engine,
                check_vectorize=self.check_vectorize,
                check_opt=self.check_opt,
                check_schedule=self.check_schedule,
            )
            failure = candidate_report.first_failure
            original = report.first_failure
            return failure is not None and failure.kind == original.kind

        reduced = reduce_source(kernel.source, still_fails)
        failure = FuzzFailure(
            seed=seed,
            pipeline=pipeline.name,
            kind="c-kernel",
            family=kernel.family,
            report=report,
            bisection=bisection,
            source=kernel.source,
            reduced_source=reduced,
        )
        if self.write_artifacts:
            failure.artifact_dir = self._dump(failure)
        return failure

    def _handle_module_failure(
        self, seed: int, generated, pipeline: Pipeline, report: OracleReport
    ) -> FuzzFailure:
        from ..ir import print_module

        bisection = bisect_pipeline(
            generated.module,
            pipeline,
            generated.func_name,
            seed=seed,
            rtol=self.rtol,
            max_steps=self.max_steps,
            check_engine=self.check_engine,
            check_vectorize=self.check_vectorize,
            check_opt=self.check_opt,
            check_schedule=self.check_schedule,
        )
        failure = FuzzFailure(
            seed=seed,
            pipeline=pipeline.name,
            kind="affine-module",
            family="affine-module",
            report=report,
            bisection=bisection,
            source=print_module(generated.module),
        )
        if self.write_artifacts:
            failure.artifact_dir = self._dump(failure)
        return failure

    # ------------------------------------------------------------------

    def _dump(self, failure: FuzzFailure) -> str:
        directory = os.path.join(
            self.out_dir, f"seed-{failure.seed:06d}-{failure.pipeline}"
        )
        os.makedirs(directory, exist_ok=True)
        suffix = ".c" if failure.kind == "c-kernel" else ".mlir"
        with open(os.path.join(directory, "kernel" + suffix), "w") as handle:
            handle.write(failure.source)
        if failure.reduced_source is not None:
            with open(os.path.join(directory, "reduced.c"), "w") as handle:
                handle.write(failure.reduced_source)
        for position, stage in enumerate(failure.report.stages, start=1):
            if not stage.ir_text:
                continue
            name = f"stage-{position:02d}-{stage.stage}.mlir"
            with open(os.path.join(directory, name), "w") as handle:
                handle.write(stage.ir_text)
        first = failure.report.first_failure
        payload = {
            "seed": failure.seed,
            "kind": failure.kind,
            "family": failure.family,
            "pipeline": failure.pipeline,
            "replay": f"mlt-fuzz --seed {failure.seed}",
            "failing_stage": {
                "name": first.stage,
                "kind": first.kind,
                "detail": first.detail,
            },
            "bisection": {
                "culprit_pass": failure.bisection.culprit_pass,
                "stage": failure.bisection.stage,
                "index": failure.bisection.index,
                "kind": failure.bisection.kind,
                "detail": failure.bisection.detail,
            }
            if failure.bisection is not None
            else None,
            "reduced_lines": (
                len(failure.reduced_source.splitlines())
                if failure.reduced_source is not None
                else None
            ),
        }
        with open(os.path.join(directory, "report.json"), "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        return directory
