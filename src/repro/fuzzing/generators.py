"""Random-program generators for differential fuzzing.

Two entry points:

* :func:`generate_kernel` builds a random polyhedral C kernel as a MET
  AST (so the reducer can manipulate it structurally), unparses it to C
  source, and the campaign pushes it through the *real* frontend.
  Families cover the shapes the tactics target (matmul, matvec,
  two-step contractions, elementwise maps) plus near-miss variants
  (transposed or offset accesses, ``-=`` accumulation) that are valid
  polyhedral C but must *not* be raised to ``linalg.matmul``.
* :func:`generate_affine_module` builds a random Affine-dialect module
  directly through the builder API, bypassing MET, to fuzz the
  mid-level passes with programs no C kernel would produce.

Everything is driven by ``random.Random(seed)`` so any failure replays
from its seed alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..met.c_ast import (
    ArrayRef,
    Assign,
    BinOp,
    Decl,
    Expr,
    For,
    FunctionDef,
    Ident,
    Number,
    Param,
    Stmt,
    TranslationUnit,
)

# ----------------------------------------------------------------------
# C unparser (MET AST -> source); shared with the reducer.
# ----------------------------------------------------------------------


def unparse_expr(expr: Expr) -> str:
    if isinstance(expr, Number):
        if isinstance(expr.value, float):
            text = repr(expr.value)
            return text + "f" if "." in text or "e" in text else text + ".0f"
        return str(expr.value)
    if isinstance(expr, Ident):
        return expr.name
    if isinstance(expr, ArrayRef):
        return expr.name + "".join(f"[{unparse_expr(i)}]" for i in expr.indices)
    if isinstance(expr, BinOp):
        return f"({unparse_expr(expr.lhs)} {expr.op} {unparse_expr(expr.rhs)})"
    raise TypeError(f"cannot unparse {type(expr).__name__}")


def _unparse_stmt(stmt: Stmt, indent: int, lines: List[str]) -> None:
    pad = "  " * indent
    if isinstance(stmt, For):
        step = f"{stmt.iv} += {stmt.step}" if stmt.step != 1 else f"{stmt.iv}++"
        lines.append(
            f"{pad}for (int {stmt.iv} = {unparse_expr(stmt.lower)}; "
            f"{stmt.iv} < {unparse_expr(stmt.upper)}; {step}) {{"
        )
        for inner in stmt.body:
            _unparse_stmt(inner, indent + 1, lines)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, Assign):
        lines.append(
            f"{pad}{unparse_expr(stmt.target)} {stmt.op} "
            f"{unparse_expr(stmt.value)};"
        )
    elif isinstance(stmt, Decl):
        dims = "".join(f"[{d}]" for d in stmt.dims)
        lines.append(f"{pad}{stmt.ctype} {stmt.name}{dims};")
    else:
        raise TypeError(f"cannot unparse {type(stmt).__name__}")


def unparse_function(func: FunctionDef) -> str:
    params = ", ".join(
        f"{p.ctype} {p.name}" + "".join(f"[{d}]" for d in p.dims)
        for p in func.params
    )
    lines = [f"void {func.name}({params}) {{"]
    for stmt in func.body:
        _unparse_stmt(stmt, 1, lines)
    lines.append("}")
    return "\n".join(lines) + "\n"


def unparse_unit(unit: TranslationUnit) -> str:
    return "\n".join(unparse_function(f) for f in unit.functions)


# ----------------------------------------------------------------------
# C kernel generation
# ----------------------------------------------------------------------


@dataclass
class GeneratedKernel:
    """A random C kernel plus the metadata needed to replay/reduce it."""

    seed: int
    family: str
    func_name: str
    unit: TranslationUnit
    #: Whether the family's core statement is a tactic target: the
    #: raising pass is *expected* to rewrite it.  Near-miss families set
    #: this to False — raising them to linalg.matmul would be a bug in
    #: the matchers.
    expect_raise: bool = True
    #: Whether the synthesis tier (``raise_mode="synth"``) is expected
    #: to raise *every* loop band in the kernel — the near-miss corpus'
    #: recorded expectation.  Families with accesses outside the
    #: synthesizer's candidate space (offset subscripts, stencils) set
    #: this to False.
    expect_synth_raise: bool = True

    @property
    def source(self) -> str:
        return unparse_unit(self.unit)


def _idx(*names: str) -> List[Expr]:
    return [Ident(n) for n in names]


def _loop(iv: str, extent: int, body: List[Stmt]) -> For:
    return For(iv, Number(0), Number(extent), 1, body)


def _acc(name: str, *indices: str) -> ArrayRef:
    return ArrayRef(name, _idx(*indices))


def _mul(lhs: Expr, rhs: Expr) -> BinOp:
    return BinOp("*", lhs, rhs)


def _init_nest(
    rng: random.Random, target: str, ivs: Sequence[str], extents: Sequence[int]
) -> For:
    """A zero/constant-initialization nest over ``target``."""
    value = rng.choice([0.0, 0.0, 1.0, 0.5])
    stmt: Stmt = Assign(_acc(target, *ivs), "=", Number(value))
    nest: Stmt = stmt
    for iv, extent in zip(reversed(ivs), reversed(extents)):
        nest = _loop(iv, extent, [nest])
    return nest


def _extent(rng: random.Random) -> int:
    return rng.randint(2, 6)


def _matmul_kernel(rng: random.Random, near_miss: Optional[str]) -> Tuple[FunctionDef, bool]:
    m, n, k = _extent(rng), _extent(rng), _extent(rng)
    a = _acc("A", "i", "k")
    b = _acc("B", "k", "j")
    op = "+="
    a_dims, b_dims = [m, k], [k, n]
    expect = True
    if near_miss == "transposed":
        # C[i][j] += A[k][i] * B[k][j] — a valid contraction but not the
        # gemm tactic's access pattern.
        a = _acc("A", "k", "i")
        a_dims = [k, m]
        expect = False
    elif near_miss == "offset":
        # A padded by one row and read at [i+1][k]: affine, not gemm.
        a = ArrayRef("A", [BinOp("+", Ident("i"), Number(1)), Ident("k")])
        a_dims = [m + 1, k]
        expect = False
    elif near_miss == "subtract":
        op = "-="
        expect = False
    out = _acc("C", "i", "j")
    out_dims = [m, n]
    if near_miss == "permuted-output":
        # C[j][i] += A[i][k] * B[k][j] — a contraction whose *output*
        # is transposed relative to the gemm tactic's store pattern.
        out = _acc("C", "j", "i")
        out_dims = [n, m]
        expect = False
    body = Assign(out, op, _mul(a, b))
    update = _loop("i", m, [_loop("j", n, [_loop("k", k, [body])])])
    stmts: List[Stmt] = []
    if rng.random() < 0.5:
        stmts.append(
            _init_nest(rng, "C", ("i", "j"), tuple(out_dims))
        )
    stmts.append(update)
    func = FunctionDef(
        "kernel",
        [
            Param("float", "A", a_dims),
            Param("float", "B", b_dims),
            Param("float", "C", out_dims),
        ],
        stmts,
    )
    return func, expect


def _matvec_kernel(rng: random.Random) -> Tuple[FunctionDef, bool]:
    m, n = _extent(rng), _extent(rng)
    body = Assign(
        _acc("y", "i"), "+=", _mul(_acc("A", "i", "j"), _acc("x", "j"))
    )
    stmts: List[Stmt] = []
    if rng.random() < 0.5:
        stmts.append(_init_nest(rng, "y", ("i",), (m,)))
    stmts.append(_loop("i", m, [_loop("j", n, [body])]))
    func = FunctionDef(
        "kernel",
        [
            Param("float", "A", [m, n]),
            Param("float", "x", [n]),
            Param("float", "y", [m]),
        ],
        stmts,
    )
    return func, True


def _two_mm_kernel(rng: random.Random) -> Tuple[FunctionDef, bool]:
    """D = (A*B)*C through a local temporary — exercises Decl handling,
    loop distribution, and chained raising."""
    ni, nj, nk, nl = (_extent(rng) for _ in range(4))
    first = Assign(
        _acc("tmp", "i", "j"), "+=", _mul(_acc("A", "i", "k"), _acc("B", "k", "j"))
    )
    second = Assign(
        _acc("D", "i", "l"), "+=", _mul(_acc("tmp", "i", "j"), _acc("C", "j", "l"))
    )
    stmts: List[Stmt] = [
        Decl("float", "tmp", [ni, nj]),
        _init_nest(rng, "tmp", ("i", "j"), (ni, nj)),
        _loop("i", ni, [_loop("j", nj, [_loop("k", nk, [first])])]),
        _loop("i", ni, [_loop("l", nl, [_loop("j", nj, [second])])]),
    ]
    func = FunctionDef(
        "kernel",
        [
            Param("float", "A", [ni, nk]),
            Param("float", "B", [nk, nj]),
            Param("float", "C", [nj, nl]),
            Param("float", "D", [ni, nl]),
        ],
        stmts,
    )
    return func, True


def _elementwise_kernel(rng: random.Random) -> Tuple[FunctionDef, bool]:
    depth = rng.randint(1, 3)
    extents = [_extent(rng) for _ in range(depth)]
    ivs = [f"i{d}" for d in range(depth)]
    src = _acc("A", *ivs)
    op = rng.choice(["+", "*", "-"])
    # Nonnegative literals only: the C subset has no unary minus.
    rhs: Expr = BinOp(op, src, Number(round(rng.uniform(0, 2), 3)))
    if rng.random() < 0.3:
        rhs = BinOp("+", rhs, _acc("B", *ivs))
    stmt: Stmt = Assign(_acc("B", *ivs), rng.choice(["=", "+="]), rhs)
    for iv, extent in zip(reversed(ivs), reversed(extents)):
        stmt = _loop(iv, extent, [stmt])
    func = FunctionDef(
        "kernel",
        [Param("float", "A", extents), Param("float", "B", extents)],
        [stmt],
    )
    return func, False


def _dot_kernel(rng: random.Random) -> Tuple[FunctionDef, bool]:
    """s[0] += x[i] * y[i] — a rank-0-output contraction.  No TDL
    tactic covers it (TDL placeholders need at least one output index),
    so it is a near-miss for the structural tier but squarely inside
    the synthesizer's candidate space."""
    n = _extent(rng)
    body = Assign(
        ArrayRef("s", [Number(0)]),
        "+=",
        _mul(_acc("x", "i"), _acc("y", "i")),
    )
    stmts: List[Stmt] = []
    if rng.random() < 0.5:
        stmts.append(Assign(ArrayRef("s", [Number(0)]), "=", Number(0.0)))
    stmts.append(_loop("i", n, [body]))
    func = FunctionDef(
        "kernel",
        [
            Param("float", "x", [n]),
            Param("float", "y", [n]),
            Param("float", "s", [1]),
        ],
        stmts,
    )
    return func, False


def _stencil_kernel(rng: random.Random) -> Tuple[FunctionDef, bool]:
    """1-d three-point stencil: affine offsets, never a contraction."""
    n = rng.randint(4, 8)
    i = Ident("i")
    rhs = BinOp(
        "+",
        BinOp("+", ArrayRef("A", [BinOp("-", i, Number(1))]), ArrayRef("A", [i])),
        ArrayRef("A", [BinOp("+", i, Number(1))]),
    )
    body = Assign(ArrayRef("B", [i]), "=", rhs)
    func = FunctionDef(
        "kernel",
        [Param("float", "A", [n + 2]), Param("float", "B", [n + 2])],
        [For("i", Number(1), Number(n + 1), 1, [body])],
    )
    return func, False


#: family name -> (builder, weight).  Tactic-positive families dominate
#: so most seeds exercise the full raising path; the rest guard the
#: matchers against near-misses.
KERNEL_FAMILIES = {
    "matmul": (lambda rng: _matmul_kernel(rng, None), 4),
    "matmul-transposed": (lambda rng: _matmul_kernel(rng, "transposed"), 1),
    "matmul-offset": (lambda rng: _matmul_kernel(rng, "offset"), 1),
    "matmul-subtract": (lambda rng: _matmul_kernel(rng, "subtract"), 1),
    "matmul-permuted-output": (
        lambda rng: _matmul_kernel(rng, "permuted-output"),
        1,
    ),
    "matvec": (_matvec_kernel, 3),
    "dot": (_dot_kernel, 1),
    "two-mm": (_two_mm_kernel, 2),
    "elementwise": (_elementwise_kernel, 2),
    "stencil": (_stencil_kernel, 1),
}

#: Families whose core statement the TDL tier must *not* raise — these
#: are the seeds the campaign persists as the replayable near-miss
#: corpus (``fuzz-failures/near-miss/``) for the synthesis tier.
NEAR_MISS_FAMILIES = (
    "matmul-transposed",
    "matmul-offset",
    "matmul-subtract",
    "matmul-permuted-output",
    "dot",
)

#: family -> whether ``raise_mode="synth"`` is expected to raise every
#: loop band the frontend emits for it.  Offset accesses and stencils
#: are outside the enumerator's pure-permutation candidate space.
SYNTH_EXPECTED = {
    "matmul": True,
    "matmul-transposed": True,
    "matmul-offset": False,
    "matmul-subtract": True,
    "matmul-permuted-output": True,
    "matvec": True,
    "dot": True,
    "two-mm": True,
    "elementwise": True,
    "stencil": False,
}


def generate_kernel(seed: int, family: Optional[str] = None) -> GeneratedKernel:
    """Deterministically generate one random C kernel from ``seed``."""
    rng = random.Random(seed)
    if family is None:
        names = list(KERNEL_FAMILIES)
        weights = [KERNEL_FAMILIES[n][1] for n in names]
        family = rng.choices(names, weights=weights, k=1)[0]
    builder = KERNEL_FAMILIES[family][0]
    func, expect = builder(rng)
    return GeneratedKernel(
        seed=seed,
        family=family,
        func_name=func.name,
        unit=TranslationUnit([func]),
        expect_raise=expect,
        expect_synth_raise=SYNTH_EXPECTED.get(family, False),
    )


# ----------------------------------------------------------------------
# Direct Affine-module generation (bypasses MET)
# ----------------------------------------------------------------------


@dataclass
class GeneratedModule:
    """A random builder-constructed Affine module."""

    seed: int
    module: object  # ModuleOp; typed loosely to keep import cost low
    func_name: str
    arg_shapes: List[Tuple[int, ...]] = field(default_factory=list)


def generate_affine_module(seed: int) -> GeneratedModule:
    """A random loop nest with random (in-bounds) affine accesses into
    1-d buffers and a chain of float arithmetic — programs MET's C
    subset would never produce (strided/offset maps, deep chains)."""
    from ..dialects import affine as affine_d
    from ..dialects import std
    from ..ir import (
        AffineMap,
        Builder,
        FuncOp,
        InsertionPoint,
        ModuleOp,
        ReturnOp,
        f32,
        memref,
    )
    from ..ir import affine_expr as ae

    rng = random.Random(seed)
    buffer_size = 64
    depth = rng.randint(1, 3)
    extents = [rng.randint(1, 5) for _ in range(depth)]

    module = ModuleOp.create()
    func = FuncOp.create(
        "f", [memref(buffer_size, f32), memref(buffer_size, f32)]
    )
    module.append_function(func)
    src, dst = func.arguments
    builder = Builder(InsertionPoint.at_end(func.entry_block))
    loops, ivs = affine_d.build_loop_nest(builder, [(0, e) for e in extents])
    body = Builder(InsertionPoint(loops[-1].body, 0))

    value = None
    for _ in range(rng.randint(1, 3)):
        iv_pos = rng.randrange(depth)
        coeff = rng.randint(1, 4)
        const = rng.randint(0, 8)
        expr = ae.dim(0) * coeff + const
        load = body.insert(
            affine_d.AffineLoadOp.create(
                src, [ivs[iv_pos]], AffineMap(1, 0, [expr])
            )
        )
        if value is None:
            value = load.result
        else:
            kind = rng.choice([std.AddFOp, std.MulFOp, std.SubFOp])
            value = body.insert(kind.create(value, load.result)).result
    for _ in range(rng.randint(0, 2)):
        constant = body.insert(
            std.ConstantOp.create(round(rng.uniform(-4, 4), 3), f32)
        )
        kind = rng.choice([std.AddFOp, std.MulFOp, std.SubFOp, std.MaxFOp])
        value = body.insert(kind.create(value, constant.result)).result
    if rng.random() < 0.25:
        value = body.insert(std.NegFOp.create(value)).result
    if rng.random() < 0.25:
        # A cmpf+select clamp (the min/max idiom the vectorizer lowers
        # to np.where): value <pred> c ? value : c.
        constant = body.insert(
            std.ConstantOp.create(round(rng.uniform(-2, 2), 3), f32)
        )
        compare = body.insert(
            std.CmpFOp.create(
                rng.choice(["olt", "ole", "ogt", "oge"]),
                value,
                constant.result,
            )
        )
        value = body.insert(
            std.SelectOp.create(compare.result, value, constant.result)
        ).result
    store_pos = rng.randrange(depth)
    coeff = rng.randint(1, 4)
    const = rng.randint(0, 8)
    body.insert(
        affine_d.AffineStoreOp.create(
            value,
            dst,
            [ivs[store_pos]],
            AffineMap(1, 0, [ae.dim(0) * coeff + const]),
        )
    )
    builder.insert(ReturnOp.create())
    return GeneratedModule(
        seed=seed,
        module=module,
        func_name="f",
        arg_shapes=[(buffer_size,), (buffer_size,)],
    )
