"""Delta-debugging reducer for failing C kernels.

Given a kernel source and a *predicate* ("this source still exhibits
the failure"), the reducer greedily applies structural shrink steps on
the MET AST until no step preserves the failure:

* drop a whole statement (init nests, redundant updates);
* unwrap a loop, substituting its induction variable with the lower
  bound (drops one loop dimension);
* shrink a loop's constant extent toward 1;
* simplify an assignment's RHS (a ``BinOp`` collapses to either side);
* downgrade ``+=``/``-=``/``*=`` accumulation to plain ``=``.

Array parameter declarations are left untouched so every candidate
stays type-correct; the predicate re-runs the full pipeline, so any
candidate that stops compiling or stops failing is simply rejected.
The result is the smallest source (by line count, then length) along
the greedy path — in practice a handful of lines.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterator, List, Optional

from ..met import parse_c
from ..met.c_ast import (
    Assign,
    BinOp,
    Expr,
    For,
    FunctionDef,
    Ident,
    Number,
    Stmt,
    TranslationUnit,
)
from .generators import unparse_unit


# ----------------------------------------------------------------------
# AST surgery helpers
# ----------------------------------------------------------------------


def _substitute_ident(expr: Expr, name: str, replacement: Expr) -> Expr:
    if isinstance(expr, Ident) and expr.name == name:
        return copy.deepcopy(replacement)
    if isinstance(expr, BinOp):
        expr.lhs = _substitute_ident(expr.lhs, name, replacement)
        expr.rhs = _substitute_ident(expr.rhs, name, replacement)
        return expr
    if hasattr(expr, "indices"):  # ArrayRef
        expr.indices = [
            _substitute_ident(i, name, replacement) for i in expr.indices
        ]
        return expr
    return expr


def _substitute_in_stmt(stmt: Stmt, name: str, replacement: Expr) -> None:
    if isinstance(stmt, Assign):
        stmt.target = _substitute_ident(stmt.target, name, replacement)
        stmt.value = _substitute_ident(stmt.value, name, replacement)
    elif isinstance(stmt, For):
        stmt.lower = _substitute_ident(stmt.lower, name, replacement)
        stmt.upper = _substitute_ident(stmt.upper, name, replacement)
        for inner in stmt.body:
            _substitute_in_stmt(inner, name, replacement)


def _bodies(func: FunctionDef) -> Iterator[List[Stmt]]:
    """Every statement list in the function, outermost first."""

    def walk(body: List[Stmt]) -> Iterator[List[Stmt]]:
        yield body
        for stmt in body:
            if isinstance(stmt, For):
                yield from walk(stmt.body)

    yield from walk(func.body)


def _assignments(func: FunctionDef) -> Iterator[Assign]:
    for body in _bodies(func):
        for stmt in body:
            if isinstance(stmt, Assign):
                yield stmt


# ----------------------------------------------------------------------
# Candidate generation
# ----------------------------------------------------------------------


def reduction_candidates(unit: TranslationUnit) -> Iterator[TranslationUnit]:
    """Yield progressively smaller copies of ``unit``, one shrink step
    each.  Ordered most-aggressive first so the greedy loop converges
    quickly: statement drops, then loop unwrapping, then extent
    shrinking, then body simplification."""
    func = unit.functions[0]

    # 1. Drop one statement anywhere (never the last remaining one).
    total = sum(len(body) for body in _bodies(func))
    if total > 1:
        for body_index, body in enumerate(_bodies(func)):
            for stmt_index in range(len(body)):
                clone = copy.deepcopy(unit)
                bodies = list(_bodies(clone.functions[0]))
                del bodies[body_index][stmt_index]
                if any(bodies):
                    yield clone

    # 2. Unwrap one loop: replace the For by its body with iv := lower.
    for body_index, body in enumerate(_bodies(func)):
        for stmt_index, stmt in enumerate(body):
            if not isinstance(stmt, For):
                continue
            clone = copy.deepcopy(unit)
            target_body = list(_bodies(clone.functions[0]))[body_index]
            loop = target_body[stmt_index]
            lower = loop.lower if isinstance(loop.lower, Number) else Number(0)
            for inner in loop.body:
                _substitute_in_stmt(inner, loop.iv, lower)
            target_body[stmt_index : stmt_index + 1] = loop.body
            yield clone

    # 3. Shrink one loop extent (halve toward 1).
    for body_index, body in enumerate(_bodies(func)):
        for stmt_index, stmt in enumerate(body):
            if not isinstance(stmt, For) or not isinstance(stmt.upper, Number):
                continue
            extent = stmt.upper.value
            if not isinstance(extent, int) or extent <= 1:
                continue
            for smaller in {1, extent // 2}:
                if smaller < 1 or smaller >= extent:
                    continue
                clone = copy.deepcopy(unit)
                target_body = list(_bodies(clone.functions[0]))[body_index]
                target_body[stmt_index].upper = Number(smaller)
                yield clone

    # 4. Simplify one assignment RHS: BinOp -> lhs or rhs.
    for assign_index, assign in enumerate(_assignments(func)):
        if not isinstance(assign.value, BinOp):
            continue
        for side in ("lhs", "rhs"):
            clone = copy.deepcopy(unit)
            target = list(_assignments(clone.functions[0]))[assign_index]
            target.value = getattr(target.value, side)
            yield clone

    # 5. Downgrade accumulation to plain assignment.
    for assign_index, assign in enumerate(_assignments(func)):
        if assign.op == "=":
            continue
        clone = copy.deepcopy(unit)
        list(_assignments(clone.functions[0]))[assign_index].op = "="
        yield clone


# ----------------------------------------------------------------------
# Greedy reduction loop
# ----------------------------------------------------------------------


def _size(source: str) -> tuple:
    return (len(source.splitlines()), len(source))


def reduce_source(
    source: str,
    predicate: Callable[[str], bool],
    max_rounds: int = 64,
) -> str:
    """Shrink ``source`` while ``predicate`` holds.

    The predicate receives candidate C sources and must return True
    when the candidate still exhibits the original failure; it should
    return False (not raise) for candidates that no longer compile.
    Returns the smallest failing source found.
    """
    try:
        unit = parse_c(source)
    except Exception:
        return source  # unparseable input: nothing structural to do
    best_unit = unit
    best_source = unparse_unit(unit)
    if not predicate(best_source):
        # Normalized unparse changed behaviour (shouldn't happen) —
        # keep the original text untouched.
        return source

    for _ in range(max_rounds):
        improved = False
        for candidate in reduction_candidates(best_unit):
            try:
                text = unparse_unit(candidate)
            except TypeError:
                continue
            if _size(text) >= _size(best_source):
                continue
            try:
                still_failing = predicate(text)
            except Exception:
                still_failing = False
            if still_failing:
                best_unit = candidate
                best_source = text
                improved = True
                break
        if not improved:
            return best_source
    return best_source
