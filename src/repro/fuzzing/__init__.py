"""Differential fuzzing for the progressive-raising pipelines.

The subsystem closes the loop the paper leaves open: raising and
lowering must be *semantics-preserving*, and the reference interpreter
can execute a module at every abstraction level, so we can check the
claim mechanically.  Four parts:

* :mod:`.generators` — random polyhedral C kernels (entering through
  the real MET frontend) and random Affine modules built directly with
  the builder API, including near-miss variants that must *not* match
  the raising tactics.
* :mod:`.oracle` — runs the interpreter on the module snapshot after
  every stage of each Figure-9 pipeline and demands numerically
  identical output buffers, plus verifier and print->parse round-trip
  checks per snapshot.
* :mod:`.bisect` — on a mismatch, replays the pipeline pass-by-pass to
  name the first semantics- or verifier-breaking pass.
* :mod:`.reduce` — delta-debugs a failing C kernel (drop loops, shrink
  extents, simplify bodies) down to a minimal reproducer.

:mod:`.campaign` ties them together into the budgeted ``mlt-fuzz``
driver that dumps reduced artifacts into ``fuzz-failures/``.
"""

from .generators import (  # noqa: F401
    GeneratedKernel,
    GeneratedModule,
    KERNEL_FAMILIES,
    generate_affine_module,
    generate_kernel,
    unparse_function,
    unparse_unit,
)
from .oracle import (  # noqa: F401
    DEFAULT_PIPELINES,
    OracleReport,
    Pipeline,
    PipelineStage,
    StageResult,
    build_pipelines,
    check_incremental_equivalence,
    check_module,
    check_opt_module,
    run_oracle,
    run_oracle_on_module,
)
from .bisect import BisectionResult, bisect_pipeline  # noqa: F401
from .reduce import reduce_source, reduction_candidates  # noqa: F401
from .campaign import CampaignStats, FuzzCampaign, FuzzFailure  # noqa: F401
