"""Pass bisection: name the first pass that breaks a kernel.

The oracle reports failures at *stage* granularity (a stage may bundle
several passes, e.g. ``lower-affine`` + ``convert-scf-to-llvm``).  The
bisector replays the pipeline from the pristine frontend output one
pass at a time, re-running the full snapshot check (verify, round-trip,
differential execution) after each, and reports the first pass whose
application breaks any of them.  Deterministic replay makes the linear
scan exact: the culprit is the pass itself, not an interaction with the
checking order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ir import Context, ModuleOp
from ..met import compile_c
from .oracle import (
    Pipeline,
    StageResult,
    check_engine_module,
    check_module,
    check_opt_module,
    check_schedule_module,
    check_vectorize_module,
    make_args,
    module_arg_shapes,
)


@dataclass
class BisectionResult:
    #: Name of the first semantics- or verifier-breaking pass, or None
    #: when the replay could not reproduce the failure (flaky oracle /
    #: frontend failure).
    culprit_pass: Optional[str]
    #: Stage the culprit pass belongs to.
    stage: Optional[str] = None
    #: 0-based position of the culprit in the flattened pass list.
    index: Optional[int] = None
    #: Failure kind (crash | verify | roundtrip | execute | diff |
    #: engine | engine-diff | vectorize | vectorize-diff | opt |
    #: opt-diff | schedule | schedule-diff).
    kind: str = ""
    detail: str = ""

    @property
    def reproduced(self) -> bool:
        return self.culprit_pass is not None

    def summary(self) -> str:
        if not self.reproduced:
            return "bisection: failure did not reproduce under replay"
        return (
            f"bisection: first breaking pass is '{self.culprit_pass}' "
            f"(stage '{self.stage}', position {self.index}) "
            f"[{self.kind}] {self.detail}"
        )


def bisect_pipeline(
    source_or_module,
    pipeline: Pipeline,
    func_name: str,
    seed: int = 0,
    rtol: float = 2e-3,
    max_steps: int = 20_000_000,
    check_engine: bool = True,
    check_vectorize: bool = True,
    check_opt: bool = True,
    check_schedule: bool = True,
) -> BisectionResult:
    """Replay ``pipeline`` pass-by-pass over a C source (str) or a
    pristine module (ModuleOp) and locate the first breaking pass."""
    if isinstance(source_or_module, ModuleOp):
        module = source_or_module.clone()
    else:
        try:
            module = compile_c(source_or_module, distribute=False)
        except Exception as exc:
            return BisectionResult(
                culprit_pass="<met-frontend>",
                stage="met",
                index=-1,
                kind="crash",
                detail=str(exc),
            )

    shapes = module_arg_shapes(module, func_name)
    base_args = make_args(shapes, seed)

    # Establish the reference from the untransformed module; if the
    # pristine snapshot itself fails, the frontend (not a pass) is the
    # culprit.
    result, reference = check_module(
        module, func_name, base_args, None, "met", rtol=rtol, max_steps=max_steps
    )
    if not result.ok:
        return BisectionResult(
            culprit_pass="<met-frontend>",
            stage="met",
            index=-1,
            kind=result.kind,
            detail=result.detail,
        )

    for position, (stage_name, pass_name, factory) in enumerate(
        pipeline.flat_passes()
    ):
        try:
            factory().run(module, Context())
        except Exception as exc:
            return BisectionResult(
                culprit_pass=pass_name,
                stage=stage_name,
                index=position,
                kind="crash",
                detail=str(exc),
            )
        result, outputs = check_module(
            module,
            func_name,
            base_args,
            reference,
            stage_name,
            rtol=rtol,
            max_steps=max_steps,
        )
        if not result.ok:
            return BisectionResult(
                culprit_pass=pass_name,
                stage=stage_name,
                index=position,
                kind=result.kind,
                detail=result.detail,
            )
        if check_engine:
            engine_result = check_engine_module(
                module,
                func_name,
                base_args,
                outputs,
                stage_name,
                pipeline_name=pipeline.name,
                rtol=rtol,
            )
            if not engine_result.ok:
                return BisectionResult(
                    culprit_pass=pass_name,
                    stage=stage_name,
                    index=position,
                    kind=engine_result.kind,
                    detail=engine_result.detail,
                )
        if check_vectorize:
            vec_result = check_vectorize_module(
                module,
                func_name,
                base_args,
                outputs,
                stage_name,
                pipeline_name=pipeline.name,
                rtol=rtol,
            )
            if not vec_result.ok:
                return BisectionResult(
                    culprit_pass=pass_name,
                    stage=stage_name,
                    index=position,
                    kind=vec_result.kind,
                    detail=vec_result.detail,
                )
        if check_opt:
            opt_result = check_opt_module(
                module,
                func_name,
                base_args,
                outputs,
                stage_name,
                pipeline_name=pipeline.name,
                rtol=rtol,
            )
            if not opt_result.ok:
                return BisectionResult(
                    culprit_pass=pass_name,
                    stage=stage_name,
                    index=position,
                    kind=opt_result.kind,
                    detail=opt_result.detail,
                )
        if check_schedule:
            schedule_result = check_schedule_module(
                module,
                func_name,
                base_args,
                outputs,
                stage_name,
                pipeline_name=pipeline.name,
                rtol=rtol,
                seed=seed,
                max_steps=max_steps,
            )
            if not schedule_result.ok:
                return BisectionResult(
                    culprit_pass=pass_name,
                    stage=stage_name,
                    index=position,
                    kind=schedule_result.kind,
                    detail=schedule_result.detail,
                )
    return BisectionResult(culprit_pass=None)


def replay_check(
    source: str,
    pipeline: Pipeline,
    func_name: str,
    seed: int = 0,
    rtol: float = 2e-3,
    max_steps: int = 20_000_000,
) -> Optional[StageResult]:
    """Convenience for the reducer: run the staged oracle on a source
    and return its first failure (None when the kernel passes)."""
    from .oracle import run_oracle

    report = run_oracle(
        source, pipeline, func_name, seed=seed, rtol=rtol, max_steps=max_steps
    )
    return report.first_failure
