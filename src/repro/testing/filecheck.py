"""A miniature FileCheck: pattern-based verification of textual IR.

LLVM/MLIR test suites verify compiler output with FileCheck directives;
this module provides the subset needed for IR golden tests here:

  * ``CHECK: <pattern>``        — match somewhere at/after the cursor
  * ``CHECK-NEXT: <pattern>``   — match on the immediately next line
  * ``CHECK-NOT: <pattern>``    — must not appear before the next match
  * ``CHECK-LABEL: <pattern>``  — like CHECK, but re-anchors the scan
  * ``CHECK-DAG: <pattern>``    — group of lines in any order
  * ``{{regex}}``               — inline regular expressions
  * ``%[[NAME:...]]`` / ``%[[NAME]]`` — capture and reuse SSA names

Usage::

    filecheck(ir_text, '''
      CHECK-LABEL: func @gemm
      CHECK: %[[FILL:[0-9]+]] = std.constant 0.0
      CHECK-NEXT: linalg.fill(%[[FILL]],
      CHECK-NOT: affine.for
      CHECK: linalg.matmul
    ''')
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple


class FileCheckError(AssertionError):
    pass


_DIRECTIVE_RE = re.compile(
    r"^\s*(?:(?://|#)\s*)?"
    r"(?P<kind>CHECK(?:-NEXT|-NOT|-LABEL|-DAG)?):\s?(?P<pattern>.*)$"
)


def _parse_directives(check_text: str) -> List[Tuple[str, str]]:
    directives = []
    for line in check_text.splitlines():
        if not line.strip():
            continue
        match = _DIRECTIVE_RE.match(line)
        if match is None:
            raise FileCheckError(f"not a FileCheck directive: {line!r}")
        directives.append((match.group("kind"), match.group("pattern").rstrip()))
    if not directives:
        raise FileCheckError("no CHECK directives given")
    return directives


def _compile_pattern(pattern: str, captures: Dict[str, str]) -> re.Pattern:
    """Translate a CHECK pattern into a regex, resolving captures."""
    out: List[str] = []
    pos = 0
    while pos < len(pattern):
        regex_start = pattern.find("{{", pos)
        capture_start = pattern.find("[[", pos)
        candidates = [c for c in (regex_start, capture_start) if c != -1]
        if not candidates:
            out.append(re.escape(pattern[pos:]))
            break
        nxt = min(candidates)
        out.append(re.escape(pattern[pos:nxt]))
        if nxt == regex_start:
            end = pattern.find("}}", nxt)
            if end == -1:
                raise FileCheckError(f"unterminated {{{{...}}}} in {pattern!r}")
            out.append("(?:" + pattern[nxt + 2:end] + ")")
            pos = end + 2
        else:
            end = pattern.find("]]", nxt)
            if end == -1:
                raise FileCheckError(f"unterminated [[...]] in {pattern!r}")
            body = pattern[nxt + 2:end]
            if ":" in body:
                name, _, regex = body.partition(":")
                out.append(f"(?P<cap_{name}>{regex})")
            else:
                if body not in captures:
                    raise FileCheckError(
                        f"use of undefined capture [[{body}]]"
                    )
                out.append(re.escape(captures[body]))
            pos = end + 2
    return re.compile("".join(out))


def _record_captures(match: re.Match, captures: Dict[str, str]) -> None:
    for key, value in (match.groupdict() or {}).items():
        if key.startswith("cap_") and value is not None:
            captures[key[4:]] = value


def filecheck(text: str, checks: str) -> None:
    """Verify ``text`` against FileCheck ``checks``; raises
    :class:`FileCheckError` with a helpful message on mismatch."""
    lines = text.splitlines()
    directives = _parse_directives(checks)
    captures: Dict[str, str] = {}
    cursor = 0
    pending_not: List[str] = []
    index = 0
    while index < len(directives):
        kind, pattern = directives[index]
        if kind == "CHECK-NOT":
            pending_not.append(pattern)
            index += 1
            continue
        if kind == "CHECK-DAG":
            group = []
            while index < len(directives) and directives[index][0] == "CHECK-DAG":
                group.append(directives[index][1])
                index += 1
            cursor = _match_dag(lines, cursor, group, captures, pending_not)
            pending_not = []
            continue
        cursor = _match_one(
            lines, cursor, kind, pattern, captures, pending_not
        )
        pending_not = []
        index += 1
    # trailing CHECK-NOTs apply to the rest of the input
    for pattern in pending_not:
        regex = _compile_pattern(pattern, captures)
        for line_no in range(cursor, len(lines)):
            if regex.search(lines[line_no]):
                raise FileCheckError(
                    f"CHECK-NOT: {pattern!r} found at line "
                    f"{line_no + 1}: {lines[line_no]!r}"
                )


def _match_one(
    lines: List[str],
    cursor: int,
    kind: str,
    pattern: str,
    captures: Dict[str, str],
    pending_not: List[str],
) -> int:
    regex = _compile_pattern(pattern, captures)
    if kind == "CHECK-NEXT":
        if cursor >= len(lines):
            raise FileCheckError(f"CHECK-NEXT: {pattern!r}: no next line")
        match = regex.search(lines[cursor])
        if match is None:
            raise FileCheckError(
                f"CHECK-NEXT: {pattern!r} did not match line "
                f"{cursor + 1}: {lines[cursor]!r}"
            )
        _check_nots(lines, cursor, cursor, captures, pending_not)
        _record_captures(match, captures)
        return cursor + 1
    # CHECK and CHECK-LABEL scan forward.
    for line_no in range(cursor, len(lines)):
        match = regex.search(lines[line_no])
        if match is not None:
            _check_nots(lines, cursor, line_no, captures, pending_not)
            _record_captures(match, captures)
            return line_no + 1
    raise FileCheckError(
        f"{kind}: {pattern!r} not found after line {cursor}"
    )


def _check_nots(
    lines: List[str],
    start: int,
    end: int,
    captures: Dict[str, str],
    pending_not: List[str],
) -> None:
    for pattern in pending_not:
        regex = _compile_pattern(pattern, captures)
        for line_no in range(start, end):
            if regex.search(lines[line_no]):
                raise FileCheckError(
                    f"CHECK-NOT: {pattern!r} found at line "
                    f"{line_no + 1}: {lines[line_no]!r}"
                )


def _match_dag(
    lines: List[str],
    cursor: int,
    patterns: List[str],
    captures: Dict[str, str],
    pending_not: List[str],
) -> int:
    remaining = list(patterns)
    furthest = cursor
    while remaining:
        pattern = remaining[0]
        regex = _compile_pattern(pattern, captures)
        found = None
        for line_no in range(cursor, len(lines)):
            match = regex.search(lines[line_no])
            if match is not None:
                found = (line_no, match)
                break
        if found is None:
            raise FileCheckError(f"CHECK-DAG: {pattern!r} not found")
        _record_captures(found[1], captures)
        furthest = max(furthest, found[0] + 1)
        remaining.pop(0)
    _check_nots(lines, cursor, furthest - 1, captures, pending_not)
    return furthest
