"""Testing utilities (mini-FileCheck for IR golden tests)."""

from .filecheck import FileCheckError, filecheck  # noqa: F401
