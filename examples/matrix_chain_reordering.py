#!/usr/bin/env python
"""Progressive raising in action (§V-C): matrix-chain reordering.

The optimization is only expressible *above* the loop level: raise the
C loop nests to Linalg first, then the chain of ``linalg.matmul`` ops
becomes visible and the CLRS dynamic program can re-parenthesize it.

Run:  python examples/matrix_chain_reordering.py
"""

import numpy as np

from repro.evaluation.kernels import matrix_chain_source
from repro.execution import AMD_2920X, CostModel, Interpreter
from repro.ir import print_module
from repro.met import compile_c
from repro.tactics import raise_affine_to_linalg, reorder_matrix_chains
from repro.tactics.chain import (
    chain_multiplications,
    left_associative_tree,
    optimal_parenthesization,
    parenthesization_str,
)

# Table II, first row: A1(800x1100) A2(1100x900) A3(900x1200) A4(1200x100)
DIMS = [800, 1100, 900, 1200, 100]


def main():
    n = len(DIMS) - 1
    cost_op, tree = optimal_parenthesization(DIMS)
    cost_ip = chain_multiplications(DIMS, left_associative_tree(n))
    print(f"chain dims: {DIMS}")
    print(
        f"initial {parenthesization_str(left_associative_tree(n))}: "
        f"{cost_ip / 1e9:.3f}e9 multiplications"
    )
    print(
        f"optimal {parenthesization_str(tree)}: "
        f"{cost_op / 1e9:.3f}e9 multiplications"
    )

    src = matrix_chain_source(DIMS)
    module = compile_c(src)
    raise_affine_to_linalg(module)

    model = CostModel(AMD_2920X)
    time_before = model.cost_function(module.functions[0]).seconds
    num = reorder_matrix_chains(module)
    time_after = model.cost_function(module.functions[0]).seconds
    print(f"\nreordered {num} chain(s)")
    print("=== optimized Linalg IR ===")
    print(print_module(module))
    print(
        f"AMD model: {time_before:.3f} s -> {time_after:.3f} s "
        f"({time_before / time_after:.2f}x; paper Table II row 1: "
        "1.289 s -> 0.212 s, 6.08x)"
    )

    # Execute a scaled-down version of the same chain to double-check
    # the rewrite numerically.
    small = [d // 100 for d in DIMS]
    ref = compile_c(matrix_chain_source(small))
    opt = compile_c(matrix_chain_source(small))
    raise_affine_to_linalg(opt)
    reorder_matrix_chains(opt)
    rng = np.random.default_rng(0)
    mats = [
        rng.random((small[i], small[i + 1]), dtype=np.float32)
        for i in range(n)
    ]
    r1 = np.zeros((small[0], small[-1]), np.float32)
    r2 = np.zeros((small[0], small[-1]), np.float32)
    Interpreter(ref).run("chain", *mats, r1)
    Interpreter(opt).run("chain", *[m.copy() for m in mats], r2)
    print(f"max numeric error after reordering: {np.abs(r1 - r2).max():.2e}")


if __name__ == "__main__":
    main()
