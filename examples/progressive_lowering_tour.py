#!/usr/bin/env python
"""A tour of the abstraction ladder (Figures 1 and 2 of the paper).

One small kernel is shown at every level of the stack — raised to the
peak, then progressively lowered into the valley — and executed at each
level to demonstrate that every representation denotes the same
program:

    Linalg  (peak: named linear-algebra ops)
      | convert-linalg-to-affine-loops
    Affine  (polyhedral loops, affine access maps)
      | lower-affine
    SCF     (structured control flow over SSA bounds)
      | convert-scf-to-llvm
    LLVM    (basic blocks, branches, flat memory)

Run:  python examples/progressive_lowering_tour.py
"""

import numpy as np

from repro.execution import Interpreter
from repro.ir import Context, print_module, verify
from repro.met import compile_c
from repro.tactics import raise_affine_to_linalg
from repro.transforms import (
    lower_affine_to_scf,
    lower_linalg_to_affine,
    lower_scf_to_llvm,
)

C_SOURCE = """
void axpy_matmul(float A[16][24], float B[24][8], float C[16][8]) {
  for (int i = 0; i < 16; i++)
    for (int j = 0; j < 8; j++) {
      C[i][j] = 0.0f;
      for (int k = 0; k < 24; k++)
        C[i][j] += A[i][k] * B[k][j];
    }
}
"""


def run(module, a, b):
    c = np.zeros((16, 8), dtype=np.float32)
    Interpreter(module, max_steps=10_000_000).run(
        "axpy_matmul", a.copy(), b.copy(), c
    )
    return c


def main():
    rng = np.random.default_rng(0)
    a = rng.random((16, 24), dtype=np.float32)
    b = rng.random((24, 8), dtype=np.float32)

    module = compile_c(C_SOURCE)
    raise_affine_to_linalg(module)  # climb to the peak first
    results = {}

    print("=" * 64)
    print("LINALG — the peak")
    print("=" * 64)
    print(print_module(module))
    results["linalg"] = run(module, a, b)

    lower_linalg_to_affine(module)
    verify(module, Context())
    print("=" * 64)
    print("AFFINE — polyhedral loops")
    print("=" * 64)
    print(print_module(module))
    results["affine"] = run(module, a, b)

    for func in module.functions:
        lower_affine_to_scf(func)
    verify(module, Context())
    print("=" * 64)
    print("SCF — structured control flow")
    print("=" * 64)
    print(print_module(module))
    results["scf"] = run(module, a, b)

    for func in module.functions:
        lower_scf_to_llvm(func)
    verify(module, Context())
    print("=" * 64)
    print("LLVM — the valley (CFG, flat memory)")
    print("=" * 64)
    text = print_module(module)
    print(text[:1500] + ("\n  ..." if len(text) > 1500 else ""))
    results["llvm"] = run(module, a, b)

    reference = a @ b
    print("=" * 64)
    for level, c in results.items():
        err = np.abs(c - reference).max()
        print(f"{level:>6s}: max |C - A@B| = {err:.2e}")
        assert err < 1e-3
    print("every abstraction level computes the same function.")


if __name__ == "__main__":
    main()
