#!/usr/bin/env python
"""Quickstart: progressive raising from C to Linalg in five steps.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.execution import Interpreter
from repro.ir import print_module
from repro.met import compile_c
from repro.tactics import raise_affine_to_linalg

C_SOURCE = """
void gemm(float A[64][96], float B[96][48], float C[64][48]) {
  for (int i = 0; i < 64; i++)
    for (int j = 0; j < 48; j++) {
      C[i][j] = 0.0f;
      for (int k = 0; k < 96; k++)
        C[i][j] += A[i][k] * B[k][j];
    }
}
"""


def main():
    # 1. Enter the multi-level IR pipeline at the Affine level via MET.
    #    (Loop distribution isolates the init store from the reduction.)
    module = compile_c(C_SOURCE)
    print("=== Affine level (MET output) ===")
    print(print_module(module))

    # 2. Keep an unmodified copy for the semantics check.
    reference = compile_c(C_SOURCE)

    # 3. Raise: loop nests -> linalg.fill + linalg.matmul.
    stats = raise_affine_to_linalg(module)
    print(f"=== Raised to Linalg ({stats.callsites}) ===")
    print(print_module(module))

    # 4. Execute both versions with the numpy-backed interpreter.
    rng = np.random.default_rng(0)
    a = rng.random((64, 96), dtype=np.float32)
    b = rng.random((96, 48), dtype=np.float32)
    c_ref = np.zeros((64, 48), dtype=np.float32)
    c_raised = np.zeros((64, 48), dtype=np.float32)
    Interpreter(reference).run("gemm", a, b, c_ref)
    Interpreter(module).run("gemm", a, b, c_raised)

    # 5. Raising is semantics-preserving.
    max_err = np.abs(c_ref - c_raised).max()
    print(f"max |reference - raised| = {max_err:.2e}")
    assert max_err < 1e-3
    print("OK: raising preserved the program's semantics.")


if __name__ == "__main__":
    main()
