#!/usr/bin/env python
"""Writing your own tactic — raising a user-specific motif.

A domain expert who knows their kernels use the (unusual) transposed
contraction ``S(p, q) += W(r, p) * V(r, q)`` (a Gram-matrix update,
W^T V) can teach the compiler to recognize it with four lines of TDL:
decompose it as an explicit transpose followed by a GEMM.

This also shows the lower-level matcher API (structural + access
matchers, §III-C) for readers who want finer-grained control than TDL.

Run:  python examples/custom_tactic.py
"""

import numpy as np

from repro.dialects.affine import AffineLoadOp, outermost_loops
from repro.dialects.std import AddFOp, MulFOp
from repro.execution import Interpreter
from repro.ir import print_module
from repro.met import compile_c
from repro.tactics import raise_affine_to_linalg
from repro.tactics.raising import compile_tdl
from repro.tactics.matchers import (
    AccessPatternContext,
    For,
    NestedPatternContext,
    m_ArrayPlaceholder,
    m_Op,
    m_Placeholder,
    match_block_accesses,
)

C_SOURCE = """
void gram(float W[40][24], float V[40][32], float S[24][32]) {
  for (int p = 0; p < 24; p++)
    for (int q = 0; q < 32; q++)
      for (int r = 0; r < 40; r++)
        S[p][q] += W[r][p] * V[r][q];
}
"""

#: The whole tactic: detect W^T V, build transpose(W) then GEMM.
GRAM_TDL = """
def GRAM {
  pattern
    S(p, q) += W(r, p) * V(r, q)
  builder
    Wt(p, r) = W(r, p)
    S(p, q) += Wt(p, r) * V(r, q)
}
"""


def show_matcher_api(module):
    """The generated matchers, written out by hand (cf. Listing 7)."""
    root = outermost_loops(module.functions[0])[0]

    def access_callback(body):
        with AccessPatternContext() as pctx:
            _p, _q, _r = (m_Placeholder() for _ in range(3))
            _S, _W, _V = (m_ArrayPlaceholder() for _ in range(3))
            store = _S(_p, _q)
            mac = m_Op(
                AddFOp,
                m_Op(AffineLoadOp, _S(_p, _q)),
                m_Op(
                    MulFOp,
                    m_Op(AffineLoadOp, _W(_r, _p)),
                    m_Op(AffineLoadOp, _V(_r, _q)),
                ),
            )
            return match_block_accesses(body, store, mac)

    with NestedPatternContext():
        matcher = For(For(For(access_callback)))
        print(f"hand-written matcher fires: {matcher.match(root)}")


def main():
    module = compile_c(C_SOURCE)
    reference = compile_c(C_SOURCE)
    show_matcher_api(module)

    tactics = compile_tdl(GRAM_TDL)
    stats = raise_affine_to_linalg(module, tactics=tactics)
    print(f"raised callsites: {stats.callsites}")
    print(print_module(module))

    rng = np.random.default_rng(3)
    w = rng.random((40, 24), dtype=np.float32)
    v = rng.random((40, 32), dtype=np.float32)
    s1 = np.zeros((24, 32), dtype=np.float32)
    s2 = np.zeros((24, 32), dtype=np.float32)
    Interpreter(reference).run("gram", w, v, s1)
    Interpreter(module).run("gram", w, v, s2)
    print(f"max error: {np.abs(s1 - s2).max():.2e}")
    assert np.abs(s1 - s2).max() < 1e-3
    print("OK: the custom tactic is semantics-preserving.")


if __name__ == "__main__":
    main()
